// bench_compare — the benchmark-regression gate.
//
//   bench_compare check --baselines DIR --results DIR
//   bench_compare check --baseline FILE --result FILE
//   bench_compare bless --results DIR --baselines DIR [--tol-rel F]
//   bench_compare bless --result FILE --baseline FILE [--tol-rel F]
//
// `check` compares every bench result document (BENCH_<name>.json, the
// bench/harness schema) against its committed baseline
// (bench/baselines/<name>.json, self-describing per-metric tolerances)
// and exits nonzero if any baselined metric regressed or disappeared.  A
// baseline without a matching result is likewise a failure — a bench
// that silently stopped running is a regression.  Results without a
// baseline are listed as unchecked, never failed.
//
// `bless` regenerates baselines from result documents with a uniform
// relative tolerance (default 0.02).  Blessing is an explicit, reviewed
// act: commit the diff it produces.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/compare.hpp"
#include "util/json.hpp"

namespace {

namespace fs = std::filesystem;
using namespace gearsim;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read " + path.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The bench name a document claims ("name" field), used to pair results
/// with baselines regardless of filename conventions.
std::string bench_name(const std::string& doc) {
  return json::field(json::parse(doc).as_object(), "name").as_string();
}

/// Collect <name> -> document for every *.json under `dir`.
std::map<std::string, std::string> load_dir(const fs::path& dir) {
  std::map<std::string, std::string> docs;
  if (!fs::is_directory(dir)) {
    throw std::runtime_error(dir.string() + " is not a directory");
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json") {
      continue;
    }
    const std::string doc = slurp(entry.path());
    docs[bench_name(doc)] = doc;
  }
  return docs;
}

int check(const std::map<std::string, std::string>& baselines,
          const std::map<std::string, std::string>& results) {
  bool ok = true;
  for (const auto& [name, baseline] : baselines) {
    const auto it = results.find(name);
    if (it == results.end()) {
      std::cout << "FAIL " << name << ": baseline has no result document\n";
      ok = false;
      continue;
    }
    const obs::CompareReport report = obs::compare_bench(baseline, it->second);
    std::cout << obs::render_report(report);
    ok = ok && report.ok();
  }
  for (const auto& [name, result] : results) {
    if (baselines.count(name) == 0) {
      std::cout << "note: " << name << " has no baseline (unchecked)\n";
    }
  }
  std::cout << (ok ? "bench_compare: PASS\n"
                   : "bench_compare: FAIL (see lines above)\n");
  return ok ? 0 : 1;
}

void write_file(const fs::path& path, const std::string& content) {
  if (path.has_parent_path()) fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::trunc);
  out << content;
  if (!out.good()) {
    throw std::runtime_error("failed to write " + path.string());
  }
  std::cout << "wrote " << path.string() << '\n';
}

int bless(const std::map<std::string, std::string>& results,
          const fs::path& baselines_dir, double tol_rel) {
  for (const auto& [name, result] : results) {
    write_file(baselines_dir / (name + ".json"),
               obs::baseline_from_result(result, tol_rel) + "\n");
  }
  return 0;
}

int usage() {
  std::cerr
      << "usage: bench_compare check --baselines DIR --results DIR\n"
         "       bench_compare check --baseline FILE --result FILE\n"
         "       bench_compare bless --results DIR --baselines DIR"
         " [--tol-rel F]\n"
         "       bench_compare bless --result FILE --baseline FILE"
         " [--tol-rel F]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::map<std::string, std::string> flags;
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return usage();
    flags[key.substr(2)] = argv[i + 1];
  }

  try {
    // Single-file and directory forms normalize to name->document maps.
    std::map<std::string, std::string> baselines;
    std::map<std::string, std::string> results;
    if (flags.count("result")) {
      const std::string doc = slurp(flags.at("result"));
      results[bench_name(doc)] = doc;
    } else if (flags.count("results")) {
      results = load_dir(flags.at("results"));
    }

    if (command == "check") {
      if (flags.count("baseline")) {
        const std::string doc = slurp(flags.at("baseline"));
        baselines[bench_name(doc)] = doc;
      } else if (flags.count("baselines")) {
        baselines = load_dir(flags.at("baselines"));
      } else {
        return usage();
      }
      if (results.empty()) return usage();
      return check(baselines, results);
    }
    if (command == "bless") {
      const double tol_rel = flags.count("tol-rel")
                                 ? std::stod(flags.at("tol-rel"))
                                 : 0.02;
      if (results.empty()) return usage();
      if (flags.count("baseline")) {
        for (const auto& [name, result] : results) {
          write_file(flags.at("baseline"),
                     gearsim::obs::baseline_from_result(result, tol_rel) +
                         "\n");
        }
        return 0;
      }
      if (!flags.count("baselines")) return usage();
      return bless(results, flags.at("baselines"), tol_rel);
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
