#!/usr/bin/env sh
# Repo-hygiene gate: no build artifacts may be tracked by git.
#
# PR 8 accidentally committed an entire in-source CMake build tree
# (object files, CMakeFiles/, CTest scaffolding, figure output).  This
# script is the regression fence: it fails when `git ls-files` matches
# any artifact pattern, and CI runs it before the build plus a
# dirty-tree check after, so neither a committed artifact nor a build
# that writes into tracked paths can land again.
#
# Usage: tools/check_hygiene.sh [repo-root]   (default: cwd's repo)
set -eu

root=${1:-.}
cd "$root"

# Patterns mirror .gitignore: anything a CMake/CTest run or a bench
# invocation drops.  Extend both files together.
bad=$(git ls-files -- \
  'build/' 'build-*/' 'out/' \
  '*CMakeFiles/*' '*CMakeCache.txt' '*cmake_install.cmake' \
  '*CTestTestfile.cmake' '*DartConfiguration.tcl' \
  '*CMakeDoxyfile.in' '*CMakeDoxygenDefaults.cmake' \
  'Makefile' '*/Makefile' '*/Testing/*' \
  '*_include.cmake' '*_tests.cmake' \
  '*.o' '*.a' '*.so' '*.swp' \
  'compile_commands.json' '*/compile_commands.json' \
  'BENCH_*.json' \
  || true)

if [ -n "$bad" ]; then
  echo "error: build artifacts are tracked by git:" >&2
  echo "$bad" | sed 's/^/  /' >&2
  echo "Remove them (git rm -r --cached <path>) and extend .gitignore." >&2
  exit 1
fi

# Belt and braces: no tracked file may be a native object/archive/ELF,
# whatever it is named.  Read the magic bytes directly so the check does
# not depend on file(1) being installed.
elves=$(git ls-files | while IFS= read -r f; do
  [ -f "$f" ] || continue
  magic=$(head -c 8 "$f" 2>/dev/null | od -An -tx1 | tr -d ' \n')
  case "$magic" in
    7f454c46*|213c617263683e*) echo "$f" ;;  # ELF / "!<arch>" ar archive.
  esac
done)

if [ -n "$elves" ]; then
  echo "error: tracked files with ELF/archive magic bytes:" >&2
  echo "$elves" | sed 's/^/  /' >&2
  exit 1
fi

echo "hygiene: OK ($(git ls-files | wc -l | tr -d ' ') tracked files, no artifacts)"
