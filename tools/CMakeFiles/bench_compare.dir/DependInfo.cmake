
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/bench_compare.cpp" "tools/CMakeFiles/bench_compare.dir/bench_compare.cpp.o" "gcc" "tools/CMakeFiles/bench_compare.dir/bench_compare.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/obs/CMakeFiles/gearsim_obs.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/gearsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
