# Empty compiler generated dependencies file for gearsim.
# This may be replaced when dependencies are built.
