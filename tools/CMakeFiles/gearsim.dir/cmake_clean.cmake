file(REMOVE_RECURSE
  "CMakeFiles/gearsim.dir/gearsim_cli.cpp.o"
  "CMakeFiles/gearsim.dir/gearsim_cli.cpp.o.d"
  "gearsim"
  "gearsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
