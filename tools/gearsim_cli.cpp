// gearsim — command-line front end for the simulator.
//
//   gearsim list
//   gearsim run   --workload CG --nodes 4 [--gear 2] [--cluster athlon]
//   gearsim sweep --workload CG --nodes 4 [--jobs N] [--cache DIR]
//                 [--repeat R] [--csv] [--keep-going] [--retries K]
//                 [--watchdog S] [--cluster athlon]
//   gearsim space --workload LU [--jobs N] [--cache DIR] [--csv]
//   gearsim model --workload SP --target 64
//   gearsim faults --workload CG --nodes 4 --rate 2 [--interval 30]
//   gearsim policy --workload CG --nodes 8 [--jobs N] [--cache DIR]
//                  [--svg FILE] [--cluster athlon]
//   gearsim sched --script jobs.ll [--cap 1100] [--nodes 10] [--idle 85]
//                 [--discipline greedy] [--no-arbitration]
//                 [--outage 120:2:180] [--jobs N] [--cache DIR]
//   gearsim cache verify|scrub|stats [--dir DIR]
//   gearsim serve [--socket PATH] [--cache DIR] [--preload] ...
//   gearsim query [--socket PATH] [--type sweep] [--workload CG] ...
//
// `run` executes one experiment and prints its full measurement record;
// `sweep` prints one energy-time curve (optionally CSV for replotting);
// `space` sweeps every valid (nodes x gear) configuration; `model` runs
// the paper's five-step methodology and predicts a larger cluster;
// `faults` re-runs an experiment under an unreliable cluster (crashes,
// flaky links) with checkpoint/restart accounting — see docs/FAULTS.md;
// `policy` races the adaptive DVFS roster against the static gear sweep
// on one (workload, nodes) cell — see docs/POLICIES.md; `sched` runs a
// LoadLeveler-style job-script queue through the multi-tenant batch
// scheduler under a site power cap with per-event gear arbitration —
// see docs/SCHEDULER.md.
//
// `sweep` and `space` go through exec::SweepRunner: --jobs fans the
// independent points over worker threads (bit-identical to serial),
// --cache DIR skips points already simulated by any earlier invocation
// (content-addressed; see docs/EXECUTOR.md).  `sweep --keep-going` runs
// under exec::SweepSupervisor instead: one failing point no longer
// aborts the sweep — completed gears print, failures are reported, and
// the exit code is 1 (see docs/RESILIENCE.md).
//
// `cache verify` walks a result-store directory validating every entry
// (header, length, FNV-1a checksum, JSON decode) read-only; `cache
// scrub` additionally quarantines corrupt entries into .quarantine/ and
// removes stale temp files; `cache stats` prints per-shard occupancy
// (entries, bytes, quarantine backlog, lifetime evictions).
//
// `serve` runs the what-if query daemon: a shared (optionally sharded)
// result cache behind an AF_UNIX socket, with identical-query
// coalescing and bounded admission; `query` is its client — the tables
// it prints are byte-identical to the corresponding local command's.
// See docs/SERVICE.md.
//
// `run`, `sweep`, `space`, `faults`, and `policy` accept
// --metrics PATH: write an obs::RunManifest (config/workload identity,
// deterministic sim metrics, wall timing) there — see
// docs/OBSERVABILITY.md.  --wall-profile additionally records wall-clock
// profiling metrics in the manifest's (never-compared) wall section.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "cluster/experiment.hpp"
#include "exec/cache_key.hpp"
#include "exec/result_cache.hpp"
#include "exec/store.hpp"
#include "exec/supervisor.hpp"
#include "exec/sweep_runner.hpp"
#include "model/analytic.hpp"
#include "model/pipeline.hpp"
#include "model/tradeoff.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "policy/evaluator.hpp"
#include "sched/scheduler.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"
#include "util/statistics.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace gearsim;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options.find(key);
    return it != options.end() ? it->second : fallback;
  }
  [[nodiscard]] int get_int(const std::string& key, int fallback) const {
    const auto it = options.find(key);
    return it != options.end() ? std::stoi(it->second) : fallback;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return options.count(key) > 0;
  }
};

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.command = argv[1];
  int first = 2;
  // `cache` takes one positional action (verify|scrub) before options.
  if (args.command == "cache" && first < argc &&
      std::string(argv[first]).rfind("--", 0) != 0) {
    args.options["action"] = argv[first++];
  }
  for (int i = first; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) return std::nullopt;
    token = token.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[token] = argv[++i];
    } else {
      args.options[token] = "1";  // Boolean flag.
    }
  }
  return args;
}

/// --metrics PATH support, shared by every measuring command: owns the
/// registry handed to the run/sweep layers and writes the manifest on
/// request.  When --metrics was not given, registry() is null and no
/// instrumentation runs (the disabled path stays bit-identical).
class MetricsSink {
 public:
  MetricsSink(const Args& args, std::string tool)
      : path_(args.get("metrics", "")),
        tool_(std::move(tool)),
        registry_(args.has("wall-profile")),
        start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] obs::MetricsRegistry* registry() {
    return path_.empty() ? nullptr : &registry_;
  }

  void add_info(std::string key, std::string value) {
    info_.emplace_back(std::move(key), std::move(value));
  }

  /// Identity of the simulated configuration and workload, as cache-key
  /// hashes (full canonical text is huge; the hash identifies it).
  void add_identity(const cluster::ClusterConfig& config,
                    const cluster::Workload& workload) {
    const std::string config_text = exec::canonical_config(config);
    add_info("cluster", config.name);
    add_info("config_sig",
             exec::CacheKey{config_text, exec::fnv1a(config_text)}.hex());
    const std::string wsig = workload.signature();
    add_info("workload", workload.name());
    add_info("workload_sig", exec::CacheKey{wsig, exec::fnv1a(wsig)}.hex());
  }

  /// Write the manifest (no-op without --metrics).  `cache_key_format`
  /// is exec::kKeyFormatVersion for commands that go through the result
  /// cache, 0 for direct runs.
  void write(int cache_key_format) {
    if (path_.empty()) return;
    obs::RunManifest manifest;
    manifest.tool = std::move(tool_);
    manifest.cache_key_format = cache_key_format;
    manifest.info = std::move(info_);
    manifest.metrics = registry_.snapshot();
    manifest.wall_seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start_)
                                .count();
    obs::write_manifest_file(manifest, path_);
    std::cout << "wrote " << path_ << '\n';
  }

 private:
  std::string path_;
  std::string tool_;
  obs::MetricsRegistry registry_;
  std::vector<std::pair<std::string, std::string>> info_;
  std::chrono::steady_clock::time_point start_;
};

cluster::ClusterConfig cluster_by_name(const std::string& name) {
  if (name == "athlon") return cluster::athlon_cluster();
  if (name == "sun") return cluster::sun_cluster();
  if (name == "xeon") return cluster::xeon_cluster();
  throw ContractError("unknown cluster: " + name +
                      " (expected athlon, sun, or xeon)");
}

/// The cluster preset plus the network/scale overrides shared by every
/// simulating command: --topology SPEC swaps the flat backplane for a
/// routed fat-tree/torus (see docs/NETWORK.md for the grammar), and
/// --max-nodes lifts the preset's node ceiling so topology studies can
/// reach 256+ ranks.  Both overrides are part of the config and thus of
/// the exec cache key — cached flat results are never served to a
/// routed run or vice versa.
cluster::ClusterConfig cluster_from_args(const Args& args) {
  cluster::ClusterConfig config =
      cluster_by_name(args.get("cluster", "athlon"));
  if (args.has("topology")) {
    cluster::install_topology(
        &config, net::parse_topology(args.get("topology", "flat")));
  }
  if (args.has("max-nodes")) {
    config.max_nodes = args.get_int("max-nodes", config.max_nodes);
  }
  return config;
}

int cmd_list() {
  TextTable table({"name", "valid node counts (athlon)", "notes"});
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  for (const auto& entry : workloads::all_workloads()) {
    const auto w = entry.make();
    std::string counts;
    for (int n : workloads::paper_node_counts(*w, 10)) {
      if (!counts.empty()) counts += ' ';
      counts += std::to_string(n);
    }
    std::string note;
    if (entry.name == "FT") note = "excluded from the paper's figures";
    if (entry.name.rfind("IS", 0) == 0) note = "excluded (see appendix bench)";
    table.add_row({entry.name, counts, note});
  }
  std::cout << table.to_string();
  return 0;
}

void print_run(const cluster::RunResult& r) {
  TextTable table({"metric", "value"});
  table.add_row({"nodes", std::to_string(r.nodes)});
  // A policy-driven run has no single configured gear: gear_label is the
  // modal per-rank gear, reported as such with the observed range.
  if (r.policy_run) {
    table.add_row({"gear (modal, policy run)", std::to_string(r.gear_label)});
    table.add_row({"gear range (fast..slow)",
                   std::to_string(r.gear_min_index + 1) + " .. " +
                       std::to_string(r.gear_max_index + 1)});
  } else {
    table.add_row({"gear", std::to_string(r.gear_label)});
  }
  table.add_row({"wall time [s]", fmt_fixed(r.wall.value(), 3)});
  table.add_row({"energy [kJ]", fmt_fixed(r.energy.value() / 1e3, 3)});
  table.add_row({"active energy [kJ]",
                 fmt_fixed(r.active_energy.value() / 1e3, 3)});
  table.add_row({"idle energy [kJ]",
                 fmt_fixed(r.idle_energy.value() / 1e3, 3)});
  table.add_row({"mean active power [W]",
                 fmt_fixed(r.mean_active_power.value(), 1)});
  table.add_row({"mean idle power [W]",
                 fmt_fixed(r.mean_idle_power.value(), 1)});
  table.add_row({"T^A (max rank) [s]",
                 fmt_fixed(r.breakdown.active_max.value(), 3)});
  table.add_row({"T^I (derived) [s]",
                 fmt_fixed(r.breakdown.idle_derived.value(), 3)});
  table.add_row({"T^C / T^R [s]",
                 fmt_fixed(r.breakdown.critical.value(), 3) + " / " +
                     fmt_fixed(r.breakdown.reducible.value(), 3)});
  // Gear residency: rank-seconds at each gear, summed over ranks.  Only
  // interesting when the run ever left its configured gear.
  if (r.gear_switches > 0 && !r.gear_residency.empty()) {
    std::vector<double> totals;
    for (const auto& rank : r.gear_residency) {
      if (rank.size() > totals.size()) totals.resize(rank.size(), 0.0);
      for (std::size_t g = 0; g < rank.size(); ++g) {
        totals[g] += rank[g].value();
      }
    }
    std::string residency;
    for (std::size_t g = 0; g < totals.size(); ++g) {
      if (totals[g] <= 0.0) continue;
      if (!residency.empty()) residency += "  ";
      residency += "g" + std::to_string(g + 1) + "=" +
                   fmt_fixed(totals[g], 2);
    }
    table.add_row({"gear residency [rank-s]", residency});
  }
  table.add_row({"MPI calls", std::to_string(r.mpi_calls)});
  table.add_row({"messages", std::to_string(r.messages)});
  table.add_row({"bytes moved [MB]",
                 fmt_fixed(static_cast<double>(r.net_bytes) / 1048576.0, 1)});
  // Resilience rows only when the run actually carried a fault plan, so
  // plain `run` output is untouched.
  if (r.outcome != cluster::RunOutcome::kCompleted || r.retries > 0 ||
      r.retransmissions > 0 || !r.fault_events.empty()) {
    table.add_row({"outcome", to_string(r.outcome)});
    table.add_row({"restarts", std::to_string(r.retries)});
    table.add_row({"rework time [s]", fmt_fixed(r.rework_time.value(), 3)});
    table.add_row({"rework energy [kJ]",
                   fmt_fixed(r.rework_energy.value() / 1e3, 3)});
    table.add_row({"checkpoint overhead [s / kJ]",
                   fmt_fixed(r.checkpoint_time.value(), 3) + " / " +
                       fmt_fixed(r.checkpoint_energy.value() / 1e3, 3)});
    table.add_row({"retransmissions", std::to_string(r.retransmissions)});
    if (r.sampled_energy.has_value()) {
      table.add_row({"meter coverage", fmt_fixed(r.sampled_coverage, 4)});
    }
    if (r.fatal_crash.has_value()) {
      table.add_row({"fatal crash",
                     "node " + std::to_string(r.fatal_crash->node) + " at " +
                         fmt_fixed(r.fatal_crash->at.value(), 3) + " s"});
    }
    table.add_row({"fault events", std::to_string(r.fault_events.size())});
  }
  std::cout << table.to_string();
}

int cmd_run(const Args& args) {
  cluster::ExperimentRunner runner(
      cluster_from_args(args));
  const auto workload = workloads::make_workload(args.get("workload", "CG"));
  const int nodes = args.get_int("nodes", 4);
  const int gear = args.get_int("gear", 1);
  MetricsSink sink(args, "gearsim run");
  cluster::RunOptions options;
  options.gear_index = static_cast<std::size_t>(gear - 1);
  options.metrics = sink.registry();
  print_run(runner.run(*workload, nodes, options));
  sink.add_identity(runner.config(), *workload);
  sink.add_info("nodes", std::to_string(nodes));
  sink.add_info("gear", std::to_string(gear));
  sink.write(0);
  return 0;
}

/// Build the executor options shared by `sweep` and `space`: --jobs for
/// the worker pool, --cache DIR for the content-addressed result store.
/// The returned cache (may be null) must outlive the SweepRunner.
std::unique_ptr<exec::ResultCache> make_sweep_options(
    const Args& args, exec::SweepOptions* options) {
  options->jobs = args.get_int("jobs", 0);
  if (!args.has("cache")) return nullptr;
  exec::ResultCache::Options cache_options;
  cache_options.disk_dir = args.get("cache", "out/cache");
  auto cache = std::make_unique<exec::ResultCache>(cache_options);
  options->cache = cache.get();
  return cache;
}

void print_cache_stats(const exec::ResultCache* cache) {
  if (cache == nullptr) return;
  const exec::CacheStats s = cache->stats();
  std::cout << "cache: " << s.hits << " hit(s), " << s.disk_hits
            << " disk hit(s), " << s.misses << " miss(es)\n";
}

/// The energy-time curve table shared by `sweep` and `query --type
/// sweep`: one row per gear, repetitions averaged, so a daemon-served
/// sweep prints byte-identically to a cold local one.  `runs` is the
/// flat gears x repeat point list in sweep order; a missing entry is a
/// failed rep (supervised mode).
TextTable sweep_table(const cluster::ClusterConfig& config, int repeat,
                      const std::vector<std::optional<cluster::RunResult>>& runs) {
  TextTable table(repeat > 1
                      ? std::vector<std::string>{"gear", "MHz", "time_s",
                                                 "energy_J", "mean_power_W",
                                                 "time_cv"}
                      : std::vector<std::string>{"gear", "MHz", "time_s",
                                                 "energy_J", "mean_power_W"});
  for (std::size_t g = 0; g < config.gears.size(); ++g) {
    RunningStats time_s;
    RunningStats energy_j;
    int gear_label = 0;
    for (int rep = 0; rep < repeat; ++rep) {
      const auto& r = runs[g * static_cast<std::size_t>(repeat) +
                           static_cast<std::size_t>(rep)];
      if (!r.has_value()) continue;  // Supervised mode: failed rep.
      time_s.add(r->wall.value());
      energy_j.add(r->energy.value());
      if (gear_label == 0) gear_label = r->gear_label;
    }
    std::vector<std::string> row;
    if (time_s.count() == 0) {
      // Every rep of this gear failed; the failure report below says why.
      row = {std::to_string(g + 1),
             fmt_fixed(config.gears.gear(g).frequency.value() / 1e6, 0),
             "failed", "failed", "failed"};
      if (repeat > 1) row.push_back("failed");
    } else {
      row = {std::to_string(gear_label),
             fmt_fixed(config.gears.gear(g).frequency.value() / 1e6, 0),
             fmt_fixed(time_s.mean(), 3), fmt_fixed(energy_j.mean(), 1),
             fmt_fixed(energy_j.mean() / time_s.mean(), 1)};
      if (repeat > 1) {
        const double cv =
            time_s.mean() > 0.0 ? time_s.stddev() / time_s.mean() : 0.0;
        row.push_back(fmt_fixed(cv, 5));
      }
    }
    table.add_row(row);
  }
  return table;
}

int cmd_sweep(const Args& args) {
  const cluster::ClusterConfig config =
      cluster_from_args(args);
  const auto workload = workloads::make_workload(args.get("workload", "CG"));
  const int nodes = args.get_int("nodes", 4);
  const int repeat = args.get_int("repeat", 1);
  MetricsSink sink(args, "gearsim sweep");
  exec::SweepOptions options;
  const auto cache = make_sweep_options(args, &options);
  options.metrics = sink.registry();

  // gears x repetitions as one flat point list, so cache hits and the
  // worker pool cover the repetitions too.
  std::vector<exec::SweepPoint> points;
  for (std::size_t g = 0; g < config.gears.size(); ++g) {
    for (int rep = 0; rep < repeat; ++rep) {
      points.push_back(exec::SweepPoint{workload.get(), nodes, g, rep});
    }
  }

  // --keep-going: supervised execution — failed points are reported and
  // the rest of the curve still prints (exit 1 signals the partial).
  const bool keep_going = args.has("keep-going");
  std::vector<std::optional<cluster::RunResult>> runs;
  exec::SweepOutcome outcome;
  if (keep_going) {
    exec::SupervisorOptions supervise;
    supervise.max_attempts = args.get_int("retries", 3);
    supervise.watchdog_seconds = std::stod(args.get("watchdog", "0"));
    const exec::SweepSupervisor supervisor(config, options, supervise);
    outcome = supervisor.run(points);
    runs = outcome.results;
  } else {
    const exec::SweepRunner runner(config, options);
    auto all = runner.run(points);
    runs.reserve(all.size());
    for (auto& r : all) runs.emplace_back(std::move(r));
  }

  const TextTable table = sweep_table(config, repeat, runs);
  std::cout << (args.has("csv") ? table.to_csv() : table.to_string());
  print_cache_stats(options.cache);
  if (keep_going && !outcome.ok()) {
    std::cout << outcome.failures.size() << " of " << points.size()
              << " job(s) failed (" << outcome.retries << " retr"
              << (outcome.retries == 1 ? "y" : "ies") << "):\n"
              << outcome.report();
  }
  for (std::size_t index : outcome.runaway) {
    std::cout << "watchdog: job #" << index << " exceeded "
              << fmt_fixed(std::stod(args.get("watchdog", "0")), 3)
              << " s of wall time\n";
  }
  sink.add_identity(config, *workload);
  sink.add_info("nodes", std::to_string(nodes));
  sink.add_info("repeat", std::to_string(repeat));
  sink.write(exec::kKeyFormatVersion);
  return keep_going && !outcome.ok() ? 1 : 0;
}

int cmd_cache(const Args& args) {
  // Result-store integrity tooling over exec/store.hpp: `verify` is a
  // read-only walk, `scrub` repairs by quarantine (corrupt entries move
  // to .quarantine/ so the next sweep recomputes them) and removes temp
  // leftovers.  verify exits 1 when anything is wrong, for CI gating.
  const std::string action = args.get("action", "");
  const std::string dir = args.get("dir", "out/cache");
  if (action == "verify") {
    const exec::StoreReport report = exec::verify_store(dir);
    std::cout << "store " << dir << ": " << report.to_string();
    return report.clean() ? 0 : 1;
  }
  if (action == "scrub") {
    const exec::StoreReport report = exec::scrub_store(dir);
    std::cout << "store " << dir << ": " << report.to_string();
    return 0;
  }
  if (action == "stats") {
    // Per-shard occupancy of a (possibly sharded) store: entry and byte
    // counts, quarantine backlog, and the lifetime eviction total from
    // each shard's .evicted ledger.  Read-only.
    const exec::StoreStats stats = exec::store_stats(dir);
    TextTable table({"shard", "entries", "bytes", "quarantined", "evictions"});
    for (const exec::ShardStats& s : stats.shards) {
      table.add_row({s.name, std::to_string(s.entries),
                     std::to_string(s.bytes), std::to_string(s.quarantined),
                     std::to_string(s.evictions)});
    }
    table.add_row({"total", std::to_string(stats.total_entries()),
                   std::to_string(stats.total_bytes()),
                   std::to_string(stats.total_quarantined()),
                   std::to_string(stats.total_evictions())});
    std::cout << "store " << dir << " (" << stats.shards.size()
              << " shard(s)):\n"
              << table.to_string();
    return 0;
  }
  std::cerr << "gearsim cache: expected an action, verify, scrub or stats\n";
  return 2;
}

int cmd_space(const Args& args) {
  const cluster::ClusterConfig config =
      cluster_from_args(args);
  const auto workload = workloads::make_workload(args.get("workload", "LU"));
  MetricsSink sink(args, "gearsim space");
  exec::SweepOptions options;
  const auto cache = make_sweep_options(args, &options);
  options.metrics = sink.registry();
  const exec::SweepRunner runner(config, options);
  const std::vector<int> node_counts =
      workloads::paper_node_counts(*workload, config.max_nodes);
  const auto runs = runner.grid(*workload, node_counts);
  TextTable table({"nodes", "gear", "time_s", "energy_J"});
  std::size_t i = 0;
  for (int n : node_counts) {
    for (std::size_t g = 0; g < config.gears.size(); ++g, ++i) {
      const auto& r = runs[i];
      table.add_row({std::to_string(n), std::to_string(r.gear_label),
                     fmt_fixed(r.wall.value(), 3),
                     fmt_fixed(r.energy.value(), 1)});
    }
  }
  std::cout << (args.has("csv") ? table.to_csv() : table.to_string());
  print_cache_stats(options.cache);
  sink.add_identity(config, *workload);
  sink.write(exec::kKeyFormatVersion);
  return 0;
}

int cmd_model(const Args& args) {
  cluster::ExperimentRunner athlon(cluster::athlon_cluster());
  cluster::ExperimentRunner sun(cluster::sun_cluster());
  const auto workload = workloads::make_workload(args.get("workload", "SP"));
  const int target = args.get_int("target", 32);
  model::ScalingModel::Options opts;
  opts.primary_nodes = workloads::paper_node_counts(*workload, 9);
  opts.validation_nodes = workloads::paper_node_counts(*workload, 32);
  const auto scaling =
      model::ScalingModel::build(athlon, sun, *workload, opts);
  const model::ScalingReport& rep = scaling.report();
  std::cout << "F_s = " << fmt_fixed(rep.amdahl_primary.serial_fraction, 4)
            << ", communication " << to_string(rep.comm_primary.shape())
            << ", reducible fraction "
            << fmt_fixed(rep.reducible_fraction, 3) << "\n\n";
  const model::Curve curve = scaling.predicted_curve(target);
  TextTable table({"gear", "time_s", "energy_J"});
  for (const auto& p : curve.points) {
    table.add_row({std::to_string(p.gear_label),
                   fmt_fixed(p.time.value(), 3),
                   fmt_fixed(p.energy.value(), 1)});
  }
  std::cout << "Predicted curve on " << target << " nodes:\n"
            << (args.has("csv") ? table.to_csv() : table.to_string());
  return 0;
}

int cmd_faults(const Args& args) {
  // One experiment on an unreliable cluster.  --rate is per-node crashes
  // per hour; with a checkpoint policy (default) the run restarts from
  // the last checkpoint, with --no-restart the first crash is fatal.
  cluster::ExperimentRunner runner(
      cluster_from_args(args));
  const auto workload = workloads::make_workload(args.get("workload", "CG"));
  const int nodes = args.get_int("nodes", 4);
  const int gear = args.get_int("gear", 1);
  const double rate_per_hour = std::stod(args.get("rate", "0"));
  const double loss = std::stod(args.get("loss", "0"));
  const auto seed =
      static_cast<std::uint64_t>(std::stoull(args.get("seed", "42")));

  // Size the crash horizon from the fault-free wall time (restarts can
  // stretch the run well past it).
  const cluster::RunResult solid =
      runner.run(*workload, nodes, static_cast<std::size_t>(gear - 1));
  const double horizon =
      std::stod(args.get("horizon",
                         std::to_string(50.0 * solid.wall.value())));

  faults::FaultPlan plan(seed);
  if (rate_per_hour > 0.0) {
    plan.random_crashes(rate_per_hour / 3600.0,
                        static_cast<std::size_t>(nodes), seconds(horizon));
  }
  if (loss > 0.0) {
    net::LinkFaultWindow window;
    window.loss_probability = loss;
    plan.degrade_link(window);
  }
  if (!args.has("no-restart")) {
    faults::CheckpointConfig ckpt;
    ckpt.interval = seconds(std::stod(args.get("interval", "30")));
    plan.with_checkpointing(ckpt);
  }

  MetricsSink sink(args, "gearsim faults");
  cluster::RunOptions options;
  options.gear_index = static_cast<std::size_t>(gear - 1);
  options.faults = &plan;
  options.metrics = sink.registry();
  const cluster::RunResult r = runner.run(*workload, nodes, options);
  std::cout << "fault-free wall " << fmt_fixed(solid.wall.value(), 3)
            << " s, energy " << fmt_fixed(solid.energy.value() / 1e3, 3)
            << " kJ; " << plan.crashes().size()
            << " crash(es) scheduled\n";
  print_run(r);
  sink.add_identity(runner.config(), *workload);
  sink.add_info("nodes", std::to_string(nodes));
  sink.add_info("gear", std::to_string(gear));
  sink.add_info("seed", std::to_string(seed));
  sink.add_info("rate_per_hour", args.get("rate", "0"));
  sink.write(0);
  return 0;
}

/// Parse --outage "at:lost[:repair]" (comma-separated for several).
std::vector<sched::NodeOutage> parse_outages(const std::string& spec) {
  std::vector<sched::NodeOutage> outages;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    const std::size_t c1 = item.find(':');
    if (c1 == std::string::npos) {
      throw ContractError("malformed --outage item (want at:lost[:repair]): " +
                          item);
    }
    const std::size_t c2 = item.find(':', c1 + 1);
    sched::NodeOutage outage;
    outage.at = seconds(std::stod(item.substr(0, c1)));
    outage.nodes_lost = std::stoi(
        item.substr(c1 + 1, c2 == std::string::npos ? c2 : c2 - c1 - 1));
    if (c2 != std::string::npos) {
      outage.repair_after = seconds(std::stod(item.substr(c2 + 1)));
    }
    outages.push_back(outage);
  }
  return outages;
}

int cmd_sched(const Args& args) {
  // The multi-tenant batch scheduler end to end: parse a LoadLeveler-
  // style job script, measure a profile per distinct workload through
  // the sweep executor (--jobs / --cache as in `sweep`), and schedule
  // the queue under the site power cap with gear arbitration at every
  // event (--no-arbitration freezes placement gears — the control arm).
  // See docs/SCHEDULER.md.
  if (!args.has("script")) {
    std::cerr << "gearsim sched: --script FILE is required\n";
    return 2;
  }
  const std::string path = args.get("script", "");
  std::ifstream in(path);
  if (!in) {
    std::cerr << "gearsim sched: cannot read " << path << '\n';
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::vector<sched::JobScript> scripts =
      sched::parse_job_scripts(text.str());

  const cluster::ClusterConfig config = cluster_from_args(args);
  sched::Machine machine;
  machine.nodes = args.get_int("nodes", 10);
  machine.power_cap = watts(std::stod(args.get("cap", "1500")));
  machine.idle_node_power = watts(std::stod(args.get("idle", "85")));

  MetricsSink sink(args, "gearsim sched");
  exec::SweepOptions sweep_options;
  const auto cache = make_sweep_options(args, &sweep_options);
  const exec::SweepRunner runner(config, sweep_options);

  // One profile per distinct workload, no wider than any of its jobs
  // ever needs (narrower profiles = fewer simulated points).
  std::map<std::string, int> width;
  for (const auto& s : scripts) {
    int& w = width[s.workload];
    w = std::max(w, std::min(s.total_tasks,
                             std::min(machine.nodes, config.max_nodes)));
  }
  std::map<std::string, sched::WorkloadProfile> profiles;
  for (const auto& [name, max_nodes] : width) {
    const auto workload = workloads::make_workload(name);
    profiles.emplace(
        name, sched::WorkloadProfile::measure(runner, *workload, max_nodes));
  }
  std::vector<sched::BatchJob> jobs;
  for (const auto& s : scripts) {
    jobs.push_back({s, &profiles.at(s.workload)});
  }

  sched::BatchOptions options;
  options.discipline = args.get("discipline", "fifo") == "greedy"
                           ? sched::QueueDiscipline::kGreedy
                           : sched::QueueDiscipline::kFifo;
  options.arbitrate = !args.has("no-arbitration");
  const std::vector<sched::NodeOutage> outages =
      parse_outages(args.get("outage", ""));
  const sched::BatchScheduler scheduler(machine, options);
  const sched::BatchResult r =
      scheduler.schedule(jobs, outages, sink.registry());

  TextTable table({"job", "workload", "policy", "nodes", "gears", "shifts",
                   "start_s", "end_s", "energy_kJ"});
  for (const auto& p : r.placements) {
    table.add_row({p.job_id, p.workload, to_string(p.tag),
                   std::to_string(p.nodes),
                   std::to_string(p.start_gear_label) + "->" +
                       std::to_string(p.final_gear_label),
                   std::to_string(p.gear_changes),
                   fmt_fixed(p.start.value(), 1), fmt_fixed(p.end.value(), 1),
                   fmt_fixed(p.energy.value() / 1e3, 1)});
  }
  std::cout << (args.has("csv") ? table.to_csv() : table.to_string())
            << "makespan " << fmt_fixed(r.makespan.value(), 1)
            << " s, energy " << fmt_fixed(r.total_energy().value() / 1e3, 1)
            << " kJ (jobs " << fmt_fixed(r.job_energy.value() / 1e3, 1)
            << ", idle " << fmt_fixed(r.idle_energy.value() / 1e3, 1)
            << ", wasted " << fmt_fixed(r.wasted_energy.value() / 1e3, 1)
            << ")\n"
            << "peak draw " << fmt_fixed(r.peak_power.value(), 1)
            << " W under cap " << fmt_fixed(machine.power_cap.value(), 1)
            << " W (min headroom " << fmt_fixed(r.min_headroom.value(), 1)
            << " W)\n"
            << r.arbitrations << " arbitration(s), "
            << fmt_fixed(r.redistributed_watts.value(), 1)
            << " W redistributed, " << r.preemptions << " preemption(s), "
            << r.wall_limit_kills << " wall-limit kill(s)\n";
  print_cache_stats(sweep_options.cache);
  sink.add_info("cluster", config.name);
  sink.add_info("script", path);
  sink.add_info("jobs", std::to_string(jobs.size()));
  sink.add_info("cap_w", args.get("cap", "1500"));
  sink.write(exec::kKeyFormatVersion);
  return 0;
}

int cmd_policy(const Args& args) {
  // The full adaptive-DVFS roster vs the static gear sweep on one cell.
  // Goes through exec::SweepRunner, so --jobs and --cache apply and two
  // invocations are bit-identical (see docs/POLICIES.md).
  const cluster::ClusterConfig config =
      cluster_from_args(args);
  const auto workload = workloads::make_workload(args.get("workload", "CG"));
  const int nodes = args.get_int("nodes", 8);

  MetricsSink sink(args, "gearsim policy");
  exec::SweepOptions sweep_options;
  const auto cache = make_sweep_options(args, &sweep_options);
  policy::PolicyEvaluator::Options options;
  options.jobs = sweep_options.jobs;
  options.cache = sweep_options.cache;
  options.metrics = sink.registry();
  const policy::PolicyEvaluator evaluator(config, options);

  const policy::Evaluation eval = evaluator.evaluate(*workload, nodes);
  std::cout << policy_table(eval);
  print_cache_stats(options.cache);
  if (args.has("svg")) {
    const std::string path = args.get("svg", "policy.svg");
    policy_figure(eval.workload + ": static gears vs adaptive policies",
                  eval)
        .write(path);
    std::cout << "wrote " << path << '\n';
  }
  sink.add_identity(config, *workload);
  sink.add_info("nodes", std::to_string(nodes));
  sink.write(exec::kKeyFormatVersion);
  return 0;
}

int cmd_trace(const Args& args) {
  // One run with full instrumentation artifacts: the per-call CSV and the
  // per-rank activity timeline SVG.
  cluster::ExperimentRunner runner(
      cluster_from_args(args));
  const auto workload = workloads::make_workload(args.get("workload", "CG"));
  const int nodes = args.get_int("nodes", 4);
  const int gear = args.get_int("gear", 1);
  const std::string stem = args.get("out", "trace");
  cluster::RunOptions options;
  options.gear_index = static_cast<std::size_t>(gear - 1);
  options.trace_csv_path = stem + ".csv";
  options.timeline_svg_path = stem + ".svg";
  const cluster::RunResult r = runner.run(*workload, nodes, options);
  std::cout << "wrote " << options.trace_csv_path << " (" << r.mpi_calls
            << " calls) and " << options.timeline_svg_path << '\n'
            << "wall " << fmt_fixed(r.wall.value(), 2) << " s, T^A "
            << fmt_fixed(r.breakdown.active_max.value(), 2) << " s, T^I "
            << fmt_fixed(r.breakdown.idle_derived.value(), 2) << " s\n";
  return 0;
}

int cmd_advise(const Args& args) {
  // The paper's Table-1 metric as a tool: given two counter readings
  // (uops and L2 misses -> UPM) and a delay budget, recommend a gear and
  // predict the whole curve -- no run needed.
  const cluster::ClusterConfig config =
      cluster_from_args(args);
  const cpu::CpuModel cpu_model(config.cpu, config.gears);
  const cpu::PowerModel power_model(config.power, config.gears);
  const double upm = std::stod(args.get("upm", "50"));
  const double budget = std::stod(args.get("max-delay", "0.05"));
  const model::Curve curve = model::analytic_single_node_curve(
      cpu_model, power_model, upm, seconds(1.0));
  TextTable table({"gear", "predicted slowdown", "predicted energy"});
  for (const auto& point : curve.points) {
    table.add_row({std::to_string(point.gear_label),
                   fmt_percent(point.time.value() - 1.0),
                   fmt_percent(point.energy / curve.points[0].energy - 1.0)});
  }
  std::cout << "UPM " << fmt_fixed(upm, 1) << " (uops per L2 miss):\n"
            << table.to_string();
  const std::size_t gear =
      model::advise_gear_for_delay(cpu_model, upm, budget);
  std::cout << "Within a " << fmt_percent(budget) << " delay budget: gear "
            << config.gears.gear(gear).label << " ("
            << fmt_percent(model::predicted_energy_delta(cpu_model,
                                                         power_model, upm,
                                                         gear))
            << " energy)\n";
  return 0;
}

int cmd_serve(const Args& args) {
  // The what-if daemon: one shared sharded result cache behind an
  // AF_UNIX socket, answering run/sweep/race/stats queries until a
  // shutdown request arrives.  See docs/SERVICE.md.
  serve::ServiceOptions options;
  options.cache.disk_dir = args.get("cache", "");
  options.cache.capacity =
      static_cast<std::size_t>(args.get_int("capacity", 4096));
  options.cache.shard_digits = args.get_int("shard-digits", 2);
  options.cache.shard_entry_budget =
      static_cast<std::size_t>(args.get_int("shard-budget", 0));
  options.preload = args.has("preload");
  options.jobs = args.get_int("jobs", 0);
  options.retries = args.get_int("retries", 0);
  options.admission.admit =
      static_cast<std::size_t>(args.get_int("admit", 64));
  options.admission.queue =
      static_cast<std::size_t>(args.get_int("queue", 256));
  options.retry_after_ms = args.get_int("retry-after-ms", 250);
  options.wall_profile = args.has("wall-profile");

  serve::Service service(std::move(options));
  serve::Daemon::Options daemon_options;
  daemon_options.socket_path = args.get("socket", "gearsim.sock");
  serve::Daemon daemon(service, daemon_options);
  daemon.start();
  std::cout << "gearsim serve: listening on " << daemon.socket_path()
            << (service.cache().stats().preloaded > 0
                    ? " (" +
                          std::to_string(service.cache().stats().preloaded) +
                          " entr" +
                          (service.cache().stats().preloaded == 1 ? "y"
                                                                  : "ies") +
                          " preloaded)"
                    : std::string())
            << std::endl;
  daemon.wait();
  daemon.stop();
  const exec::CacheStats cache = service.cache().stats();
  const serve::AdmissionGate::Stats gate = service.admission_stats();
  std::cout << "gearsim serve: " << service.simulations()
            << " simulation(s), " << cache.hits + cache.disk_hits
            << " cache hit(s), " << gate.rejected << " rejected\n";
  return 0;
}

int cmd_query(const Args& args) {
  // One query against a running daemon.  --json sends a raw request
  // line; otherwise the request is assembled from the same flags the
  // local commands take.  --raw prints the response line instead of the
  // rendered table (tables are byte-identical to the local command's).
  const serve::Client client(args.get("socket", "gearsim.sock"));
  std::string line;
  if (args.has("json")) {
    line = args.get("json", "");
  } else {
    serve::Request request;
    request.type = args.get("type", "sweep");
    request.cluster = args.get("cluster", request.cluster);
    request.workload = args.get("workload", request.workload);
    request.nodes = args.get_int("nodes", request.nodes);
    request.gear = args.get_int("gear", request.gear);
    request.rep = args.get_int("rep", request.rep);
    request.repeat = args.get_int("repeat", request.repeat);
    request.topology = args.get("topology", request.topology);
    line = serve::render_request(request);
  }
  const std::string response_line = client.request(line);
  if (args.has("raw")) {
    std::cout << response_line << '\n';
    return 0;
  }

  const json::Value response = json::parse(response_line);
  const json::Object& obj = response.as_object();
  const std::string status = json::field(obj, "status").as_string();
  if (status == "rejected") {
    // Deterministic backpressure, not an error: exit 3 so callers can
    // distinguish "retry later" from a failed query.
    std::cerr << "gearsim query: rejected, retry after "
              << json::field(obj, "retry_after_ms").as_int() << " ms\n";
    return 3;
  }
  if (status == "error") {
    std::cerr << "gearsim query: " << json::field(obj, "error").as_string()
              << '\n';
    return 1;
  }

  const std::string type = json::field(obj, "type").as_string();
  if (type == "run") {
    print_run(serve::results_from_response(response).at(0));
  } else if (type == "sweep") {
    const cluster::ClusterConfig config =
        cluster_by_name(json::field(obj, "cluster").as_string());
    const int repeat = json::field(obj, "repeat").as_int();
    std::vector<std::optional<cluster::RunResult>> runs;
    for (auto& r : serve::results_from_response(response)) {
      runs.emplace_back(std::move(r));
    }
    const TextTable table = sweep_table(config, repeat, runs);
    std::cout << (args.has("csv") ? table.to_csv() : table.to_string());
  } else if (type == "race") {
    std::cout << policy_table(serve::evaluation_from_response(response));
  } else {
    // stats / shutdown acknowledgements are already canonical JSON.
    std::cout << response_line << '\n';
  }
  return 0;
}

int usage() {
  std::cerr <<
      "usage: gearsim <command> [options]\n"
      "  list                              available workloads\n"
      "  run    --workload W --nodes N [--gear G] [--cluster C]\n"
      "  sweep  --workload W --nodes N [--jobs J] [--cache DIR]\n"
      "         [--repeat R] [--csv] [--cluster C] [--keep-going]\n"
      "         [--retries K] [--watchdog S]\n"
      "  cache  verify|scrub|stats [--dir DIR]  result-store integrity\n"
      "  space  --workload W [--jobs J] [--cache DIR] [--csv] [--cluster C]\n"
      "  model  --workload W [--target M] [--csv]\n"
      "  trace  --workload W --nodes N [--gear G] [--out STEM]\n"
      "  advise --upm X [--max-delay F] [--cluster C]\n"
      "  faults --workload W --nodes N [--gear G] [--rate R(/node/h)]\n"
      "         [--loss P] [--interval S] [--seed K] [--horizon S]\n"
      "         [--no-restart] [--cluster C]\n"
      "  policy --workload W --nodes N [--jobs J] [--cache DIR]\n"
      "         [--svg FILE] [--cluster C]\n"
      "  sched  --script FILE [--cap W] [--nodes N] [--idle W]\n"
      "         [--discipline fifo|greedy] [--no-arbitration]\n"
      "         [--outage T:N[:R],..] [--jobs J] [--cache DIR] [--csv]\n"
      "         [--cluster C]          batch queue under a power cap\n"
      "  serve  [--socket PATH] [--cache DIR] [--shard-digits D]\n"
      "         [--shard-budget B] [--capacity N] [--preload] [--jobs J]\n"
      "         [--admit A] [--queue Q] [--retry-after-ms MS] [--retries K]\n"
      "         [--wall-profile]                what-if query daemon\n"
      "  query  [--socket PATH] [--type run|sweep|race|stats|shutdown]\n"
      "         [--workload W] [--nodes N] [--gear G] [--rep R]\n"
      "         [--repeat R] [--cluster C] [--topology SPEC] [--json LINE]\n"
      "         [--raw] [--csv]\n"
      "run/sweep/space/faults/policy/sched also take --metrics PATH (write an\n"
      "observability manifest there) and --wall-profile (include\n"
      "wall-clock profiling metrics in it); see docs/OBSERVABILITY.md\n"
      "run/sweep/space/trace/advise/faults/policy also take\n"
      "  --topology SPEC  routed network instead of the flat backplane:\n"
      "                   flat | fat-tree:<down,..>:<up,..>:<parallel,..>\n"
      "                   | torus:<d0>x<d1>x.. (options :hop_us=X\n"
      "                   :trunk_bw=Y); see docs/NETWORK.md\n"
      "  --max-nodes N    lift the cluster preset's node ceiling\n"
      "clusters: athlon (default), sun, xeon; gears are 1 (fastest) .. 6\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args) return usage();
  try {
    if (args->command == "list") return cmd_list();
    if (args->command == "run") return cmd_run(*args);
    if (args->command == "sweep") return cmd_sweep(*args);
    if (args->command == "cache") return cmd_cache(*args);
    if (args->command == "space") return cmd_space(*args);
    if (args->command == "model") return cmd_model(*args);
    if (args->command == "advise") return cmd_advise(*args);
    if (args->command == "trace") return cmd_trace(*args);
    if (args->command == "faults") return cmd_faults(*args);
    if (args->command == "policy") return cmd_policy(*args);
    if (args->command == "sched") return cmd_sched(*args);
    if (args->command == "serve") return cmd_serve(*args);
    if (args->command == "query") return cmd_query(*args);
  } catch (const std::exception& e) {
    std::cerr << "gearsim: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
