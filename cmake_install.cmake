# Install script for directory: /root/repo

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/src/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/tests/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/bench/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/examples/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/tools/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/util/libgearsim_util.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/obs/libgearsim_obs.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/sim/libgearsim_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/cpu/libgearsim_cpu.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/power/libgearsim_power.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/net/libgearsim_net.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/mpi/libgearsim_mpi.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/trace/libgearsim_trace.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/faults/libgearsim_faults.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/cluster/libgearsim_cluster.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/exec/libgearsim_exec.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/workloads/libgearsim_workloads.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/model/libgearsim_model.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/sched/libgearsim_sched.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/report/libgearsim_report.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/policy/libgearsim_policy.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/gearsim" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/gearsim")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/gearsim"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/tools/gearsim")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/gearsim" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/gearsim")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/gearsim")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/gearsim" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT)
  set(CMAKE_INSTALL_MANIFEST "install_manifest_${CMAKE_INSTALL_COMPONENT}.txt")
else()
  set(CMAKE_INSTALL_MANIFEST "install_manifest.txt")
endif()

string(REPLACE ";" "\n" CMAKE_INSTALL_MANIFEST_CONTENT
       "${CMAKE_INSTALL_MANIFEST_FILES}")
file(WRITE "/root/repo/${CMAKE_INSTALL_MANIFEST}"
     "${CMAKE_INSTALL_MANIFEST_CONTENT}")
