#!/usr/bin/env bash
# Regenerate everything: build, test, run every bench, render every figure.
#
#   scripts/run_all.sh [output-dir]      (default: ./out)
#
# Produces:
#   <out>/test_output.txt       full ctest log
#   <out>/bench_output.txt      every table the benches print
#   <out>/figures/*.svg         the paper's figures, rendered
#   <out>/bench/BENCH_*.json    one result document per bench
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${1:-$ROOT/out}"
mkdir -p "$OUT/figures" "$OUT/bench"

cmake -B "$ROOT/build" -G Ninja -S "$ROOT"
cmake --build "$ROOT/build"

ctest --test-dir "$ROOT/build" 2>&1 | tee "$OUT/test_output.txt"

: > "$OUT/bench_output.txt"
# Every bench speaks the bench/harness CLI, so one invocation fits all.
for b in "$ROOT"/build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a "$OUT/bench_output.txt"
  "$b" --svg "$OUT/figures" --json "$OUT/bench" | tee -a "$OUT/bench_output.txt"
  echo | tee -a "$OUT/bench_output.txt"
done

"$ROOT/build/tools/bench_compare" check \
  --baselines "$ROOT/bench/baselines" --results "$OUT/bench" \
  | tee -a "$OUT/bench_output.txt"

echo "done: $OUT"
