#!/usr/bin/env bash
# Regenerate everything: build, test, run every bench, render every figure.
#
#   scripts/run_all.sh [output-dir]      (default: ./out)
#
# Produces:
#   <out>/test_output.txt       full ctest log
#   <out>/bench_output.txt      every table the benches print
#   <out>/figures/*.svg         the paper's figures, rendered
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${1:-$ROOT/out}"
mkdir -p "$OUT/figures"

cmake -B "$ROOT/build" -G Ninja -S "$ROOT"
cmake --build "$ROOT/build"

ctest --test-dir "$ROOT/build" 2>&1 | tee "$OUT/test_output.txt"

: > "$OUT/bench_output.txt"
for b in "$ROOT"/build/bench/*; do
  [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a "$OUT/bench_output.txt"
  case "$(basename "$b")" in
    fig1_single_node|fig2_multinode|fig3_jacobi|fig4_synthetic|fig5_model_scaling)
      "$b" --svg "$OUT/figures" | tee -a "$OUT/bench_output.txt" ;;
    *)
      "$b" | tee -a "$OUT/bench_output.txt" ;;
  esac
  echo | tee -a "$OUT/bench_output.txt"
done

echo "done: $OUT"
