// Closed-form energy-time curves from counter characterization alone.
//
// The punchline of the paper's Table 1 is that UPM — micro-ops per L2
// miss, a ratio of two hardware counters — predicts the energy-time
// tradeoff.  This header operationalizes that: given a program's UPM (and
// optionally its MLP overlap) plus its fastest-gear runtime, compute the
// whole single-node curve analytically from the CPU and power models —
// no simulation, no gear sweep, just the formula
//
//   T_g = T_1 (kappa f_1/f_g + 1) / (kappa + 1),    kappa = (1-ov) UPM / (upc f_1 L)
//   E_g = P(g, busy_g) T_g
//
// This is what a runtime system could do on real hardware after reading
// two performance counters: pick the right gear without ever trying the
// slow ones.
#pragma once

#include "cpu/cpu_model.hpp"
#include "cpu/power_model.hpp"
#include "model/tradeoff.hpp"

namespace gearsim::model {

/// Predicted single-node energy-time curve for a program characterized by
/// (upm, overlap) that runs `t1` at the fastest gear.
Curve analytic_single_node_curve(const cpu::CpuModel& cpu_model,
                                 const cpu::PowerModel& power_model,
                                 double upm, Seconds t1, double overlap = 0.0);

/// The slowest gear whose predicted slowdown stays within `max_delay`
/// (fractional, e.g. 0.05 = 5%), i.e. the paper's "use a lower gear as a
/// safeguard" advice made precise.  Returns the 0-based gear index.
std::size_t advise_gear_for_delay(const cpu::CpuModel& cpu_model, double upm,
                                  double max_delay, double overlap = 0.0);

/// Predicted energy savings (negative fraction) of `gear_index` vs the
/// fastest gear for a (upm, overlap) program.
double predicted_energy_delta(const cpu::CpuModel& cpu_model,
                              const cpu::PowerModel& power_model, double upm,
                              std::size_t gear_index, double overlap = 0.0);

}  // namespace gearsim::model
