#include "model/tradeoff.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gearsim::model {

const EtPoint& Curve::fastest() const {
  GEARSIM_REQUIRE(!points.empty(), "empty curve");
  return *std::min_element(points.begin(), points.end(),
                           [](const EtPoint& a, const EtPoint& b) {
                             return a.time < b.time;
                           });
}

const EtPoint& Curve::at_gear(int gear_label) const {
  const auto it = std::find_if(points.begin(), points.end(),
                               [gear_label](const EtPoint& p) {
                                 return p.gear_label == gear_label;
                               });
  GEARSIM_REQUIRE(it != points.end(), "no such gear on this curve");
  return *it;
}

Curve curve_from_runs(const std::vector<cluster::RunResult>& runs) {
  GEARSIM_REQUIRE(!runs.empty(), "no runs");
  Curve curve;
  curve.nodes = runs.front().nodes;
  for (const auto& r : runs) {
    GEARSIM_REQUIRE(r.nodes == curve.nodes, "mixed node counts in one curve");
    curve.points.push_back(EtPoint{r.gear_label, r.wall, r.energy});
  }
  std::sort(curve.points.begin(), curve.points.end(),
            [](const EtPoint& a, const EtPoint& b) {
              return a.gear_label < b.gear_label;
            });
  return curve;
}

double slope_between(const EtPoint& a, const EtPoint& b) {
  const double dt = (b.time - a.time).value();
  GEARSIM_REQUIRE(std::abs(dt) > 1e-12, "slope undefined for equal times");
  return (b.energy - a.energy).value() / dt;
}

std::vector<RelativePoint> relative_to_fastest(const Curve& curve) {
  GEARSIM_REQUIRE(!curve.points.empty(), "empty curve");
  const EtPoint& base = curve.points.front();
  std::vector<RelativePoint> out;
  out.reserve(curve.points.size());
  for (const EtPoint& p : curve.points) {
    out.push_back(RelativePoint{p.gear_label, p.time / base.time - 1.0,
                                p.energy / base.energy - 1.0});
  }
  return out;
}

std::size_t min_energy_index(const Curve& curve) {
  GEARSIM_REQUIRE(!curve.points.empty(), "empty curve");
  return static_cast<std::size_t>(
      std::min_element(curve.points.begin(), curve.points.end(),
                       [](const EtPoint& a, const EtPoint& b) {
                         return a.energy < b.energy;
                       }) -
      curve.points.begin());
}

std::vector<std::size_t> pareto_frontier(const Curve& curve) {
  GEARSIM_REQUIRE(!curve.points.empty(), "empty curve");
  std::vector<std::size_t> order(curve.points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (curve.points[a].time != curve.points[b].time) {
      return curve.points[a].time < curve.points[b].time;
    }
    return curve.points[a].energy < curve.points[b].energy;
  });
  std::vector<std::size_t> frontier;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t idx : order) {
    const double e = curve.points[idx].energy.value();
    if (e < best_energy) {
      frontier.push_back(idx);
      best_energy = e;
    }
  }
  return frontier;
}

std::string to_string(SpeedupCase c) {
  switch (c) {
    case SpeedupCase::kPoorSpeedup: return "case 1 (poor speedup)";
    case SpeedupCase::kPerfectOrSuper: return "case 2 (perfect/superlinear)";
    case SpeedupCase::kGoodSpeedup: return "case 3 (good speedup)";
  }
  return "?";
}

SpeedupCase classify_transition(const Curve& smaller, const Curve& larger) {
  GEARSIM_REQUIRE(smaller.nodes < larger.nodes,
                  "transition must grow the node count");
  const EtPoint& small_fast = smaller.fastest();
  const EtPoint& large_fast = larger.fastest();
  // Case 2: the fastest gear on more nodes is at-or-below the smaller
  // cluster's fastest point in energy (and faster).
  if (large_fast.time <= small_fast.time &&
      large_fast.energy <= small_fast.energy) {
    return SpeedupCase::kPerfectOrSuper;
  }
  // Case 3: some lower gear on more nodes dominates the smaller cluster's
  // fastest point in both coordinates.
  for (const EtPoint& p : larger.points) {
    if (p.time <= small_fast.time && p.energy <= small_fast.energy) {
      return SpeedupCase::kGoodSpeedup;
    }
  }
  return SpeedupCase::kPoorSpeedup;
}

std::optional<EtPoint> best_under_power_cap(const Curve& curve,
                                            Watts power_cap) {
  std::optional<EtPoint> best;
  for (const EtPoint& p : curve.points) {
    const Watts mean_power = p.energy / p.time;
    if (mean_power <= power_cap && (!best || p.time < best->time)) best = p;
  }
  return best;
}

std::optional<EtPoint> best_under_energy_budget(const Curve& curve,
                                                Joules energy_budget) {
  std::optional<EtPoint> best;
  for (const EtPoint& p : curve.points) {
    if (p.energy <= energy_budget && (!best || p.time < best->time)) best = p;
  }
  return best;
}

double upm_slope_concordance(const std::vector<TradeoffSummary>& rows) {
  GEARSIM_REQUIRE(rows.size() >= 2, "need at least two rows");
  std::size_t concordant = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = i + 1; j < rows.size(); ++j) {
      ++total;
      const bool upm_higher = rows[i].upm > rows[j].upm;
      const bool slope_higher = rows[i].slope_1_2 > rows[j].slope_1_2;
      if (upm_higher == slope_higher) ++concordant;
    }
  }
  return static_cast<double>(concordant) / static_cast<double>(total);
}

}  // namespace gearsim::model
