file(REMOVE_RECURSE
  "libgearsim_model.a"
)
