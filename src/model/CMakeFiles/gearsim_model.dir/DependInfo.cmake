
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/amdahl.cpp" "src/model/CMakeFiles/gearsim_model.dir/amdahl.cpp.o" "gcc" "src/model/CMakeFiles/gearsim_model.dir/amdahl.cpp.o.d"
  "/root/repo/src/model/analytic.cpp" "src/model/CMakeFiles/gearsim_model.dir/analytic.cpp.o" "gcc" "src/model/CMakeFiles/gearsim_model.dir/analytic.cpp.o.d"
  "/root/repo/src/model/comm_model.cpp" "src/model/CMakeFiles/gearsim_model.dir/comm_model.cpp.o" "gcc" "src/model/CMakeFiles/gearsim_model.dir/comm_model.cpp.o.d"
  "/root/repo/src/model/gear_data.cpp" "src/model/CMakeFiles/gearsim_model.dir/gear_data.cpp.o" "gcc" "src/model/CMakeFiles/gearsim_model.dir/gear_data.cpp.o.d"
  "/root/repo/src/model/pipeline.cpp" "src/model/CMakeFiles/gearsim_model.dir/pipeline.cpp.o" "gcc" "src/model/CMakeFiles/gearsim_model.dir/pipeline.cpp.o.d"
  "/root/repo/src/model/predictor.cpp" "src/model/CMakeFiles/gearsim_model.dir/predictor.cpp.o" "gcc" "src/model/CMakeFiles/gearsim_model.dir/predictor.cpp.o.d"
  "/root/repo/src/model/tradeoff.cpp" "src/model/CMakeFiles/gearsim_model.dir/tradeoff.cpp.o" "gcc" "src/model/CMakeFiles/gearsim_model.dir/tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/gearsim_util.dir/DependInfo.cmake"
  "/root/repo/src/cluster/CMakeFiles/gearsim_cluster.dir/DependInfo.cmake"
  "/root/repo/src/cpu/CMakeFiles/gearsim_cpu.dir/DependInfo.cmake"
  "/root/repo/src/faults/CMakeFiles/gearsim_faults.dir/DependInfo.cmake"
  "/root/repo/src/power/CMakeFiles/gearsim_power.dir/DependInfo.cmake"
  "/root/repo/src/trace/CMakeFiles/gearsim_trace.dir/DependInfo.cmake"
  "/root/repo/src/mpi/CMakeFiles/gearsim_mpi.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/gearsim_sim.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/gearsim_net.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/gearsim_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
