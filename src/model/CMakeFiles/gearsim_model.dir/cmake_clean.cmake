file(REMOVE_RECURSE
  "CMakeFiles/gearsim_model.dir/amdahl.cpp.o"
  "CMakeFiles/gearsim_model.dir/amdahl.cpp.o.d"
  "CMakeFiles/gearsim_model.dir/analytic.cpp.o"
  "CMakeFiles/gearsim_model.dir/analytic.cpp.o.d"
  "CMakeFiles/gearsim_model.dir/comm_model.cpp.o"
  "CMakeFiles/gearsim_model.dir/comm_model.cpp.o.d"
  "CMakeFiles/gearsim_model.dir/gear_data.cpp.o"
  "CMakeFiles/gearsim_model.dir/gear_data.cpp.o.d"
  "CMakeFiles/gearsim_model.dir/pipeline.cpp.o"
  "CMakeFiles/gearsim_model.dir/pipeline.cpp.o.d"
  "CMakeFiles/gearsim_model.dir/predictor.cpp.o"
  "CMakeFiles/gearsim_model.dir/predictor.cpp.o.d"
  "CMakeFiles/gearsim_model.dir/tradeoff.cpp.o"
  "CMakeFiles/gearsim_model.dir/tradeoff.cpp.o.d"
  "libgearsim_model.a"
  "libgearsim_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
