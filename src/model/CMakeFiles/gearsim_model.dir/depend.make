# Empty dependencies file for gearsim_model.
# This may be replaced when dependencies are built.
