#include "model/predictor.hpp"

#include "util/assert.hpp"

namespace gearsim::model {

namespace {
void check(const TimeDecomposition& t, const GearPoint& gear) {
  GEARSIM_REQUIRE(t.active.value() >= 0.0 && t.idle.value() >= 0.0,
                  "negative time decomposition");
  GEARSIM_REQUIRE(t.nodes >= 1, "node count must be positive");
  GEARSIM_REQUIRE(gear.slowdown >= 1.0, "S_g is a multiplier >= 1");
}
}  // namespace

Prediction predict_naive(const TimeDecomposition& t, const GearPoint& gear) {
  check(t, gear);
  Prediction p;
  p.time = gear.slowdown * t.active + t.idle;
  p.energy = static_cast<double>(t.nodes) *
             (gear.active_power * (gear.slowdown * t.active) +
              gear.idle_power * t.idle);
  return p;
}

Prediction predict_refined(const TimeDecomposition& t, const GearPoint& gear) {
  check(t, gear);
  GEARSIM_REQUIRE(t.critical.value() >= -1e-9 && t.reducible.value() >= -1e-9,
                  "negative critical/reducible time");
  GEARSIM_REQUIRE(
      near(t.critical + t.reducible, t.active, 1e-6 * (t.active.value() + 1.0)),
      "critical + reducible must equal active");
  const double sg = gear.slowdown;
  const Seconds stretched_active = sg * (t.critical + t.reducible);
  Prediction p;
  if ((t.idle + t.reducible).value() <= (sg * t.reducible).value()) {
    // Slack exhausted: the slowed reducible work consumed all idle time.
    p.time = stretched_active;
    p.energy =
        static_cast<double>(t.nodes) * (gear.active_power * stretched_active);
  } else {
    const Seconds remaining_idle = t.idle + t.reducible - sg * t.reducible;
    p.time = stretched_active + remaining_idle;
    p.energy = static_cast<double>(t.nodes) *
               (gear.active_power * stretched_active +
                gear.idle_power * remaining_idle);
  }
  return p;
}

}  // namespace gearsim::model
