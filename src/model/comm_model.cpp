#include "model/comm_model.hpp"

#include "util/assert.hpp"

namespace gearsim::model {

namespace {
void strip_single_node(std::span<const double> nodes,
                       std::span<const Seconds> idle, std::vector<double>& n_out,
                       std::vector<double>& t_out) {
  GEARSIM_REQUIRE(nodes.size() == idle.size(), "size mismatch");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] <= 1.0) continue;
    n_out.push_back(nodes[i]);
    t_out.push_back(idle[i].value());
  }
}
}  // namespace

CommFit classify_communication(std::span<const double> nodes,
                               std::span<const Seconds> idle,
                               double parsimony) {
  std::vector<double> n;
  std::vector<double> t;
  strip_single_node(nodes, idle, n, t);
  GEARSIM_REQUIRE(n.size() >= 3,
                  "communication classification needs >= 3 multi-node samples");
  CommFit fit;
  fit.ranked = classify_shape(n, t, parsimony);
  fit.best = fit.ranked.front();
  return fit;
}

CommFit fit_communication(ScalingShape shape, std::span<const double> nodes,
                          std::span<const Seconds> idle) {
  std::vector<double> n;
  std::vector<double> t;
  strip_single_node(nodes, idle, n, t);
  GEARSIM_REQUIRE(!n.empty(), "no multi-node samples");
  CommFit fit;
  fit.best = fit_shape(shape, n, t);
  fit.ranked = {fit.best};
  return fit;
}

}  // namespace gearsim::model
