// The paper's five-step methodology, end to end.
//
//  1. Gather time traces (active/idle per node count) on the primary
//     power-scalable cluster and on a larger validation cluster.
//  2. Model computation (Amdahl F_p/F_s) and classify communication into
//     a scaling shape (constant / logarithmic / linear / quadratic).
//  3. Extrapolate T^A(m) and T^I(m) to m beyond the primary cluster,
//     fitting the F_s-vs-n trend across both clusters by regression.
//  4. Measure per-gear S_g, P_g, I_g on a single power-scalable node.
//  5. Predict T_g(m) and E_g(m) with the naive or refined model.
//
// Because our substrate is a simulator, the same predictions can also be
// checked against *direct* simulation of the large cluster — a stronger
// validation than the paper could run (see validate_against_direct).
#pragma once

#include <optional>
#include <vector>

#include "cluster/experiment.hpp"
#include "model/amdahl.hpp"
#include "model/comm_model.hpp"
#include "model/gear_data.hpp"
#include "model/predictor.hpp"
#include "model/tradeoff.hpp"

namespace gearsim::model {

/// One fastest-gear measurement used by the fits.
struct ScalingSample {
  int nodes = 0;
  Seconds wall{};
  Seconds active{};     ///< T^A(n): max over ranks.
  Seconds idle{};       ///< T^I(n): wall - active.
  double reducible_fraction = 0.0;  ///< T^R / T^A on the max-active rank.
};

/// Everything the fits produced, for reporting and validation.
struct ScalingReport {
  std::vector<ScalingSample> primary;     ///< Power-scalable cluster, <= 9 nodes.
  std::vector<ScalingSample> validation;  ///< Fixed-gear cluster, <= 32 nodes.
  AmdahlFit amdahl_primary;
  AmdahlFit amdahl_validation;
  /// Per-configuration F_s families (paper's cross-cluster validation).
  std::vector<double> fs_family_primary;
  std::vector<double> fs_family_validation;
  LinearFit fs_trend;  ///< F_s as a function of node count (pooled).
  CommFit comm_primary;
  CommFit comm_validation;
  GearData gear_data;
  double reducible_fraction = 0.0;  ///< Mean over multi-node primary runs.
};

class ScalingModel {
 public:
  struct Options {
    /// Node counts to measure on each cluster (filtered by workload
    /// support and cluster size).
    std::vector<int> primary_nodes = {1, 2, 4, 8};
    std::vector<int> validation_nodes = {1, 2, 4, 8, 16, 32};
    /// Fix the communication shape a priori (the paper classifies BT, EP,
    /// MG, SP as logarithmic, CG quadratic, LU linear from source
    /// inspection and the literature); nullopt = choose by best fit.
    std::optional<ScalingShape> comm_shape;
    /// Use the refined (critical/reducible) model; false = naive.
    bool refined = true;
  };

  /// Run the measurement protocol and build the fits.
  static ScalingModel build(cluster::ExperimentRunner& primary,
                            cluster::ExperimentRunner& validation,
                            const cluster::Workload& workload,
                            const Options& options);

  /// Predicted T^A(m)/T^I(m)/T^C(m)/T^R(m) at the fastest gear.
  [[nodiscard]] TimeDecomposition decompose(int m) const;

  /// Step-5 prediction at (m nodes, gear).
  [[nodiscard]] Prediction predict(int m, std::size_t gear_index) const;

  /// Full predicted energy-time curve on m nodes.
  [[nodiscard]] Curve predicted_curve(int m) const;

  [[nodiscard]] const ScalingReport& report() const { return report_; }
  [[nodiscard]] bool refined() const { return refined_; }

 private:
  ScalingReport report_;
  bool refined_ = true;
};

/// Model-vs-direct-simulation error at one (m, gear) point.
struct ValidationPoint {
  int nodes = 0;
  int gear_label = 0;
  Prediction predicted;
  Seconds actual_time{};
  Joules actual_energy{};
  double time_error = 0.0;    ///< predicted/actual - 1.
  double energy_error = 0.0;
};

/// Directly simulate (m, gear) points on `runner` and compare with the
/// model's predictions.
std::vector<ValidationPoint> validate_against_direct(
    const ScalingModel& model, cluster::ExperimentRunner& runner,
    const cluster::Workload& workload, const std::vector<int>& node_counts);

}  // namespace gearsim::model
