// Step 4 of the paper's methodology: per-gear data from a single
// power-scalable node.
//
// For each application and each gear g:
//  * S_g — slowdown of the sequential run, expressed here as the
//    multiplier T_g(1)/T_1(1) >= 1 (the paper quotes the fractional
//    increase; the multiplier is what its equations consume);
//  * P_g — average system power while computing (wall-outlet measurement
//    of the 1-node run);
//  * I_g — system power of an otherwise idle node at gear g.
#pragma once

#include <vector>

#include "cluster/experiment.hpp"

namespace gearsim::model {

struct GearPoint {
  int gear_label = 0;
  double slowdown = 1.0;  ///< S_g as a multiplier (1.0 at the top gear).
  Watts active_power{};   ///< P_g.
  Watts idle_power{};     ///< I_g.
};

struct GearData {
  std::vector<GearPoint> gears;  ///< Fastest first, one per cluster gear.

  [[nodiscard]] const GearPoint& at(std::size_t gear_index) const;
  [[nodiscard]] std::size_t size() const { return gears.size(); }
};

/// Run the paper's single-node measurement protocol: execute `workload`
/// on one node at every gear, measuring wall time and mean active power;
/// read I_g from the power model (the paper measures a quiescent system).
GearData measure_gear_data(cluster::ExperimentRunner& runner,
                           const cluster::Workload& workload);

}  // namespace gearsim::model
