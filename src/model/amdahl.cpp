#include "model/amdahl.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace gearsim::model {

AmdahlFit fit_amdahl(std::span<const double> nodes,
                     std::span<const Seconds> active) {
  GEARSIM_REQUIRE(nodes.size() == active.size(), "size mismatch");
  GEARSIM_REQUIRE(nodes.size() >= 2, "need at least two node counts");
  std::vector<double> inv_n(nodes.size());
  std::vector<double> t(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    GEARSIM_REQUIRE(nodes[i] >= 1.0, "node count must be >= 1");
    inv_n[i] = 1.0 / nodes[i];
    t[i] = active[i].value();
  }
  // T^A(n) = T1*Fs + T1*Fp * (1/n): intercept = T1*Fs, slope = T1*Fp.
  const LinearFit lf = fit_linear(inv_n, t);
  AmdahlFit fit;
  const double t1 = lf.intercept + lf.slope;
  GEARSIM_ENSURE(t1 > 0.0, "degenerate Amdahl fit (non-positive T^A(1))");
  fit.t1 = Seconds(t1);
  fit.serial_fraction = std::clamp(lf.intercept / t1, 0.0, 0.999);
  fit.r_squared = lf.r_squared;
  return fit;
}

std::vector<double> per_config_serial_fractions(
    Seconds t1, std::span<const double> nodes,
    std::span<const Seconds> active) {
  GEARSIM_REQUIRE(nodes.size() == active.size(), "size mismatch");
  GEARSIM_REQUIRE(t1.value() > 0.0, "T^A(1) must be positive");
  std::vector<double> out;
  out.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double n = nodes[i];
    if (n <= 1.0) continue;  // F_s is unidentifiable from the 1-node run.
    // T^A(n)/T^A(1) = (1-Fs)/n + Fs  =>  Fs = (ratio - 1/n) / (1 - 1/n).
    const double ratio = active[i] / t1;
    const double fs = (ratio - 1.0 / n) / (1.0 - 1.0 / n);
    out.push_back(std::clamp(fs, 0.0, 0.999));
  }
  return out;
}

LinearFit fit_serial_fraction_trend(std::span<const double> nodes,
                                    std::span<const double> serial_fractions) {
  GEARSIM_REQUIRE(nodes.size() == serial_fractions.size(), "size mismatch");
  if (nodes.size() == 1) {
    // Single sample: constant trend.
    LinearFit lf;
    lf.intercept = serial_fractions[0];
    lf.slope = 0.0;
    lf.r_squared = 1.0;
    return lf;
  }
  return fit_linear(nodes, serial_fractions);
}

}  // namespace gearsim::model
