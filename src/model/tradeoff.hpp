// Energy-time curve analytics: the vocabulary of the paper's figures.
//
// A Curve is one node-count's gear sweep, ordered fastest gear first —
// one of the lines in Figures 1-5.  This header provides the paper's
// derived quantities: the (E2-E1)/(T2-T1) slopes of Table 1, the UPM
// predictor, the case-1/2/3 classification of node-count transitions, the
// Pareto frontier, and power/energy-budget queries for the "cluster under
// a heat limit" scenario the paper motivates.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "cluster/experiment.hpp"
#include "util/units.hpp"

namespace gearsim::model {

struct EtPoint {
  int gear_label = 0;
  Seconds time{};
  Joules energy{};
};

/// One energy-time curve: a full gear sweep at a fixed node count,
/// fastest gear first.
struct Curve {
  int nodes = 0;
  std::vector<EtPoint> points;

  [[nodiscard]] const EtPoint& fastest() const;
  [[nodiscard]] const EtPoint& at_gear(int gear_label) const;
};

/// Build a curve from a gear sweep's run results.
Curve curve_from_runs(const std::vector<cluster::RunResult>& runs);

/// The paper's Table-1 slope between two adjacent gear points:
/// (E_b - E_a) / (T_b - T_a), in joules per second.  Large negative =
/// near-vertical = strong energy savings per unit delay.
double slope_between(const EtPoint& a, const EtPoint& b);

/// Relative deltas versus the curve's fastest point: (value/fastest - 1).
struct RelativePoint {
  int gear_label = 0;
  double time_delta = 0.0;    ///< Fractional slowdown vs gear 1.
  double energy_delta = 0.0;  ///< Fractional energy change vs gear 1.
};
std::vector<RelativePoint> relative_to_fastest(const Curve& curve);

/// Index of the minimum-energy gear point (Figure 5's headline metric).
std::size_t min_energy_index(const Curve& curve);

/// Indices of the Pareto-optimal points (no other point is faster *and*
/// cheaper), sorted by time.
std::vector<std::size_t> pareto_frontier(const Curve& curve);

/// The paper's three speedup cases when doubling node count (Section 3.2).
enum class SpeedupCase {
  kPoorSpeedup,        ///< Case 1: the larger curve lies entirely above.
  kPerfectOrSuper,     ///< Case 2: larger fastest point dominates outright.
  kGoodSpeedup,        ///< Case 3: some slower gear on more nodes dominates
                       ///< the fastest gear on fewer nodes.
};
[[nodiscard]] std::string to_string(SpeedupCase c);

/// Classify the transition from `smaller` (P nodes) to `larger` (2P).
/// Follows the paper's geometry: case 2 if the larger cluster's fastest
/// point uses no more energy than the smaller's fastest point; case 3 if
/// any gear on the larger cluster dominates (<= time and <= energy) the
/// smaller cluster's fastest point; case 1 otherwise.
SpeedupCase classify_transition(const Curve& smaller, const Curve& larger);

/// Fastest point whose whole-run average power fits under `power_cap`
/// (the paper's heat-dissipation limit: a horizontal line on the plot).
std::optional<EtPoint> best_under_power_cap(const Curve& curve,
                                            Watts power_cap);

/// Fastest point whose total energy fits under `energy_budget`.
std::optional<EtPoint> best_under_energy_budget(const Curve& curve,
                                                Joules energy_budget);

/// Table-1 row: UPM plus the first two adjacent-gear slopes.
struct TradeoffSummary {
  std::string name;
  double upm = 0.0;
  double slope_1_2 = 0.0;
  double slope_2_3 = 0.0;
};

/// Spearman-style concordance used to verify "memory pressure predicts
/// the energy-time tradeoff": fraction of pairs where higher UPM implies
/// an algebraically larger (less negative) slope.  1.0 = perfectly sorted.
double upm_slope_concordance(const std::vector<TradeoffSummary>& rows);

}  // namespace gearsim::model
