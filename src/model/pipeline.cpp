#include "model/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace gearsim::model {

namespace {

/// Step 1: fastest-gear runs over the requested node counts.
std::vector<ScalingSample> gather_samples(cluster::ExperimentRunner& runner,
                                          const cluster::Workload& workload,
                                          const std::vector<int>& nodes) {
  std::vector<ScalingSample> samples;
  for (int n : nodes) {
    if (n < 1 || n > runner.config().max_nodes) continue;
    if (!workload.supports(n)) continue;
    const cluster::RunResult r = runner.run(workload, n, /*gear_index=*/0);
    ScalingSample s;
    s.nodes = n;
    s.wall = r.wall;
    s.active = r.breakdown.active_max;
    s.idle = r.breakdown.idle_derived;
    s.reducible_fraction =
        r.breakdown.active_max.value() > 0.0
            ? r.breakdown.reducible / r.breakdown.active_max
            : 0.0;
    samples.push_back(s);
  }
  GEARSIM_REQUIRE(!samples.empty(), "no valid node counts for this workload");
  return samples;
}

AmdahlFit fit_samples(const std::vector<ScalingSample>& samples) {
  std::vector<double> n;
  std::vector<Seconds> a;
  for (const auto& s : samples) {
    n.push_back(static_cast<double>(s.nodes));
    a.push_back(s.active);
  }
  return fit_amdahl(n, a);
}

std::vector<double> fs_family(const AmdahlFit& fit,
                              const std::vector<ScalingSample>& samples) {
  std::vector<double> n;
  std::vector<Seconds> a;
  for (const auto& s : samples) {
    n.push_back(static_cast<double>(s.nodes));
    a.push_back(s.active);
  }
  return per_config_serial_fractions(fit.t1, n, a);
}

CommFit fit_comm(const std::vector<ScalingSample>& samples,
                 std::optional<ScalingShape> shape) {
  std::vector<double> n;
  std::vector<Seconds> idle;
  for (const auto& s : samples) {
    n.push_back(static_cast<double>(s.nodes));
    idle.push_back(s.idle);
  }
  if (shape) return fit_communication(*shape, n, idle);
  return classify_communication(n, idle);
}

}  // namespace

ScalingModel ScalingModel::build(cluster::ExperimentRunner& primary,
                                 cluster::ExperimentRunner& validation,
                                 const cluster::Workload& workload,
                                 const Options& options) {
  ScalingModel model;
  model.refined_ = options.refined;
  ScalingReport& rep = model.report_;

  // Step 1: traces on both clusters at the fastest gear.
  rep.primary = gather_samples(primary, workload, options.primary_nodes);
  rep.validation =
      gather_samples(validation, workload, options.validation_nodes);

  // Step 2a: Amdahl fits and per-configuration F_s families.
  rep.amdahl_primary = fit_samples(rep.primary);
  rep.amdahl_validation = fit_samples(rep.validation);
  rep.fs_family_primary = fs_family(rep.amdahl_primary, rep.primary);
  rep.fs_family_validation = fs_family(rep.amdahl_validation, rep.validation);

  // Step 3 (computation): regression of F_s against node count, pooling
  // both clusters — this is how the paper extrapolates parallelism it
  // cannot measure on the small power-scalable machine.
  {
    std::vector<double> n;
    std::vector<double> fs;
    std::size_t k = 0;
    for (const auto& s : rep.primary) {
      if (s.nodes > 1) {
        n.push_back(static_cast<double>(s.nodes));
        fs.push_back(rep.fs_family_primary[k++]);
      }
    }
    k = 0;
    for (const auto& s : rep.validation) {
      if (s.nodes > 1) {
        n.push_back(static_cast<double>(s.nodes));
        fs.push_back(rep.fs_family_validation[k++]);
      }
    }
    rep.fs_trend = fit_serial_fraction_trend(n, fs);
  }

  // Step 2b/3 (communication): shape + regression on the primary cluster;
  // the validation cluster's fit is kept for the cross-cluster check.
  // The square-grid codes (BT/SP) have only two multi-node configurations
  // on a 10-node machine — too few to classify — which is exactly why the
  // paper leans on source inspection and the larger cluster: with no
  // explicit shape we borrow the classification from the validation
  // cluster's richer sample before regressing on the primary data.
  const auto multi_node = [](const std::vector<ScalingSample>& v) {
    return std::count_if(v.begin(), v.end(),
                         [](const ScalingSample& s) { return s.nodes > 1; });
  };
  const bool validation_classifiable = multi_node(rep.validation) >= 3;
  std::optional<ScalingShape> primary_shape = options.comm_shape;
  if (!primary_shape && multi_node(rep.primary) < 3) {
    GEARSIM_REQUIRE(validation_classifiable,
                    "too few multi-node configurations to classify "
                    "communication on either cluster; pass comm_shape");
    primary_shape = fit_comm(rep.validation, std::nullopt).shape();
  }
  rep.comm_primary = fit_comm(rep.primary, primary_shape);
  rep.comm_validation =
      validation_classifiable
          ? fit_comm(rep.validation, std::nullopt)
          : fit_comm(rep.validation, rep.comm_primary.shape());

  // Step 4: per-gear data from a single power-scalable node.
  rep.gear_data = measure_gear_data(primary, workload);

  // Refined-model input: mean reducible fraction over multi-node runs.
  double rho = 0.0;
  int rho_count = 0;
  for (const auto& s : rep.primary) {
    if (s.nodes > 1) {
      rho += s.reducible_fraction;
      ++rho_count;
    }
  }
  rep.reducible_fraction = rho_count > 0 ? rho / rho_count : 0.0;
  return model;
}

TimeDecomposition ScalingModel::decompose(int m) const {
  GEARSIM_REQUIRE(m >= 1, "node count must be positive");
  const ScalingReport& rep = report_;
  TimeDecomposition t;
  t.nodes = m;
  // F_s extrapolated along the pooled trend, floored at zero; T^A(1) from
  // the primary cluster's own fit.
  const double fs =
      std::clamp(rep.fs_trend.at(static_cast<double>(m)), 0.0, 0.999);
  t.active =
      rep.amdahl_primary.t1 * ((1.0 - fs) / static_cast<double>(m) + fs);
  t.idle = m > 1 ? rep.comm_primary.idle_time(static_cast<double>(m))
                 : Seconds{};
  t.reducible = rep.reducible_fraction * t.active;
  t.critical = t.active - t.reducible;
  return t;
}

Prediction ScalingModel::predict(int m, std::size_t gear_index) const {
  const TimeDecomposition t = decompose(m);
  const GearPoint& gear = report_.gear_data.at(gear_index);
  return refined_ ? predict_refined(t, gear) : predict_naive(t, gear);
}

Curve ScalingModel::predicted_curve(int m) const {
  Curve curve;
  curve.nodes = m;
  for (std::size_t g = 0; g < report_.gear_data.size(); ++g) {
    const Prediction p = predict(m, g);
    curve.points.push_back(
        EtPoint{report_.gear_data.at(g).gear_label, p.time, p.energy});
  }
  return curve;
}

std::vector<ValidationPoint> validate_against_direct(
    const ScalingModel& model, cluster::ExperimentRunner& runner,
    const cluster::Workload& workload, const std::vector<int>& node_counts) {
  std::vector<ValidationPoint> out;
  for (int m : node_counts) {
    if (m < 1 || m > runner.config().max_nodes || !workload.supports(m)) {
      continue;
    }
    for (std::size_t g = 0; g < runner.num_gears(); ++g) {
      const cluster::RunResult r = runner.run(workload, m, g);
      ValidationPoint v;
      v.nodes = m;
      v.gear_label = r.gear_label;
      v.predicted = model.predict(m, g);
      v.actual_time = r.wall;
      v.actual_energy = r.energy;
      v.time_error = v.predicted.time / r.wall - 1.0;
      v.energy_error = v.predicted.energy / r.energy - 1.0;
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace gearsim::model
