// Step 2b/3 of the paper's methodology: classifying and extrapolating
// communication (idle) time.
//
// T^I(n) is classified into one of the paper's scaling shapes —
// logarithmic, linear, quadratic, or (the LU anomaly) constant — by
// fitting each shape to the measured samples and choosing the best with a
// parsimony preference, then regression supplies the coefficients used to
// predict T^I(m) for m beyond the measured cluster.
#pragma once

#include <span>
#include <vector>

#include "util/statistics.hpp"
#include "util/units.hpp"

namespace gearsim::model {

struct CommFit {
  ShapeFit best;                 ///< Winning shape + coefficients.
  std::vector<ShapeFit> ranked;  ///< All four shapes, best first.

  [[nodiscard]] ScalingShape shape() const { return best.shape; }
  /// Predicted T^I(m); clamped non-negative.
  [[nodiscard]] Seconds idle_time(double m) const {
    const double v = best.at(m);
    return Seconds(v > 0.0 ? v : 0.0);
  }
};

/// Fit the four candidate shapes to (n, T^I(n)) samples.  Node counts of 1
/// are excluded (a single rank has no communication).  Requires >= 3
/// remaining samples.
CommFit classify_communication(std::span<const double> nodes,
                               std::span<const Seconds> idle,
                               double parsimony = 0.5);

/// Force a specific shape (the paper fixes each benchmark's class from
/// source inspection and the literature before regressing).
CommFit fit_communication(ScalingShape shape, std::span<const double> nodes,
                          std::span<const Seconds> idle);

}  // namespace gearsim::model
