// Step 2a of the paper's methodology: Amdahl-law modeling of computation.
//
// From measured active times T^A(i) on i nodes, estimate the parallel and
// inherently sequential fractions F_p and F_s of the application:
//
//     T^A(i) = T^A(1) (F_p / i + F_s),   F_p = 1 - F_s.
//
// Two estimators are provided:
//  * a global least-squares fit (T^A is linear in 1/i), and
//  * the paper's per-configuration family: one F_s per measured i, then a
//    linear regression of F_s against i to extrapolate to larger clusters.
#pragma once

#include <span>
#include <vector>

#include "util/statistics.hpp"
#include "util/units.hpp"

namespace gearsim::model {

struct AmdahlFit {
  double serial_fraction = 0.0;  ///< F_s.
  Seconds t1{};                  ///< T^A(1).
  double r_squared = 0.0;

  [[nodiscard]] double parallel_fraction() const { return 1.0 - serial_fraction; }
  /// Predicted T^A(n).
  [[nodiscard]] Seconds active_time(double n) const {
    return t1 * (parallel_fraction() / n + serial_fraction);
  }
};

/// Global OLS estimator: regress T^A against 1/n.  Needs >= 2 distinct
/// node counts; clamps F_s into [0, 1).
AmdahlFit fit_amdahl(std::span<const double> nodes,
                     std::span<const Seconds> active);

/// The paper's per-configuration estimates: for each i > 1, the F_s that
/// exactly explains T^A(i) given T^A(1).  (Used for the cross-cluster
/// validation table and for the F_s-vs-n regression.)
std::vector<double> per_config_serial_fractions(
    Seconds t1, std::span<const double> nodes,
    std::span<const Seconds> active);

/// Paper Step 3: fit F_s as a linear function of the node count from the
/// per-configuration family (optionally pooling a second cluster's
/// family) and return the fit for extrapolation to m > max measured n.
LinearFit fit_serial_fraction_trend(std::span<const double> nodes,
                                    std::span<const double> serial_fractions);

}  // namespace gearsim::model
