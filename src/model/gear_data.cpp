#include "model/gear_data.hpp"

#include "cpu/power_model.hpp"
#include "util/assert.hpp"

namespace gearsim::model {

const GearPoint& GearData::at(std::size_t gear_index) const {
  GEARSIM_REQUIRE(gear_index < gears.size(), "gear index out of range");
  return gears[gear_index];
}

GearData measure_gear_data(cluster::ExperimentRunner& runner,
                           const cluster::Workload& workload) {
  GEARSIM_REQUIRE(workload.supports(1),
                  "gear characterization requires a 1-node run");
  const cpu::PowerModel power_model(runner.config().power,
                                    runner.config().gears);
  GearData data;
  // One 1-node run per gear — independent points, so the sweep fans out
  // over GEARSIM_SWEEP_JOBS workers (bit-identical to the serial loop).
  const std::vector<cluster::RunResult> runs = runner.gear_sweep(workload, 1);
  const Seconds t1 = runs.front().wall;
  for (std::size_t g = 0; g < runs.size(); ++g) {
    const cluster::RunResult& r = runs[g];
    GearPoint point;
    point.gear_label = r.gear_label;
    point.slowdown = r.wall / t1;
    point.active_power = r.mean_active_power;
    // The paper measures I_g on a quiescent system ("the same setup,
    // except this time with no application running").
    point.idle_power = power_model.idle_power(g);
    data.gears.push_back(point);
  }
  return data;
}

}  // namespace gearsim::model
