#include "model/gear_data.hpp"

#include "cpu/power_model.hpp"
#include "util/assert.hpp"

namespace gearsim::model {

const GearPoint& GearData::at(std::size_t gear_index) const {
  GEARSIM_REQUIRE(gear_index < gears.size(), "gear index out of range");
  return gears[gear_index];
}

GearData measure_gear_data(cluster::ExperimentRunner& runner,
                           const cluster::Workload& workload) {
  GEARSIM_REQUIRE(workload.supports(1),
                  "gear characterization requires a 1-node run");
  const cpu::PowerModel power_model(runner.config().power,
                                    runner.config().gears);
  GearData data;
  Seconds t1{};
  for (std::size_t g = 0; g < runner.num_gears(); ++g) {
    const cluster::RunResult r = runner.run(workload, 1, g);
    if (g == 0) t1 = r.wall;
    GearPoint point;
    point.gear_label = r.gear_label;
    point.slowdown = r.wall / t1;
    point.active_power = r.mean_active_power;
    // The paper measures I_g on a quiescent system ("the same setup,
    // except this time with no application running").
    point.idle_power = power_model.idle_power(g);
    data.gears.push_back(point);
  }
  return data;
}

}  // namespace gearsim::model
