#include "model/analytic.hpp"

#include "util/assert.hpp"

namespace gearsim::model {

Curve analytic_single_node_curve(const cpu::CpuModel& cpu_model,
                                 const cpu::PowerModel& power_model,
                                 double upm, Seconds t1, double overlap) {
  GEARSIM_REQUIRE(t1.value() > 0.0, "runtime must be positive");
  // Any miss count works: slowdown and busy fraction only depend on the
  // UPM/overlap ratio, not the absolute block size.
  const cpu::ComputeBlock block = cpu::block_from_upm(upm, 1e6, overlap);
  Curve curve;
  curve.nodes = 1;
  for (std::size_t g = 0; g < cpu_model.gears().size(); ++g) {
    const double slowdown = cpu_model.slowdown(block, g);
    const double busy = cpu_model.cpu_bound_fraction(block, g);
    const Seconds time = t1 * slowdown;
    const Joules energy = power_model.active_power(g, busy) * time;
    curve.points.push_back(
        EtPoint{cpu_model.gears().gear(g).label, time, energy});
  }
  return curve;
}

std::size_t advise_gear_for_delay(const cpu::CpuModel& cpu_model, double upm,
                                  double max_delay, double overlap) {
  GEARSIM_REQUIRE(max_delay >= 0.0, "negative delay budget");
  const cpu::ComputeBlock block = cpu::block_from_upm(upm, 1e6, overlap);
  std::size_t chosen = 0;
  for (std::size_t g = 0; g < cpu_model.gears().size(); ++g) {
    if (cpu_model.slowdown(block, g) - 1.0 <= max_delay) chosen = g;
  }
  return chosen;
}

double predicted_energy_delta(const cpu::CpuModel& cpu_model,
                              const cpu::PowerModel& power_model, double upm,
                              std::size_t gear_index, double overlap) {
  const Curve curve = analytic_single_node_curve(cpu_model, power_model, upm,
                                                 seconds(1.0), overlap);
  GEARSIM_REQUIRE(gear_index < curve.points.size(), "gear out of range");
  return curve.points[gear_index].energy / curve.points[0].energy - 1.0;
}

}  // namespace gearsim::model
