// Step 5 of the paper's methodology: predicted time and energy of a
// power-scalable cluster at every gear.
//
// Naive model (all computation on the critical path):
//
//     T_g(m) = S_g T^A(m) + T^I(m)
//     E_g(m) = m [ P_g S_g T^A(m) + I_g T^I(m) ]
//
// Refined model: T^A splits into critical work T^C and reducible work T^R
// (computation between the last send and a blocking point, which only
// consumes idle slack when slowed).  With the inflection at
// T^I + T^R <= S_g T^R:
//
//     T_g = S_g (T^C + T^R)                               if slack exhausted
//     T_g = S_g (T^C + T^R) + T^I + T^R - S_g T^R          otherwise
//
// and correspondingly for energy with P_g on the active part and I_g on
// the remaining idle part.  Powers are per-node; energies are multiplied
// by the node count m to give the cluster totals the paper plots.
#pragma once

#include "model/gear_data.hpp"
#include "util/units.hpp"

namespace gearsim::model {

struct Prediction {
  Seconds time{};
  Joules energy{};
};

/// Workload timing decomposition on m nodes (measured or extrapolated).
struct TimeDecomposition {
  Seconds active{};     ///< T^A(m).
  Seconds idle{};       ///< T^I(m).
  Seconds critical{};   ///< T^C(m); critical + reducible == active.
  Seconds reducible{};  ///< T^R(m).
  int nodes = 1;
};

/// The straightforward model of Equations (1)-(2).
Prediction predict_naive(const TimeDecomposition& t, const GearPoint& gear);

/// The refined critical/reducible model.
Prediction predict_refined(const TimeDecomposition& t, const GearPoint& gear);

}  // namespace gearsim::model
