#include "power/multimeter.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gearsim::power {

Multimeter::Multimeter(sim::Engine& engine, MultimeterConfig config,
                       std::function<Watts()> probe)
    : engine_(engine),
      config_(config),
      probe_(std::move(probe)),
      rng_(config.noise_seed) {
  GEARSIM_REQUIRE(config_.sample_rate_hz > 0.0, "sample rate must be positive");
  GEARSIM_REQUIRE(static_cast<bool>(probe_), "multimeter needs a probe");
}

void Multimeter::set_dropouts(std::vector<DropoutWindow> windows) {
  GEARSIM_REQUIRE(!running_, "cannot change dropouts while sampling");
  for (const DropoutWindow& w : windows) {
    GEARSIM_REQUIRE(w.from.value() >= 0.0 && w.until > w.from,
                    "dropout window must span positive time");
  }
  dropouts_ = std::move(windows);
}

bool Multimeter::in_dropout(Seconds t) const {
  return std::any_of(dropouts_.begin(), dropouts_.end(),
                     [t](const DropoutWindow& w) {
                       return t >= w.from && t < w.until;
                     });
}

void Multimeter::take_sample() {
  Watts p = probe_();
  if (config_.noise_stddev_watts > 0.0) {
    p = watts(std::max(0.0, p.value() +
                                rng_.normal(0.0, config_.noise_stddev_watts)));
  }
  const Seconds now = engine_.now();
  if (!samples_.empty()) {
    const auto& [t0, p0] = samples_.back();
    energy_ += watts(0.5 * (p0.value() + p.value())) * (now - t0);
  }
  samples_.emplace_back(now, p);
}

void Multimeter::schedule_next() {
  const std::uint64_t gen = generation_;
  engine_.schedule_after(seconds(1.0 / config_.sample_rate_hz), [this, gen] {
    if (!running_ || gen != generation_) return;
    // A sample inside a dropout window is lost; the trapezoid integral
    // will bridge the gap from the neighboring samples (linear
    // interpolation) and coverage() reports the hole.
    if (in_dropout(engine_.now())) {
      ++dropped_;
    } else {
      take_sample();
    }
    schedule_next();
  });
}

void Multimeter::start() {
  GEARSIM_REQUIRE(!running_, "multimeter already running");
  running_ = true;
  started_at_ = engine_.now();
  ever_ran_ = true;
  take_sample();
  schedule_next();
}

void Multimeter::stop() {
  GEARSIM_REQUIRE(running_, "multimeter is not running");
  // Close the integral at the stop instant (sensors see the level that was
  // in effect up to now).
  take_sample();
  running_ = false;
  stopped_at_ = engine_.now();
  ++generation_;
}

double Multimeter::coverage() const {
  if (dropouts_.empty() || !ever_ran_) return 1.0;
  const Seconds span = stopped_at_ - started_at_;
  if (span.value() <= 0.0) return 1.0;
  Seconds lost{};
  for (const DropoutWindow& w : dropouts_) {
    const Seconds lo = std::max(w.from, started_at_);
    const Seconds hi = std::min(w.until, stopped_at_);
    if (hi > lo) lost += hi - lo;
  }
  return std::clamp(1.0 - lost / span, 0.0, 1.0);
}

}  // namespace gearsim::power
