#include "power/multimeter.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gearsim::power {

Multimeter::Multimeter(sim::Engine& engine, MultimeterConfig config,
                       std::function<Watts()> probe)
    : engine_(engine),
      config_(config),
      probe_(std::move(probe)),
      rng_(config.noise_seed) {
  GEARSIM_REQUIRE(config_.sample_rate_hz > 0.0, "sample rate must be positive");
  GEARSIM_REQUIRE(static_cast<bool>(probe_), "multimeter needs a probe");
}

void Multimeter::take_sample() {
  Watts p = probe_();
  if (config_.noise_stddev_watts > 0.0) {
    p = watts(std::max(0.0, p.value() +
                                rng_.normal(0.0, config_.noise_stddev_watts)));
  }
  const Seconds now = engine_.now();
  if (!samples_.empty()) {
    const auto& [t0, p0] = samples_.back();
    energy_ += watts(0.5 * (p0.value() + p.value())) * (now - t0);
  }
  samples_.emplace_back(now, p);
}

void Multimeter::schedule_next() {
  const std::uint64_t gen = generation_;
  engine_.schedule_after(seconds(1.0 / config_.sample_rate_hz), [this, gen] {
    if (!running_ || gen != generation_) return;
    take_sample();
    schedule_next();
  });
}

void Multimeter::start() {
  GEARSIM_REQUIRE(!running_, "multimeter already running");
  running_ = true;
  take_sample();
  schedule_next();
}

void Multimeter::stop() {
  GEARSIM_REQUIRE(running_, "multimeter is not running");
  // Close the integral at the stop instant (sensors see the level that was
  // in effect up to now).
  take_sample();
  running_ = false;
  ++generation_;
}

}  // namespace gearsim::power
