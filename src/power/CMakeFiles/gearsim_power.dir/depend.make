# Empty dependencies file for gearsim_power.
# This may be replaced when dependencies are built.
