file(REMOVE_RECURSE
  "libgearsim_power.a"
)
