
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/energy_meter.cpp" "src/power/CMakeFiles/gearsim_power.dir/energy_meter.cpp.o" "gcc" "src/power/CMakeFiles/gearsim_power.dir/energy_meter.cpp.o.d"
  "/root/repo/src/power/multimeter.cpp" "src/power/CMakeFiles/gearsim_power.dir/multimeter.cpp.o" "gcc" "src/power/CMakeFiles/gearsim_power.dir/multimeter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/gearsim_util.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/gearsim_sim.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/gearsim_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
