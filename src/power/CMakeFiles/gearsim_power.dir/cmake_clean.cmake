file(REMOVE_RECURSE
  "CMakeFiles/gearsim_power.dir/energy_meter.cpp.o"
  "CMakeFiles/gearsim_power.dir/energy_meter.cpp.o.d"
  "CMakeFiles/gearsim_power.dir/multimeter.cpp.o"
  "CMakeFiles/gearsim_power.dir/multimeter.cpp.o.d"
  "libgearsim_power.a"
  "libgearsim_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
