#include "power/energy_meter.hpp"

namespace gearsim::power {

EnergyMeter::EnergyMeter(std::size_t num_nodes) : nodes_(num_nodes) {
  GEARSIM_REQUIRE(num_nodes > 0, "meter needs at least one node");
}

void EnergyMeter::integrate_segment(Accum& a, Seconds until) {
  if (!a.started) return;
  GEARSIM_REQUIRE(until >= a.last_time, "time went backwards in meter");
  const Seconds dt = until - a.last_time;
  const Joules e = a.last_power * dt;
  a.energy.total += e;
  if (a.last_state == NodeState::kActive) {
    a.energy.active += e;
    a.energy.active_time += dt;
  } else {
    a.energy.idle += e;
    a.energy.idle_time += dt;
  }
}

void EnergyMeter::set_power(std::size_t node, Seconds now, Watts power,
                            NodeState state) {
  GEARSIM_REQUIRE(node < nodes_.size(), "node index out of range");
  GEARSIM_REQUIRE(power.value() >= 0.0, "negative power");
  GEARSIM_REQUIRE(!finished_, "meter already finished");
  Accum& a = nodes_[node];
  integrate_segment(a, now);
  a.last_time = now;
  a.last_power = power;
  a.last_state = state;
  a.started = true;
  if (record_profile_) a.profile.push_back({now, power, state});
}

void EnergyMeter::finish(Seconds now) {
  GEARSIM_REQUIRE(!finished_, "meter already finished");
  for (auto& a : nodes_) {
    integrate_segment(a, now);
    a.last_time = now;
    if (record_profile_ && a.started) {
      a.profile.push_back({now, a.last_power, a.last_state});
    }
  }
  finished_ = true;
}

const NodeEnergy& EnergyMeter::node(std::size_t i) const {
  GEARSIM_REQUIRE(i < nodes_.size(), "node index out of range");
  return nodes_[i].energy;
}

Joules EnergyMeter::total_energy() const {
  Joules sum{};
  for (const auto& a : nodes_) sum += a.energy.total;
  return sum;
}

Joules EnergyMeter::total_active_energy() const {
  Joules sum{};
  for (const auto& a : nodes_) sum += a.energy.active;
  return sum;
}

Joules EnergyMeter::total_idle_energy() const {
  Joules sum{};
  for (const auto& a : nodes_) sum += a.energy.idle;
  return sum;
}

Watts EnergyMeter::instantaneous(std::size_t node) const {
  GEARSIM_REQUIRE(node < nodes_.size(), "node index out of range");
  return nodes_[node].last_power;
}

const std::vector<EnergyMeter::ProfilePoint>& EnergyMeter::profile(
    std::size_t node) const {
  GEARSIM_REQUIRE(record_profile_, "profile recording was not enabled");
  GEARSIM_REQUIRE(node < nodes_.size(), "node index out of range");
  return nodes_[node].profile;
}

}  // namespace gearsim::power
