// Energy accounting for a cluster of simulated nodes.
//
// Node power in the simulation is piecewise constant: it changes only when
// a rank transitions between computing (at some gear/busy-fraction) and
// blocking in MPI.  The EnergyMeter integrates exactly over those pieces,
// and additionally splits time and energy by node state — which is
// precisely the (P_g, I_g) decomposition Step 4 of the paper's methodology
// needs.
//
// The sampling Multimeter (multimeter.hpp) mimics the paper's physical
// rig — wall-outlet meters polled tens of times a second and integrated on
// a separate machine — and is validated against this exact integrator.
#pragma once

#include <cstddef>
#include <vector>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace gearsim::power {

/// What a node is doing, for energy attribution.
enum class NodeState { kActive, kIdle };

/// Per-node accumulated measurement.
struct NodeEnergy {
  Joules total{};
  Joules active{};
  Joules idle{};
  Seconds active_time{};
  Seconds idle_time{};

  [[nodiscard]] Seconds total_time() const { return active_time + idle_time; }
  /// Time-weighted mean power while active — the paper's P_g when the
  /// whole run executes at one gear.
  [[nodiscard]] Watts mean_active_power() const {
    GEARSIM_REQUIRE(active_time.value() > 0.0, "node never active");
    return active / active_time;
  }
  [[nodiscard]] Watts mean_idle_power() const {
    GEARSIM_REQUIRE(idle_time.value() > 0.0, "node never idle");
    return idle / idle_time;
  }
};

/// Exact piecewise-constant integrator over explicit power transitions.
class EnergyMeter {
 public:
  explicit EnergyMeter(std::size_t num_nodes);

  /// Report that `node` now draws `power` in `state`, effective at
  /// simulated time `now`.  Times must be non-decreasing per node.
  void set_power(std::size_t node, Seconds now, Watts power, NodeState state);

  /// Close the books at time `now` (integrate the final segment).
  void finish(Seconds now);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] const NodeEnergy& node(std::size_t i) const;
  /// Sum of per-node totals — the paper plots cumulative cluster energy.
  [[nodiscard]] Joules total_energy() const;
  [[nodiscard]] Joules total_active_energy() const;
  [[nodiscard]] Joules total_idle_energy() const;

  /// Current instantaneous draw of one node (for the sampling multimeter).
  [[nodiscard]] Watts instantaneous(std::size_t node) const;

  /// Optionally record the full (time, power) step profile per node.
  void enable_profile_recording() { record_profile_ = true; }
  struct ProfilePoint {
    Seconds time;
    Watts power;
    NodeState state;
  };
  [[nodiscard]] const std::vector<ProfilePoint>& profile(std::size_t node) const;

 private:
  struct Accum {
    NodeEnergy energy;
    Seconds last_time{};
    Watts last_power{};
    NodeState last_state = NodeState::kIdle;
    bool started = false;
    std::vector<ProfilePoint> profile;
  };
  void integrate_segment(Accum& a, Seconds until);

  std::vector<Accum> nodes_;
  bool record_profile_ = false;
  bool finished_ = false;
};

}  // namespace gearsim::power
