// Sampling multimeter: a model of the paper's measurement rig.
//
// The paper measures voltage and current at the wall outlet with precision
// multimeters, sampled "several tens of times a second" by a separate
// computer that integrates power over time.  This class reproduces that
// pipeline inside the simulation: it polls a node's instantaneous draw at
// a fixed rate (optionally with Gaussian sensor noise), and integrates the
// samples with the trapezoid rule.  Tests validate it against the exact
// EnergyMeter; benches can use either.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace gearsim::power {

struct MultimeterConfig {
  double sample_rate_hz = 40.0;  ///< "several tens of times a second".
  double noise_stddev_watts = 0.0;
  std::uint64_t noise_seed = 1;
};

class Multimeter {
 public:
  /// `probe` returns the instantaneous power of the metered node.
  Multimeter(sim::Engine& engine, MultimeterConfig config,
             std::function<Watts()> probe);

  /// Begin sampling at the current simulated time.
  void start();
  /// Stop sampling; takes a final sample at the current time so the
  /// integral covers the full interval.
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Joules energy() const { return energy_; }
  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }
  [[nodiscard]] const std::vector<std::pair<Seconds, Watts>>& samples() const {
    return samples_;
  }

 private:
  void take_sample();
  void schedule_next();

  sim::Engine& engine_;
  MultimeterConfig config_;
  std::function<Watts()> probe_;
  Rng rng_;
  bool running_ = false;
  std::uint64_t generation_ = 0;  ///< Invalidates scheduled ticks on stop().
  Joules energy_{};
  std::vector<std::pair<Seconds, Watts>> samples_;
};

}  // namespace gearsim::power
