// Sampling multimeter: a model of the paper's measurement rig.
//
// The paper measures voltage and current at the wall outlet with precision
// multimeters, sampled "several tens of times a second" by a separate
// computer that integrates power over time.  This class reproduces that
// pipeline inside the simulation: it polls a node's instantaneous draw at
// a fixed rate (optionally with Gaussian sensor noise), and integrates the
// samples with the trapezoid rule.  Tests validate it against the exact
// EnergyMeter; benches can use either.
//
// Dropout windows model a flaky rig: scheduled samples inside a window are
// lost.  The trapezoid integral then bridges the gap linearly between the
// last sample before and the first sample after — an explicit
// interpolation rather than a silent under-count — and coverage() reports
// the fraction of the metering span that was actually observed, so
// consumers can qualify the reading.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace gearsim::power {

struct MultimeterConfig {
  double sample_rate_hz = 40.0;  ///< "several tens of times a second".
  double noise_stddev_watts = 0.0;
  std::uint64_t noise_seed = 1;
};

/// One interval during which the meter loses its samples.
struct DropoutWindow {
  Seconds from{};
  Seconds until{};
};

class Multimeter {
 public:
  /// `probe` returns the instantaneous power of the metered node.
  Multimeter(sim::Engine& engine, MultimeterConfig config,
             std::function<Watts()> probe);

  /// Install dropout windows (validated: non-negative, until > from).
  /// Must be called before start().
  void set_dropouts(std::vector<DropoutWindow> windows);

  /// Begin sampling at the current simulated time.
  void start();
  /// Stop sampling; takes a final sample at the current time so the
  /// integral covers the full interval.
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Joules energy() const { return energy_; }
  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }
  [[nodiscard]] const std::vector<std::pair<Seconds, Watts>>& samples() const {
    return samples_;
  }
  /// Samples lost to dropout windows so far.
  [[nodiscard]] std::size_t dropped_samples() const { return dropped_; }
  /// Fraction of the metering span observed (1.0 with no dropouts).
  /// Meaningful after stop(); dropout windows are clipped to the span.
  [[nodiscard]] double coverage() const;

 private:
  void take_sample();
  void schedule_next();
  [[nodiscard]] bool in_dropout(Seconds t) const;

  sim::Engine& engine_;
  MultimeterConfig config_;
  std::function<Watts()> probe_;
  Rng rng_;
  bool running_ = false;
  std::uint64_t generation_ = 0;  ///< Invalidates scheduled ticks on stop().
  Joules energy_{};
  std::vector<std::pair<Seconds, Watts>> samples_;
  std::vector<DropoutWindow> dropouts_;
  std::size_t dropped_ = 0;
  Seconds started_at_{};
  Seconds stopped_at_{};
  bool ever_ran_ = false;
};

}  // namespace gearsim::power
