file(REMOVE_RECURSE
  "libgearsim_obs.a"
)
