file(REMOVE_RECURSE
  "CMakeFiles/gearsim_obs.dir/compare.cpp.o"
  "CMakeFiles/gearsim_obs.dir/compare.cpp.o.d"
  "CMakeFiles/gearsim_obs.dir/manifest.cpp.o"
  "CMakeFiles/gearsim_obs.dir/manifest.cpp.o.d"
  "CMakeFiles/gearsim_obs.dir/metrics.cpp.o"
  "CMakeFiles/gearsim_obs.dir/metrics.cpp.o.d"
  "libgearsim_obs.a"
  "libgearsim_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
