# Empty dependencies file for gearsim_obs.
# This may be replaced when dependencies are built.
