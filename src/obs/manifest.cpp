#include "obs/manifest.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/json.hpp"

namespace gearsim::obs {

namespace {

std::string info_json(
    const std::vector<std::pair<std::string, std::string>>& info) {
  // Canonical: sorted by key, duplicates rejected (two writers disagreeing
  // about one key must fail loudly, not last-write-wins silently).
  auto sorted = info;
  std::sort(sorted.begin(), sorted.end());
  std::string s = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) {
      GEARSIM_REQUIRE(sorted[i].first != sorted[i - 1].first,
                      "duplicate manifest info key: " + sorted[i].first);
      s += ',';
    }
    s += json::jstr(sorted[i].first) + ":" + json::jstr(sorted[i].second);
  }
  s += '}';
  return s;
}

}  // namespace

std::string RunManifest::deterministic_json() const {
  std::string s = "{";
  s += "\"schema\":" + json::jstr(kSchema);
  s += ",\"tool\":" + json::jstr(tool);
  s += ",\"cache_key_format\":" + std::to_string(cache_key_format);
  s += ",\"info\":" + info_json(info);
  s += ",\"metrics\":" + metrics.to_json(Domain::kSim);
  s += '}';
  return s;
}

std::string RunManifest::to_json() const {
  std::string s = "{";
  s += "\"schema\":" + json::jstr(kSchema);
  s += ",\"tool\":" + json::jstr(tool);
  s += ",\"cache_key_format\":" + std::to_string(cache_key_format);
  s += ",\"info\":" + info_json(info);
  s += ",\"metrics\":" + metrics.to_json(Domain::kSim);
  s += ",\"wall\":{\"seconds\":" + json::jnum(wall_seconds) +
       ",\"metrics\":" + metrics.to_json(Domain::kWall) + "}";
  s += '}';
  return s;
}

RunManifest RunManifest::from_json(std::string_view text) {
  const json::Value root = json::parse(text);
  const json::Object& o = root.as_object();
  GEARSIM_REQUIRE(json::field(o, "schema").as_string() == kSchema,
                  "unknown manifest schema: " +
                      json::field(o, "schema").as_string());
  RunManifest m;
  m.tool = json::field(o, "tool").as_string();
  m.cache_key_format = json::field(o, "cache_key_format").as_int();
  for (const auto& [k, v] : json::field(o, "info").as_object()) {
    m.info.emplace_back(k, v.as_string());
  }
  const json::Object& wall = json::field(o, "wall").as_object();
  m.wall_seconds = json::field(wall, "seconds").as_double();
  merge_metrics_section(json::field(o, "metrics"), Domain::kSim, m.metrics);
  merge_metrics_section(json::field(wall, "metrics"), Domain::kWall,
                        m.metrics);
  return m;
}

void write_manifest_file(const RunManifest& manifest,
                         const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path, std::ios::trunc);
  out << manifest.to_json() << '\n';
  if (!out.good()) {
    throw SimulationError("failed to write manifest: " + path);
  }
}

RunManifest read_manifest_file(const std::string& path) {
  std::ifstream in(path);
  GEARSIM_REQUIRE(in.good(), "cannot open manifest: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return RunManifest::from_json(buf.str());
}

}  // namespace gearsim::obs
