#include "obs/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/json.hpp"

namespace gearsim::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    GEARSIM_REQUIRE(edges_[i - 1] < edges_[i],
                    "histogram edges must be strictly increasing");
  }
  buckets_.assign(edges_.size() + 1, 0);
}

void Histogram::observe(double v) {
  // First bucket whose upper edge admits v; everything past the last
  // edge lands in the overflow bucket.  Values exactly on an edge belong
  // to the bucket the edge bounds (v <= edge), so bucket boundaries are
  // stable under exact re-runs.
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - edges_.begin())];
  ++count_;
  sum_ += v;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               MetricSnapshot::Kind kind,
                                               Domain domain) {
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    GEARSIM_REQUIRE(it->second.kind == kind,
                    "metric re-registered with a different kind: " +
                        std::string(name));
    GEARSIM_REQUIRE(it->second.domain == domain,
                    "metric re-registered in a different domain: " +
                        std::string(name));
    return it->second;
  }
  Entry e;
  e.kind = kind;
  e.domain = domain;
  return entries_.emplace(std::string(name), std::move(e)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name, Domain domain) {
  return entry(name, MetricSnapshot::Kind::kCounter, domain).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Gauge::Kind kind,
                              Domain domain) {
  const auto snap_kind = kind == Gauge::Kind::kMax
                             ? MetricSnapshot::Kind::kGaugeMax
                             : MetricSnapshot::Kind::kGaugeLast;
  Entry& e = entry(name, snap_kind, domain);
  e.gauge.kind_ = kind;
  return e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> edges,
                                      Domain domain) {
  Entry& e = entry(name, MetricSnapshot::Kind::kHistogram, domain);
  if (e.histogram.edges_.empty() && e.histogram.count_ == 0) {
    e.histogram = Histogram(std::move(edges));
  } else {
    GEARSIM_REQUIRE(e.histogram.edges_ == edges,
                    "histogram re-registered with different edges: " +
                        std::string(name));
  }
  return e.histogram;
}

Counter* MetricsRegistry::wall_counter(std::string_view name) {
  return wall_profiling_ ? &counter(name, Domain::kWall) : nullptr;
}

Gauge* MetricsRegistry::wall_gauge(std::string_view name, Gauge::Kind kind) {
  return wall_profiling_ ? &gauge(name, kind, Domain::kWall) : nullptr;
}

Histogram* MetricsRegistry::wall_histogram(std::string_view name,
                                           std::vector<double> edges) {
  return wall_profiling_ ? &histogram(name, std::move(edges), Domain::kWall)
                         : nullptr;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, e] : entries_) {
    MetricSnapshot m;
    m.kind = e.kind;
    m.domain = e.domain;
    switch (e.kind) {
      case MetricSnapshot::Kind::kCounter:
        m.count = e.counter.value();
        break;
      case MetricSnapshot::Kind::kGaugeMax:
      case MetricSnapshot::Kind::kGaugeLast:
        m.value = e.gauge.value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        m.count = e.histogram.count();
        m.value = e.histogram.sum();
        m.edges = e.histogram.edges();
        m.buckets = e.histogram.buckets();
        break;
    }
    snap.metrics.emplace(name, std::move(m));
  }
  return snap;
}

void MetricsRegistry::merge(const MetricsSnapshot& other) {
  for (const auto& [name, m] : other.metrics) {
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        counter(name, m.domain).add(m.count);
        break;
      case MetricSnapshot::Kind::kGaugeMax:
        gauge(name, Gauge::Kind::kMax, m.domain).set(m.value);
        break;
      case MetricSnapshot::Kind::kGaugeLast:
        gauge(name, Gauge::Kind::kLast, m.domain).set(m.value);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        Histogram& h = histogram(name, m.edges, m.domain);
        GEARSIM_REQUIRE(h.buckets_.size() == m.buckets.size(),
                        "histogram merge shape mismatch: " + name);
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          h.buckets_[i] += m.buckets[i];
        }
        h.count_ += m.count;
        h.sum_ += m.value;
        break;
      }
    }
  }
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, m] : other.metrics) {
    const auto it = metrics.find(name);
    if (it == metrics.end()) {
      metrics.emplace(name, m);
      continue;
    }
    MetricSnapshot& mine = it->second;
    GEARSIM_REQUIRE(mine.kind == m.kind,
                    "metric merge kind mismatch: " + name);
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        mine.count += m.count;
        break;
      case MetricSnapshot::Kind::kGaugeMax:
        mine.value = std::max(mine.value, m.value);
        break;
      case MetricSnapshot::Kind::kGaugeLast:
        mine.value = m.value;
        break;
      case MetricSnapshot::Kind::kHistogram:
        GEARSIM_REQUIRE(mine.edges == m.edges && mine.buckets.size() ==
                                                     m.buckets.size(),
                        "histogram merge shape mismatch: " + name);
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          mine.buckets[i] += m.buckets[i];
        }
        mine.count += m.count;
        mine.value += m.value;
        break;
    }
  }
}

namespace {

const char* kind_name(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter: return "counter";
    case MetricSnapshot::Kind::kGaugeMax: return "gauge_max";
    case MetricSnapshot::Kind::kGaugeLast: return "gauge_last";
    case MetricSnapshot::Kind::kHistogram: return "histogram";
  }
  return "?";
}

MetricSnapshot::Kind kind_from_name(const std::string& name) {
  if (name == "counter") return MetricSnapshot::Kind::kCounter;
  if (name == "gauge_max") return MetricSnapshot::Kind::kGaugeMax;
  if (name == "gauge_last") return MetricSnapshot::Kind::kGaugeLast;
  if (name == "histogram") return MetricSnapshot::Kind::kHistogram;
  throw ContractError("unknown metric kind: " + name);
}

}  // namespace

std::string MetricsSnapshot::to_json(Domain domain) const {
  std::string s = "{";
  bool first = true;
  for (const auto& [name, m] : metrics) {
    if (m.domain != domain) continue;
    if (!first) s += ',';
    first = false;
    s += json::jstr(name) + ":{\"kind\":\"" + kind_name(m.kind) + "\"";
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        s += ",\"count\":" + std::to_string(m.count);
        break;
      case MetricSnapshot::Kind::kGaugeMax:
      case MetricSnapshot::Kind::kGaugeLast:
        s += ",\"value\":" + json::jnum(m.value);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        s += ",\"count\":" + std::to_string(m.count) +
             ",\"sum\":" + json::jnum(m.value) + ",\"edges\":[";
        for (std::size_t i = 0; i < m.edges.size(); ++i) {
          if (i) s += ',';
          s += json::jnum(m.edges[i]);
        }
        s += "],\"buckets\":[";
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          if (i) s += ',';
          s += std::to_string(m.buckets[i]);
        }
        s += ']';
        break;
      }
    }
    s += '}';
  }
  s += '}';
  return s;
}

std::string MetricsSnapshot::to_json() const {
  // Two top-level sections so consumers can diff the deterministic core
  // while ignoring wall-clock noise wholesale.
  return "{\"sim\":" + to_json(Domain::kSim) +
         ",\"wall\":" + to_json(Domain::kWall) + "}";
}

void merge_metrics_section(const json::Value& section, Domain domain,
                           MetricsSnapshot& snap) {
  for (const auto& [name, mv] : section.as_object()) {
    const json::Object& mo = mv.as_object();
    MetricSnapshot m;
    m.domain = domain;
    m.kind = kind_from_name(json::field(mo, "kind").as_string());
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        m.count = json::field(mo, "count").as_u64();
        break;
      case MetricSnapshot::Kind::kGaugeMax:
      case MetricSnapshot::Kind::kGaugeLast:
        m.value = json::field(mo, "value").as_double();
        break;
      case MetricSnapshot::Kind::kHistogram:
        m.count = json::field(mo, "count").as_u64();
        m.value = json::field(mo, "sum").as_double();
        for (const json::Value& e : json::field(mo, "edges").as_array()) {
          m.edges.push_back(e.as_double());
        }
        for (const json::Value& b : json::field(mo, "buckets").as_array()) {
          m.buckets.push_back(b.as_u64());
        }
        GEARSIM_REQUIRE(m.buckets.size() == m.edges.size() + 1,
                        "histogram bucket/edge count mismatch: " + name);
        break;
    }
    snap.metrics.emplace(name, std::move(m));
  }
}

MetricsSnapshot MetricsSnapshot::from_json(std::string_view text) {
  const json::Value root = json::parse(text);
  const json::Object& o = root.as_object();
  MetricsSnapshot snap;
  for (const Domain domain : {Domain::kSim, Domain::kWall}) {
    const char* section = domain == Domain::kSim ? "sim" : "wall";
    if (const json::Value* sec = json::find(o, section)) {
      merge_metrics_section(*sec, domain, snap);
    }
  }
  return snap;
}

}  // namespace gearsim::obs
