// Benchmark-regression comparison: result documents vs blessed baselines.
//
// Every bench/* target emits one BENCH_<name>.json through bench/harness
// (schema kBenchSchema below); bench/baselines/<name>.json holds the
// blessed values *with per-metric tolerances in the file itself*, so a
// baseline is self-describing and the CI gate needs no side-channel
// configuration.  compare_bench() checks every baselined metric:
//
//   * direction "both" — |actual - value| must fit tol_abs + tol_rel*|value|
//   * direction "max"  — actual <= value + tolerance (lower is better:
//     times, energies; an improvement never fails the gate)
//   * direction "min"  — actual >= value - tolerance (higher is better:
//     speedups, savings)
//
// A metric present in the baseline but missing from the result fails the
// gate (a silently-dropped measurement is itself a regression).  Result
// metrics without a baseline entry are reported as unchecked, never
// failed — adding a metric doesn't require re-blessing everything else.
// Wall-clock numbers live under the result's "wall" section, which is
// never compared: the gate only sees deterministic sim-domain metrics.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gearsim::obs {

/// Schema tag of the common BENCH_<name>.json result document.
inline constexpr std::string_view kBenchSchema = "gearsim-bench/1";
/// Schema tag of the committed baseline documents.
inline constexpr std::string_view kBaselineSchema = "gearsim-bench-baseline/1";

struct MetricCheck {
  std::string name;
  double baseline = 0.0;
  double actual = 0.0;
  bool present = false;  ///< The result document had this metric.
  bool ok = false;
  std::string detail;    ///< Human-readable verdict for the CI log.
};

struct CompareReport {
  std::string bench;
  std::vector<MetricCheck> checks;
  /// Result metrics with no baseline entry (informational only).
  std::vector<std::string> unchecked;

  [[nodiscard]] bool ok() const {
    for (const MetricCheck& c : checks) {
      if (!c.ok) return false;
    }
    return true;
  }
};

/// Compare one result document against its baseline.  Throws
/// ContractError on malformed documents or mismatched bench names.
[[nodiscard]] CompareReport compare_bench(std::string_view baseline_json,
                                          std::string_view result_json);

/// Render a report as an aligned text table (one line per check).
[[nodiscard]] std::string render_report(const CompareReport& report);

/// Bless: derive a baseline document from a result document, giving every
/// metric direction "both" and the given relative tolerance (plus a tiny
/// absolute floor for values near zero).  Existing baselines are simply
/// overwritten by the caller — blessing is an explicit, reviewed act.
[[nodiscard]] std::string baseline_from_result(std::string_view result_json,
                                               double tol_rel);

}  // namespace gearsim::obs
