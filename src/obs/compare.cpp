#include "obs/compare.hpp"

#include <cmath>
#include <cstdio>

#include "util/assert.hpp"
#include "util/json.hpp"

namespace gearsim::obs {

namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

CompareReport compare_bench(std::string_view baseline_json,
                            std::string_view result_json) {
  const json::Value base_root = json::parse(baseline_json);
  const json::Object& base = base_root.as_object();
  GEARSIM_REQUIRE(json::field(base, "schema").as_string() == kBaselineSchema,
                  "not a bench baseline document");
  const json::Value result_root = json::parse(result_json);
  const json::Object& result = result_root.as_object();
  GEARSIM_REQUIRE(json::field(result, "schema").as_string() == kBenchSchema,
                  "not a bench result document");

  CompareReport report;
  report.bench = json::field(base, "name").as_string();
  GEARSIM_REQUIRE(json::field(result, "name").as_string() == report.bench,
                  "baseline/result bench name mismatch: " + report.bench +
                      " vs " + json::field(result, "name").as_string());

  const json::Object& actual = json::field(result, "metrics").as_object();
  const json::Object& expected = json::field(base, "metrics").as_object();

  for (const auto& [name, spec_v] : expected) {
    const json::Object& spec = spec_v.as_object();
    MetricCheck check;
    check.name = name;
    check.baseline = json::field(spec, "value").as_double();
    const double tol_rel =
        json::find(spec, "tol_rel") ? json::field(spec, "tol_rel").as_double()
                                    : 0.0;
    const double tol_abs =
        json::find(spec, "tol_abs") ? json::field(spec, "tol_abs").as_double()
                                    : 0.0;
    const std::string direction =
        json::find(spec, "direction")
            ? json::field(spec, "direction").as_string()
            : "both";
    GEARSIM_REQUIRE(direction == "both" || direction == "max" ||
                        direction == "min",
                    "bad baseline direction for " + name + ": " + direction);
    GEARSIM_REQUIRE(tol_rel >= 0.0 && tol_abs >= 0.0,
                    "negative tolerance for " + name);

    const json::Value* got = json::find(actual, name);
    if (got == nullptr) {
      check.ok = false;
      check.detail = "MISSING from result";
      report.checks.push_back(std::move(check));
      continue;
    }
    check.present = true;
    check.actual = got->as_double();
    const double tol = tol_abs + tol_rel * std::abs(check.baseline);
    const double delta = check.actual - check.baseline;
    bool ok = true;
    if (direction == "both") {
      ok = std::abs(delta) <= tol;
    } else if (direction == "max") {
      ok = delta <= tol;  // Regressions grow the value; shrinking is a win.
    } else {
      ok = delta >= -tol;
    }
    // NaN never compares within tolerance — a NaN measurement must fail.
    if (std::isnan(check.actual) || std::isnan(check.baseline)) ok = false;
    check.ok = ok;
    check.detail = ok ? "ok"
                      : "REGRESSION: " + fmt(check.actual) + " vs baseline " +
                            fmt(check.baseline) + " (tol " + fmt(tol) +
                            ", direction " + direction + ")";
    report.checks.push_back(std::move(check));
  }

  for (const auto& [name, v] : actual) {
    (void)v;
    if (json::find(expected, name) == nullptr) {
      report.unchecked.push_back(name);
    }
  }
  return report;
}

std::string render_report(const CompareReport& report) {
  std::string out = report.bench + ": ";
  out += report.ok() ? "PASS" : "FAIL";
  out += '\n';
  for (const MetricCheck& c : report.checks) {
    out += "  [" + std::string(c.ok ? "ok" : "!!") + "] " + c.name + " = " +
           (c.present ? fmt(c.actual) : std::string("<missing>")) +
           " (baseline " + fmt(c.baseline) + ")";
    if (!c.ok) out += " — " + c.detail;
    out += '\n';
  }
  if (!report.unchecked.empty()) {
    out += "  unchecked:";
    for (const std::string& name : report.unchecked) out += ' ' + name;
    out += '\n';
  }
  return out;
}

std::string baseline_from_result(std::string_view result_json,
                                 double tol_rel) {
  GEARSIM_REQUIRE(tol_rel >= 0.0, "negative tolerance");
  const json::Value root = json::parse(result_json);
  const json::Object& result = root.as_object();
  GEARSIM_REQUIRE(json::field(result, "schema").as_string() == kBenchSchema,
                  "not a bench result document");
  std::string out = "{\"schema\":" + json::jstr(kBaselineSchema) +
                    ",\"name\":" +
                    json::jstr(json::field(result, "name").as_string()) +
                    ",\"metrics\":{";
  bool first = true;
  for (const auto& [name, v] : json::field(result, "metrics").as_object()) {
    if (!first) out += ',';
    first = false;
    // Absolute floor so near-zero values (deltas, fractions) keep a
    // usable band under a purely relative tolerance.
    out += json::jstr(name) + ":{\"value\":" + json::jnum(v.as_double()) +
           ",\"tol_rel\":" + json::jnum(tol_rel) +
           ",\"tol_abs\":" + json::jnum(1e-9) + ",\"direction\":\"both\"}";
  }
  out += "}}";
  return out;
}

}  // namespace gearsim::obs
