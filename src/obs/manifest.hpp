// Run manifests: one canonical JSON document per run/sweep/bench.
//
// A manifest is the machine-readable record of *what ran and what was
// observed*: identity strings (cluster-config signature, workload
// signature, cache-key format version), the metrics snapshot, and
// wall-clock timings.  The document separates the deterministic core
// (info + sim-domain metrics: bit-identical across reruns and
// GEARSIM_SWEEP_JOBS values) from the wall-clock section (timings,
// kWall metrics: honest but machine-dependent), so CI can diff the core
// and archive the rest.  Emission is canonical — sorted keys, round-trip
// doubles — making `deterministic_json()` a usable fingerprint.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace gearsim::obs {

struct RunManifest {
  /// Schema identifier, bumped when the document layout changes.
  static constexpr std::string_view kSchema = "gearsim-manifest/1";

  /// What produced this manifest ("gearsim sweep", "bench/fig1", ...).
  std::string tool;
  /// exec::kKeyFormatVersion of the producing build (0 = no cache layer
  /// involved).  Lets a reader spot manifests from incompatible caches.
  int cache_key_format = 0;
  /// Deterministic identity/config pairs (config signature, workload,
  /// nodes, seeds, job count...).  Keys are emitted sorted; duplicate
  /// keys are rejected on emission.
  std::vector<std::pair<std::string, std::string>> info;
  /// The metrics snapshot (both domains; serialization splits them).
  MetricsSnapshot metrics;
  /// End-to-end wall-clock duration in seconds; negative = not recorded.
  /// Lives in the wall section — never part of the deterministic core.
  double wall_seconds = -1.0;

  void add_info(std::string key, std::string value) {
    info.emplace_back(std::move(key), std::move(value));
  }

  /// The full canonical document.
  [[nodiscard]] std::string to_json() const;
  /// Only the deterministic core (schema, tool, cache-key format, info,
  /// sim-domain metrics) — the reproducibility fingerprint.
  [[nodiscard]] std::string deterministic_json() const;
  /// Inverse of to_json(); throws ContractError on malformed input.
  static RunManifest from_json(std::string_view text);
};

/// Write `manifest.to_json()` to `path` (parent directories created),
/// trailing newline included.  Throws SimulationError on I/O failure.
void write_manifest_file(const RunManifest& manifest, const std::string& path);

/// Read + parse a manifest file; throws on I/O or parse failure.
RunManifest read_manifest_file(const std::string& path);

}  // namespace gearsim::obs
