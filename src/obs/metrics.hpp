// MetricsRegistry: counters, gauges and fixed-bucket histograms for the
// simulator's own introspection.
//
// Two metric domains with different guarantees:
//
//  * kSim — deterministic simulation-domain facts (events dispatched,
//    cache hits, gear shifts, rework seconds).  Values are pure functions
//    of the run's inputs: bit-identical across reruns and across
//    GEARSIM_SWEEP_JOBS worker counts.  Achieved structurally, not with
//    atomics: each simulation point owns its registry (single-threaded by
//    the engine's one-thread-at-a-time discipline) and the sweep layer
//    merges per-point snapshots in request order.
//  * kWall — wall-clock profiling (worker queue-wait, bench phase
//    timings).  Off by default; when disabled, registration returns
//    handles whose operations are a null-check and the steady_clock is
//    never read, so the baseline run is bit-identical to a build without
//    the instrumentation.  Never part of the deterministic manifest core.
//
// Instrumented layers hold plain pointers obtained once at setup
// (`Counter* c = reg ? &reg->counter("...") : nullptr`), so the hot-path
// cost is one branch when observability is off and one add when on.
// Handles are stable for the registry's lifetime (node-based storage).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace gearsim::json {
struct Value;  // util/json.hpp
}

namespace gearsim::obs {

/// Which guarantee a metric carries (see file header).
enum class Domain { kSim, kWall };

/// Monotonic integer count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;

  friend class MetricsRegistry;
};

/// Point-in-time double.  kMax gauges keep the high-water mark (and merge
/// by max); kLast gauges keep the latest write (and merge by overwrite).
class Gauge {
 public:
  enum class Kind { kMax, kLast };

  void set(double v) {
    if (kind_ == Kind::kMax) {
      if (!written_ || v > value_) value_ = v;
    } else {
      value_ = v;
    }
    written_ = true;
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  explicit Gauge(Kind kind) : kind_(kind) {}

  Kind kind_;
  double value_ = 0.0;
  bool written_ = false;

  friend class MetricsRegistry;
};

/// Fixed-bucket histogram.  `edges` are the upper bounds of the first
/// N buckets: observe(v) lands in the first bucket whose edge satisfies
/// v <= edge, or in the implicit overflow bucket (buckets().size() ==
/// edges.size() + 1).  Also accumulates count and sum for mean queries.
class Histogram {
 public:
  void observe(double v);
  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  explicit Histogram(std::vector<double> edges);

  std::vector<double> edges_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;

  friend class MetricsRegistry;
};

/// One metric's frozen value; `MetricsSnapshot` is the canonical,
/// name-sorted view a manifest serializes and the sweep layer merges.
struct MetricSnapshot {
  enum class Kind { kCounter, kGaugeMax, kGaugeLast, kHistogram };

  Kind kind = Kind::kCounter;
  Domain domain = Domain::kSim;
  std::uint64_t count = 0;     ///< Counter value / histogram count.
  double value = 0.0;          ///< Gauge value / histogram sum.
  std::vector<double> edges;   ///< Histogram only.
  std::vector<std::uint64_t> buckets;
};

struct MetricsSnapshot {
  std::map<std::string, MetricSnapshot> metrics;

  [[nodiscard]] bool empty() const { return metrics.empty(); }
  /// Fold `other` in: counters and histogram buckets add, kMax gauges
  /// max, kLast gauges overwrite.  Kind/shape mismatches throw
  /// ContractError.  Merging in request order keeps sim-domain values
  /// deterministic for any worker count.
  void merge(const MetricsSnapshot& other);
  /// Canonical single-line JSON object keyed by metric name (sorted).
  /// `domain` filters: kSim emits only deterministic metrics.
  [[nodiscard]] std::string to_json(Domain domain) const;
  [[nodiscard]] std::string to_json() const;  ///< Both domains.
  /// Inverse of to_json(); throws ContractError on malformed input.
  static MetricsSnapshot from_json(std::string_view text);
};

/// Fold one parsed `{name: {kind, ...}}` JSON section into `snap` under
/// `domain`.  Shared by MetricsSnapshot::from_json and the manifest
/// parser, so both read the exact dialect to_json(Domain) emits.
void merge_metrics_section(const json::Value& section, Domain domain,
                           MetricsSnapshot& snap);

class MetricsRegistry {
 public:
  /// `wall_profiling` opts into the wall-clock domain; sim-domain metrics
  /// are always recorded on a live registry.
  explicit MetricsRegistry(bool wall_profiling = false)
      : wall_profiling_(wall_profiling) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] bool wall_profiling() const { return wall_profiling_; }

  /// Find-or-create.  References are stable for the registry's lifetime;
  /// re-registration with a different kind/shape throws ContractError.
  Counter& counter(std::string_view name, Domain domain = Domain::kSim);
  Gauge& gauge(std::string_view name, Gauge::Kind kind = Gauge::Kind::kMax,
               Domain domain = Domain::kSim);
  Histogram& histogram(std::string_view name, std::vector<double> edges,
                       Domain domain = Domain::kSim);

  /// Wall-domain registration that respects the profiling switch: null
  /// when wall profiling is off, so call sites degrade to a null-check.
  [[nodiscard]] Counter* wall_counter(std::string_view name);
  [[nodiscard]] Gauge* wall_gauge(std::string_view name,
                                  Gauge::Kind kind = Gauge::Kind::kMax);
  [[nodiscard]] Histogram* wall_histogram(std::string_view name,
                                          std::vector<double> edges);

  /// Freeze every metric into the canonical sorted snapshot.
  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Fold a snapshot into the live registry (see MetricsSnapshot::merge);
  /// metrics not yet registered are created with the snapshot's shape.
  void merge(const MetricsSnapshot& other);

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    Domain domain;
    // Node-based storage: exactly one of these is live per entry.  Kept
    // as values in a std::map keyed by name, which never invalidates
    // references on insert.
    Counter counter;
    Gauge gauge{Gauge::Kind::kMax};
    Histogram histogram{std::vector<double>{}};
  };

  Entry& entry(std::string_view name, MetricSnapshot::Kind kind,
               Domain domain);

  bool wall_profiling_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// RAII wall-clock timer: adds the elapsed seconds to a histogram on
/// destruction.  A null histogram (profiling off) never reads the clock —
/// the disabled path costs one branch.
class ScopedWallTimer {
 public:
  explicit ScopedWallTimer(Histogram* h) : h_(h) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedWallTimer() {
    if (h_ != nullptr) {
      h_->observe(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
    }
  }
  ScopedWallTimer(const ScopedWallTimer&) = delete;
  ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_{};
};

/// RAII sim-time timer over an arbitrary clock callable (e.g. the
/// engine's now()).  Deterministic: belongs to the kSim domain.
template <typename Clock>
class ScopedSimTimer {
 public:
  ScopedSimTimer(Histogram* h, Clock clock)
      : h_(h), clock_(std::move(clock)) {
    if (h_ != nullptr) start_ = clock_();
  }
  ~ScopedSimTimer() {
    if (h_ != nullptr) h_->observe(clock_() - start_);
  }
  ScopedSimTimer(const ScopedSimTimer&) = delete;
  ScopedSimTimer& operator=(const ScopedSimTimer&) = delete;

 private:
  Histogram* h_;
  Clock clock_;
  double start_ = 0.0;
};

}  // namespace gearsim::obs
