// Small-buffer-optimized, move-only callable for simulation events.
//
// The engine dispatches millions of events per sweep, and with
// std::function every one of them paid a heap allocation for its capture
// (plus the matching free on dispatch).  EventFn stores captures up to
// kInlineCapacity bytes directly inside the object — sized for every
// capture the engine/net/mpi/faults layers actually create (the largest
// is a crash event: this + CrashEvent + a std::function liveness
// predicate, 56 bytes on LP64) — and falls back to the heap only for
// oversized captures.  The engine counts both paths (see
// Engine::pool_fallback_allocs) so a capture outgrowing the buffer shows
// up in the bench-regression gate instead of silently re-introducing the
// per-event allocation.
//
// Dispatch semantics the queue relies on:
//   * move-only (captures own shared_ptrs, std::functions, ...);
//   * relocation via the Ops vtable is noexcept, so the queue's pool can
//     move entries without ever being left in a half-moved state;
//   * invocation may throw (fault injection aborts a run by throwing
//     NodeFailure out of an event body) — exceptions propagate.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"

namespace gearsim::sim {

class EventFn {
 public:
  /// Inline capture budget.  Raising it trades queue-entry size for
  /// fewer fallback allocations; the microbench_engine baseline pins the
  /// current fallback count so growth is a reviewed decision.
  static constexpr std::size_t kInlineCapacity = 64;

  EventFn() noexcept = default;

  template <typename F,
            typename Fn = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<Fn, EventFn> &&
                                 std::is_invocable_r_v<void, Fn&>,
                             int> = 0>
  // NOLINTNEXTLINE(google-explicit-constructor): callables convert
  // implicitly, matching the std::function-based API this replaces.
  EventFn(F&& f) {  // NOLINT(bugprone-forwarding-reference-overload)
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() {
    GEARSIM_REQUIRE(ops_ != nullptr, "invoking an empty EventFn");
    ops_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// True when the capture exceeded kInlineCapacity and lives on the
  /// heap — the slow path the engine's pool metrics count.
  [[nodiscard]] bool on_heap() const noexcept {
    return ops_ != nullptr && ops_->heap;
  }

 private:
  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct the callable into `dst` and destroy the `src`
    /// copy.  noexcept by construction (inline storage requires a
    /// nothrow move; the heap path moves a raw pointer).
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool heap;
  };

  template <typename Fn>
  static Fn* inline_obj(void* storage) noexcept {
    return std::launder(reinterpret_cast<Fn*>(storage));
  }
  template <typename Fn>
  static Fn*& heap_obj(void* storage) noexcept {
    return *std::launder(reinterpret_cast<Fn**>(storage));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*inline_obj<Fn>(s))(); },
      [](void* src, void* dst) noexcept {
        Fn* f = inline_obj<Fn>(src);
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* s) noexcept { inline_obj<Fn>(s)->~Fn(); },
      false,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* s) { (*heap_obj<Fn>(s))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn*(heap_obj<Fn>(src));
      },
      [](void* s) noexcept { delete heap_obj<Fn>(s); },
      true,
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace gearsim::sim
