// Conservative parallel discrete-event execution over engine partitions.
//
// ParallelEngine owns P ordinary Engines — one per partition of the
// simulated actors — and drives them through synchronized time windows on
// a persistent worker pool (util/parallel.hpp WorkerPool):
//
//   1. Barrier: compute T = min over partitions of the earliest pending
//      event time, and the window horizon H = T + lookahead.
//   2. Window: every partition dispatches its events with time < H
//      concurrently.  Within a partition, execution is exactly the serial
//      engine — one thread at a time, strict (time, seq) order.
//   3. Drain: cross-partition events posted during the window land in
//      per-(destination, source) mailbox lanes; the coordinating thread
//      drains them into the destination queues in fixed lane order, then
//      loops to 1.
//
// Conservative soundness: a cross-partition post must target a time
// >= H (enforced), and every event a partition dispatches in the window
// has time < H, so no partition can ever receive an event below a time
// it has already passed — the per-partition (time, seq) order, and hence
// the physics, is independent of thread count and scheduling.  The
// lookahead comes from the minimum cross-partition interaction delay (for
// the cluster layer, net::Network's minimum link latency — see
// Network::conservative_lookahead).
//
// This is the classic time-window (barrier) variant of conservative PDES.
// Null-message (CMB) synchronization — worth it only when lookahead is so
// small that windows degenerate to single events — is deliberately not
// implemented; the paper's cluster configs have >= 80us link latency
// against ~15us MPI call overhead, so windows batch usefully.  See
// docs/API.md "Engine internals".
//
// Determinism contract: each partition's dispatch is deterministic, so
// Engine::order_hash is reproducible per partition; the *global*
// interleaving across partitions is not a defined order, so the
// cross-mode probe is Engine::event_set_hash (order-independent), summed
// here over partitions.  A parallel run matches the serial oracle iff the
// set hashes (and every physical result derived from the events) match.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "util/parallel.hpp"
#include "util/units.hpp"

namespace gearsim::sim {

/// Thrown when a run discovers *mid-flight* that it needs an interaction
/// the conservative parallel engine cannot reproduce (e.g. a
/// cross-partition rendezvous send, whose zero-delay ACK has no sound
/// lookahead).  Distinct from SimulationError so callers holding a serial
/// oracle can catch it and rerun serially — the aborted parallel run has
/// produced no observable output, so the fallback is silent and exact —
/// while genuine simulation failures keep propagating.
class ParallelUnsupportedError : public SimulationError {
 public:
  using SimulationError::SimulationError;
};

class ParallelEngine {
 public:
  /// `partitions >= 1` engines synchronized with `lookahead > 0`;
  /// `threads` workers (0 = one per partition, negative = hardware
  /// concurrency; clamped to the partition count).
  ParallelEngine(std::size_t partitions, Seconds lookahead, int threads = 0);
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;
  ~ParallelEngine();

  [[nodiscard]] std::size_t partitions() const { return parts_.size(); }
  [[nodiscard]] int threads() const { return pool_.threads(); }
  [[nodiscard]] Seconds lookahead() const { return lookahead_; }

  /// Partition `p`'s engine.  Spawn processes and schedule local events
  /// directly on it; its schedule_* calls stay partition-local and must
  /// only be made from that partition's execution context (or before
  /// run(), from the setup thread).
  [[nodiscard]] Engine& partition(std::size_t p);

  /// Post a cross-partition event from partition-execution context:
  /// `from` must be the partition engine the calling worker is currently
  /// running, and `t` must respect the conservative bound (>= the current
  /// window horizon — any interaction delayed by at least the lookahead
  /// satisfies this).  Lock-free: lane (to, from) has exactly one writer.
  /// The event is delivered into `to`'s queue at the window barrier,
  /// carrying the pedigree its serial twin would have had (born at
  /// from.now(), by the posting event) — so it dispatches in
  /// serial-equivalent order among `to`'s simultaneous events (see
  /// EventQueue's (time, pedigree, seq) contract).
  void post(Engine& from, std::size_t to, Seconds t, EventFn fn);

  /// Post from barrier-hook context (coordinating thread, between
  /// windows).  Same conservative bound as post().  `pedigree` is the
  /// insertion provenance the event's serial twin would have had (the
  /// MPI layer passes a deferred transfer's inject time and the sending
  /// event's births); when omitted it defaults to the barrier's virtual
  /// time now().
  void post_at_barrier(std::size_t to, Seconds t, EventFn fn);
  void post_at_barrier(std::size_t to, Seconds t, EventFn fn,
                       const EventPedigree& pedigree);

  /// Hook run on the coordinating thread at every window barrier, after
  /// the partitions drain and before mailboxes are delivered.  The
  /// cluster layer applies deferred network transfers here, serially and
  /// in canonical order (see mpi::World::apply_deferred_transfers).
  void set_barrier_hook(std::function<void()> hook) {
    barrier_hook_ = std::move(hook);
  }

  /// Run windows until every partition's queue drains.  Throws
  /// SimulationError on global deadlock (blocked processes with no
  /// pending events anywhere) and rethrows the error of the
  /// lowest-indexed failing partition — deterministic for any thread
  /// count, since partition contents are.
  void run();

  /// Cooperatively unwind every partition's processes and drop pending
  /// events — including undelivered mailbox posts — while the objects
  /// their captures reference are still alive.  Idempotent; the
  /// destructor calls it too.
  void terminate_processes();

  /// Virtual-time lower bound: the start of the last window run.
  [[nodiscard]] Seconds now() const { return now_; }
  /// Synchronization windows executed.
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  /// Totals over partitions.
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] std::uint64_t event_set_hash() const;
  [[nodiscard]] std::uint64_t pool_inline_events() const;
  [[nodiscard]] std::uint64_t pool_fallback_allocs() const;

 private:
  [[nodiscard]] EventBatch& lane(std::size_t to, std::size_t from) {
    return lanes_[to * (parts_.size() + 1) + from];
  }
  void drain_mailboxes();

  std::vector<std::unique_ptr<Engine>> parts_;
  /// P x (P+1) mailbox lanes: lane (to, from) is written only by the
  /// worker running partition `from`; lane (to, P) only by the
  /// coordinating thread (barrier hook).  Drained single-threaded at the
  /// barrier in fixed lane order, so delivery seq assignment — and with
  /// it each partition's dispatch order — is deterministic.
  std::vector<EventBatch> lanes_;
  Seconds lookahead_;
  Seconds now_{0.0};
  Seconds horizon_{0.0};
  std::uint64_t windows_ = 0;
  bool running_ = false;
  std::function<void()> barrier_hook_;
  WorkerPool pool_;
};

}  // namespace gearsim::sim
