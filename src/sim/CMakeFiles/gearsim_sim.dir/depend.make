# Empty dependencies file for gearsim_sim.
# This may be replaced when dependencies are built.
