
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/gearsim_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/gearsim_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/parallel_engine.cpp" "src/sim/CMakeFiles/gearsim_sim.dir/parallel_engine.cpp.o" "gcc" "src/sim/CMakeFiles/gearsim_sim.dir/parallel_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/gearsim_util.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/gearsim_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
