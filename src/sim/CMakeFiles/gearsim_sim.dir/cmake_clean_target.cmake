file(REMOVE_RECURSE
  "libgearsim_sim.a"
)
