file(REMOVE_RECURSE
  "CMakeFiles/gearsim_sim.dir/engine.cpp.o"
  "CMakeFiles/gearsim_sim.dir/engine.cpp.o.d"
  "CMakeFiles/gearsim_sim.dir/parallel_engine.cpp.o"
  "CMakeFiles/gearsim_sim.dir/parallel_engine.cpp.o.d"
  "libgearsim_sim.a"
  "libgearsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
