// Discrete-event simulation engine with cooperative processes.
//
// The engine owns simulated time and an event queue.  Simulation actors
// (MPI ranks, power-meter samplers) are either plain timed callbacks or
// *processes*: user functions running on their own OS thread that the
// engine resumes one at a time.  Exactly one thread — the engine or a
// single process — executes at any instant, handing control back and forth
// through semaphores, so no simulation state needs locking and every run
// is deterministic.
//
// Processes let workload skeletons be written as ordinary blocking code
// (compute / mpi.send / mpi.recv ...), mirroring how real MPI programs
// read, instead of as hand-rolled state machines.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"
#include "util/units.hpp"

namespace gearsim::sim {

class Engine;
class ParallelEngine;

/// A cooperative simulation process.  Created via Engine::spawn; the body
/// receives a reference to its Process and may call delay() / block().
class Process {
 public:
  /// States: only kRunning executes user code; kBlocked awaits wake().
  enum class State { kCreated, kReady, kRunning, kDelayed, kBlocked, kFinished };

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process();

  /// Suspend for `d` of simulated time.  Must be called from the process's
  /// own body.
  void delay(Seconds d);

  /// Suspend indefinitely until another actor calls wake().  Used by the
  /// MPI layer to park a rank inside a blocking call.
  void block();

  /// Make a blocked process runnable again at the current simulated time.
  /// Must be called from engine context or another running process.
  void wake();

  /// Batched variant: mark the process ready and append its resume event
  /// to `into` instead of scheduling immediately.  The caller submits the
  /// batch via Engine::schedule_batch; until then the process must not be
  /// woken again.  Lets the MPI delivery path wake a rendezvous sender
  /// and the receiver with a single queue operation.
  void wake(EventBatch& into);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool finished() const { return state_ == State::kFinished; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] Seconds now() const;

 private:
  friend class Engine;
  Process(Engine& engine, std::string name, std::function<void(Process&)> body);

  void start_thread();
  /// Engine-side: hand control to the process, wait until it yields.
  void resume();
  /// Process-side: hand control back to the engine.
  void yield_to_engine();
  /// Engine-side: request cooperative termination of a live process.
  void terminate();

  Engine& engine_;
  std::string name_;
  std::function<void(Process&)> body_;
  State state_ = State::kCreated;
  bool terminate_requested_ = false;
  std::exception_ptr error_;
  std::binary_semaphore run_sem_{0};
  std::binary_semaphore done_sem_{0};
  std::thread thread_;
};

/// Exception used internally to unwind a process thread when the engine is
/// torn down before the process body finished.  Never escapes the library.
struct ProcessTerminated {};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  [[nodiscard]] Seconds now() const { return now_; }

  /// Pedigree of the event currently being dispatched: the simulated
  /// instant it was inserted into the queue, plus its parent's and
  /// grandparent's births (all zero outside dispatch).  In a serial run
  /// the global insertion sequence is monotone in the pedigree, so for
  /// simultaneous events pedigree order *is* serial dispatch order — the
  /// MPI layer records it for deferred cross-partition transfers so the
  /// window barrier can replay the serial reservation order exactly
  /// (see mpi::World::apply_deferred_transfers).
  [[nodiscard]] const EventPedigree& current_event_pedigree() const {
    return current_pedigree_;
  }

  /// Schedule `fn` at absolute simulated time `t >= now()`.
  void schedule_at(Seconds t, EventFn fn);
  /// Schedule `fn` after a non-negative delay.
  void schedule_after(Seconds dt, EventFn fn);

  /// Submit every event of `batch` (each at time >= now()) with one queue
  /// operation.  Sequence numbers are assigned in submission order, so
  /// the dispatch order is exactly what individual schedule_at calls
  /// would have produced.  Drains the batch but keeps its capacity —
  /// hot-path callers reuse one instance.
  void schedule_batch(EventBatch& batch);

  /// Create a process that starts at the current simulated time.
  Process& spawn(std::string name, std::function<void(Process&)> body);

  /// Batched variant: the start event is appended to `into` instead of
  /// being scheduled immediately; the caller submits the batch via
  /// schedule_batch.  Lets the experiment runner launch all ranks with a
  /// single queue operation.
  Process& spawn(std::string name, std::function<void(Process&)> body,
                 EventBatch& into);

  /// Run until the event queue drains.  Throws SimulationError if
  /// processes remain blocked with no pending events (deadlock), and
  /// rethrows the first exception raised inside any process body.
  void run();

  /// Run until simulated time would exceed `t`; pending events at later
  /// times remain queued.
  void run_until(Seconds t);

  /// Dispatch every pending event with time strictly below `horizon`;
  /// later events stay queued and now() is left at the last dispatched
  /// event.  This is one conservative time window: ParallelEngine runs
  /// disjoint partitions' windows concurrently, with `horizon` chosen so
  /// no partition can receive a cross-partition event below it.  Returns
  /// the number of events dispatched.
  std::uint64_t run_window(Seconds horizon);

  /// True when events are pending; next_event_time() is the earliest
  /// pending time (precondition: has_pending()).  May reorganize queue
  /// internals, never the dispatch order.
  [[nodiscard]] bool has_pending() const { return queue_.size() != 0; }
  [[nodiscard]] Seconds next_event_time() { return queue_.next_time(); }
  /// Pending (undispatched) events currently queued.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Cooperatively unwind every live process now (idempotent; the
  /// destructor calls it too).  When aborting a run, call this while the
  /// objects the process bodies reference are still alive — stack
  /// unwinding in the process threads runs destructors that may touch
  /// them, and the pending events dropped from the queue hold pooled
  /// callables whose captures may too, so the queue is cleared here (at a
  /// point where the referents are guaranteed alive) rather than at
  /// ~Engine, which runs after members declared later — and, for a
  /// stack-allocated engine, after every local declared below it — are
  /// already gone.
  void terminate_processes();

  /// Number of processes spawned over the engine's lifetime.
  [[nodiscard]] std::size_t process_count() const { return processes_.size(); }
  /// Number of events executed so far (for microbenchmarks/tests).
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

  /// Running FNV-1a fingerprint of the dispatch order: every executed
  /// event folds its (time, insertion seq) pair in.  Two runs of the same
  /// scenario are event-for-event identical iff their hashes match, which
  /// is the determinism contract queue changes are verified against
  /// (golden hashes in sim_test, cross-path checks in the sweep tests).
  [[nodiscard]] std::uint64_t order_hash() const { return order_hash_; }

  /// Order-independent fingerprint of the dispatched-event *multiset*:
  /// every executed event contributes fnv1a(time) by wrapping addition,
  /// so the value is invariant under any reordering or repartitioning of
  /// the same events.  A parallel run over P partitions and the serial
  /// oracle execute the same physical events iff their set hashes match
  /// (a probabilistic probe, like order_hash — collisions are possible
  /// but never systematic).  Sequence numbers are deliberately excluded:
  /// they are an artifact of per-queue insertion order, which legitimately
  /// differs across partition counts.
  [[nodiscard]] std::uint64_t event_set_hash() const {
    return event_set_hash_;
  }

  /// Partition index when this engine is one partition of a
  /// ParallelEngine; 0 for a standalone serial engine.
  [[nodiscard]] std::size_t partition_id() const { return partition_id_; }

  /// Events whose capture fit EventFn's inline buffer (the fast path).
  [[nodiscard]] std::uint64_t pool_inline_events() const {
    return pool_inline_events_;
  }
  /// Events whose capture overflowed to a heap allocation.  Kept near
  /// zero by sizing EventFn::kInlineCapacity for the library's real
  /// captures; the microbench_engine baseline gates regressions.
  [[nodiscard]] std::uint64_t pool_fallback_allocs() const {
    return pool_fallback_allocs_;
  }

  /// Attach a metrics registry (nullptr detaches).  The engine then
  /// reports events dispatched, processes spawned and the event-queue
  /// high-water mark — all sim-domain facts, so attaching a registry
  /// never perturbs simulation results.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  friend class Process;
  friend class ParallelEngine;
  void dispatch_one();
  void count_pool_path(bool on_heap);
  void check_deadlock() const;
  void rethrow_process_error();

  EventQueue queue_;
  Seconds now_{0.0};
  EventPedigree current_pedigree_{};
  std::vector<std::unique_ptr<Process>> processes_;
  std::uint64_t events_executed_ = 0;
  std::uint64_t order_hash_ = util::kFnv1aOffset;
  std::uint64_t event_set_hash_ = 0;
  std::size_t partition_id_ = 0;
  std::uint64_t pool_inline_events_ = 0;
  std::uint64_t pool_fallback_allocs_ = 0;
  bool running_ = false;
  obs::Counter* m_events_ = nullptr;
  obs::Counter* m_spawned_ = nullptr;
  obs::Gauge* m_queue_high_water_ = nullptr;
  obs::Counter* m_pool_inline_ = nullptr;
  obs::Counter* m_pool_fallback_ = nullptr;
};

}  // namespace gearsim::sim
