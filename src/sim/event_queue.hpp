// Event queue for the discrete-event kernel.
//
// Dispatch order is a hard contract: events fire in strict
// (time, pedigree, insertion sequence) order — earlier times first, ties
// broken by the event's *pedigree* (its birth — the simulated instant it
// was inserted at — then its parent's birth, then its grandparent's),
// then FIFO — which keeps the whole simulation deterministic.  For a
// serially-filled queue the pedigree tiebreaks are vacuous: insertions
// happen while simulated time advances monotonically, so birth is
// non-decreasing in seq; among equal-birth events the inserting parents
// dispatched in seq order at the birth instant, which (applying the same
// argument one level up) makes parent birth non-decreasing too, and
// likewise grandparent birth — (time, pedigree, seq) orders exactly like
// (time, seq), and the golden order hashes in sim_test pin that
// equivalence across kernel rewrites.  (The depth must be *fixed*:
// inheriting an ancestor's tiebreak through same-instant chains is NOT
// monotone in seq and would reorder serial dispatch.)  The pedigree earns
// its keep under ParallelEngine: an event posted across partitions is
// physically inserted at a window barrier (late, large seq) but carries
// the pedigree its serial twin would have had, so it dispatches in the
// serial-equivalent position among simultaneous events even when two
// partitions insert at the exact same instant — lock-step codes like
// LU's wavefront do this constantly, with same-instant causal chains two
// hops deep (delivery → wake → post-overhead send), which is exactly
// what the three-level pedigree distinguishes.
//
// Layout, chosen for the hot path (a 32-node NAS sweep pushes and pops
// millions of events):
//
//   * Calendar-style epoch buckets instead of a heap.  Far-future events
//     are appended unsorted into fixed-width time bands (one vector per
//     band) — an O(1) append with no comparisons.  Pops drain `current_`,
//     a sorted array holding only the earliest band; when it empties the
//     next non-empty band is sorted (a few hundred contiguous 40-byte
//     keys, cache-resident) and becomes current.  A comparison heap was
//     built and measured first: at depth 1e5 its sift path is memory-
//     latency-bound (~8 dependent cache misses per pop, even with 4-ary
//     layout, packed keys and software prefetch), capping it below the
//     old std::function queue × 2.  The bucket design replaces that
//     pointer-chase with sequential appends and small sorts.
//   * Ordering is boundary-proof: a band is assigned by a monotone
//     floor((t - base)/width) for one fixed (base, width) per epoch, so
//     bands partition time monotonically; each band is sorted by
//     (time, pedigree, seq) before dispatch; events landing below the
//     active band are insertion-sorted into `current_`.  Bucket
//     boundaries therefore affect performance only, never order.
//   * Callables live in a slot pool (vector + free list) reused across
//     events; keys carry the 40-byte (time, pedigree,
//     seq·2^24 | slot) tuple.  After warm-up, push/pop churn allocates
//     nothing (see
//     bench/microbench_engine's allocs-per-event gate) and EventFn's
//     small-buffer optimization keeps captures out of the heap entirely.
//
// Degradation mode: a pathological time distribution (one far outlier
// stretching the epoch) can funnel most keys into one band, making its
// sort large — still correct, amortized O(log n), just less cache-ideal.
// The NAS/Jacobi workloads and the microbench sweep sit far from that
// regime; a multi-rung ladder split is the known upgrade if a workload
// ever hits it.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "sim/event_fn.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace gearsim::sim {

/// Shared finite-time guard for every event-insertion path.  A NaN time
/// has no place in the (time, seq) total order (every comparison is
/// false), silently corrupting dispatch order; negative and infinite
/// times are always scheduling bugs.  Reject loudly, and reject at the
/// *first* entry point — EventBatch::add as well as EventQueue::push —
/// so a bad time is reported where it was produced, not after the batch
/// has been carried across a wake or crash-arm path.
inline void validate_event_time(Seconds time) {
  GEARSIM_REQUIRE(std::isfinite(time.value()) && time.value() >= 0.0,
                  "event time must be finite and non-negative");
}

/// The causal provenance of an event, used as the dispatch tiebreak
/// between `time` and the FIFO sequence (see the file header): the
/// simulated instant the event was inserted at, its inserting (parent)
/// event's birth, and that event's parent's birth.  In serial execution
/// all three are monotone in insertion order, so they never change the
/// serial dispatch order; under ParallelEngine a cross-partition event
/// carries the pedigree its serial twin would have had, which places it
/// in the serial-equivalent position among simultaneous events.
struct EventPedigree {
  Seconds birth{0.0};
  Seconds parent{0.0};
  Seconds grandparent{0.0};
};

/// Pedigree validity: finite, non-negative, and causally ordered — an
/// ancestor is born no later than its descendant, and an event is born
/// no later than it fires.
inline void validate_event_pedigree(const EventPedigree& p, Seconds time) {
  validate_event_time(p.birth);
  validate_event_time(p.parent);
  validate_event_time(p.grandparent);
  GEARSIM_REQUIRE(p.birth <= time, "event birth after its scheduled time");
  GEARSIM_REQUIRE(p.parent <= p.birth, "parent born after the event");
  GEARSIM_REQUIRE(p.grandparent <= p.parent,
                  "grandparent born after the parent");
}

/// A group of events submitted with one queue operation.  Callers that
/// create several events in one instant (an MPI delivery waking both the
/// receiver and a rendezvous sender, the fault layer arming a crash
/// schedule, the experiment runner starting every rank) batch them so
/// sequence numbers are assigned in submission order with a single call —
/// the dispatch order is exactly what N individual pushes would produce.
/// Reusable: submission drains the items but keeps the capacity.
class EventBatch {
 public:
  void add(Seconds time, EventFn fn) {
    validate_event_time(time);
    items_.push_back(Item{time, kUnsetPedigree, std::move(fn)});
  }

  /// Add with an explicit pedigree — the provenance the event's serial
  /// twin would have had.  ParallelEngine's mailbox lanes use this so a
  /// cross-partition event, though physically queued at a window
  /// barrier, dispatches in its serial-equivalent position among
  /// simultaneous events.  Ordinary callers use the two-argument add():
  /// their pedigree is resolved to the submitting engine's dispatch
  /// state (see Engine::schedule_batch / fill_pedigrees).
  void add(Seconds time, EventFn fn, const EventPedigree& pedigree) {
    validate_event_time(time);
    validate_event_pedigree(pedigree, time);
    items_.push_back(Item{time, pedigree, std::move(fn)});
  }

  /// Resolve every unset pedigree (two-argument add) to `p` — the
  /// submitting engine's current dispatch state, the items' actual
  /// insertion provenance.  Items added with an explicit pedigree keep
  /// it.
  void fill_pedigrees(const EventPedigree& p) {
    for (Item& item : items_) {
      if (std::isnan(item.pedigree.birth.value())) item.pedigree = p;
    }
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  void reserve(std::size_t n) { items_.reserve(n); }
  void clear() { items_.clear(); }

  /// Visit the (time, heap-fallback?) metadata of every pending item in
  /// submission order — lets the engine validate times and count the
  /// capture-pool paths without touching the callables.
  template <typename Visitor>
  void visit_meta(Visitor&& v) const {
    for (const Item& item : items_) v(item.time, item.fn.on_heap());
  }

 private:
  friend class EventQueue;
  /// Sentinel for "pedigree not yet resolved" (filled at submission).
  /// NaN never survives to EventQueue::push — fill_pedigrees or the
  /// queue's own default replaces it — so the dispatch order never sees
  /// it.
  static constexpr EventPedigree kUnsetPedigree{
      Seconds{std::numeric_limits<double>::quiet_NaN()},
      Seconds{std::numeric_limits<double>::quiet_NaN()},
      Seconds{std::numeric_limits<double>::quiet_NaN()}};
  struct Item {
    Seconds time;
    EventPedigree pedigree;
    EventFn fn;
  };
  std::vector<Item> items_;
};

class EventQueue {
 public:
  /// One extracted event.  Extraction moves the callable out of the pool
  /// *before* any container reshuffling, so no moved-from entry is ever
  /// left inside a live container (the old priority_queue + const_cast
  /// pop did exactly that).
  struct Popped {
    Seconds time;
    EventPedigree pedigree;
    std::uint64_t seq = 0;
    EventFn fn;
  };

  /// `pedigree` is the event's insertion provenance (the engine passes
  /// its dispatch state); it is the sort key after `time`, before the
  /// FIFO sequence.  Queue-direct callers may omit it — a constant
  /// pedigree degenerates the order to the classic (time, seq).
  void push(Seconds time, EventFn fn, const EventPedigree& pedigree = {}) {
    validate(time);
    validate_event_pedigree(pedigree, time);
    GEARSIM_REQUIRE(next_seq_ < (std::uint64_t{1} << kSeqBits),
                    "event sequence space exhausted");
    const std::uint32_t slot = acquire_slot(std::move(fn));
    place(Key{time, pedigree, (next_seq_++ << kSlotBits) | slot});
  }

  /// Submit every event of `batch` with one call; sequence numbers are
  /// assigned in submission order.  Drains the batch but keeps its
  /// capacity, so callers on the hot path can reuse one instance.
  /// Pedigrees the submitter left unresolved default to all-zero
  /// (queue-direct use); Engine::schedule_batch resolves them to its
  /// dispatch state first.
  void push_batch(EventBatch& batch) {
    for (EventBatch::Item& item : batch.items_) {
      const EventPedigree pedigree =
          std::isnan(item.pedigree.birth.value()) ? EventPedigree{}
                                                  : item.pedigree;
      push(item.time, std::move(item.fn), pedigree);
    }
    batch.clear();
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// Earliest pending event time.  May reorganize internal bands (never
  /// the dispatch order), hence non-const.
  [[nodiscard]] Seconds next_time() {
    GEARSIM_REQUIRE(count_ != 0, "next_time on an empty event queue");
    if (current_.empty()) refill();
    return current_.back().time;
  }

  /// Remove and return the earliest event.
  Popped pop() {
    GEARSIM_REQUIRE(count_ != 0, "pop from an empty event queue");
    if (current_.empty()) refill();
    const Key k = current_.back();
    current_.pop_back();
    --count_;
    if (!current_.empty()) {
      // The next pop's callable lives in a pool slot filled long ago —
      // start the (likely) cache miss now, under this event's execution.
      __builtin_prefetch(&pool_[current_.back().slot()]);
    }
    Popped out{k.time, k.pedigree, k.seq(), std::move(pool_[k.slot()])};
    free_slots_.push_back(k.slot());
    return out;
  }

  /// Pool-slot high-water mark (storage reused across events).
  [[nodiscard]] std::size_t pool_capacity() const { return pool_.size(); }

  /// Drop every pending event, destroying the pooled callables *now* —
  /// at the caller's chosen point — instead of at ~EventQueue.
  /// Engine::terminate_processes relies on this: an aborted run's pending
  /// captures may reference stack objects (world, meters) that outlive
  /// the abort but not the engine, so their destructors must run while
  /// those referents are still alive.  Capacities are kept and sequence
  /// numbering continues, so a cleared queue is immediately reusable.
  void clear() {
    current_.clear();
    for (auto& band : bands_) band.clear();
    overflow_.clear();
    pool_.clear();
    free_slots_.clear();
    width_ = 0.0;
    nb_ = 0;
    band_head_ = 0;
    count_ = 0;
  }

 private:
  /// Band sizing per epoch (calendar-queue rule): aim for a handful of
  /// keys per band so the active band stays tiny — pushes that land below
  /// it pay an insertion proportional to its length, and band width must
  /// stay under the typical schedule increment or every push degrades to
  /// that path.  Band vectors are recycled across epochs, so steady-state
  /// churn still allocates nothing once capacities are warm.
  static constexpr std::size_t kTargetBandOccupancy = 8;
  static constexpr std::size_t kMinBands = 16;
  static constexpr std::size_t kMaxBands = std::size_t{1} << 20;
  static constexpr std::uint32_t kSlotBits = 24;  // <= 16.7M queued events
  static constexpr std::uint32_t kSeqBits = 64 - kSlotBits;
  static constexpr std::uint64_t kSlotMask =
      (std::uint64_t{1} << kSlotBits) - 1;

  /// 40-byte key: the pool slot rides in the low bits of the sequence
  /// word, so comparing `tag` compares insertion order (slots only
  /// differ when sequences do).  The pedigree sits between time and tag
  /// in the order; for a serially-filled queue it is monotone in tag, so
  /// it never changes the serial dispatch order (see the file header).
  struct Key {
    Seconds time;
    EventPedigree pedigree;
    std::uint64_t tag;

    [[nodiscard]] std::uint64_t seq() const { return tag >> kSlotBits; }
    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(tag & kSlotMask);
    }
  };

  static bool earlier(const Key& a, const Key& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.pedigree.birth != b.pedigree.birth) {
      return a.pedigree.birth < b.pedigree.birth;
    }
    if (a.pedigree.parent != b.pedigree.parent) {
      return a.pedigree.parent < b.pedigree.parent;
    }
    if (a.pedigree.grandparent != b.pedigree.grandparent) {
      return a.pedigree.grandparent < b.pedigree.grandparent;
    }
    return a.tag < b.tag;
  }
  /// current_ is sorted descending so the earliest key is at the back.
  static bool later(const Key& a, const Key& b) { return earlier(b, a); }

  static void validate(Seconds time) { validate_event_time(time); }

  std::uint32_t acquire_slot(EventFn fn) {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      pool_[slot] = std::move(fn);
      return slot;
    }
    GEARSIM_REQUIRE(pool_.size() < kSlotMask, "event pool exhausted");
    pool_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  void place(Key k) {
    ++count_;
    if (!(width_ > 0.0)) {
      // No epoch yet (fresh or fully drained queue): stage everything in
      // overflow; the first refill derives (base, width) from the real
      // time spread.
      overflow_.push_back(k);
      return;
    }
    // One fixed monotone band function per epoch — FP error in the
    // boundaries cannot reorder keys, only shift which band sorts them.
    const double band = std::floor((k.time.value() - base_) / width_);
    if (band < static_cast<double>(band_head_)) {
      // Below the active band: belongs among the keys already sorted for
      // dispatch.  Insertion keeps FIFO for equal times (upper_bound).
      current_.insert(
          std::upper_bound(current_.begin(), current_.end(), k, later), k);
    } else if (band < static_cast<double>(nb_)) {
      bands_[static_cast<std::size_t>(band)].push_back(k);
    } else {
      overflow_.push_back(k);
    }
  }

  /// Make current_ non-empty (caller guarantees count_ > 0): advance to
  /// the next non-empty band and sort it; when the epoch is exhausted,
  /// start a new epoch from the overflow staging area.
  void refill() {
    for (;;) {
      while (band_head_ < nb_ && bands_[band_head_].empty()) {
        ++band_head_;
      }
      if (band_head_ < nb_) {
        current_.swap(bands_[band_head_]);  // Recycles both capacities.
        ++band_head_;
        std::sort(current_.begin(), current_.end(), later);
        return;
      }
      GEARSIM_ENSURE(!overflow_.empty(), "event queue lost track of events");
      if (begin_epoch()) return;
    }
  }

  /// Start a new epoch over the overflow staging area.  Returns true if
  /// it filled current_ directly (degenerate zero-width spread).
  bool begin_epoch() {
    double lo = overflow_.front().time.value();
    double hi = lo;
    for (const Key& k : overflow_) {
      lo = std::min(lo, k.time.value());
      hi = std::max(hi, k.time.value());
    }
    base_ = lo;
    band_head_ = 0;
    nb_ = std::clamp(overflow_.size() / kTargetBandOccupancy, kMinBands,
                     kMaxBands);
    if (bands_.size() < nb_) bands_.resize(nb_);  // Never shrinks: reuse.
    const double width = (hi - lo) / static_cast<double>(nb_);
    if (!(width > 0.0)) {
      // All keys at one instant (or a denormal spread): one band.
      width_ = 1.0;
      current_.swap(overflow_);
      std::sort(current_.begin(), current_.end(), later);
      return true;
    }
    width_ = width;
    for (const Key& k : overflow_) {
      const auto band = static_cast<std::size_t>(
          std::min(std::floor((k.time.value() - base_) / width_),
                   static_cast<double>(nb_ - 1)));
      bands_[band].push_back(k);
    }
    overflow_.clear();
    return false;
  }

  std::vector<Key> current_;             ///< Active band, sorted descending.
  std::vector<std::vector<Key>> bands_;  ///< Epoch bands, unsorted.
  std::vector<Key> overflow_;            ///< Beyond the epoch (or no epoch).
  std::vector<EventFn> pool_;
  std::vector<std::uint32_t> free_slots_;
  double base_ = 0.0;                    ///< Epoch origin (seconds).
  double width_ = 0.0;                   ///< Band width; 0 = no epoch.
  std::size_t nb_ = 0;                   ///< Bands in the current epoch.
  std::size_t band_head_ = 0;            ///< First unconsumed band.
  std::size_t count_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace gearsim::sim
