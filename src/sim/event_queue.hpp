// Event queue for the discrete-event kernel.
//
// A min-heap ordered by (time, insertion sequence).  The sequence number
// makes simultaneous events fire in FIFO order, which keeps the whole
// simulation deterministic — a hard requirement for the regression tests
// and for the paper-reproduction harnesses.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace gearsim::sim {

/// Callback fired when simulated time reaches the event's timestamp.
using EventFn = std::function<void()>;

class EventQueue {
 public:
  void push(Seconds time, EventFn fn) {
    heap_.push(Entry{time, next_seq_++, std::move(fn)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] Seconds next_time() const { return heap_.top().time; }

  /// Remove and return the earliest event's callback, advancing nothing.
  EventFn pop(Seconds& time_out) {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    time_out = e.time;
    return std::move(e.fn);
  }

 private:
  struct Entry {
    Seconds time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace gearsim::sim
