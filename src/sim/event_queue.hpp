// Event queue for the discrete-event kernel.
//
// Dispatch order is a hard contract: events fire in strict
// (time, insertion sequence) order — earlier times first, simultaneous
// events FIFO — which keeps the whole simulation deterministic.  The pop
// order is a pure function of that strict total order, so any correct
// queue layout dispatches the exact same event sequence (golden order
// hashes in sim_test pin this across kernel rewrites).
//
// Layout, chosen for the hot path (a 32-node NAS sweep pushes and pops
// millions of events):
//
//   * Calendar-style epoch buckets instead of a heap.  Far-future events
//     are appended unsorted into fixed-width time bands (one vector per
//     band) — an O(1) append with no comparisons.  Pops drain `current_`,
//     a sorted array holding only the earliest band; when it empties the
//     next non-empty band is sorted (a few hundred contiguous 16-byte
//     keys, cache-resident) and becomes current.  A comparison heap was
//     built and measured first: at depth 1e5 its sift path is memory-
//     latency-bound (~8 dependent cache misses per pop, even with 4-ary
//     layout, packed keys and software prefetch), capping it below the
//     old std::function queue × 2.  The bucket design replaces that
//     pointer-chase with sequential appends and small sorts.
//   * Ordering is boundary-proof: a band is assigned by a monotone
//     floor((t - base)/width) for one fixed (base, width) per epoch, so
//     bands partition time monotonically; each band is sorted by
//     (time, seq) before dispatch; events landing below the active band
//     are insertion-sorted into `current_`.  Bucket boundaries therefore
//     affect performance only, never order.
//   * Callables live in a slot pool (vector + free list) reused across
//     events; keys carry the 16-byte (time, seq·2^24 | slot) pair.  After
//     warm-up, push/pop churn allocates nothing (see
//     bench/microbench_engine's allocs-per-event gate) and EventFn's
//     small-buffer optimization keeps captures out of the heap entirely.
//
// Degradation mode: a pathological time distribution (one far outlier
// stretching the epoch) can funnel most keys into one band, making its
// sort large — still correct, amortized O(log n), just less cache-ideal.
// The NAS/Jacobi workloads and the microbench sweep sit far from that
// regime; a multi-rung ladder split is the known upgrade if a workload
// ever hits it.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_fn.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace gearsim::sim {

/// A group of events submitted with one queue operation.  Callers that
/// create several events in one instant (an MPI delivery waking both the
/// receiver and a rendezvous sender, the fault layer arming a crash
/// schedule, the experiment runner starting every rank) batch them so
/// sequence numbers are assigned in submission order with a single call —
/// the dispatch order is exactly what N individual pushes would produce.
/// Reusable: submission drains the items but keeps the capacity.
class EventBatch {
 public:
  void add(Seconds time, EventFn fn) {
    items_.push_back(Item{time, std::move(fn)});
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  void reserve(std::size_t n) { items_.reserve(n); }
  void clear() { items_.clear(); }

  /// Visit the (time, heap-fallback?) metadata of every pending item in
  /// submission order — lets the engine validate times and count the
  /// capture-pool paths without touching the callables.
  template <typename Visitor>
  void visit_meta(Visitor&& v) const {
    for (const Item& item : items_) v(item.time, item.fn.on_heap());
  }

 private:
  friend class EventQueue;
  struct Item {
    Seconds time;
    EventFn fn;
  };
  std::vector<Item> items_;
};

class EventQueue {
 public:
  /// One extracted event.  Extraction moves the callable out of the pool
  /// *before* any container reshuffling, so no moved-from entry is ever
  /// left inside a live container (the old priority_queue + const_cast
  /// pop did exactly that).
  struct Popped {
    Seconds time;
    std::uint64_t seq = 0;
    EventFn fn;
  };

  void push(Seconds time, EventFn fn) {
    validate(time);
    GEARSIM_REQUIRE(next_seq_ < (std::uint64_t{1} << kSeqBits),
                    "event sequence space exhausted");
    const std::uint32_t slot = acquire_slot(std::move(fn));
    place(Key{time, (next_seq_++ << kSlotBits) | slot});
  }

  /// Submit every event of `batch` with one call; sequence numbers are
  /// assigned in submission order.  Drains the batch but keeps its
  /// capacity, so callers on the hot path can reuse one instance.
  void push_batch(EventBatch& batch) {
    for (EventBatch::Item& item : batch.items_) {
      push(item.time, std::move(item.fn));
    }
    batch.clear();
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// Earliest pending event time.  May reorganize internal bands (never
  /// the dispatch order), hence non-const.
  [[nodiscard]] Seconds next_time() {
    GEARSIM_REQUIRE(count_ != 0, "next_time on an empty event queue");
    if (current_.empty()) refill();
    return current_.back().time;
  }

  /// Remove and return the earliest event.
  Popped pop() {
    GEARSIM_REQUIRE(count_ != 0, "pop from an empty event queue");
    if (current_.empty()) refill();
    const Key k = current_.back();
    current_.pop_back();
    --count_;
    if (!current_.empty()) {
      // The next pop's callable lives in a pool slot filled long ago —
      // start the (likely) cache miss now, under this event's execution.
      __builtin_prefetch(&pool_[current_.back().slot()]);
    }
    Popped out{k.time, k.seq(), std::move(pool_[k.slot()])};
    free_slots_.push_back(k.slot());
    return out;
  }

  /// Pool-slot high-water mark (storage reused across events).
  [[nodiscard]] std::size_t pool_capacity() const { return pool_.size(); }

 private:
  /// Band sizing per epoch (calendar-queue rule): aim for a handful of
  /// keys per band so the active band stays tiny — pushes that land below
  /// it pay an insertion proportional to its length, and band width must
  /// stay under the typical schedule increment or every push degrades to
  /// that path.  Band vectors are recycled across epochs, so steady-state
  /// churn still allocates nothing once capacities are warm.
  static constexpr std::size_t kTargetBandOccupancy = 8;
  static constexpr std::size_t kMinBands = 16;
  static constexpr std::size_t kMaxBands = std::size_t{1} << 20;
  static constexpr std::uint32_t kSlotBits = 24;  // <= 16.7M queued events
  static constexpr std::uint32_t kSeqBits = 64 - kSlotBits;
  static constexpr std::uint64_t kSlotMask =
      (std::uint64_t{1} << kSlotBits) - 1;

  /// 16-byte key: the pool slot rides in the low bits of the sequence
  /// word, so comparing `tag` compares insertion order (slots only
  /// differ when sequences do).
  struct Key {
    Seconds time;
    std::uint64_t tag;

    [[nodiscard]] std::uint64_t seq() const { return tag >> kSlotBits; }
    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(tag & kSlotMask);
    }
  };

  static bool earlier(const Key& a, const Key& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.tag < b.tag;
  }
  /// current_ is sorted descending so the earliest key is at the back.
  static bool later(const Key& a, const Key& b) { return earlier(b, a); }

  static void validate(Seconds time) {
    // A NaN time has no place in the (time, seq) total order (every
    // comparison is false), silently corrupting dispatch order; negative
    // and infinite times are always scheduling bugs.  Reject loudly.
    GEARSIM_REQUIRE(std::isfinite(time.value()) && time.value() >= 0.0,
                    "event time must be finite and non-negative");
  }

  std::uint32_t acquire_slot(EventFn fn) {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      pool_[slot] = std::move(fn);
      return slot;
    }
    GEARSIM_REQUIRE(pool_.size() < kSlotMask, "event pool exhausted");
    pool_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  void place(Key k) {
    ++count_;
    if (!(width_ > 0.0)) {
      // No epoch yet (fresh or fully drained queue): stage everything in
      // overflow; the first refill derives (base, width) from the real
      // time spread.
      overflow_.push_back(k);
      return;
    }
    // One fixed monotone band function per epoch — FP error in the
    // boundaries cannot reorder keys, only shift which band sorts them.
    const double band = std::floor((k.time.value() - base_) / width_);
    if (band < static_cast<double>(band_head_)) {
      // Below the active band: belongs among the keys already sorted for
      // dispatch.  Insertion keeps FIFO for equal times (upper_bound).
      current_.insert(
          std::upper_bound(current_.begin(), current_.end(), k, later), k);
    } else if (band < static_cast<double>(nb_)) {
      bands_[static_cast<std::size_t>(band)].push_back(k);
    } else {
      overflow_.push_back(k);
    }
  }

  /// Make current_ non-empty (caller guarantees count_ > 0): advance to
  /// the next non-empty band and sort it; when the epoch is exhausted,
  /// start a new epoch from the overflow staging area.
  void refill() {
    for (;;) {
      while (band_head_ < nb_ && bands_[band_head_].empty()) {
        ++band_head_;
      }
      if (band_head_ < nb_) {
        current_.swap(bands_[band_head_]);  // Recycles both capacities.
        ++band_head_;
        std::sort(current_.begin(), current_.end(), later);
        return;
      }
      GEARSIM_ENSURE(!overflow_.empty(), "event queue lost track of events");
      if (begin_epoch()) return;
    }
  }

  /// Start a new epoch over the overflow staging area.  Returns true if
  /// it filled current_ directly (degenerate zero-width spread).
  bool begin_epoch() {
    double lo = overflow_.front().time.value();
    double hi = lo;
    for (const Key& k : overflow_) {
      lo = std::min(lo, k.time.value());
      hi = std::max(hi, k.time.value());
    }
    base_ = lo;
    band_head_ = 0;
    nb_ = std::clamp(overflow_.size() / kTargetBandOccupancy, kMinBands,
                     kMaxBands);
    if (bands_.size() < nb_) bands_.resize(nb_);  // Never shrinks: reuse.
    const double width = (hi - lo) / static_cast<double>(nb_);
    if (!(width > 0.0)) {
      // All keys at one instant (or a denormal spread): one band.
      width_ = 1.0;
      current_.swap(overflow_);
      std::sort(current_.begin(), current_.end(), later);
      return true;
    }
    width_ = width;
    for (const Key& k : overflow_) {
      const auto band = static_cast<std::size_t>(
          std::min(std::floor((k.time.value() - base_) / width_),
                   static_cast<double>(nb_ - 1)));
      bands_[band].push_back(k);
    }
    overflow_.clear();
    return false;
  }

  std::vector<Key> current_;             ///< Active band, sorted descending.
  std::vector<std::vector<Key>> bands_;  ///< Epoch bands, unsorted.
  std::vector<Key> overflow_;            ///< Beyond the epoch (or no epoch).
  std::vector<EventFn> pool_;
  std::vector<std::uint32_t> free_slots_;
  double base_ = 0.0;                    ///< Epoch origin (seconds).
  double width_ = 0.0;                   ///< Band width; 0 = no epoch.
  std::size_t nb_ = 0;                   ///< Bands in the current epoch.
  std::size_t band_head_ = 0;            ///< First unconsumed band.
  std::size_t count_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace gearsim::sim
