#include "sim/engine.hpp"

#include <bit>
#include <utility>

#include "util/log.hpp"

namespace gearsim::sim {

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Engine& engine, std::string name,
                 std::function<void(Process&)> body)
    : engine_(engine), name_(std::move(name)), body_(std::move(body)) {}

Process::~Process() {
  // Engine::~Engine terminates live processes before destroying them; by
  // the time we get here the thread has either finished or never started.
  if (thread_.joinable()) thread_.join();
}

Seconds Process::now() const { return engine_.now(); }

void Process::start_thread() {
  thread_ = std::thread([this] {
    // Wait for the first resume() before touching simulation state.
    run_sem_.acquire();
    if (!terminate_requested_) {
      try {
        state_ = State::kRunning;
        body_(*this);
      } catch (const ProcessTerminated&) {
        // Engine teardown: unwind silently.
      } catch (...) {
        error_ = std::current_exception();
      }
    }
    state_ = State::kFinished;
    done_sem_.release();
  });
}

void Process::resume() {
  run_sem_.release();
  done_sem_.acquire();
}

void Process::yield_to_engine() {
  done_sem_.release();
  run_sem_.acquire();
  if (terminate_requested_) throw ProcessTerminated{};
  state_ = State::kRunning;
}

void Process::delay(Seconds d) {
  GEARSIM_REQUIRE(state_ == State::kRunning, "delay() outside process body");
  GEARSIM_REQUIRE(d.value() >= 0.0, "negative delay");
  state_ = State::kDelayed;
  engine_.schedule_after(d, [this] { resume(); });
  yield_to_engine();
}

void Process::block() {
  GEARSIM_REQUIRE(state_ == State::kRunning, "block() outside process body");
  state_ = State::kBlocked;
  yield_to_engine();
}

void Process::wake() {
  GEARSIM_REQUIRE(state_ == State::kBlocked,
                  "wake() targets a process that is not blocked");
  state_ = State::kReady;
  engine_.schedule_at(engine_.now(), [this] { resume(); });
}

void Process::wake(EventBatch& into) {
  GEARSIM_REQUIRE(state_ == State::kBlocked,
                  "wake() targets a process that is not blocked");
  state_ = State::kReady;
  into.add(engine_.now(), [this] { resume(); });
}

void Process::terminate() {
  if (state_ == State::kFinished) return;
  terminate_requested_ = true;
  resume();  // releases run_sem; thread unwinds and releases done_sem.
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::~Engine() { terminate_processes(); }

void Engine::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_events_ = nullptr;
    m_spawned_ = nullptr;
    m_queue_high_water_ = nullptr;
    m_pool_inline_ = nullptr;
    m_pool_fallback_ = nullptr;
    return;
  }
  m_events_ = &metrics->counter("sim.engine.events_dispatched");
  m_spawned_ = &metrics->counter("sim.engine.processes_spawned");
  m_queue_high_water_ = &metrics->gauge("sim.engine.queue_high_water");
  m_pool_inline_ = &metrics->counter("sim.engine.pool.inline_events");
  m_pool_fallback_ = &metrics->counter("sim.engine.pool.fallback_allocs");
}

void Engine::terminate_processes() {
  // Unwind the process threads first — their stack destructors may
  // schedule or reference nothing, but they must not observe a
  // half-destroyed queue — then destroy the dropped pending events while
  // the objects their captures reference (world, meters, stack locals of
  // the aborted run) are still alive.  Leaving them for ~Engine is the
  // bug this ordering fixes: member destruction runs in reverse
  // declaration order, so processes_ (and any later-declared stack
  // objects the captures point at) would already be gone when the pooled
  // callables finally died.
  for (auto& p : processes_) p->terminate();
  queue_.clear();
}

void Engine::schedule_at(Seconds t, EventFn fn) {
  GEARSIM_REQUIRE(t >= now_, "event scheduled in the past");
  count_pool_path(fn.on_heap());
  // The new event's pedigree: born now, by the event currently being
  // dispatched, whose own birth and parent become the ancestor keys.
  queue_.push(t, std::move(fn),
              EventPedigree{now_, current_pedigree_.birth,
                            current_pedigree_.parent});
  if (m_queue_high_water_ != nullptr) {
    m_queue_high_water_->set(static_cast<double>(queue_.size()));
  }
}

void Engine::schedule_after(Seconds dt, EventFn fn) {
  GEARSIM_REQUIRE(dt.value() >= 0.0, "negative event delay");
  schedule_at(now_ + dt, std::move(fn));
}

void Engine::schedule_batch(EventBatch& batch) {
  batch.visit_meta([this](Seconds t, bool on_heap) {
    GEARSIM_REQUIRE(t >= now_, "event scheduled in the past");
    count_pool_path(on_heap);
  });
  // Items without an explicit pedigree are being inserted *now*, by the
  // event currently dispatching — stamp them so the (time, pedigree,
  // seq) order sees their true insertion provenance (mailbox items from
  // ParallelEngine carry their serial values already and keep them).
  batch.fill_pedigrees(EventPedigree{now_, current_pedigree_.birth,
                                     current_pedigree_.parent});
  queue_.push_batch(batch);
  if (m_queue_high_water_ != nullptr) {
    m_queue_high_water_->set(static_cast<double>(queue_.size()));
  }
}

void Engine::count_pool_path(bool on_heap) {
  if (on_heap) {
    ++pool_fallback_allocs_;
    if (m_pool_fallback_ != nullptr) m_pool_fallback_->add();
  } else {
    ++pool_inline_events_;
    if (m_pool_inline_ != nullptr) m_pool_inline_->add();
  }
}

Process& Engine::spawn(std::string name, std::function<void(Process&)> body) {
  auto proc = std::unique_ptr<Process>(
      new Process(*this, std::move(name), std::move(body)));
  Process& ref = *proc;
  ref.start_thread();
  ref.state_ = Process::State::kReady;
  schedule_at(now_, [&ref] { ref.resume(); });
  processes_.push_back(std::move(proc));
  if (m_spawned_ != nullptr) m_spawned_->add();
  return ref;
}

Process& Engine::spawn(std::string name, std::function<void(Process&)> body,
                       EventBatch& into) {
  auto proc = std::unique_ptr<Process>(
      new Process(*this, std::move(name), std::move(body)));
  Process& ref = *proc;
  ref.start_thread();
  ref.state_ = Process::State::kReady;
  into.add(now_, [&ref] { ref.resume(); });
  processes_.push_back(std::move(proc));
  if (m_spawned_ != nullptr) m_spawned_->add();
  return ref;
}

void Engine::dispatch_one() {
  EventQueue::Popped ev = queue_.pop();
  now_ = ev.time;
  current_pedigree_ = ev.pedigree;
  ++events_executed_;
  // Dispatch-order fingerprint: the time identifies *when*, the insertion
  // seq identifies *which* of several simultaneous events ran — together
  // they pin the exact execution order of the whole run.
  order_hash_ = util::fnv1a_mix(order_hash_,
                                std::bit_cast<std::uint64_t>(ev.time.value()));
  order_hash_ = util::fnv1a_mix(order_hash_, ev.seq);
  // Order-independent companion: a commutative (wrapping-sum) fold over
  // per-event time hashes, so repartitioning the same events across
  // ParallelEngine partitions leaves it unchanged.
  event_set_hash_ += util::fnv1a_mix(
      util::kFnv1aOffset, std::bit_cast<std::uint64_t>(ev.time.value()));
  if (m_events_ != nullptr) m_events_->add();
  ev.fn();
}

void Engine::check_deadlock() const {
  for (const auto& p : processes_) {
    if (p->state() == Process::State::kBlocked) {
      std::string blocked;
      for (const auto& q : processes_) {
        if (q->state() == Process::State::kBlocked) {
          if (!blocked.empty()) blocked += ", ";
          blocked += q->name();
        }
      }
      throw SimulationError(
          "simulation deadlock: event queue empty with blocked processes [" +
          blocked + "] at t=" + std::to_string(now().value()) + "s");
    }
  }
}

void Engine::rethrow_process_error() {
  for (auto& p : processes_) {
    if (p->error_) {
      const std::exception_ptr err = std::exchange(p->error_, nullptr);
      std::rethrow_exception(err);
    }
  }
}

void Engine::run() {
  GEARSIM_REQUIRE(!running_, "Engine::run is not reentrant");
  running_ = true;
  while (!queue_.empty()) {
    dispatch_one();
    rethrow_process_error();
  }
  running_ = false;
  check_deadlock();
}

std::uint64_t Engine::run_window(Seconds horizon) {
  GEARSIM_REQUIRE(!running_, "Engine::run is not reentrant");
  running_ = true;
  std::uint64_t dispatched = 0;
  while (!queue_.empty() && queue_.next_time() < horizon) {
    dispatch_one();
    ++dispatched;
    rethrow_process_error();
  }
  running_ = false;
  return dispatched;
}

void Engine::run_until(Seconds t) {
  GEARSIM_REQUIRE(!running_, "Engine::run is not reentrant");
  running_ = true;
  while (!queue_.empty() && queue_.next_time() <= t) {
    dispatch_one();
    rethrow_process_error();
  }
  running_ = false;
  if (now_ < t && queue_.empty()) now_ = t;
}

}  // namespace gearsim::sim
