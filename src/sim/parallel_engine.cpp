#include "sim/parallel_engine.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <thread>
#include <utility>

#include "util/assert.hpp"

namespace gearsim::sim {

namespace {

int resolve_partition_threads(int threads, std::size_t partitions) {
  if (threads == 0) return static_cast<int>(partitions);
  if (threads < 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::clamp(threads, 1, static_cast<int>(partitions));
}

}  // namespace

ParallelEngine::ParallelEngine(std::size_t partitions, Seconds lookahead,
                               int threads)
    : lookahead_(lookahead),
      pool_(resolve_partition_threads(threads, std::max<std::size_t>(
                                                   partitions, 1))) {
  GEARSIM_REQUIRE(partitions >= 1, "ParallelEngine needs >= 1 partition");
  GEARSIM_REQUIRE(std::isfinite(lookahead.value()) && lookahead.value() > 0.0,
                  "conservative lookahead must be finite and positive");
  parts_.reserve(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    auto engine = std::make_unique<Engine>();
    engine->partition_id_ = p;
    parts_.push_back(std::move(engine));
  }
  lanes_.resize(partitions * (partitions + 1));
}

ParallelEngine::~ParallelEngine() { terminate_processes(); }

Engine& ParallelEngine::partition(std::size_t p) {
  GEARSIM_REQUIRE(p < parts_.size(), "partition index out of range");
  return *parts_[p];
}

void ParallelEngine::post(Engine& from, std::size_t to, Seconds t,
                          EventFn fn) {
  GEARSIM_REQUIRE(to < parts_.size(), "post target partition out of range");
  const std::size_t src = from.partition_id();
  GEARSIM_REQUIRE(src < parts_.size() && parts_[src].get() == &from,
                  "post source is not a partition of this group");
  // The conservative bound.  During a window the horizon is T + lookahead
  // and every dispatching partition sits at now() >= T, so any event
  // delayed by at least the lookahead satisfies this by construction; a
  // violation means the caller modeled a cross-partition interaction
  // faster than the declared lookahead.
  GEARSIM_REQUIRE(t >= horizon_,
                  "cross-partition event below the conservative horizon");
  // Pedigree: born at the poster's current instant, by the posting event
  // — exactly where a serial engine would have inserted this event, and
  // by whom.  The destination queue orders simultaneous events by
  // pedigree before seq, so the late physical insertion (at the barrier)
  // does not disturb the serial-equivalent dispatch order.
  const EventPedigree& p = from.current_event_pedigree();
  lane(to, src).add(t, std::move(fn),
                    EventPedigree{from.now(), p.birth, p.parent});
}

void ParallelEngine::post_at_barrier(std::size_t to, Seconds t, EventFn fn) {
  post_at_barrier(to, t, std::move(fn), EventPedigree{now_, now_, now_});
}

void ParallelEngine::post_at_barrier(std::size_t to, Seconds t, EventFn fn,
                                     const EventPedigree& pedigree) {
  GEARSIM_REQUIRE(to < parts_.size(), "post target partition out of range");
  GEARSIM_REQUIRE(t >= horizon_,
                  "cross-partition event below the conservative horizon");
  lane(to, parts_.size()).add(t, std::move(fn), pedigree);
}

void ParallelEngine::drain_mailboxes() {
  const std::size_t p = parts_.size();
  for (std::size_t to = 0; to < p; ++to) {
    for (std::size_t from = 0; from <= p; ++from) {
      EventBatch& batch = lane(to, from);
      if (!batch.empty()) parts_[to]->schedule_batch(batch);
    }
  }
}

void ParallelEngine::run() {
  GEARSIM_REQUIRE(!running_, "ParallelEngine::run is not reentrant");
  running_ = true;
  const auto threads = static_cast<std::size_t>(pool_.threads());
  std::vector<std::exception_ptr> errors(parts_.size());

  for (;;) {
    // Mailboxes are empty here (drained after every window), so the
    // earliest pending event over all partition queues is the true
    // global minimum.
    bool any = false;
    Seconds start{0.0};
    for (auto& part : parts_) {
      if (!part->has_pending()) continue;
      const Seconds t = part->next_event_time();
      if (!any || t < start) start = t;
      any = true;
    }
    if (!any) break;
    now_ = start;
    horizon_ = start + lookahead_;

    // One window: worker w runs partitions w, w+threads, ...  Errors are
    // recorded per partition and the lowest-indexed one rethrown below,
    // so the surfaced error does not depend on the thread count.
    pool_.run([&](int w) {
      for (std::size_t p = static_cast<std::size_t>(w); p < parts_.size();
           p += threads) {
        try {
          parts_[p]->run_window(horizon_);
        } catch (...) {
          errors[p] = std::current_exception();
        }
      }
    });
    ++windows_;
    for (auto& error : errors) {
      if (error) {
        running_ = false;
        std::rethrow_exception(std::exchange(error, nullptr));
      }
    }

    if (barrier_hook_) barrier_hook_();
    drain_mailboxes();
  }

  running_ = false;
  for (const auto& part : parts_) part->check_deadlock();
}

void ParallelEngine::terminate_processes() {
  for (auto& part : parts_) part->terminate_processes();
  // Undelivered mailbox posts hold callables too — destroy them now,
  // while their referents are still alive (same reasoning as the queue
  // clear in Engine::terminate_processes).
  for (auto& batch : lanes_) batch.clear();
}

std::uint64_t ParallelEngine::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& part : parts_) n += part->events_executed();
  return n;
}

std::uint64_t ParallelEngine::event_set_hash() const {
  std::uint64_t h = 0;
  for (const auto& part : parts_) h += part->event_set_hash();
  return h;
}

std::uint64_t ParallelEngine::pool_inline_events() const {
  std::uint64_t n = 0;
  for (const auto& part : parts_) n += part->pool_inline_events();
  return n;
}

std::uint64_t ParallelEngine::pool_fallback_allocs() const {
  std::uint64_t n = 0;
  for (const auto& part : parts_) n += part->pool_fallback_allocs();
  return n;
}

}  // namespace gearsim::sim
