// CPU timing model for a frequency-scalable node.
//
// A compute block (uops, misses) executes in
//
//     T(g) = uops / (upc_eff * f_g)  +  misses * L_mem
//
// The first term scales with the clock; the second — main-memory service
// time — does not.  This single property produces the paper's central
// observations:
//
//  * the slowdown bound  1 <= T_{i+1}/T_i <= f_i/f_{i+1}  (Section 3.1);
//  * UPM (uops per miss) determines where a program sits between the
//    CPU-bound (EP) and memory-bound (CG) extremes;
//  * measured UPC *rises* at lower gears for memory-bound codes, because
//    memory latency shrinks when expressed in (longer) CPU cycles.
#pragma once

#include <cstddef>

#include "cpu/compute.hpp"
#include "cpu/gear.hpp"
#include "util/units.hpp"

namespace gearsim::cpu {

struct CpuParams {
  /// Effective micro-ops per cycle when not stalled on main memory.
  /// Folds in all non-memory stalls; calibrated, not a datasheet number.
  double upc_eff = 0.5;
  /// Main-memory (L2 miss) service latency; frequency-independent.
  Seconds mem_latency = nanoseconds(49.0);
};

/// Timing model: pure function of (block, gear); owns the gear table.
class CpuModel {
 public:
  CpuModel(CpuParams params, GearTable gears);

  [[nodiscard]] const GearTable& gears() const { return gears_; }
  [[nodiscard]] const CpuParams& params() const { return params_; }

  /// Wall time to execute `block` at gear `gear_index` (0-based).
  [[nodiscard]] Seconds execute_time(const ComputeBlock& block,
                                     std::size_t gear_index) const;

  /// Fraction of execute_time spent with the CPU on the critical path
  /// (the uops term); the rest is memory stall.  In (0, 1].
  [[nodiscard]] double cpu_bound_fraction(const ComputeBlock& block,
                                          std::size_t gear_index) const;

  /// Observed micro-ops per cycle at a gear (the paper's UPC): uops
  /// divided by elapsed cycles at that gear's clock.
  [[nodiscard]] double observed_upc(const ComputeBlock& block,
                                    std::size_t gear_index) const;

  /// T(gear) / T(fastest) for a block: the per-block slowdown S_g.
  [[nodiscard]] double slowdown(const ComputeBlock& block,
                                std::size_t gear_index) const;

  /// The dimensionless CPU/memory balance kappa = UPM / (upc_eff*f1*L):
  /// ratio of CPU time to memory time at the fastest gear.  Large kappa
  /// means CPU-bound (EP); small means memory-bound (CG).
  [[nodiscard]] double kappa(double upm) const;

  /// Invert kappa: the per-block UPM that produces a given balance.
  [[nodiscard]] double upm_for_kappa(double kappa) const;

 private:
  CpuParams params_;
  GearTable gears_;
};

}  // namespace gearsim::cpu
