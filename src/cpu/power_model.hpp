// Whole-system power model of one power-scalable node.
//
// The paper measures *system* power at the wall outlet: roughly 140-150 W
// at the fastest gear, of which the CPU accounts for 45-55%.  We model
//
//   P_active(g, busy) = P_base
//                     + P_cpu_static * (V_g / V_1)
//                     + P_cpu_dyn * (V_g/V_1)^2 (f_g/f_1) * alpha(busy)
//
// where `busy` is the fraction of active time the CPU is genuinely
// executing (vs stalled on memory), and alpha interpolates between a
// stall floor and full switching activity: a stalled core still clocks
// most of its logic.  Idle (blocked-in-MPI) power replaces the dynamic
// term with a small halt-state residue, giving the paper's per-gear I_g.
#pragma once

#include <cstddef>

#include "cpu/gear.hpp"
#include "util/units.hpp"

namespace gearsim::cpu {

struct PowerParams {
  /// Everything that is not the CPU: board, memory, disk, NIC, PSU loss.
  Watts base = watts(70.0);
  /// CPU leakage at the fastest gear's voltage (scales ~linearly with V).
  Watts cpu_static = watts(20.0);
  /// CPU dynamic power at the fastest gear, fully busy (scales with V^2 f).
  Watts cpu_dynamic = watts(55.0);
  /// Dynamic-power floor while stalled: alpha = floor + (1-floor)*busy.
  double stall_activity_floor = 0.85;
  /// Dynamic activity of a core blocked in MPI, as a fraction of
  /// full-busy dynamic power.  2005-era MPI progress engines busy-poll
  /// the socket rather than sleeping, so a blocked rank still clocks a
  /// substantial fraction of the pipeline — which is also why I_g falls
  /// visibly with the gear.
  double idle_activity = 0.30;
};

/// Pure function of (gear, activity); owns its gear table by reference
/// semantics of the caller (copies the table — tables are tiny).
class PowerModel {
 public:
  PowerModel(PowerParams params, GearTable gears);

  [[nodiscard]] const PowerParams& params() const { return params_; }
  [[nodiscard]] const GearTable& gears() const { return gears_; }

  /// System power while computing with the given CPU-busy fraction
  /// (cpu::CpuModel::cpu_bound_fraction of the running block).
  [[nodiscard]] Watts active_power(std::size_t gear_index,
                                   double busy_fraction) const;

  /// System power while blocked in communication / idle, per gear — the
  /// paper's I_g.
  [[nodiscard]] Watts idle_power(std::size_t gear_index) const;

  /// CPU-only share of active power (for the 45-55% sanity checks).
  [[nodiscard]] double cpu_share(std::size_t gear_index,
                                 double busy_fraction) const;

 private:
  [[nodiscard]] Watts cpu_power(std::size_t gear_index, double activity) const;

  PowerParams params_;
  GearTable gears_;
};

}  // namespace gearsim::cpu
