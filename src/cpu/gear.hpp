// DVFS gears: the discrete frequency/voltage operating points of a
// power-scalable node.
//
// Follows the paper's convention: gear 1 is the fastest.  Internally the
// table is 0-indexed; `GearTable::gear(i)` takes the 0-based index and
// `Gear::label` carries the 1-based paper-style number for reporting.
#pragma once

#include <cstddef>
#include <vector>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace gearsim::cpu {

struct Gear {
  int label = 0;        ///< 1-based, paper convention (1 = fastest).
  Hertz frequency{};    ///< Core clock at this operating point.
  Volts voltage{};      ///< Supply voltage at this operating point.
};

/// An ordered set of operating points, fastest first.  Immutable after
/// construction; validated to be strictly decreasing in frequency and
/// non-increasing in voltage.
class GearTable {
 public:
  explicit GearTable(std::vector<Gear> gears) : gears_(std::move(gears)) {
    GEARSIM_REQUIRE(!gears_.empty(), "gear table may not be empty");
    for (std::size_t i = 0; i < gears_.size(); ++i) {
      GEARSIM_REQUIRE(gears_[i].frequency.value() > 0.0, "non-positive frequency");
      GEARSIM_REQUIRE(gears_[i].voltage.value() > 0.0, "non-positive voltage");
      if (i > 0) {
        GEARSIM_REQUIRE(gears_[i].frequency < gears_[i - 1].frequency,
                        "gears must be strictly decreasing in frequency");
        GEARSIM_REQUIRE(gears_[i].voltage <= gears_[i - 1].voltage,
                        "voltage must not increase at slower gears");
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return gears_.size(); }
  [[nodiscard]] const Gear& gear(std::size_t index) const {
    GEARSIM_REQUIRE(index < gears_.size(), "gear index out of range");
    return gears_[index];
  }
  [[nodiscard]] const Gear& fastest() const { return gears_.front(); }
  [[nodiscard]] const Gear& slowest() const { return gears_.back(); }

  /// f_fastest / f_gear — the paper's upper bound on slowdown.
  [[nodiscard]] double cycle_time_ratio(std::size_t index) const {
    return fastest().frequency / gear(index).frequency;
  }

  [[nodiscard]] auto begin() const { return gears_.begin(); }
  [[nodiscard]] auto end() const { return gears_.end(); }

 private:
  std::vector<Gear> gears_;
};

/// The paper's AMD Athlon-64 gear ladder: 2000..800 MHz, 1.5..1.0 V.
/// (The 1000 MHz point is absent — the paper reports it was unreliable.)
/// Voltages are calibrated within the paper's stated 1.5-1.0 V range so
/// that the measured CG/EP energy-delay percentages land in-band; see
/// DESIGN.md §5.
inline GearTable athlon64_gears() {
  return GearTable({
      {1, megahertz(2000), volts(1.50)},
      {2, megahertz(1800), volts(1.35)},
      {3, megahertz(1600), volts(1.30)},
      {4, megahertz(1400), volts(1.25)},
      {5, megahertz(1200), volts(1.15)},
      {6, megahertz(800), volts(1.00)},
  });
}

/// A fixed-frequency (non-power-scalable) table, e.g. the Sun cluster the
/// paper uses for cross-validation of its scalability fits.
inline GearTable fixed_gear(Hertz f, Volts v) {
  return GearTable({{1, f, v}});
}

}  // namespace gearsim::cpu
