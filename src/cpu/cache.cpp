#include "cpu/cache.hpp"

namespace gearsim::cpu {

namespace {
bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

unsigned log2_exact(std::uint64_t v) {
  unsigned shift = 0;
  while ((1ULL << shift) < v) ++shift;
  return shift;
}
}  // namespace

CacheSim::CacheSim(CacheConfig config) : config_(config) {
  GEARSIM_REQUIRE(is_power_of_two(config_.line_size), "line size must be 2^k");
  GEARSIM_REQUIRE(config_.associativity > 0, "associativity must be positive");
  GEARSIM_REQUIRE(config_.size % (config_.line_size * config_.associativity) == 0,
                  "capacity must be a whole number of sets");
  sets_ = config_.size / (config_.line_size * config_.associativity);
  GEARSIM_REQUIRE(is_power_of_two(sets_), "set count must be 2^k");
  line_shift_ = log2_exact(config_.line_size);
  ways_.resize(sets_ * config_.associativity);
}

bool CacheSim::access(std::uint64_t address) {
  ++stats_.accesses;
  ++tick_;
  const std::uint64_t line = address >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line) & (sets_ - 1);
  const std::uint64_t tag = line >> log2_exact(sets_);
  Way* base = &ways_[set * config_.associativity];

  Way* victim = base;
  for (unsigned w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = tick_;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // Prefer an invalid way over evicting.
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

std::uint64_t CacheSim::access_range(std::uint64_t address, Bytes bytes) {
  if (bytes == 0) return 0;
  const std::uint64_t first = address >> line_shift_;
  const std::uint64_t last = (address + bytes - 1) >> line_shift_;
  std::uint64_t misses = 0;
  for (std::uint64_t line = first; line <= last; ++line) {
    if (!access(line << line_shift_)) ++misses;
  }
  return misses;
}

void CacheSim::flush() {
  for (auto& way : ways_) way.valid = false;
}

}  // namespace gearsim::cpu
