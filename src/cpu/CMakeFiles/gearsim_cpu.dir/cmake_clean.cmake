file(REMOVE_RECURSE
  "CMakeFiles/gearsim_cpu.dir/cache.cpp.o"
  "CMakeFiles/gearsim_cpu.dir/cache.cpp.o.d"
  "CMakeFiles/gearsim_cpu.dir/cpu_model.cpp.o"
  "CMakeFiles/gearsim_cpu.dir/cpu_model.cpp.o.d"
  "CMakeFiles/gearsim_cpu.dir/power_model.cpp.o"
  "CMakeFiles/gearsim_cpu.dir/power_model.cpp.o.d"
  "libgearsim_cpu.a"
  "libgearsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
