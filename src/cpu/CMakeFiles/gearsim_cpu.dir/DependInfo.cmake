
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cache.cpp" "src/cpu/CMakeFiles/gearsim_cpu.dir/cache.cpp.o" "gcc" "src/cpu/CMakeFiles/gearsim_cpu.dir/cache.cpp.o.d"
  "/root/repo/src/cpu/cpu_model.cpp" "src/cpu/CMakeFiles/gearsim_cpu.dir/cpu_model.cpp.o" "gcc" "src/cpu/CMakeFiles/gearsim_cpu.dir/cpu_model.cpp.o.d"
  "/root/repo/src/cpu/power_model.cpp" "src/cpu/CMakeFiles/gearsim_cpu.dir/power_model.cpp.o" "gcc" "src/cpu/CMakeFiles/gearsim_cpu.dir/power_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/gearsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
