file(REMOVE_RECURSE
  "libgearsim_cpu.a"
)
