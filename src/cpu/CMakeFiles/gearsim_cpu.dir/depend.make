# Empty dependencies file for gearsim_cpu.
# This may be replaced when dependencies are built.
