// Compute blocks: the unit of work the CPU timing model consumes.
//
// The paper characterizes programs by UPM — micro-operations per memory
// reference (per L2 miss) — because it is gear-invariant and predicts the
// energy-time slope.  A ComputeBlock is exactly that characterization:
// a count of retired micro-ops plus a count of L2 misses.
#pragma once

#include "util/assert.hpp"

namespace gearsim::cpu {

struct ComputeBlock {
  double uops = 0.0;       ///< Retired micro-operations.
  double l2_misses = 0.0;  ///< Main-memory references (L2 misses).
  /// Memory-level parallelism: the fraction of micro-ops issued in the
  /// shadow of outstanding misses.  Overlapped work does not occupy the
  /// frequency-scaled critical path, so timing sees (1-overlap)*uops while
  /// the UPM *counters* are unchanged — this is how a code can sit out of
  /// UPM order in its energy-time slope (the paper's Table-1 outlier).
  double overlap = 0.0;

  /// Micro-ops per miss; the paper's Table-1 metric.  Requires misses > 0.
  [[nodiscard]] double upm() const {
    GEARSIM_REQUIRE(l2_misses > 0.0, "UPM undefined without memory traffic");
    return uops / l2_misses;
  }

  /// Micro-ops on the frequency-scaled critical path.
  [[nodiscard]] double critical_uops() const { return uops * (1.0 - overlap); }

  [[nodiscard]] ComputeBlock scaled(double factor) const {
    GEARSIM_REQUIRE(factor >= 0.0, "negative scale factor");
    return {uops * factor, l2_misses * factor, overlap};
  }

  friend ComputeBlock operator+(ComputeBlock a, ComputeBlock b) {
    // Combine with a uop-weighted overlap so critical work adds exactly.
    const double uops = a.uops + b.uops;
    const double crit = a.critical_uops() + b.critical_uops();
    return {uops, a.l2_misses + b.l2_misses,
            uops > 0.0 ? 1.0 - crit / uops : 0.0};
  }
  ComputeBlock& operator+=(ComputeBlock o) { return *this = *this + o; }
};

/// Build a block from a target UPM and a miss count.
inline ComputeBlock block_from_upm(double upm, double misses,
                                   double overlap = 0.0) {
  GEARSIM_REQUIRE(upm > 0.0 && misses > 0.0, "UPM and misses must be positive");
  GEARSIM_REQUIRE(overlap >= 0.0 && overlap < 1.0, "overlap must be in [0,1)");
  return {upm * misses, misses, overlap};
}

}  // namespace gearsim::cpu
