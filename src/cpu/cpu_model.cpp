#include "cpu/cpu_model.hpp"

namespace gearsim::cpu {

CpuModel::CpuModel(CpuParams params, GearTable gears)
    : params_(params), gears_(std::move(gears)) {
  GEARSIM_REQUIRE(params_.upc_eff > 0.0, "upc_eff must be positive");
  GEARSIM_REQUIRE(params_.mem_latency.value() > 0.0,
                  "memory latency must be positive");
}

Seconds CpuModel::execute_time(const ComputeBlock& block,
                               std::size_t gear_index) const {
  GEARSIM_REQUIRE(block.uops >= 0.0 && block.l2_misses >= 0.0,
                  "negative work in compute block");
  const Gear& g = gears_.gear(gear_index);
  const Seconds cpu_part =
      cycles_over(block.critical_uops() / params_.upc_eff, g.frequency);
  const Seconds mem_part = params_.mem_latency * block.l2_misses;
  return cpu_part + mem_part;
}

double CpuModel::cpu_bound_fraction(const ComputeBlock& block,
                                    std::size_t gear_index) const {
  const Gear& g = gears_.gear(gear_index);
  const double cpu =
      block.critical_uops() / (params_.upc_eff * g.frequency.value());
  const double mem = params_.mem_latency.value() * block.l2_misses;
  const double total = cpu + mem;
  GEARSIM_REQUIRE(total > 0.0, "empty compute block has no bound fraction");
  return cpu / total;
}

double CpuModel::observed_upc(const ComputeBlock& block,
                              std::size_t gear_index) const {
  const Gear& g = gears_.gear(gear_index);
  const double cycles =
      execute_time(block, gear_index).value() * g.frequency.value();
  GEARSIM_REQUIRE(cycles > 0.0, "zero-duration block has no UPC");
  return block.uops / cycles;
}

double CpuModel::slowdown(const ComputeBlock& block,
                          std::size_t gear_index) const {
  return execute_time(block, gear_index) / execute_time(block, 0);
}

double CpuModel::kappa(double upm) const {
  GEARSIM_REQUIRE(upm > 0.0, "UPM must be positive");
  return upm / (params_.upc_eff * gears_.fastest().frequency.value() *
                params_.mem_latency.value());
}

double CpuModel::upm_for_kappa(double k) const {
  GEARSIM_REQUIRE(k > 0.0, "kappa must be positive");
  return k * params_.upc_eff * gears_.fastest().frequency.value() *
         params_.mem_latency.value();
}

}  // namespace gearsim::cpu
