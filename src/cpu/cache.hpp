// Set-associative LRU cache simulator.
//
// Used to *characterize* workloads rather than to execute them: the
// synthetic benchmark of the paper's Figure 4 is defined by its L2 miss
// rate (7%), and this simulator derives miss counts from concrete access
// patterns so the characterization is grounded in a real mechanism instead
// of a hard-coded constant.  Models one level; compose two instances for
// an L1/L2 hierarchy.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace gearsim::cpu {

struct CacheConfig {
  Bytes size = kilobytes(512);  ///< Total capacity.
  Bytes line_size = 64;         ///< Bytes per line; power of two.
  unsigned associativity = 16;  ///< Ways per set.
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;

  [[nodiscard]] double miss_rate() const {
    GEARSIM_REQUIRE(accesses > 0, "miss rate of an untouched cache");
    return static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

class CacheSim {
 public:
  explicit CacheSim(CacheConfig config);

  /// Touch one byte address; returns true on hit.  LRU within the set.
  bool access(std::uint64_t address);

  /// Touch every line of [address, address+bytes); returns miss count.
  std::uint64_t access_range(std::uint64_t address, Bytes bytes);

  void reset_stats() { stats_ = {}; }
  void flush();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_sets() const { return sets_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< Larger = more recently used.
    bool valid = false;
  };

  CacheConfig config_;
  std::size_t sets_;
  unsigned line_shift_;
  std::vector<Way> ways_;  ///< sets_ x associativity, row-major.
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

/// An L1/L2 hierarchy as used for workload characterization: accesses
/// filter through L1; L1 misses probe L2; L2 misses are the ComputeBlock's
/// `l2_misses` (main-memory references).
class CacheHierarchy {
 public:
  CacheHierarchy(CacheConfig l1, CacheConfig l2) : l1_(l1), l2_(l2) {}

  /// Returns true when the access missed all the way to memory.
  bool access(std::uint64_t address) {
    if (l1_.access(address)) return false;
    return !l2_.access(address);
  }

  [[nodiscard]] CacheSim& l1() { return l1_; }
  [[nodiscard]] CacheSim& l2() { return l2_; }

 private:
  CacheSim l1_;
  CacheSim l2_;
};

/// The paper's Athlon-64 hierarchy: 128KB split L1 (we model the 64KB data
/// side, which is what load/store streams see) and a 512KB L2.
inline CacheHierarchy athlon64_caches() {
  return CacheHierarchy(CacheConfig{kilobytes(64), 64, 2},
                        CacheConfig{kilobytes(512), 64, 16});
}

}  // namespace gearsim::cpu
