#include "cpu/power_model.hpp"

#include "util/assert.hpp"

namespace gearsim::cpu {

PowerModel::PowerModel(PowerParams params, GearTable gears)
    : params_(params), gears_(std::move(gears)) {
  GEARSIM_REQUIRE(params_.base.value() >= 0.0, "negative base power");
  GEARSIM_REQUIRE(params_.cpu_static.value() >= 0.0, "negative static power");
  GEARSIM_REQUIRE(params_.cpu_dynamic.value() >= 0.0, "negative dynamic power");
  GEARSIM_REQUIRE(
      params_.stall_activity_floor >= 0.0 && params_.stall_activity_floor <= 1.0,
      "stall activity floor must be a fraction");
  GEARSIM_REQUIRE(params_.idle_activity >= 0.0 && params_.idle_activity <= 1.0,
                  "idle activity must be a fraction");
}

Watts PowerModel::cpu_power(std::size_t gear_index, double activity) const {
  const Gear& g = gears_.gear(gear_index);
  const Gear& top = gears_.fastest();
  const double v_ratio = g.voltage / top.voltage;
  const double f_ratio = g.frequency / top.frequency;
  const Watts leakage = params_.cpu_static * v_ratio;
  const Watts dynamic =
      params_.cpu_dynamic * (v_ratio * v_ratio * f_ratio * activity);
  return leakage + dynamic;
}

Watts PowerModel::active_power(std::size_t gear_index,
                               double busy_fraction) const {
  GEARSIM_REQUIRE(busy_fraction >= 0.0 && busy_fraction <= 1.0,
                  "busy fraction must be in [0,1]");
  const double alpha = params_.stall_activity_floor +
                       (1.0 - params_.stall_activity_floor) * busy_fraction;
  return params_.base + cpu_power(gear_index, alpha);
}

Watts PowerModel::idle_power(std::size_t gear_index) const {
  return params_.base + cpu_power(gear_index, params_.idle_activity);
}

double PowerModel::cpu_share(std::size_t gear_index,
                             double busy_fraction) const {
  const double alpha = params_.stall_activity_floor +
                       (1.0 - params_.stall_activity_floor) * busy_fraction;
  const Watts cpu = cpu_power(gear_index, alpha);
  return cpu / active_power(gear_index, busy_fraction);
}

}  // namespace gearsim::cpu
