// Common types for the simulated MPI runtime.
//
// The runtime mirrors the subset of MPI-1 the NAS benchmarks use: blocking
// and nonblocking point-to-point with tag/source matching (wildcards
// included) plus the collectives, all built on the point-to-point layer.
// Payloads are modeled by size only — the simulation moves time and
// energy, not data.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace gearsim::mpi {

using Rank = int;

inline constexpr Rank kAnySource = -1;
inline constexpr int kAnyTag = -1;
/// User tags must be non-negative; negative tags are reserved for the
/// collective algorithms' internal traffic.
inline constexpr int kMaxUserTag = 1 << 20;

struct Status {
  Rank source = kAnySource;
  int tag = kAnyTag;
  Bytes bytes = 0;
};

/// The MPI entry points the tracer distinguishes.  Matches the paper's
/// instrumentation: "interception functions report the time at which the
/// routine was entered and exited".
enum class CallType {
  kSend,
  kRecv,
  kIsend,
  kIrecv,
  kWait,
  kWaitall,
  kSendrecv,
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kAlltoall,
  kAllgather,
  kGather,
  kScatter,
  kReduceScatter,
  kScan,
  kCommSplit,
};

[[nodiscard]] const char* to_string(CallType t);

/// True for calls that can park the caller waiting on remote progress —
/// the "blocking points" of the paper's critical/reducible analysis.
/// (Eager sends complete locally and are not blocking points.)
[[nodiscard]] bool is_blocking_point(CallType t);

/// True for calls every rank of the communicator participates in
/// (Barrier .. Comm_split).  Collectives are the reliable iteration
/// markers of the NAS codes: the same (type, bytes) collective recurring
/// on a rank delimits one outer iteration (see trace/iteration.hpp).
[[nodiscard]] bool is_collective(CallType t);

/// PMPI-style observer: notified at entry/exit of every *traced* MPI call
/// (top-level calls only; a collective's internal messages are invisible,
/// exactly like PMPI wrappers see one MPI_Bcast, not its tree sends).
class CallObserver {
 public:
  virtual ~CallObserver() = default;
  virtual void on_enter(Rank rank, CallType type, Seconds now, Bytes bytes,
                        Rank peer) = 0;
  virtual void on_exit(Rank rank, CallType type, Seconds now) = 0;
};

struct MpiParams {
  /// Messages at or below this size complete locally at the sender
  /// (buffered/eager).  The paper's model assumes sends are asynchronous;
  /// the default keeps every NAS-scale message eager.  Lower it to study
  /// rendezvous (synchronous) behavior.
  Bytes eager_threshold = megabytes(64);
  /// Software cost charged to every point-to-point operation (stack
  /// traversal, matching, completion).
  Seconds call_overhead = microseconds(15.0);
};

}  // namespace gearsim::mpi
