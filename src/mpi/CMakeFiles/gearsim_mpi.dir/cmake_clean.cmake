file(REMOVE_RECURSE
  "CMakeFiles/gearsim_mpi.dir/comm.cpp.o"
  "CMakeFiles/gearsim_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/gearsim_mpi.dir/world.cpp.o"
  "CMakeFiles/gearsim_mpi.dir/world.cpp.o.d"
  "libgearsim_mpi.a"
  "libgearsim_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
