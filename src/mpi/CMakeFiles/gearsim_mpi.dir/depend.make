# Empty dependencies file for gearsim_mpi.
# This may be replaced when dependencies are built.
