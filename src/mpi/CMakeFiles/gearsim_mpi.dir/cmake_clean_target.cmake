file(REMOVE_RECURSE
  "libgearsim_mpi.a"
)
