
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/comm.cpp" "src/mpi/CMakeFiles/gearsim_mpi.dir/comm.cpp.o" "gcc" "src/mpi/CMakeFiles/gearsim_mpi.dir/comm.cpp.o.d"
  "/root/repo/src/mpi/world.cpp" "src/mpi/CMakeFiles/gearsim_mpi.dir/world.cpp.o" "gcc" "src/mpi/CMakeFiles/gearsim_mpi.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/gearsim_util.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/gearsim_sim.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/gearsim_net.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/gearsim_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
