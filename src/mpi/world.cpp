#include "mpi/world.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "util/assert.hpp"

namespace gearsim::mpi {

const char* to_string(CallType t) {
  switch (t) {
    case CallType::kSend: return "Send";
    case CallType::kRecv: return "Recv";
    case CallType::kIsend: return "Isend";
    case CallType::kIrecv: return "Irecv";
    case CallType::kWait: return "Wait";
    case CallType::kWaitall: return "Waitall";
    case CallType::kSendrecv: return "Sendrecv";
    case CallType::kBarrier: return "Barrier";
    case CallType::kBcast: return "Bcast";
    case CallType::kReduce: return "Reduce";
    case CallType::kAllreduce: return "Allreduce";
    case CallType::kAlltoall: return "Alltoall";
    case CallType::kAllgather: return "Allgather";
    case CallType::kGather: return "Gather";
    case CallType::kScatter: return "Scatter";
    case CallType::kReduceScatter: return "Reduce_scatter";
    case CallType::kScan: return "Scan";
    case CallType::kCommSplit: return "Comm_split";
  }
  return "?";
}

bool is_collective(CallType t) {
  switch (t) {
    case CallType::kBarrier:
    case CallType::kBcast:
    case CallType::kReduce:
    case CallType::kAllreduce:
    case CallType::kAlltoall:
    case CallType::kAllgather:
    case CallType::kGather:
    case CallType::kScatter:
    case CallType::kReduceScatter:
    case CallType::kScan:
    case CallType::kCommSplit:
      return true;
    case CallType::kSend:
    case CallType::kRecv:
    case CallType::kIsend:
    case CallType::kIrecv:
    case CallType::kWait:
    case CallType::kWaitall:
    case CallType::kSendrecv:
      return false;
  }
  return false;
}

bool is_blocking_point(CallType t) {
  switch (t) {
    case CallType::kRecv:
    case CallType::kWait:
    case CallType::kWaitall:
    case CallType::kSendrecv:
    case CallType::kBarrier:
    case CallType::kBcast:
    case CallType::kReduce:
    case CallType::kAllreduce:
    case CallType::kAlltoall:
    case CallType::kAllgather:
    case CallType::kGather:
    case CallType::kScatter:
    case CallType::kReduceScatter:
    case CallType::kScan:
    case CallType::kCommSplit:
      return true;
    case CallType::kSend:  // "We assume that the send is asynchronous":
                           // eager sends complete locally.  (A rendezvous
                           // send can block, but following the paper the
                           // analysis treats sends as window-openers.)
    case CallType::kIsend:
    case CallType::kIrecv:
      return false;
  }
  return false;
}

World::World(sim::Engine& engine, net::Network& network, int size,
             MpiParams params)
    : engine_(engine),
      network_(network),
      params_(params),
      procs_(static_cast<std::size_t>(size), nullptr),
      unexpected_(static_cast<std::size_t>(size)),
      posted_(static_cast<std::size_t>(size)) {
  GEARSIM_REQUIRE(size >= 1, "world size must be at least 1");
  GEARSIM_REQUIRE(network.num_nodes() >= static_cast<std::size_t>(size),
                  "network smaller than the MPI world");
}

void World::bind_rank(Rank rank, sim::Process& proc) {
  GEARSIM_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
  GEARSIM_REQUIRE(procs_[rank] == nullptr, "rank already bound");
  procs_[rank] = &proc;
}

void World::add_observer(CallObserver* observer) {
  GEARSIM_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

sim::Process& World::process(Rank rank) {
  GEARSIM_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
  GEARSIM_REQUIRE(procs_[rank] != nullptr, "rank not bound to a process");
  return *procs_[rank];
}

sim::Engine& World::engine_for(Rank rank) {
  return group_ == nullptr ? engine_ : process(rank).engine();
}

void World::enable_partitioned(sim::ParallelEngine& group) {
  GEARSIM_REQUIRE(group_ == nullptr, "world already partitioned");
  GEARSIM_REQUIRE(group.lookahead() <= network_.conservative_lookahead(),
                  "partition lookahead exceeds the network's sound bound");
  for (Rank r = 0; r < size(); ++r) {
    GEARSIM_REQUIRE(procs_[r] != nullptr,
                    "enable_partitioned needs every rank bound first");
  }
  group_ = &group;
  transfer_lanes_.resize(group.partitions());
  wake_batches_.resize(group.partitions());
  send_seq_.assign(static_cast<std::size_t>(size()), 0);
}

void World::defer_transfer(Rank src, Rank dst, Bytes bytes, Seconds inject,
                           detail::Envelope env) {
  DeferredTransfer d;
  d.inject = inject;
  d.sender = engine_for(src).current_event_pedigree();
  d.src = src;
  d.dst = dst;
  d.bytes = bytes;
  d.seq = send_seq_[static_cast<std::size_t>(src)]++;
  d.env = std::move(env);
  transfer_lanes_[partition_of(src)].push_back(std::move(d));
}

void World::apply_deferred_transfers() {
  transfer_scratch_.clear();
  for (auto& lane : transfer_lanes_) {
    transfer_scratch_.insert(transfer_scratch_.end(),
                             std::make_move_iterator(lane.begin()),
                             std::make_move_iterator(lane.end()));
    lane.clear();
  }
  if (transfer_scratch_.empty()) return;
  // Canonical application order: (inject time, sender pedigree, source
  // rank, per-source seq) — the order the serial engine would have
  // reserved network resources in.  For equal inject times the serial
  // order is the sends' insertion order, which is monotone in the
  // sending events' pedigrees; (src, seq) only breaks the residual exact
  // ties (see enable_partitioned's contract).
  std::sort(transfer_scratch_.begin(), transfer_scratch_.end(),
            [](const DeferredTransfer& a, const DeferredTransfer& b) {
              if (a.inject != b.inject) return a.inject < b.inject;
              if (a.sender.birth != b.sender.birth) {
                return a.sender.birth < b.sender.birth;
              }
              if (a.sender.parent != b.sender.parent) {
                return a.sender.parent < b.sender.parent;
              }
              if (a.sender.grandparent != b.sender.grandparent) {
                return a.sender.grandparent < b.sender.grandparent;
              }
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (auto& d : transfer_scratch_) {
    const Seconds arrival =
        network_.transfer(static_cast<std::size_t>(d.src),
                          static_cast<std::size_t>(d.dst), d.bytes, d.inject);
    const Rank dst = d.dst;
    // The delivery's serial twin was inserted while the send event
    // dispatched at the inject instant — so among simultaneous arrivals
    // it must order as if born then, by that event, not at this barrier.
    group_->post_at_barrier(
        partition_of(dst), arrival,
        [this, dst, env = std::move(d.env)]() mutable {
          deliver(dst, std::move(env));
        },
        sim::EventPedigree{d.inject, d.sender.birth, d.sender.parent});
  }
  transfer_scratch_.clear();
}

void World::notify_enter(Rank rank, CallType t, Bytes bytes, Rank peer) {
  traced_calls_.fetch_add(1, std::memory_order_relaxed);
  const Seconds now = engine_for(rank).now();
  for (auto* obs : observers_) obs->on_enter(rank, t, now, bytes, peer);
}

void World::notify_exit(Rank rank, CallType t) {
  const Seconds now = engine_for(rank).now();
  for (auto* obs : observers_) obs->on_exit(rank, t, now);
}

void World::complete_recv(detail::RecvState& op, const detail::Envelope& env,
                          sim::EventBatch& wakes) {
  op.complete = true;
  op.status = Status{env.src, env.tag, env.bytes};
  if (env.send_state && !env.send_state->matched) {
    env.send_state->matched = true;
    if (env.send_state->waiter != nullptr) env.send_state->waiter->wake(wakes);
  }
}

void World::deliver(Rank dst, detail::Envelope env) {
  GEARSIM_REQUIRE(dst >= 0 && dst < size(), "deliver to invalid rank");
  auto& posted = posted_[dst];
  const auto it = std::find_if(
      posted.begin(), posted.end(),
      [&env](const std::shared_ptr<detail::RecvState>& op) {
        return op->matches(env);
      });
  if (it == posted.end()) {
    unexpected_[dst].push_back(std::move(env));
    return;
  }
  const std::shared_ptr<detail::RecvState> op = *it;
  posted.erase(it);
  // Batch the wake chain: a rendezvous sender's wake (from complete_recv)
  // and the receiver's wake go to the queue in one operation, sender
  // first — the order individual schedules produced.  In partitioned mode
  // both parties live on dst's partition (cross-partition rendezvous is
  // rejected at the send), so dst's engine and wake batch serve both.
  sim::EventBatch& wakes = wake_batch_for(dst);
  complete_recv(*op, env, wakes);
  if (op->waiter != nullptr) op->waiter->wake(wakes);
  if (!wakes.empty()) engine_for(dst).schedule_batch(wakes);
}

void World::post_recv(Rank dst, const std::shared_ptr<detail::RecvState>& op) {
  auto& queue = unexpected_[dst];
  const auto it = std::find_if(queue.begin(), queue.end(),
                               [&op](const detail::Envelope& env) {
                                 return op->matches(env);
                               });
  if (it != queue.end()) {
    sim::EventBatch& wakes = wake_batch_for(dst);
    complete_recv(*op, *it, wakes);
    queue.erase(it);
    if (!wakes.empty()) engine_for(dst).schedule_batch(wakes);
    return;
  }
  posted_[dst].push_back(op);
}

}  // namespace gearsim::mpi
