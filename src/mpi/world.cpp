#include "mpi/world.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gearsim::mpi {

const char* to_string(CallType t) {
  switch (t) {
    case CallType::kSend: return "Send";
    case CallType::kRecv: return "Recv";
    case CallType::kIsend: return "Isend";
    case CallType::kIrecv: return "Irecv";
    case CallType::kWait: return "Wait";
    case CallType::kWaitall: return "Waitall";
    case CallType::kSendrecv: return "Sendrecv";
    case CallType::kBarrier: return "Barrier";
    case CallType::kBcast: return "Bcast";
    case CallType::kReduce: return "Reduce";
    case CallType::kAllreduce: return "Allreduce";
    case CallType::kAlltoall: return "Alltoall";
    case CallType::kAllgather: return "Allgather";
    case CallType::kGather: return "Gather";
    case CallType::kScatter: return "Scatter";
    case CallType::kReduceScatter: return "Reduce_scatter";
    case CallType::kScan: return "Scan";
    case CallType::kCommSplit: return "Comm_split";
  }
  return "?";
}

bool is_collective(CallType t) {
  switch (t) {
    case CallType::kBarrier:
    case CallType::kBcast:
    case CallType::kReduce:
    case CallType::kAllreduce:
    case CallType::kAlltoall:
    case CallType::kAllgather:
    case CallType::kGather:
    case CallType::kScatter:
    case CallType::kReduceScatter:
    case CallType::kScan:
    case CallType::kCommSplit:
      return true;
    case CallType::kSend:
    case CallType::kRecv:
    case CallType::kIsend:
    case CallType::kIrecv:
    case CallType::kWait:
    case CallType::kWaitall:
    case CallType::kSendrecv:
      return false;
  }
  return false;
}

bool is_blocking_point(CallType t) {
  switch (t) {
    case CallType::kRecv:
    case CallType::kWait:
    case CallType::kWaitall:
    case CallType::kSendrecv:
    case CallType::kBarrier:
    case CallType::kBcast:
    case CallType::kReduce:
    case CallType::kAllreduce:
    case CallType::kAlltoall:
    case CallType::kAllgather:
    case CallType::kGather:
    case CallType::kScatter:
    case CallType::kReduceScatter:
    case CallType::kScan:
    case CallType::kCommSplit:
      return true;
    case CallType::kSend:  // "We assume that the send is asynchronous":
                           // eager sends complete locally.  (A rendezvous
                           // send can block, but following the paper the
                           // analysis treats sends as window-openers.)
    case CallType::kIsend:
    case CallType::kIrecv:
      return false;
  }
  return false;
}

World::World(sim::Engine& engine, net::Network& network, int size,
             MpiParams params)
    : engine_(engine),
      network_(network),
      params_(params),
      procs_(static_cast<std::size_t>(size), nullptr),
      unexpected_(static_cast<std::size_t>(size)),
      posted_(static_cast<std::size_t>(size)) {
  GEARSIM_REQUIRE(size >= 1, "world size must be at least 1");
  GEARSIM_REQUIRE(network.num_nodes() >= static_cast<std::size_t>(size),
                  "network smaller than the MPI world");
}

void World::bind_rank(Rank rank, sim::Process& proc) {
  GEARSIM_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
  GEARSIM_REQUIRE(procs_[rank] == nullptr, "rank already bound");
  procs_[rank] = &proc;
}

void World::add_observer(CallObserver* observer) {
  GEARSIM_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

sim::Process& World::process(Rank rank) {
  GEARSIM_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
  GEARSIM_REQUIRE(procs_[rank] != nullptr, "rank not bound to a process");
  return *procs_[rank];
}

void World::notify_enter(Rank rank, CallType t, Bytes bytes, Rank peer) {
  ++traced_calls_;
  for (auto* obs : observers_) obs->on_enter(rank, t, engine_.now(), bytes, peer);
}

void World::notify_exit(Rank rank, CallType t) {
  for (auto* obs : observers_) obs->on_exit(rank, t, engine_.now());
}

void World::complete_recv(detail::RecvState& op, const detail::Envelope& env,
                          sim::EventBatch& wakes) {
  op.complete = true;
  op.status = Status{env.src, env.tag, env.bytes};
  if (env.send_state && !env.send_state->matched) {
    env.send_state->matched = true;
    if (env.send_state->waiter != nullptr) env.send_state->waiter->wake(wakes);
  }
}

void World::deliver(Rank dst, detail::Envelope env) {
  GEARSIM_REQUIRE(dst >= 0 && dst < size(), "deliver to invalid rank");
  auto& posted = posted_[dst];
  const auto it = std::find_if(
      posted.begin(), posted.end(),
      [&env](const std::shared_ptr<detail::RecvState>& op) {
        return op->matches(env);
      });
  if (it == posted.end()) {
    unexpected_[dst].push_back(std::move(env));
    return;
  }
  const std::shared_ptr<detail::RecvState> op = *it;
  posted.erase(it);
  // Batch the wake chain: a rendezvous sender's wake (from complete_recv)
  // and the receiver's wake go to the queue in one operation, sender
  // first — the order individual schedules produced.
  complete_recv(*op, env, wake_batch_);
  if (op->waiter != nullptr) op->waiter->wake(wake_batch_);
  if (!wake_batch_.empty()) engine_.schedule_batch(wake_batch_);
}

void World::post_recv(Rank dst, const std::shared_ptr<detail::RecvState>& op) {
  auto& queue = unexpected_[dst];
  const auto it = std::find_if(queue.begin(), queue.end(),
                               [&op](const detail::Envelope& env) {
                                 return op->matches(env);
                               });
  if (it != queue.end()) {
    complete_recv(*op, *it, wake_batch_);
    queue.erase(it);
    if (!wake_batch_.empty()) engine_.schedule_batch(wake_batch_);
    return;
  }
  posted_[dst].push_back(op);
}

}  // namespace gearsim::mpi
