// Per-rank MPI handle: the API workload skeletons program against.
//
// Every public call is traced through the World's observers (entry/exit
// with simulated timestamps), which is how the tracing substrate and the
// power accountant see communication.  Collectives are implemented on top
// of the internal (untraced) point-to-point layer with textbook
// algorithms: dissemination barrier, binomial bcast/reduce, reduce+bcast
// allreduce, pairwise alltoall, ring allgather.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "mpi/world.hpp"

namespace gearsim::mpi {

/// Handle for a nonblocking operation; value type, copyable (shared
/// state).  Obtain from isend/irecv; complete with wait/waitall.
class Request {
 public:
  Request() = default;
  [[nodiscard]] bool valid() const { return recv_ != nullptr || send_ != nullptr; }
  [[nodiscard]] bool done() const;

 private:
  friend class Comm;
  std::shared_ptr<detail::RecvState> recv_;
  std::shared_ptr<detail::SendState> send_;
};

class Comm {
 public:
  /// Bind to `rank` of `world`; the rank's process must already be bound.
  Comm(World& world, Rank rank);

  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] int size() const {
    return group_.empty() ? world_.size() : static_cast<int>(group_.size());
  }
  [[nodiscard]] World& world() { return world_; }
  /// True for the world communicator (not a split).
  [[nodiscard]] bool is_world() const { return group_.empty(); }

  /// MPI_Comm_split: every rank of this communicator calls split with a
  /// color; ranks sharing a color form a new communicator, ordered by
  /// (key, old rank).  The returned Comm is only meaningful on the
  /// calling rank (as in MPI).  Collectives and point-to-point on the
  /// result address the subgroup's ranks 0..size()-1.
  [[nodiscard]] Comm split(int color, int key);

  /// Row/column communicators for a q x q process grid (BT/SP/CG layout).
  [[nodiscard]] Comm split_row(int grid_width) {
    return split(rank_ / grid_width, rank_ % grid_width);
  }
  [[nodiscard]] Comm split_col(int grid_width) {
    return split(rank_ % grid_width, rank_ / grid_width);
  }

  // --- point-to-point ----------------------------------------------------
  /// Blocking send.  Eager (<= eager_threshold) sends complete after local
  /// software overhead; larger sends are synchronous: the call returns
  /// only once the receiver has matched the message.
  void send(Rank dst, int tag, Bytes bytes);
  /// Blocking receive with optional wildcards (kAnySource / kAnyTag).
  Status recv(Rank src, int tag);
  Request isend(Rank dst, int tag, Bytes bytes);
  Request irecv(Rank src, int tag);
  Status wait(Request& request);
  void waitall(std::span<Request> requests);
  /// Combined send+recv (deadlock-free exchange with a neighbor).
  Status sendrecv(Rank dst, int send_tag, Bytes send_bytes, Rank src,
                  int recv_tag);

  // --- collectives ---------------------------------------------------------
  void barrier();
  void bcast(Rank root, Bytes bytes);
  void reduce(Rank root, Bytes bytes);
  void allreduce(Bytes bytes);
  /// `bytes_per_pair` flows between every ordered pair of distinct ranks.
  void alltoall(Bytes bytes_per_pair);
  /// Every rank contributes `bytes`; all ranks end with size()*bytes.
  void allgather(Bytes bytes);
  void gather(Rank root, Bytes bytes);
  void scatter(Rank root, Bytes bytes);
  /// Each rank ends with its `bytes`-sized share of the reduced vector
  /// (MPI_Reduce_scatter_block); pairwise-exchange algorithm.
  void reduce_scatter(Bytes bytes_per_rank);
  /// Inclusive prefix reduction (MPI_Scan); linear chain algorithm.
  void scan(Bytes bytes);

 private:
  struct Traced;  // RAII observer enter/exit.

  Comm(World& world, Rank world_rank, std::vector<Rank> group, Rank group_rank);

  [[nodiscard]] sim::Process& proc() { return world_.process(world_rank_); }
  void overhead();

  /// Translate a communicator-local rank to the world rank the matching
  /// and network layers use.  Identity for the world communicator.
  [[nodiscard]] Rank to_world(Rank local) const {
    return group_.empty() ? local : group_[local];
  }

  // Untraced internals shared by the public calls and the collectives.
  // Ranks are communicator-local.
  void send_impl(Rank dst, int tag, Bytes bytes);
  Request isend_impl(Rank dst, int tag, Bytes bytes);
  Status recv_impl(Rank src, int tag);
  Request irecv_impl(Rank src, int tag);
  Status wait_impl(Request& request);

  // Collective bodies (the public entry points add tracing).
  void barrier_impl();
  void bcast_impl(Rank root, Bytes bytes, int op_tag);
  void reduce_impl(Rank root, Bytes bytes, int op_tag);

  /// Distinct internal tag per collective instance: all ranks call the
  /// collectives in the same order (an MPI requirement), so a per-rank
  /// counter is globally consistent.
  int next_collective_tag();

  World& world_;
  Rank rank_;        ///< Communicator-local rank.
  Rank world_rank_;  ///< Rank in the world (process / network identity).
  std::vector<Rank> group_;  ///< Local -> world map; empty for the world.
  int context_ = 0;
  int collective_seq_ = 0;
  int split_seq_ = 0;
};

}  // namespace gearsim::mpi
