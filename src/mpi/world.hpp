// Shared state of one simulated MPI job: message matching, rank/process
// binding, observers.
//
// Matching follows the MPI standard: a receive with (source, tag) filters
// (wildcards allowed) matches the earliest-arrived compatible message in
// the unexpected queue; an arriving message matches the earliest-posted
// compatible receive.  Per-(source, destination) message order is
// preserved by the FIFO NIC model in net::Network.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"
#include "mpi/types.hpp"

namespace gearsim::mpi {

namespace detail {

struct SendState {
  bool matched = false;           ///< Receiver matched the message.
  sim::Process* waiter = nullptr; ///< Sender blocked awaiting the match.
};

struct Envelope {
  Rank src = 0;  ///< Communicator-local source rank.
  int tag = 0;
  Bytes bytes = 0;
  /// Communicator context: traffic only matches receives posted on the
  /// same communicator (MPI's context-id separation).
  int context = 0;
  /// Set for synchronous (rendezvous-class) sends: completing the match
  /// unblocks the sender.
  std::shared_ptr<SendState> send_state;
};

struct RecvState {
  Rank src_filter = kAnySource;
  int tag_filter = kAnyTag;
  int context = 0;
  bool complete = false;
  Status status{};
  sim::Process* waiter = nullptr;

  [[nodiscard]] bool matches(const Envelope& env) const {
    return !complete && env.context == context &&
           (src_filter == kAnySource || src_filter == env.src) &&
           (tag_filter == kAnyTag || tag_filter == env.tag);
  }
};

}  // namespace detail

class Comm;

/// One MPI job.  Construct, bind each rank to its simulation process, then
/// create one Comm per rank.  Lifetime must cover all Comms.
class World {
 public:
  World(sim::Engine& engine, net::Network& network, int size,
        MpiParams params = {});
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(procs_.size()); }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] const MpiParams& params() const { return params_; }

  /// Associate `rank` with the process that executes it.  Must happen
  /// before the rank's first MPI call.
  void bind_rank(Rank rank, sim::Process& proc);

  void add_observer(CallObserver* observer);

  /// Count of user-level (traced) MPI calls, for reports.
  [[nodiscard]] std::uint64_t traced_calls() const { return traced_calls_; }

  /// The simulation process executing `rank`; bound via bind_rank.
  [[nodiscard]] sim::Process& process(Rank rank);

 private:
  friend class Comm;

  /// Fresh communicator context id (world is 0).
  int allocate_context() { return ++last_context_; }

  /// Comm::split rendezvous: each participant deposits its (color, key)
  /// under a split id; after a barrier all entries are visible.
  struct SplitEntry {
    int color = 0;
    int key = 0;
  };
  std::map<std::uint64_t, std::map<Rank, SplitEntry>> split_table_;

  /// All members of one split group must agree on the new context id;
  /// the first to ask allocates, the rest read it back.
  int context_for(std::uint64_t split_id, int color) {
    const auto key = std::make_pair(split_id, color);
    const auto it = split_contexts_.find(key);
    if (it != split_contexts_.end()) return it->second;
    const int ctx = allocate_context();
    split_contexts_.emplace(key, ctx);
    return ctx;
  }
  std::map<std::pair<std::uint64_t, int>, int> split_contexts_;
  void notify_enter(Rank rank, CallType t, Bytes bytes, Rank peer);
  void notify_exit(Rank rank, CallType t);

  /// Message arrival at `dst` (runs in engine context at arrival time).
  void deliver(Rank dst, detail::Envelope env);
  /// Post a receive; matches the unexpected queue first.
  void post_recv(Rank dst, const std::shared_ptr<detail::RecvState>& op);
  /// Complete `op` against `env`; a rendezvous sender's wake is appended
  /// to `wakes` (submitted by the caller in one batch, sender first).
  static void complete_recv(detail::RecvState& op, const detail::Envelope& env,
                            sim::EventBatch& wakes);

  sim::Engine& engine_;
  net::Network& network_;
  MpiParams params_;
  std::vector<sim::Process*> procs_;
  std::vector<std::deque<detail::Envelope>> unexpected_;
  std::vector<std::vector<std::shared_ptr<detail::RecvState>>> posted_;
  std::vector<CallObserver*> observers_;
  std::uint64_t traced_calls_ = 0;
  int last_context_ = 0;
  /// Reusable wake batch for the delivery path: one message completion
  /// can wake a rendezvous sender *and* the receiver — batching submits
  /// both with a single queue operation (sender first, preserving the
  /// historical dispatch order).  Safe as a member: delivery runs in
  /// engine context, one event at a time, and drains it before returning.
  sim::EventBatch wake_batch_;
};

}  // namespace gearsim::mpi
