// Shared state of one simulated MPI job: message matching, rank/process
// binding, observers.
//
// Matching follows the MPI standard: a receive with (source, tag) filters
// (wildcards allowed) matches the earliest-arrived compatible message in
// the unexpected queue; an arriving message matches the earliest-posted
// compatible receive.  Per-(source, destination) message order is
// preserved by the FIFO NIC model in net::Network.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/parallel_engine.hpp"
#include "mpi/types.hpp"

namespace gearsim::mpi {

namespace detail {

struct SendState {
  bool matched = false;           ///< Receiver matched the message.
  sim::Process* waiter = nullptr; ///< Sender blocked awaiting the match.
};

struct Envelope {
  Rank src = 0;  ///< Communicator-local source rank.
  int tag = 0;
  Bytes bytes = 0;
  /// Communicator context: traffic only matches receives posted on the
  /// same communicator (MPI's context-id separation).
  int context = 0;
  /// Set for synchronous (rendezvous-class) sends: completing the match
  /// unblocks the sender.
  std::shared_ptr<SendState> send_state;
};

struct RecvState {
  Rank src_filter = kAnySource;
  int tag_filter = kAnyTag;
  int context = 0;
  bool complete = false;
  Status status{};
  sim::Process* waiter = nullptr;

  [[nodiscard]] bool matches(const Envelope& env) const {
    return !complete && env.context == context &&
           (src_filter == kAnySource || src_filter == env.src) &&
           (tag_filter == kAnyTag || tag_filter == env.tag);
  }
};

}  // namespace detail

class Comm;

/// One MPI job.  Construct, bind each rank to its simulation process, then
/// create one Comm per rank.  Lifetime must cover all Comms.
class World {
 public:
  World(sim::Engine& engine, net::Network& network, int size,
        MpiParams params = {});
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(procs_.size()); }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] const MpiParams& params() const { return params_; }

  /// Associate `rank` with the process that executes it.  Must happen
  /// before the rank's first MPI call.
  void bind_rank(Rank rank, sim::Process& proc);

  void add_observer(CallObserver* observer);

  /// Count of user-level (traced) MPI calls, for reports.
  [[nodiscard]] std::uint64_t traced_calls() const {
    return traced_calls_.load(std::memory_order_relaxed);
  }

  /// The simulation process executing `rank`; bound via bind_rank.
  [[nodiscard]] sim::Process& process(Rank rank);

  /// Route this world through a conservative parallel engine group: ranks
  /// are bound to processes spawned on the group's partition engines, and
  /// network transfers are *deferred* — collected in per-source-partition
  /// lanes during each time window and applied at the window barrier,
  /// serially, in canonical (inject time, sender pedigree, source rank,
  /// per-source seq) order.  The pedigree keys are what make this the
  /// serial reservation order even when distinct sources inject at the
  /// exact same instant: a serial engine dispatches simultaneous sends
  /// in insertion order, and insertion order is monotone in the sending
  /// events' pedigrees (birth, parent birth, grandparent birth), so
  /// sorting by them replays it (the determinism matrix test pins this
  /// per workload).  Call after every
  /// rank is bound; the group must outlive the run.  Requires
  /// group.lookahead() <= the network's conservative_lookahead so
  /// deferred arrivals always land at or beyond the window horizon.
  void enable_partitioned(sim::ParallelEngine& group);
  [[nodiscard]] bool partitioned() const { return group_ != nullptr; }

  /// The engine executing `rank`: its partition engine when partitioned,
  /// the world engine otherwise.
  [[nodiscard]] sim::Engine& engine_for(Rank rank);

  /// Apply every deferred transfer through the network in canonical
  /// order and post the delivery events to the destination partitions.
  /// Barrier-hook context only (single-threaded, between windows).
  void apply_deferred_transfers();

 private:
  friend class Comm;

  /// Fresh communicator context id (world is 0).  Callers hold
  /// split_mutex_.
  int allocate_context() { return ++last_context_; }

  /// Comm::split rendezvous: each participant deposits its (color, key)
  /// under a split id; after a barrier all entries are visible.  The
  /// table is guarded by split_mutex_ — in partitioned mode different
  /// ranks deposit concurrently from different partitions (the deposits
  /// of *one* split id are still race-free data-wise: each lands before
  /// that rank's barrier entry, and reads happen after the barrier).
  struct SplitEntry {
    int color = 0;
    int key = 0;
  };
  void deposit_split(std::uint64_t split_id, Rank rank, SplitEntry entry) {
    const std::lock_guard<std::mutex> lock(split_mutex_);
    split_table_[split_id][rank] = entry;
  }
  [[nodiscard]] std::map<Rank, SplitEntry> split_entries(
      std::uint64_t split_id) {
    const std::lock_guard<std::mutex> lock(split_mutex_);
    return split_table_[split_id];
  }
  std::map<std::uint64_t, std::map<Rank, SplitEntry>> split_table_;

  /// All members of one split group must agree on the new context id;
  /// the first to ask allocates, the rest read it back.
  int context_for(std::uint64_t split_id, int color) {
    const std::lock_guard<std::mutex> lock(split_mutex_);
    const auto key = std::make_pair(split_id, color);
    const auto it = split_contexts_.find(key);
    if (it != split_contexts_.end()) return it->second;
    const int ctx = allocate_context();
    split_contexts_.emplace(key, ctx);
    return ctx;
  }
  std::map<std::pair<std::uint64_t, int>, int> split_contexts_;
  std::mutex split_mutex_;
  void notify_enter(Rank rank, CallType t, Bytes bytes, Rank peer);
  void notify_exit(Rank rank, CallType t);

  /// Partition of `rank`'s engine (0 when serial).
  [[nodiscard]] std::size_t partition_of(Rank rank) {
    return group_ == nullptr ? 0 : process(rank).engine().partition_id();
  }
  /// The wake batch for deliveries running on `dst`'s partition.
  [[nodiscard]] sim::EventBatch& wake_batch_for(Rank dst) {
    return group_ == nullptr ? wake_batch_ : wake_batches_[partition_of(dst)];
  }

  /// One network transfer whose reservation is postponed to the window
  /// barrier.  `sender` is the pedigree of the engine event that made
  /// the send (Engine::current_event_pedigree at defer time): for
  /// transfers injected at the same instant, serial reservation order is
  /// the sends' dispatch order, which is their insertion order, which is
  /// monotone in pedigree — so (inject, sender) replays it, including
  /// the lock-step ties where two ranks' send events were born at the
  /// same instant by same-aged parents (LU's wavefront does this: the
  /// distinguishing message-arrival instant sits at grandparent depth,
  /// delivery → wake → post-overhead send).  `seq` is the per-source
  /// send counter: the final (src, seq) keys keep per-source FIFO for
  /// any residual exact ties.
  struct DeferredTransfer {
    Seconds inject{};
    sim::EventPedigree sender{};
    Rank src = 0;
    Rank dst = 0;
    Bytes bytes = 0;
    std::uint64_t seq = 0;
    detail::Envelope env;
  };
  /// Queue a transfer from `src`'s partition context (single writer per
  /// lane: the worker currently running that partition).
  void defer_transfer(Rank src, Rank dst, Bytes bytes, Seconds inject,
                      detail::Envelope env);

  /// Message arrival at `dst` (runs in engine context at arrival time).
  void deliver(Rank dst, detail::Envelope env);
  /// Post a receive; matches the unexpected queue first.
  void post_recv(Rank dst, const std::shared_ptr<detail::RecvState>& op);
  /// Complete `op` against `env`; a rendezvous sender's wake is appended
  /// to `wakes` (submitted by the caller in one batch, sender first).
  static void complete_recv(detail::RecvState& op, const detail::Envelope& env,
                            sim::EventBatch& wakes);

  sim::Engine& engine_;
  net::Network& network_;
  MpiParams params_;
  std::vector<sim::Process*> procs_;
  std::vector<std::deque<detail::Envelope>> unexpected_;
  std::vector<std::vector<std::shared_ptr<detail::RecvState>>> posted_;
  std::vector<CallObserver*> observers_;
  /// Relaxed atomic: in partitioned mode every worker bumps it; only the
  /// total matters (reports), never ordering.
  std::atomic<std::uint64_t> traced_calls_{0};
  int last_context_ = 0;
  /// Partitioned-mode state (empty when serial).  transfer_lanes_ is one
  /// lane per *source partition*: the worker running that partition is
  /// the lane's only writer, and the barrier hook — single-threaded — is
  /// the only reader.  send_seq_ is per world rank (single writer: the
  /// rank's own engine context).
  sim::ParallelEngine* group_ = nullptr;
  std::vector<std::vector<DeferredTransfer>> transfer_lanes_;
  std::vector<DeferredTransfer> transfer_scratch_;
  std::vector<std::uint64_t> send_seq_;
  /// Per-partition wake batches: the serial wake_batch_ reuse trick, one
  /// instance per partition so concurrent deliveries never share one.
  std::vector<sim::EventBatch> wake_batches_;
  /// Reusable wake batch for the delivery path: one message completion
  /// can wake a rendezvous sender *and* the receiver — batching submits
  /// both with a single queue operation (sender first, preserving the
  /// historical dispatch order).  Safe as a member: delivery runs in
  /// engine context, one event at a time, and drains it before returning.
  sim::EventBatch wake_batch_;
};

}  // namespace gearsim::mpi
