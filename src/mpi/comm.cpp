#include "mpi/comm.hpp"

#include "util/assert.hpp"

namespace gearsim::mpi {

namespace {
/// Each collective instance reserves a block of 64 internal (negative)
/// tags, one per algorithm round.
constexpr int kTagsPerCollective = 64;
}  // namespace

bool Request::done() const {
  if (recv_) return recv_->complete;
  if (send_) return send_->matched;
  return false;
}

/// RAII guard emitting observer enter/exit around a traced call.
struct Comm::Traced {
  Traced(Comm& comm, CallType type, Bytes bytes, Rank peer)
      : comm_(comm), type_(type) {
    comm_.world_.notify_enter(comm_.rank_, type, bytes, peer);
  }
  ~Traced() { comm_.world_.notify_exit(comm_.rank_, type_); }
  Traced(const Traced&) = delete;
  Traced& operator=(const Traced&) = delete;

  Comm& comm_;
  CallType type_;
};

Comm::Comm(World& world, Rank rank)
    : world_(world), rank_(rank), world_rank_(rank) {
  GEARSIM_REQUIRE(rank >= 0 && rank < world.size(), "rank out of range");
}

Comm::Comm(World& world, Rank world_rank, std::vector<Rank> group,
           Rank group_rank)
    : world_(world),
      rank_(group_rank),
      world_rank_(world_rank),
      group_(std::move(group)),
      context_(0) {}

Comm Comm::split(int color, int key) {
  Traced guard(*this, CallType::kCommSplit, 0, kAnySource);
  GEARSIM_REQUIRE(color >= 0, "split colors must be non-negative");
  // Deposit this rank's (color, key), then synchronize: after the barrier
  // every participant's entry is visible and the groups can be computed
  // locally and deterministically.
  const std::uint64_t split_id =
      (static_cast<std::uint64_t>(context_) << 32) |
      static_cast<std::uint32_t>(split_seq_++);
  world_.deposit_split(split_id, rank_, World::SplitEntry{color, key});
  barrier_impl();

  const auto entries = world_.split_entries(split_id);
  GEARSIM_REQUIRE(entries.size() == static_cast<std::size_t>(size()),
                  "Comm::split must be called by every rank of the "
                  "communicator");
  struct Member {
    int key;
    Rank local;
  };
  std::vector<Member> members;
  for (const auto& [local, entry] : entries) {
    if (entry.color == color) members.push_back(Member{entry.key, local});
  }
  std::sort(members.begin(), members.end(),
            [](const Member& a, const Member& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.local < b.local;
            });
  std::vector<Rank> group;
  Rank my_group_rank = -1;
  for (const Member& m : members) {
    if (m.local == rank_) my_group_rank = static_cast<Rank>(group.size());
    group.push_back(to_world(m.local));
  }
  GEARSIM_ENSURE(my_group_rank >= 0, "caller missing from its own color");

  Comm sub(world_, world_rank_, std::move(group), my_group_rank);
  sub.context_ = world_.context_for(split_id, color);
  return sub;
}

void Comm::overhead() { proc().delay(world_.params().call_overhead); }

int Comm::next_collective_tag() {
  ++collective_seq_;
  return -collective_seq_ * kTagsPerCollective;
}

// --- internal point-to-point ------------------------------------------------

Request Comm::isend_impl(Rank dst, int tag, Bytes bytes) {
  GEARSIM_REQUIRE(dst >= 0 && dst < size(), "send to invalid rank");
  overhead();
  const Rank dst_world = to_world(dst);
  // Envelopes carry communicator-local source ranks plus the context id,
  // so sub-communicator traffic can never match another communicator's
  // receives.
  detail::Envelope env{rank_, tag, bytes, context_, nullptr};
  Request req;
  if (bytes > world_.params().eager_threshold) {
    // Rendezvous across partitions is unsupported in partitioned mode:
    // the receiver's match would have to wake the sender with effectively
    // zero lookahead (the ACK has no network delay in this model), which
    // the conservative horizon cannot admit.  Same-partition rendezvous
    // is fine — the wake stays partition-local.  The distinct exception
    // type lets ExperimentRunner::run rerun the experiment serially.
    if (world_.partitioned() && dst_world != world_rank_ &&
        world_.partition_of(dst_world) != world_.partition_of(world_rank_)) {
      throw sim::ParallelUnsupportedError(
          "cross-partition rendezvous send (message above the eager "
          "threshold) is not supported by the parallel engine; run serial");
    }
    req.send_ = std::make_shared<detail::SendState>();
    env.send_state = req.send_;
  } else {
    // Eager: complete at the sender immediately (buffered semantics).
    req.send_ = std::make_shared<detail::SendState>();
    req.send_->matched = true;
  }
  // NB: the delivery event may fire after this Comm (a per-rank value
  // inside the rank's context) is gone — capture the World, which outlives
  // the whole engine run.
  World* world = &world_;
  sim::Engine& engine = world_.engine_for(world_rank_);
  if (dst_world == world_rank_) {
    // Self-message: no network involvement; deliver at the current time.
    engine.schedule_at(
        engine.now(),
        [world, dst_world, env] { world->deliver(dst_world, env); });
  } else if (world_.partitioned()) {
    // Defer the network reservation to the window barrier, where all
    // partitions' transfers are applied serially in canonical order (see
    // World::apply_deferred_transfers).  The delivery is posted there.
    world_.defer_transfer(world_rank_, dst_world, bytes, engine.now(), env);
  } else {
    const Seconds arrival = world_.network().transfer(
        world_rank_, dst_world, bytes, engine.now());
    engine.schedule_at(
        arrival, [world, dst_world, env] { world->deliver(dst_world, env); });
  }
  return req;
}

void Comm::send_impl(Rank dst, int tag, Bytes bytes) {
  Request req = isend_impl(dst, tag, bytes);
  if (!req.send_->matched) {
    // Synchronous (rendezvous-class) send: park until the receiver matches.
    req.send_->waiter = &proc();
    proc().block();
    req.send_->waiter = nullptr;
    GEARSIM_ENSURE(req.send_->matched, "woken send was not matched");
  }
}

Request Comm::irecv_impl(Rank src, int tag) {
  GEARSIM_REQUIRE(src == kAnySource || (src >= 0 && src < size()),
                  "receive from invalid rank");
  GEARSIM_REQUIRE(tag == kAnyTag || tag <= kMaxUserTag, "invalid tag");
  overhead();
  Request req;
  req.recv_ = std::make_shared<detail::RecvState>();
  req.recv_->src_filter = src;
  req.recv_->tag_filter = tag;
  req.recv_->context = context_;
  world_.post_recv(world_rank_, req.recv_);
  return req;
}

Status Comm::wait_impl(Request& request) {
  GEARSIM_REQUIRE(request.valid(), "wait on an empty request");
  if (request.recv_) {
    auto& op = *request.recv_;
    if (!op.complete) {
      op.waiter = &proc();
      proc().block();
      op.waiter = nullptr;
      GEARSIM_ENSURE(op.complete, "woken receive was not completed");
    }
    return op.status;
  }
  auto& op = *request.send_;
  if (!op.matched) {
    op.waiter = &proc();
    proc().block();
    op.waiter = nullptr;
    GEARSIM_ENSURE(op.matched, "woken send was not matched");
  }
  return Status{};
}

Status Comm::recv_impl(Rank src, int tag) {
  Request req = irecv_impl(src, tag);
  return wait_impl(req);
}

// --- traced point-to-point ---------------------------------------------------

void Comm::send(Rank dst, int tag, Bytes bytes) {
  GEARSIM_REQUIRE(tag >= 0 && tag <= kMaxUserTag, "user tags are 0..2^20");
  Traced guard(*this, CallType::kSend, bytes, dst);
  send_impl(dst, tag, bytes);
}

Status Comm::recv(Rank src, int tag) {
  Traced guard(*this, CallType::kRecv, 0, src);
  return recv_impl(src, tag);
}

Request Comm::isend(Rank dst, int tag, Bytes bytes) {
  GEARSIM_REQUIRE(tag >= 0 && tag <= kMaxUserTag, "user tags are 0..2^20");
  Traced guard(*this, CallType::kIsend, bytes, dst);
  return isend_impl(dst, tag, bytes);
}

Request Comm::irecv(Rank src, int tag) {
  Traced guard(*this, CallType::kIrecv, 0, src);
  return irecv_impl(src, tag);
}

Status Comm::wait(Request& request) {
  Traced guard(*this, CallType::kWait, 0, kAnySource);
  return wait_impl(request);
}

void Comm::waitall(std::span<Request> requests) {
  Traced guard(*this, CallType::kWaitall, 0, kAnySource);
  for (auto& request : requests) wait_impl(request);
}

Status Comm::sendrecv(Rank dst, int send_tag, Bytes send_bytes, Rank src,
                      int recv_tag) {
  GEARSIM_REQUIRE(send_tag >= 0 && send_tag <= kMaxUserTag,
                  "user tags are 0..2^20");
  Traced guard(*this, CallType::kSendrecv, send_bytes, dst);
  Request sreq = isend_impl(dst, send_tag, send_bytes);
  const Status status = recv_impl(src, recv_tag);
  wait_impl(sreq);
  return status;
}

// --- collectives --------------------------------------------------------------

void Comm::barrier_impl() {
  const int n = size();
  const int base = next_collective_tag();
  int round = 0;
  for (int offset = 1; offset < n; offset <<= 1, ++round) {
    const Rank dst = (rank_ + offset) % n;
    const Rank src = (rank_ - offset % n + n) % n;
    Request sreq = isend_impl(dst, base + round, 0);
    recv_impl(src, base + round);
    wait_impl(sreq);
  }
}

void Comm::barrier() {
  Traced guard(*this, CallType::kBarrier, 0, kAnySource);
  barrier_impl();
}

void Comm::bcast_impl(Rank root, Bytes bytes, int op_tag) {
  const int n = size();
  const int vr = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      recv_impl((vr - mask + root) % n, op_tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      send_impl((vr + mask + root) % n, op_tag, bytes);
    }
    mask >>= 1;
  }
}

void Comm::bcast(Rank root, Bytes bytes) {
  GEARSIM_REQUIRE(root >= 0 && root < size(), "invalid root");
  Traced guard(*this, CallType::kBcast, bytes, root);
  bcast_impl(root, bytes, next_collective_tag());
}

void Comm::reduce_impl(Rank root, Bytes bytes, int op_tag) {
  const int n = size();
  const int vr = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) == 0) {
      const int vsrc = vr | mask;
      if (vsrc < n) recv_impl((vsrc + root) % n, op_tag);
    } else {
      send_impl(((vr & ~mask) + root) % n, op_tag, bytes);
      break;
    }
    mask <<= 1;
  }
}

void Comm::reduce(Rank root, Bytes bytes) {
  GEARSIM_REQUIRE(root >= 0 && root < size(), "invalid root");
  Traced guard(*this, CallType::kReduce, bytes, root);
  reduce_impl(root, bytes, next_collective_tag());
}

void Comm::allreduce(Bytes bytes) {
  Traced guard(*this, CallType::kAllreduce, bytes, kAnySource);
  reduce_impl(0, bytes, next_collective_tag());
  bcast_impl(0, bytes, next_collective_tag());
}

void Comm::alltoall(Bytes bytes_per_pair) {
  Traced guard(*this, CallType::kAlltoall, bytes_per_pair, kAnySource);
  const int n = size();
  const int tag = next_collective_tag();
  for (int i = 1; i < n; ++i) {
    const Rank dst = (rank_ + i) % n;
    const Rank src = (rank_ - i + n) % n;
    Request sreq = isend_impl(dst, tag, bytes_per_pair);
    recv_impl(src, tag);
    wait_impl(sreq);
  }
}

void Comm::allgather(Bytes bytes) {
  Traced guard(*this, CallType::kAllgather, bytes, kAnySource);
  const int n = size();
  const int tag = next_collective_tag();
  const Rank right = (rank_ + 1) % n;
  const Rank left = (rank_ - 1 + n) % n;
  // Ring: n-1 steps, each forwarding one contributor's block.
  for (int step = 0; step < n - 1; ++step) {
    Request sreq = isend_impl(right, tag, bytes);
    recv_impl(left, tag);
    wait_impl(sreq);
  }
}

void Comm::gather(Rank root, Bytes bytes) {
  GEARSIM_REQUIRE(root >= 0 && root < size(), "invalid root");
  Traced guard(*this, CallType::kGather, bytes, root);
  const int n = size();
  const int tag = next_collective_tag();
  const int vr = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) == 0) {
      const int vsrc = vr | mask;
      if (vsrc < n) recv_impl((vsrc + root) % n, tag);
    } else {
      // This subtree holds blocks vr .. min(vr+mask, n)-1.
      const int blocks = std::min(mask, n - vr);
      send_impl(((vr & ~mask) + root) % n, tag, bytes * blocks);
      break;
    }
    mask <<= 1;
  }
}

void Comm::reduce_scatter(Bytes bytes_per_rank) {
  Traced guard(*this, CallType::kReduceScatter, bytes_per_rank, kAnySource);
  const int n = size();
  const int tag = next_collective_tag();
  // Recursive halving: each round exchanges half of the remaining vector
  // with a partner at the current distance.  For non-power-of-two sizes
  // fall back to pairwise exchanges of the per-rank block.
  const bool pow2 = (n & (n - 1)) == 0;
  if (pow2) {
    Bytes chunk = bytes_per_rank * static_cast<Bytes>(n) / 2;
    for (int mask = n / 2; mask >= 1; mask /= 2) {
      const Rank peer = rank_ ^ mask;
      Request sreq = isend_impl(peer, tag + mask, chunk);
      recv_impl(peer, tag + mask);
      wait_impl(sreq);
      chunk = std::max<Bytes>(chunk / 2, 1);
    }
  } else {
    for (int i = 1; i < n; ++i) {
      const Rank dst = (rank_ + i) % n;
      const Rank src = (rank_ - i + n) % n;
      Request sreq = isend_impl(dst, tag, bytes_per_rank);
      recv_impl(src, tag);
      wait_impl(sreq);
    }
  }
}

void Comm::scan(Bytes bytes) {
  Traced guard(*this, CallType::kScan, bytes, kAnySource);
  const int tag = next_collective_tag();
  // Linear chain: receive the prefix from the left, pass it rightward.
  if (rank_ > 0) recv_impl(rank_ - 1, tag);
  if (rank_ + 1 < size()) send_impl(rank_ + 1, tag, bytes);
}

void Comm::scatter(Rank root, Bytes bytes) {
  GEARSIM_REQUIRE(root >= 0 && root < size(), "invalid root");
  Traced guard(*this, CallType::kScatter, bytes, root);
  const int n = size();
  const int tag = next_collective_tag();
  const int vr = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      recv_impl((vr - mask + root) % n, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const int blocks = std::min(mask, n - (vr + mask));
      send_impl((vr + mask + root) % n, tag, bytes * blocks);
    }
    mask >>= 1;
  }
}

}  // namespace gearsim::mpi
