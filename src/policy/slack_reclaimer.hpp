// Jitter/Adagio-style per-iteration slack reclamation.
//
// The observation behind Jitter, Adagio and COUNTDOWN Slack: in an
// iterative MPI code, a rank that waits at the iteration's
// synchronization points has slack — it could compute slower and arrive
// just in time, saving energy without stretching the critical path.
// SlackReclaimer measures each rank's blocked time per application
// iteration (clocked by the recurring anchor collective,
// trace/iteration.hpp) and steers that rank's compute gear so the extra
// active time fits inside the measured slack, subject to a global
// performance-loss budget.  The rank with (almost) no slack — the
// critical path — is pinned at the fastest gear.
//
// Where the naive cluster::SlackAdaptive reacts to the *share* of time
// spent blocked (and so mistakes lockstep waiting for slack),
// SlackReclaimer budgets in absolute seconds against the gear ladder:
// a gear is only taken when `extra active time <= safety * measured
// slack`, so symmetric codes where everyone waits together stay fast.
//
// Upshift is immediate (a rank that lost its slack snaps back to gear
// 0); downshift waits for `hysteresis` consecutive iterations that agree
// (taking the most conservative of their targets), so one noisy
// iteration cannot park a rank.
//
// Slack is measured during warmup only: the first `hysteresis`
// iterations necessarily run at the initial gear (no downshift can fire
// before the votes accumulate), so their mean span and mean blocked time
// are true gear-0 measurements, frozen as the rank's reference.  Judging
// slack (or the budget) against *live* measurements would compare
// against a baseline the controller itself moved — in lockstep codes
// each downshift hands its neighbors more "slack", they downshift too,
// and the ratchet only stops at the slowest gear.  Live spans still
// guard the result: a rank whose iteration runs over budget versus its
// frozen reference backs off a gear immediately AND caps its depth
// there, so transitively-coupled slack (this rank's wait was really
// another rank's) is surrendered once and never re-taken.
#pragma once

#include <string>
#include <vector>

#include "policy/controller.hpp"

namespace gearsim::policy {

class SlackReclaimer final : public RuntimeController {
 public:
  struct Params {
    /// Per-gear application slowdown ladder S_g (index = gear, S_0 = 1,
    /// non-decreasing) — how much longer the workload's compute runs at
    /// each gear.  Measure it from a static gear sweep
    /// (policy::slowdown_ladder) or model::GearData.
    std::vector<double> gear_slowdowns;
    /// Max fractional iteration-time stretch the controller may cause.
    double perf_budget = 0.05;
    /// Consecutive agreeing iterations before a downshift.
    int hysteresis = 2;
    /// Fraction of measured slack the controller dares to consume.
    double safety = 0.9;
    /// Ranks blocked less than this fraction of the iteration are the
    /// critical path: pinned at gear 0.
    double pin_threshold = 0.02;
    /// Also park long blocking calls at the slowest gear (predictor-
    /// gated, same mechanism as TimeoutDownshift).
    bool park_while_blocked = true;
    Seconds park_timeout = microseconds(500.0);
    /// EWMA smoothing for the wait predictor, in (0, 1].
    double alpha = 0.5;
  };

  SlackReclaimer(Params params, int nprocs);

  [[nodiscard]] std::string name() const override { return "slack-reclaimer"; }
  [[nodiscard]] std::string signature() const override;

 protected:
  void reset(int nprocs) override;
  void observe_blocking_enter(int rank, mpi::CallType type, Bytes bytes,
                              Seconds now) override;
  void observe_blocking_exit(int rank, mpi::CallType type, Bytes bytes,
                             Seconds now, Seconds waited) override;
  void on_iteration_end(int rank, Seconds now) override;

 private:
  struct RankState {
    Seconds iter_start{};
    Seconds blocked{};
    /// Consecutive iterations that asked to shift down.
    int down_votes = 0;
    /// Most conservative (fastest) target among those iterations.
    std::size_t down_target = 0;
    /// Gear-0 iterations measured so far; the references freeze once
    /// `hysteresis` of them have been averaged (no downshift can happen
    /// earlier, so they are all genuinely at the initial gear).
    int warmup = 0;
    double span_sum = 0.0;
    double blocked_sum = 0.0;
    /// Frozen gear-0 reference span [s]; the absolute budget anchor.
    double ref_span = 0.0;
    /// Frozen gear-0 reference blocked time [s]; the slack budget.
    double ref_blocked = 0.0;
    /// Depth ceiling, lowered (permanently) each time an iteration runs
    /// over budget at the current gear.
    std::size_t gear_cap = static_cast<std::size_t>(-1);
  };

  Params params_;
  WaitPredictor predictor_;
  std::vector<RankState> state_;
  // Counter handles (null without a registry), refreshed in reset().
  obs::Counter* m_parks_ = nullptr;
  obs::Counter* m_votes_ = nullptr;
  obs::Counter* m_downshifts_ = nullptr;
  obs::Counter* m_upshifts_ = nullptr;
  obs::Counter* m_backoffs_ = nullptr;
};

class SlackReclaimerFactory final : public cluster::PolicyFactory {
 public:
  explicit SlackReclaimerFactory(SlackReclaimer::Params params)
      : params_(std::move(params)) {}
  [[nodiscard]] std::string signature() const override {
    return SlackReclaimer(params_, 1).signature();
  }
  [[nodiscard]] std::unique_ptr<cluster::GearPolicy> instantiate(
      int nprocs) const override {
    return std::make_unique<SlackReclaimer>(params_, nprocs);
  }

 private:
  SlackReclaimer::Params params_;
};

}  // namespace gearsim::policy
