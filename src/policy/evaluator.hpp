// The policy-evaluation harness: every gear strategy the repo knows,
// raced on equal terms.
//
// For one (workload, node count) the evaluator runs the paper's static
// uniform-gear sweep (the Figure-2 curve), derives the application's
// per-gear slowdown ladder from it, then runs the full adaptive roster —
// node-bottleneck static planning, naive comm-downshift, COUNTDOWN-style
// timeout downshift, Jitter/Adagio-style slack reclamation — through the
// same exec::SweepRunner (cached, parallel, deterministic).  The result
// is a Pareto-annotated table plus a paper-style energy-time figure with
// the adaptive points overlaid on the static curve.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/dvfs.hpp"
#include "cluster/experiment.hpp"
#include "exec/result_cache.hpp"
#include "obs/metrics.hpp"
#include "report/svg_plot.hpp"

namespace gearsim::policy {

/// One adaptive (or planned) policy's measurement.
struct PolicyRow {
  std::string name;
  std::string signature;  ///< Canonical policy signature (cache identity).
  cluster::RunResult result;
  /// Fractional deltas vs the static gear-0 run: wall/wall_0 - 1 and
  /// energy/energy_0 - 1.
  double time_delta = 0.0;
  double energy_delta = 0.0;
  /// True when no *static* gear point is both faster and cheaper — the
  /// policy adds a point the uniform-gear tradeoff cannot reach.
  bool on_frontier = false;
};

/// Everything evaluate() measures for one (workload, nodes) cell.
struct Evaluation {
  std::string workload;
  int nodes = 0;
  /// Uniform-gear sweep, fastest first (the static baseline curve).
  std::vector<cluster::RunResult> static_runs;
  /// Slowdown ladder S_g derived from static_runs (see slowdown_ladder).
  std::vector<double> gear_slowdowns;
  std::vector<PolicyRow> policies;
};

class PolicyEvaluator {
 public:
  struct Options {
    /// Worker threads (util/parallel.hpp resolve_jobs semantics).
    int jobs = 0;
    /// Optional result cache shared with other sweeps.  Not owned.
    exec::ResultCache* cache = nullptr;
    /// Optional fault plan applied to every run (must outlive the call).
    const faults::FaultPlan* faults = nullptr;
    /// Optional metrics registry, forwarded to the underlying
    /// exec::SweepRunner (not owned; see exec::SweepOptions::metrics).
    obs::MetricsRegistry* metrics = nullptr;
    /// Safety factor handed to the bottleneck planner and SlackReclaimer.
    double safety = 0.9;
    /// SlackReclaimer's performance-loss budget.
    double perf_budget = 0.05;
    /// TimeoutDownshift's (and the reclaimer's park) timeout.
    Seconds timeout = microseconds(500.0);
  };

  PolicyEvaluator(cluster::ClusterConfig config, Options options);
  /// Default options.  (A separate overload because a nested struct's
  /// member initializers are not yet parsed where `Options options = {}`
  /// would need them.)
  explicit PolicyEvaluator(cluster::ClusterConfig config);

  [[nodiscard]] const cluster::ClusterConfig& config() const {
    return config_;
  }

  /// Run the whole roster on one (workload, nodes) cell.
  [[nodiscard]] Evaluation evaluate(const cluster::Workload& workload,
                                    int nodes) const;

 private:
  cluster::ClusterConfig config_;
  Options options_;
};

/// One roster member: a display name plus the factory that builds its
/// per-run policy instances.
struct RosterEntry {
  std::string name;
  std::unique_ptr<cluster::PolicyFactory> factory;
};

/// The adaptive lineup evaluate() races, derived from the static sweep
/// (the bottleneck planner and the slack reclaimer consume its slowdown
/// ladder).  Exposed so other executors — the what-if service's race
/// queries — field the exact same roster and stay result-identical to
/// `gearsim policy`.
[[nodiscard]] std::vector<RosterEntry> policy_roster(
    const cluster::ClusterConfig& config,
    const std::vector<cluster::RunResult>& static_runs,
    const PolicyEvaluator::Options& options);

/// One raced policy's raw measurement, before delta/frontier annotation.
struct PolicyRun {
  std::string name;
  std::string signature;
  cluster::RunResult result;
};

/// Assemble the Evaluation record from raw runs: derives the slowdown
/// ladder, the time/energy deltas vs the fastest static gear, and the
/// frontier markers.  Shared by evaluate() and by clients reassembling a
/// remote race response, so both annotate identically.
[[nodiscard]] Evaluation assemble_evaluation(
    std::string workload_name, int nodes,
    std::vector<cluster::RunResult> static_runs,
    std::vector<PolicyRun> policy_runs);

/// Per-gear slowdown ladder from a static gear sweep: S_g is the ratio
/// of the critical rank's active time at gear g to gear 0 (clamped
/// non-decreasing).  Measures the *application's* sensitivity — a
/// memory-bound code has a ladder much flatter than the frequency ratio.
[[nodiscard]] std::vector<double> slowdown_ladder(
    const std::vector<cluster::RunResult>& static_runs);

/// Fixed-width text table: static gear points then policy rows, with
/// deltas vs gear 0 and a frontier marker per policy.
[[nodiscard]] std::string policy_table(const Evaluation& eval);

/// Paper-style energy-time figure: the static curve (gear labels on the
/// points) plus one single-point series per policy.
[[nodiscard]] report::SvgPlot policy_figure(const std::string& title,
                                            const Evaluation& eval);

}  // namespace gearsim::policy
