// COUNTDOWN-style timeout-filtered downshift.
//
// The naive cluster::CommDownshift parks the CPU on *every* blocking
// call and pays the DVFS transition latency twice per call — on codes
// with many short collectives the transitions cost more than the parked
// idle power saves.  COUNTDOWN's fix is a timeout: only calls that
// outlive it are worth downshifting for.  The simulator cannot interrupt
// a rank mid-call, so the timeout is applied *predictively*: a
// WaitPredictor tracks the measured wait of every (call type, bytes)
// signature per rank, and the controller parks only when the predicted
// wait exceeds the timeout.  The first occurrence of a signature never
// parks (prediction unknown — optimistic, exactly like COUNTDOWN leaving
// sub-timeout calls untouched).
#pragma once

#include <string>

#include "policy/controller.hpp"

namespace gearsim::policy {

class TimeoutDownshift final : public RuntimeController {
 public:
  struct Params {
    /// Gear ranks compute at (the controller never changes it).
    std::size_t compute_gear = 0;
    /// Gear ranks park at inside long blocking calls.
    std::size_t park_gear = 5;
    /// Park only when the predicted wait exceeds this.  The default is
    /// several times the athlon gear-switch latency (100us), so a park
    /// always saves more idle time than the two transitions it costs.
    Seconds timeout = microseconds(500.0);
    /// EWMA smoothing for the wait predictor, in (0, 1].
    double alpha = 0.5;
  };

  TimeoutDownshift(Params params, int nprocs);

  [[nodiscard]] std::string name() const override {
    return "timeout-downshift";
  }
  [[nodiscard]] std::string signature() const override;

 protected:
  void reset(int nprocs) override;
  void observe_blocking_enter(int rank, mpi::CallType type, Bytes bytes,
                              Seconds now) override;
  void observe_blocking_exit(int rank, mpi::CallType type, Bytes bytes,
                             Seconds now, Seconds waited) override;

 private:
  Params params_;
  WaitPredictor predictor_;
  obs::Counter* m_parks_ = nullptr;  ///< Refreshed in reset().
};

class TimeoutDownshiftFactory final : public cluster::PolicyFactory {
 public:
  explicit TimeoutDownshiftFactory(TimeoutDownshift::Params params)
      : params_(params) {}
  [[nodiscard]] std::string signature() const override {
    return TimeoutDownshift(params_, 1).signature();
  }
  [[nodiscard]] std::unique_ptr<cluster::GearPolicy> instantiate(
      int nprocs) const override {
    return std::make_unique<TimeoutDownshift>(params_, nprocs);
  }

 private:
  TimeoutDownshift::Params params_;
};

}  // namespace gearsim::policy
