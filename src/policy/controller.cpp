#include "policy/controller.hpp"

#include "util/assert.hpp"

namespace gearsim::policy {

WaitPredictor::WaitPredictor(double alpha) : alpha_(alpha) {
  GEARSIM_REQUIRE(alpha_ > 0.0 && alpha_ <= 1.0, "alpha must be in (0, 1]");
}

void WaitPredictor::reset(int nprocs) {
  GEARSIM_REQUIRE(nprocs >= 1, "need at least one rank");
  ewma_.assign(static_cast<std::size_t>(nprocs), {});
}

double WaitPredictor::predict(int rank, mpi::CallType type,
                              Bytes bytes) const {
  GEARSIM_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < ewma_.size(),
                  "rank out of range");
  const auto& table = ewma_[static_cast<std::size_t>(rank)];
  const auto it = table.find(Key{static_cast<int>(type), bytes});
  return it != table.end() ? it->second : -1.0;
}

void WaitPredictor::observe(int rank, mpi::CallType type, Bytes bytes,
                            Seconds waited) {
  GEARSIM_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < ewma_.size(),
                  "rank out of range");
  auto& table = ewma_[static_cast<std::size_t>(rank)];
  const Key key{static_cast<int>(type), bytes};
  const auto it = table.find(key);
  if (it == table.end()) {
    table.emplace(key, waited.value());
  } else {
    it->second += alpha_ * (waited.value() - it->second);
  }
}

RuntimeController::RuntimeController(std::size_t initial_gear)
    : initial_gear_(initial_gear) {}

std::size_t RuntimeController::compute_gear(int rank) const {
  GEARSIM_REQUIRE(
      rank >= 0 && static_cast<std::size_t>(rank) < compute_gears_.size(),
      "rank out of range (was begin_run called?)");
  return compute_gears_[static_cast<std::size_t>(rank)];
}

std::size_t RuntimeController::comm_gear(int rank) const {
  GEARSIM_REQUIRE(
      rank >= 0 && static_cast<std::size_t>(rank) < comm_gears_.size(),
      "rank out of range (was begin_run called?)");
  return comm_gears_[static_cast<std::size_t>(rank)];
}

void RuntimeController::begin_run(int nprocs) {
  GEARSIM_REQUIRE(nprocs >= 1, "need at least one rank");
  compute_gears_.assign(static_cast<std::size_t>(nprocs), initial_gear_);
  comm_gears_.assign(static_cast<std::size_t>(nprocs), initial_gear_);
  clocks_.assign(static_cast<std::size_t>(nprocs), trace::IterationClock{});
  reset(nprocs);
}

std::size_t RuntimeController::iterations(int rank) const {
  GEARSIM_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < clocks_.size(),
                  "rank out of range");
  return clocks_[static_cast<std::size_t>(rank)].iterations();
}

void RuntimeController::on_blocking_enter(int rank, mpi::CallType type,
                                          Bytes bytes, Seconds now) {
  if (clocks_[static_cast<std::size_t>(rank)].on_call(type, bytes)) {
    on_iteration_end(rank, now);
  }
  observe_blocking_enter(rank, type, bytes, now);
}

void RuntimeController::on_blocking_exit(int rank, mpi::CallType type,
                                         Bytes bytes, Seconds now,
                                         Seconds waited) {
  observe_blocking_exit(rank, type, bytes, now, waited);
}

}  // namespace gearsim::policy
