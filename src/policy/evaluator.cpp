#include "policy/evaluator.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "cluster/dvfs.hpp"
#include "exec/sweep_runner.hpp"
#include "policy/slack_reclaimer.hpp"
#include "policy/timeout_downshift.hpp"
#include "util/assert.hpp"

namespace gearsim::policy {

namespace {

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

/// Dominated by some static point: one exists that is no slower AND no
/// costlier (strictly better on at least one axis).
bool dominated_by_static(const cluster::RunResult& p,
                         const std::vector<cluster::RunResult>& statics) {
  for (const cluster::RunResult& q : statics) {
    const bool no_worse =
        q.wall.value() <= p.wall.value() && q.energy.value() <= p.energy.value();
    const bool better = q.wall.value() < p.wall.value() ||
                        q.energy.value() < p.energy.value();
    if (no_worse && better) return true;
  }
  return false;
}

}  // namespace

PolicyEvaluator::PolicyEvaluator(cluster::ClusterConfig config,
                                 Options options)
    : config_(std::move(config)), options_(options) {
  GEARSIM_REQUIRE(config_.gears.size() >= 2,
                  "policy evaluation needs at least two gears");
}

PolicyEvaluator::PolicyEvaluator(cluster::ClusterConfig config)
    : PolicyEvaluator(std::move(config), Options{}) {}

std::vector<double> slowdown_ladder(
    const std::vector<cluster::RunResult>& static_runs) {
  GEARSIM_REQUIRE(!static_runs.empty(), "need at least one static run");
  const double base = static_runs.front().breakdown.active_max.value();
  GEARSIM_REQUIRE(base > 0.0, "gear-0 run has no active time");
  std::vector<double> ladder;
  ladder.reserve(static_runs.size());
  for (const cluster::RunResult& run : static_runs) {
    double s = run.breakdown.active_max.value() / base;
    // Clamp non-decreasing: simulation noise must not produce a ladder
    // where a slower gear looks faster.
    if (!ladder.empty()) s = std::max(s, ladder.back());
    ladder.push_back(s);
  }
  return ladder;
}

std::vector<RosterEntry> policy_roster(
    const cluster::ClusterConfig& config,
    const std::vector<cluster::RunResult>& static_runs,
    const PolicyEvaluator::Options& options) {
  const std::vector<double> ladder = slowdown_ladder(static_runs);
  const std::size_t slowest = config.gears.size() - 1;

  // Factories (not instances) because adaptive controllers carry per-run
  // state — the sweep runner instantiates one per point.
  std::vector<RosterEntry> roster;
  const cluster::PerRankGear planned = cluster::plan_node_bottleneck(
      static_runs.front(), ladder, options.safety);
  roster.push_back(
      {"node-bottleneck",
       std::make_unique<cluster::PerRankGearFactory>(planned.gears())});
  roster.push_back(
      {"comm-downshift",
       std::make_unique<cluster::CommDownshiftFactory>(0, slowest)});
  TimeoutDownshift::Params tp;
  tp.park_gear = slowest;
  tp.timeout = options.timeout;
  roster.push_back(
      {"timeout-downshift", std::make_unique<TimeoutDownshiftFactory>(tp)});
  SlackReclaimer::Params sp;
  sp.gear_slowdowns = ladder;
  sp.perf_budget = options.perf_budget;
  sp.safety = options.safety;
  sp.park_timeout = options.timeout;
  roster.push_back(
      {"slack-reclaimer", std::make_unique<SlackReclaimerFactory>(sp)});
  return roster;
}

Evaluation assemble_evaluation(std::string workload_name, int nodes,
                               std::vector<cluster::RunResult> static_runs,
                               std::vector<PolicyRun> policy_runs) {
  Evaluation eval;
  eval.workload = std::move(workload_name);
  eval.nodes = nodes;
  eval.static_runs = std::move(static_runs);
  eval.gear_slowdowns = slowdown_ladder(eval.static_runs);

  const cluster::RunResult& fastest = eval.static_runs.front();
  GEARSIM_ENSURE(fastest.wall.value() > 0.0 && fastest.energy.value() > 0.0,
                 "degenerate gear-0 baseline");
  for (PolicyRun& run : policy_runs) {
    PolicyRow row;
    row.name = std::move(run.name);
    row.signature = std::move(run.signature);
    row.time_delta = run.result.wall / fastest.wall - 1.0;
    row.energy_delta =
        run.result.energy.value() / fastest.energy.value() - 1.0;
    row.on_frontier = !dominated_by_static(run.result, eval.static_runs);
    row.result = std::move(run.result);
    eval.policies.push_back(std::move(row));
  }
  return eval;
}

Evaluation PolicyEvaluator::evaluate(const cluster::Workload& workload,
                                     int nodes) const {
  exec::SweepRunner runner(config_, {options_.jobs, options_.cache,
                                     options_.faults, options_.metrics});

  std::vector<cluster::RunResult> static_runs =
      runner.gear_sweep(workload, nodes);
  const std::vector<RosterEntry> roster =
      policy_roster(config_, static_runs, options_);

  std::vector<exec::SweepPoint> points;
  points.reserve(roster.size());
  for (const RosterEntry& entry : roster) {
    points.push_back(
        exec::SweepPoint{&workload, nodes, 0, 0, entry.factory.get()});
  }
  const std::vector<cluster::RunResult> runs = runner.run(points);

  std::vector<PolicyRun> policy_runs;
  policy_runs.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    policy_runs.push_back(
        PolicyRun{roster[i].name, roster[i].factory->signature(), runs[i]});
  }
  return assemble_evaluation(workload.name(), nodes, std::move(static_runs),
                             std::move(policy_runs));
}

std::string policy_table(const Evaluation& eval) {
  std::string out = eval.workload + " on " + std::to_string(eval.nodes) +
                    " nodes: static gears vs adaptive policies\n";
  out +=
      "  policy              wall [s]   energy [J]   dT%     dE%    frontier\n";
  const cluster::RunResult& fastest = eval.static_runs.front();
  char line[160];
  for (const cluster::RunResult& run : eval.static_runs) {
    std::snprintf(line, sizeof(line),
                  "  gear %-14d %9.3f %12.1f %6.1f%% %6.1f%%\n",
                  run.gear_label, run.wall.value(), run.energy.value(),
                  (run.wall / fastest.wall - 1.0) * 100.0,
                  (run.energy.value() / fastest.energy.value() - 1.0) * 100.0);
    out += line;
  }
  for (const PolicyRow& row : eval.policies) {
    std::snprintf(line, sizeof(line),
                  "  %-19s %9.3f %12.1f %6.1f%% %6.1f%%   %s\n",
                  row.name.c_str(), row.result.wall.value(),
                  row.result.energy.value(), row.time_delta * 100.0,
                  row.energy_delta * 100.0, row.on_frontier ? "yes" : "-");
    out += line;
  }
  return out;
}

report::SvgPlot policy_figure(const std::string& title,
                              const Evaluation& eval) {
  report::SvgPlot plot(title, "execution time [s]", "energy [J]");
  report::SvgSeries statics;
  statics.label = "uniform gears (" + std::to_string(eval.nodes) + " nodes)";
  for (const cluster::RunResult& run : eval.static_runs) {
    statics.points.emplace_back(run.wall.value(), run.energy.value());
    statics.point_labels.push_back(std::to_string(run.gear_label));
  }
  plot.add_series(std::move(statics));
  for (const PolicyRow& row : eval.policies) {
    report::SvgSeries series;
    series.label = row.name + (row.on_frontier ? " *" : "");
    series.points.emplace_back(row.result.wall.value(),
                               row.result.energy.value());
    series.point_labels.push_back(fmt("%+.0f%%", row.energy_delta * 100.0));
    plot.add_series(std::move(series));
  }
  return plot;
}

}  // namespace gearsim::policy
