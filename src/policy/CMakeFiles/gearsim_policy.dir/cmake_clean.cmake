file(REMOVE_RECURSE
  "CMakeFiles/gearsim_policy.dir/controller.cpp.o"
  "CMakeFiles/gearsim_policy.dir/controller.cpp.o.d"
  "CMakeFiles/gearsim_policy.dir/evaluator.cpp.o"
  "CMakeFiles/gearsim_policy.dir/evaluator.cpp.o.d"
  "CMakeFiles/gearsim_policy.dir/slack_reclaimer.cpp.o"
  "CMakeFiles/gearsim_policy.dir/slack_reclaimer.cpp.o.d"
  "CMakeFiles/gearsim_policy.dir/timeout_downshift.cpp.o"
  "CMakeFiles/gearsim_policy.dir/timeout_downshift.cpp.o.d"
  "libgearsim_policy.a"
  "libgearsim_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
