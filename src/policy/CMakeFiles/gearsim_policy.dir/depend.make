# Empty dependencies file for gearsim_policy.
# This may be replaced when dependencies are built.
