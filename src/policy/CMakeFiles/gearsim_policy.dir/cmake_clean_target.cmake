file(REMOVE_RECURSE
  "libgearsim_policy.a"
)
