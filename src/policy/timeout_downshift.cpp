#include "policy/timeout_downshift.hpp"

#include "cluster/workload.hpp"
#include "util/assert.hpp"

namespace gearsim::policy {

TimeoutDownshift::TimeoutDownshift(Params params, int nprocs)
    : RuntimeController(params.compute_gear),
      params_(params),
      predictor_(params.alpha) {
  GEARSIM_REQUIRE(params_.park_gear >= params_.compute_gear,
                  "park gear should be no faster than the compute gear");
  GEARSIM_REQUIRE(params_.timeout.value() >= 0.0, "negative timeout");
  begin_run(nprocs);
}

std::string TimeoutDownshift::signature() const {
  return "timeout-downshift{compute=" + std::to_string(params_.compute_gear) +
         ",park=" + std::to_string(params_.park_gear) +
         ",timeout=" + cluster::sig_value(params_.timeout.value()) +
         ",alpha=" + cluster::sig_value(params_.alpha) + "}";
}

void TimeoutDownshift::reset(int nprocs) { predictor_.reset(nprocs); }

void TimeoutDownshift::observe_blocking_enter(int rank, mpi::CallType type,
                                              Bytes bytes, Seconds) {
  const double predicted = predictor_.predict(rank, type, bytes);
  comm_gears_[static_cast<std::size_t>(rank)] =
      predicted > params_.timeout.value() ? params_.park_gear
                                          : params_.compute_gear;
}

void TimeoutDownshift::observe_blocking_exit(int rank, mpi::CallType type,
                                             Bytes bytes, Seconds,
                                             Seconds waited) {
  predictor_.observe(rank, type, bytes, waited);
}

}  // namespace gearsim::policy
