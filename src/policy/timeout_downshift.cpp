#include "policy/timeout_downshift.hpp"

#include "cluster/workload.hpp"
#include "util/assert.hpp"

namespace gearsim::policy {

TimeoutDownshift::TimeoutDownshift(Params params, int nprocs)
    : RuntimeController(params.compute_gear),
      params_(params),
      predictor_(params.alpha) {
  GEARSIM_REQUIRE(params_.park_gear >= params_.compute_gear,
                  "park gear should be no faster than the compute gear");
  GEARSIM_REQUIRE(params_.timeout.value() >= 0.0, "negative timeout");
  begin_run(nprocs);
}

std::string TimeoutDownshift::signature() const {
  return "timeout-downshift{compute=" + std::to_string(params_.compute_gear) +
         ",park=" + std::to_string(params_.park_gear) +
         ",timeout=" + cluster::sig_value(params_.timeout.value()) +
         ",alpha=" + cluster::sig_value(params_.alpha) + "}";
}

void TimeoutDownshift::reset(int nprocs) {
  predictor_.reset(nprocs);
  m_parks_ = policy_counter("policy.predictive_parks");
}

void TimeoutDownshift::observe_blocking_enter(int rank, mpi::CallType type,
                                              Bytes bytes, Seconds) {
  const double predicted = predictor_.predict(rank, type, bytes);
  const bool park = predicted > params_.timeout.value();
  comm_gears_[static_cast<std::size_t>(rank)] =
      park ? params_.park_gear : params_.compute_gear;
  if (park && m_parks_ != nullptr) m_parks_->add();
}

void TimeoutDownshift::observe_blocking_exit(int rank, mpi::CallType type,
                                             Bytes bytes, Seconds,
                                             Seconds waited) {
  predictor_.observe(rank, type, bytes, waited);
}

}  // namespace gearsim::policy
