#include "policy/slack_reclaimer.hpp"

#include <algorithm>

#include "cluster/workload.hpp"
#include "util/assert.hpp"

namespace gearsim::policy {

SlackReclaimer::SlackReclaimer(Params params, int nprocs)
    : RuntimeController(0), params_(std::move(params)), predictor_(
                                                            params_.alpha) {
  GEARSIM_REQUIRE(!params_.gear_slowdowns.empty(),
                  "need the per-gear slowdown ladder");
  GEARSIM_REQUIRE(params_.gear_slowdowns.front() > 0.0,
                  "slowdown ladder must start positive");
  for (std::size_t g = 1; g < params_.gear_slowdowns.size(); ++g) {
    GEARSIM_REQUIRE(params_.gear_slowdowns[g] >= params_.gear_slowdowns[g - 1],
                    "slowdown ladder must be non-decreasing");
  }
  GEARSIM_REQUIRE(params_.perf_budget >= 0.0, "negative performance budget");
  GEARSIM_REQUIRE(params_.hysteresis >= 1, "hysteresis must be >= 1");
  GEARSIM_REQUIRE(params_.safety > 0.0 && params_.safety <= 1.0,
                  "safety must be in (0, 1]");
  GEARSIM_REQUIRE(params_.pin_threshold >= 0.0 && params_.pin_threshold < 1.0,
                  "pin threshold must be in [0, 1)");
  GEARSIM_REQUIRE(params_.park_timeout.value() >= 0.0, "negative timeout");
  begin_run(nprocs);
}

std::string SlackReclaimer::signature() const {
  std::string sig = "slack-reclaimer{ladder=";
  for (std::size_t g = 0; g < params_.gear_slowdowns.size(); ++g) {
    if (g) sig += ',';
    sig += cluster::sig_value(params_.gear_slowdowns[g]);
  }
  sig += ";budget=" + cluster::sig_value(params_.perf_budget) +
         ",hysteresis=" + std::to_string(params_.hysteresis) +
         ",safety=" + cluster::sig_value(params_.safety) +
         ",pin=" + cluster::sig_value(params_.pin_threshold) +
         ",park=" + std::string(params_.park_while_blocked ? "1" : "0") +
         ",park_timeout=" + cluster::sig_value(params_.park_timeout.value()) +
         ",alpha=" + cluster::sig_value(params_.alpha) + "}";
  return sig;
}

void SlackReclaimer::reset(int nprocs) {
  predictor_.reset(nprocs);
  state_.assign(static_cast<std::size_t>(nprocs), RankState{});
  m_parks_ = policy_counter("policy.predictive_parks");
  m_votes_ = policy_counter("policy.hysteresis_votes");
  m_downshifts_ = policy_counter("policy.downshifts");
  m_upshifts_ = policy_counter("policy.upshifts");
  m_backoffs_ = policy_counter("policy.over_budget_backoffs");
}

void SlackReclaimer::observe_blocking_enter(int rank, mpi::CallType type,
                                            Bytes bytes, Seconds) {
  const auto r = static_cast<std::size_t>(rank);
  std::size_t comm = compute_gears_[r];
  if (params_.park_while_blocked) {
    const double predicted = predictor_.predict(rank, type, bytes);
    if (predicted > params_.park_timeout.value()) {
      comm = std::max(comm, params_.gear_slowdowns.size() - 1);
      if (m_parks_ != nullptr) m_parks_->add();
    }
  }
  comm_gears_[r] = comm;
}

void SlackReclaimer::observe_blocking_exit(int rank, mpi::CallType type,
                                           Bytes bytes, Seconds,
                                           Seconds waited) {
  predictor_.observe(rank, type, bytes, waited);
  state_[static_cast<std::size_t>(rank)].blocked += waited;
}

void SlackReclaimer::on_iteration_end(int rank, Seconds now) {
  const auto r = static_cast<std::size_t>(rank);
  RankState& s = state_[r];
  const Seconds span = now - s.iter_start;
  s.iter_start = now;
  const Seconds blocked = std::min(s.blocked, span);
  s.blocked = Seconds{};
  if (span.value() <= 0.0) return;

  const std::size_t gear = compute_gears_[r];

  // Warmup: no downshift can fire before `hysteresis` votes, so the
  // first `hysteresis` iterations all ran at the initial gear — average
  // them into the frozen gear-0 reference (span and slack).
  if (s.warmup < params_.hysteresis) {
    s.span_sum += span.value();
    s.blocked_sum += blocked.value();
    if (++s.warmup == params_.hysteresis) {
      s.ref_span = s.span_sum / params_.hysteresis;
      s.ref_blocked = s.blocked_sum / params_.hysteresis;
    }
    return;  // Still measuring: hold the initial gear.
  }
  const double budget_span = (1.0 + params_.perf_budget) * s.ref_span;

  if (gear > 0 && span.value() > budget_span) {
    // Over budget against the frozen reference: the "slack" this rank
    // reclaimed was really a neighbor's wait (lockstep coupling).  Back
    // off one gear immediately and cap the depth there for good —
    // re-taking the same gear would just oscillate.
    s.gear_cap = gear - 1;
    compute_gears_[r] = gear - 1;
    s.down_votes = 0;
    if (m_backoffs_ != nullptr) m_backoffs_->add();
    return;
  }

  // Target from the frozen gear-0 measurements, not the live ones: a
  // downshifted neighborhood inflates live blocked time, and chasing it
  // is the ratchet this controller exists to avoid.
  const double active0 = s.ref_span - s.ref_blocked;
  std::size_t target;
  if (s.ref_blocked < params_.pin_threshold * s.ref_span || active0 <= 0.0) {
    // (Almost) no slack: this rank is the critical path — pin it fast.
    target = 0;
  } else {
    // Slowest gear whose extra active time fits in the measured slack.
    // Slack-neutral by construction: the budget is enforced by the live
    // recovery guard above, not spent here.
    target = 0;
    for (std::size_t g = 0;
         g < params_.gear_slowdowns.size() && g <= s.gear_cap; ++g) {
      const double stretched = active0 * params_.gear_slowdowns[g];
      if (stretched <= active0 + params_.safety * s.ref_blocked) {
        target = std::max(target, g);
      }
    }
  }

  if (target > gear) {
    // Downshift only after `hysteresis` consecutive iterations agree,
    // and no further than the most conservative of their asks.
    s.down_target = s.down_votes == 0 ? target : std::min(s.down_target,
                                                          target);
    if (m_votes_ != nullptr) m_votes_->add();
    if (++s.down_votes >= params_.hysteresis) {
      compute_gears_[r] = s.down_target;
      s.down_votes = 0;
      if (m_downshifts_ != nullptr) m_downshifts_->add();
    }
  } else {
    s.down_votes = 0;
    // Upshift immediately: a rank that lost its slack must not keep
    // stretching the critical path while hysteresis counts.
    if (target < gear) {
      compute_gears_[r] = target;
      if (m_upshifts_ != nullptr) m_upshifts_->add();
    }
  }
}

}  // namespace gearsim::policy
