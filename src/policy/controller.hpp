// The adaptive-DVFS runtime substrate.
//
// The paper's conclusion asks for an MPI runtime that "automatically
// monitors executing programs and reduces the energy gear
// appropriately".  COUNTDOWN and the Jitter/Adagio line of work show
// what that takes in practice: per-rank mutable state, measured MPI wait
// durations (not just "a blocking call happened"), and application
// iteration boundaries.  RuntimeController packages exactly those three
// feeds on top of cluster::GearPolicy so concrete controllers
// (TimeoutDownshift, SlackReclaimer) only implement decision logic.
//
// Determinism: controllers are driven exclusively by engine-time
// callbacks on the simulated ranks, never by wall-clock or shared RNG,
// so a policy run remains a pure function of (config, workload, nodes,
// policy parameters) — cacheable and bit-identical across sweep job
// counts (one fresh instance per point via PolicyFactory).
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "cluster/dvfs.hpp"
#include "trace/iteration.hpp"

namespace gearsim::policy {

/// Per-(rank, call signature) EWMA of measured MPI wait durations — the
/// oracle COUNTDOWN approximates with its timeout timer.  The simulator
/// cannot cleanly interrupt a rank mid-call (gear changes must run on
/// the rank's own process), so controllers *predict* each call's wait
/// from the history of identical calls and decide at entry; the first
/// sighting of a signature predicts "unknown" (negative) and controllers
/// stay optimistic, which matches COUNTDOWN's behavior of leaving calls
/// shorter than the timeout untouched.
class WaitPredictor {
 public:
  explicit WaitPredictor(double alpha = 0.5);

  /// Drop all history and size for `nprocs` ranks.
  void reset(int nprocs);
  /// Predicted wait in seconds for this call signature on this rank;
  /// negative when the signature has not been seen yet.
  [[nodiscard]] double predict(int rank, mpi::CallType type,
                               Bytes bytes) const;
  /// Fold a measured wait into the signature's EWMA.
  void observe(int rank, mpi::CallType type, Bytes bytes, Seconds waited);

 private:
  /// (call type, payload size) — std::map for deterministic iteration.
  using Key = std::pair<int, Bytes>;
  double alpha_;
  std::vector<std::map<Key, double>> ewma_;
};

/// Base class for online gear controllers: owns the per-rank compute and
/// comm gear vectors, clocks application iterations from the blocking
/// call stream (trace::IterationClock), and splits GearPolicy's raw
/// callbacks into the protected observe_*/on_iteration_end hooks
/// subclasses implement.  All per-run state resets in begin_run, so one
/// instance may serve sequential runs deterministically; concurrent runs
/// need one instance each (PolicyFactory).
class RuntimeController : public cluster::GearPolicy {
 public:
  [[nodiscard]] std::size_t compute_gear(int rank) const final;
  [[nodiscard]] std::size_t comm_gear(int rank) const final;
  [[nodiscard]] bool shifts_during_comm() const final { return true; }

  void begin_run(int nprocs) final;
  void on_blocking_enter(int rank, mpi::CallType type, Bytes bytes,
                         Seconds now) final;
  void on_blocking_exit(int rank, mpi::CallType type, Bytes bytes,
                        Seconds now, Seconds waited) final;

  /// Per-rank compute gears at the end of the run (for reports/tests).
  [[nodiscard]] std::vector<std::size_t> final_gears() const {
    return compute_gears_;
  }
  /// Iterations the rank's clock has closed so far.
  [[nodiscard]] std::size_t iterations(int rank) const;

 protected:
  explicit RuntimeController(std::size_t initial_gear);

  /// Reset subclass per-run state; compute/comm gear vectors are already
  /// sized and filled with the initial gear when this runs.
  virtual void reset(int nprocs) = 0;
  /// A blocking call is being entered; runs *before* the driver queries
  /// comm_gear, so this is where per-call park decisions land (write
  /// comm_gears_[rank]).
  virtual void observe_blocking_enter(int /*rank*/, mpi::CallType /*type*/,
                                      Bytes /*bytes*/, Seconds /*now*/) {}
  /// A blocking call completed after `waited` seconds of wall time.
  virtual void observe_blocking_exit(int /*rank*/, mpi::CallType /*type*/,
                                     Bytes /*bytes*/, Seconds /*now*/,
                                     Seconds /*waited*/) {}
  /// The rank's anchor collective recurred: one outer iteration closed
  /// at `now` (fires before observe_blocking_enter for the same call).
  virtual void on_iteration_end(int /*rank*/, Seconds /*now*/) {}

  /// Per-rank gears the controller steers.  comm_gears_ is what a rank
  /// parks at inside blocking calls; keep it in sync with compute_gears_
  /// unless a park decision says otherwise.
  std::vector<std::size_t> compute_gears_;
  std::vector<std::size_t> comm_gears_;

  /// Sim-domain counter handle from the attached registry, or nullptr
  /// when no registry is attached.  Fetch in reset(); counters survive
  /// for the registry's lifetime, the handles only for this run.
  [[nodiscard]] obs::Counter* policy_counter(std::string_view name) const {
    return metrics() != nullptr ? &metrics()->counter(name) : nullptr;
  }

 private:
  std::size_t initial_gear_;
  std::vector<trace::IterationClock> clocks_;
};

}  // namespace gearsim::policy
