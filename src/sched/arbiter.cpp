#include "sched/arbiter.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gearsim::sched {

int headroom_priority(EnergyPolicyTag tag) {
  switch (tag) {
    case EnergyPolicyTag::kMinimizeTimeToSolution: return 0;
    case EnergyPolicyTag::kNone: return 1;
    case EnergyPolicyTag::kMinimizeEnergyToSolution: return 2;
  }
  return 1;
}

GearArbiter::GearArbiter(Watts power_cap, Watts idle_node_power)
    : power_cap_(power_cap), idle_node_power_(idle_node_power) {
  GEARSIM_REQUIRE(power_cap_.value() > 0.0, "non-positive power cap");
  GEARSIM_REQUIRE(idle_node_power_.value() >= 0.0, "negative idle power");
}

namespace {

/// Per-job climbing state: the frontier ladder (fastest first) plus the
/// current rung and the fastest rung this job's tag permits.
struct Climber {
  std::vector<ConfigPoint> ladder;
  std::size_t rung = 0;       ///< Current index (ladder.size()-1 = slowest).
  std::size_t ceiling = 0;    ///< Smallest (fastest) index the tag allows.
  int priority = 1;
};

}  // namespace

std::optional<ArbiterOutcome> GearArbiter::arbitrate(
    const std::vector<ArbiterJob>& jobs, int parked_nodes) const {
  GEARSIM_REQUIRE(parked_nodes >= 0, "negative parked-node count");
  const Watts budget =
      power_cap_ - static_cast<double>(parked_nodes) * idle_node_power_;

  std::vector<Climber> climbers;
  climbers.reserve(jobs.size());
  for (const ArbiterJob& job : jobs) {
    GEARSIM_REQUIRE(job.profile != nullptr, "arbiter job without a profile");
    Climber c;
    c.ladder = job.profile->gear_frontier(job.nodes);
    GEARSIM_REQUIRE(!c.ladder.empty(),
                    "job has no profile point at width " +
                        std::to_string(job.nodes));
    c.rung = c.ladder.size() - 1;  // Lowest power.
    c.priority = headroom_priority(job.tag);
    if (job.tag == EnergyPolicyTag::kMinimizeEnergyToSolution) {
      // Never climb past the energy-optimal rung (ties break faster).
      std::size_t best = 0;
      for (std::size_t i = 1; i < c.ladder.size(); ++i) {
        if (c.ladder[i].energy < c.ladder[best].energy) best = i;
      }
      c.ceiling = best;
      // The energy optimum may sit below the lowest-power rung start.
      if (c.rung < c.ceiling) c.rung = c.ceiling;
    }
    climbers.push_back(std::move(c));
  }

  // Total draw recomputed in job order every time, so the floating-point
  // sum the feasibility checks see is exactly the one the caller's cap
  // invariant will see.
  const auto total_draw = [&climbers] {
    Watts sum{};
    for (const Climber& c : climbers) sum += c.ladder[c.rung].mean_power();
    return sum;
  };

  if (total_draw() > budget) return std::nullopt;

  // Visit order: priority class, then submission order (stable).
  std::vector<std::size_t> order(climbers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&climbers](std::size_t a, std::size_t b) {
                     return climbers[a].priority < climbers[b].priority;
                   });

  bool granted = true;
  while (granted) {
    granted = false;
    for (std::size_t i : order) {
      Climber& c = climbers[i];
      if (c.rung <= c.ceiling) continue;  // Already as fast as allowed.
      const Watts without = total_draw() - c.ladder[c.rung].mean_power();
      if (without + c.ladder[c.rung - 1].mean_power() > budget) continue;
      --c.rung;
      granted = true;
    }
  }

  ArbiterOutcome outcome;
  outcome.gears.reserve(climbers.size());
  for (const Climber& c : climbers) outcome.gears.push_back(c.ladder[c.rung]);
  outcome.draw = total_draw();
  return outcome;
}

}  // namespace gearsim::sched
