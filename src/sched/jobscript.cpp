#include "sched/jobscript.hpp"

#include <cctype>
#include <optional>
#include <sstream>

#include "util/assert.hpp"

namespace gearsim::sched {

std::string to_string(EnergyPolicyTag tag) {
  switch (tag) {
    case EnergyPolicyTag::kMinimizeTimeToSolution:
      return "minimize_time_to_solution";
    case EnergyPolicyTag::kMinimizeEnergyToSolution:
      return "minimize_energy_to_solution";
    case EnergyPolicyTag::kNone:
      return "none";
  }
  return "?";
}

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

bool parse_yes_no(const std::string& key, const std::string& value) {
  if (value == "yes") return true;
  if (value == "no") return false;
  throw ContractError("job script: " + key + " expects yes or no, got '" +
                      value + "'");
}

int parse_positive_int(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  int parsed = 0;
  try {
    parsed = std::stoi(value, &used);
  } catch (const std::exception&) {
    throw ContractError("job script: bad " + key + " '" + value + "'");
  }
  if (used != value.size() || parsed < 1) {
    throw ContractError("job script: bad " + key + " '" + value + "'");
  }
  return parsed;
}

double parse_number(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &used);
  } catch (const std::exception&) {
    throw ContractError("job script: bad " + key + " '" + value + "'");
  }
  if (used != value.size()) {
    throw ContractError("job script: bad " + key + " '" + value + "'");
  }
  return parsed;
}

/// The in-flight state of one stanza; `queue` freezes it into a JobScript.
struct Stanza {
  std::optional<std::string> name;
  std::optional<std::string> workload;
  std::optional<int> total_tasks;
  std::optional<Seconds> wall_limit;
  std::optional<Seconds> arrival;
  std::optional<bool> minimize_time;
  std::optional<bool> minimize_energy;
  std::optional<std::string> tag_value;
  bool touched = false;  ///< Any `#@` keyword seen since the last queue.
};

}  // namespace

Seconds parse_wall_clock_limit(const std::string& text) {
  // HH:MM:SS / MM:SS / plain seconds.
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(text);
  while (std::getline(in, part, ':')) parts.push_back(part);
  GEARSIM_REQUIRE(!parts.empty() && parts.size() <= 3,
                  "job script: bad wall_clock_limit '" + text + "'");
  double total = 0.0;
  for (const std::string& p : parts) {
    const double v = parse_number("wall_clock_limit", trim(p));
    GEARSIM_REQUIRE(v >= 0.0,
                    "job script: negative wall_clock_limit '" + text + "'");
    total = total * 60.0 + v;
  }
  return seconds(total);
}

std::vector<JobScript> parse_job_scripts(const std::string& text) {
  std::vector<JobScript> jobs;
  Stanza stanza;

  const auto queue_job = [&jobs, &stanza] {
    JobScript job;
    job.id = stanza.name.value_or("job" + std::to_string(jobs.size() + 1));
    job.workload = stanza.workload.value_or(job.workload);
    job.total_tasks = stanza.total_tasks.value_or(job.total_tasks);
    job.wall_clock_limit = stanza.wall_limit.value_or(job.wall_clock_limit);
    job.arrival = stanza.arrival.value_or(job.arrival);
    GEARSIM_REQUIRE(!(stanza.minimize_time.value_or(false) &&
                      stanza.minimize_energy.value_or(false)),
                    "job script " + job.id +
                        ": minimize_time_to_solution and "
                        "minimize_energy_to_solution are both set");
    if (stanza.minimize_time.value_or(false)) {
      job.tag = EnergyPolicyTag::kMinimizeTimeToSolution;
    } else if (stanza.minimize_energy.value_or(false)) {
      job.tag = EnergyPolicyTag::kMinimizeEnergyToSolution;
    } else if (stanza.tag_value.has_value()) {
      // A tag naming the policy directly binds without a minimize_* line;
      // a site-specific tag name with no minimize_* line means "none".
      const std::string& tag = *stanza.tag_value;
      if (tag == "minimize_time_to_solution") {
        job.tag = EnergyPolicyTag::kMinimizeTimeToSolution;
      } else if (tag == "minimize_energy_to_solution") {
        job.tag = EnergyPolicyTag::kMinimizeEnergyToSolution;
      } else {
        job.tag = EnergyPolicyTag::kNone;
      }
    }
    jobs.push_back(std::move(job));
    stanza = Stanza{};
  };

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.rfind("#@", 0) != 0) continue;  // Shell payload / comments.
    line = trim(line.substr(2));
    if (line == "queue") {
      queue_job();
      continue;
    }
    const std::size_t eq = line.find('=');
    GEARSIM_REQUIRE(eq != std::string::npos,
                    "job script: malformed keyword line '#@ " + line + "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    stanza.touched = true;
    if (key == "job_name") {
      stanza.name = value;
    } else if (key == "workload") {
      stanza.workload = value;
    } else if (key == "total_tasks") {
      stanza.total_tasks = parse_positive_int(key, value);
    } else if (key == "wall_clock_limit") {
      stanza.wall_limit = parse_wall_clock_limit(value);
    } else if (key == "arrival") {
      const double v = parse_number(key, value);
      GEARSIM_REQUIRE(v >= 0.0, "job script: negative arrival '" + value +
                                    "'");
      stanza.arrival = seconds(v);
    } else if (key == "energy_policy_tag") {
      stanza.tag_value = value;
    } else if (key == "minimize_time_to_solution") {
      stanza.minimize_time = parse_yes_no(key, value);
    } else if (key == "minimize_energy_to_solution") {
      stanza.minimize_energy = parse_yes_no(key, value);
    } else if (key == "job_type") {
      GEARSIM_REQUIRE(value == "parallel",
                      "job script: unsupported job_type '" + value + "'");
    }
    // Every other LoadLeveler key (output, error, class, notification,
    // island_count, notify_user, ...) is accepted and ignored.
  }
  GEARSIM_REQUIRE(!stanza.touched,
                  "job script: trailing stanza without '#@ queue'");
  return jobs;
}

JobScript parse_job_script(const std::string& text) {
  std::vector<JobScript> jobs = parse_job_scripts(text);
  GEARSIM_REQUIRE(jobs.size() == 1,
                  "expected exactly one job stanza, got " +
                      std::to_string(jobs.size()));
  return std::move(jobs.front());
}

}  // namespace gearsim::sched
