#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <list>

#include "util/assert.hpp"

namespace gearsim::sched {

const Placement& ScheduleResult::placement(const std::string& job_id) const {
  const auto it = std::find_if(
      placements.begin(), placements.end(),
      [&job_id](const Placement& p) { return p.job_id == job_id; });
  GEARSIM_REQUIRE(it != placements.end(), "no placement for job " + job_id);
  return *it;
}

Scheduler::Scheduler(Machine machine, WorkloadProfile::Objective objective,
                     QueueDiscipline discipline)
    : machine_(machine), objective_(objective), discipline_(discipline) {
  GEARSIM_REQUIRE(machine_.nodes >= 1, "machine needs nodes");
  GEARSIM_REQUIRE(machine_.power_cap.value() > 0.0, "non-positive power cap");
  GEARSIM_REQUIRE(machine_.idle_node_power.value() >= 0.0,
                  "negative idle power");
  GEARSIM_REQUIRE(
      machine_.power_cap >=
          static_cast<double>(machine_.nodes) * machine_.idle_node_power,
      "the cap cannot even park the machine's nodes");
}

namespace {

struct Running {
  Seconds end{};
  int nodes = 0;
  Watts power{};
  const Job* job = nullptr;
  Seconds start{};
};

/// One change in machine capacity (outage: negative, repair: positive).
struct CapacityEvent {
  Seconds at{};
  int delta = 0;
};

double objective_score(WorkloadProfile::Objective objective,
                       const ConfigPoint& p) {
  switch (objective) {
    case WorkloadProfile::Objective::kMinTime: return p.time.value();
    case WorkloadProfile::Objective::kMinEnergy: return p.energy.value();
    case WorkloadProfile::Objective::kMinEdp: return p.edp();
  }
  return p.time.value();
}

}  // namespace

ScheduleResult Scheduler::schedule(const std::vector<Job>& queue) const {
  return schedule(queue, {});
}

ScheduleResult Scheduler::schedule(
    const std::vector<Job>& queue,
    const std::vector<NodeOutage>& outages) const {
  for (const auto& job : queue) {
    GEARSIM_REQUIRE(job.profile != nullptr, "job without a profile");
  }
  std::vector<CapacityEvent> cap_events;
  for (const auto& outage : outages) {
    GEARSIM_REQUIRE(outage.at.value() >= 0.0, "outage before time zero");
    GEARSIM_REQUIRE(outage.nodes_lost >= 1 &&
                        outage.nodes_lost <= machine_.nodes,
                    "outage size outside the machine");
    GEARSIM_REQUIRE(outage.repair_after.value() > 0.0,
                    "repair must take positive time");
    cap_events.push_back(CapacityEvent{outage.at, -outage.nodes_lost});
    if (std::isfinite(outage.repair_after.value())) {
      cap_events.push_back(
          CapacityEvent{outage.at + outage.repair_after, outage.nodes_lost});
    }
  }
  std::stable_sort(cap_events.begin(), cap_events.end(),
                   [](const CapacityEvent& a, const CapacityEvent& b) {
                     return a.at < b.at;
                   });

  // Pick the objective-best configuration that fits the free nodes and
  // the power headroom; nodes left parked keep drawing idle power, so the
  // budget depends on how many the candidate configuration occupies.
  const auto choose = [this](const WorkloadProfile& profile, int free_nodes,
                             Watts running_power) -> std::optional<ConfigPoint> {
    std::optional<ConfigPoint> winner;
    for (const auto& p : profile.points()) {
      if (p.nodes > free_nodes) continue;
      const Watts parked = static_cast<double>(free_nodes - p.nodes) *
                           machine_.idle_node_power;
      if (running_power + p.mean_power() + parked > machine_.power_cap) {
        continue;
      }
      if (!winner || objective_score(objective_, p) <
                         objective_score(objective_, *winner) ||
          (objective_score(objective_, p) ==
               objective_score(objective_, *winner) &&
           p.nodes < winner->nodes)) {
        winner = p;
      }
    }
    return winner;
  };

  // Every job must be runnable on the empty machine.
  for (const auto& job : queue) {
    GEARSIM_REQUIRE(
        choose(*job.profile, machine_.nodes, Watts{}).has_value(),
        "job " + job.id + " cannot run on this machine at any configuration");
  }

  ScheduleResult result;
  std::list<const Job*> pending;
  for (const auto& job : queue) pending.push_back(&job);
  std::vector<Running> running;
  Seconds now{};

  const auto running_power = [&running] {
    Watts sum{};
    for (const auto& r : running) sum += r.power;
    return sum;
  };
  const auto busy_nodes = [&running] {
    int sum = 0;
    for (const auto& r : running) sum += r.nodes;
    return sum;
  };

  int capacity = machine_.nodes;
  std::size_t next_cap = 0;

  while (!pending.empty() || !running.empty()) {
    // Apply capacity changes due at `now`.
    while (next_cap < cap_events.size() && cap_events[next_cap].at <= now) {
      capacity += cap_events[next_cap].delta;
      ++next_cap;
    }
    GEARSIM_ENSURE(capacity >= 0, "more nodes down than the machine has");

    // An outage may have taken nodes out from under running jobs: kill
    // youngest-started first (least sunk work), charge what they burned
    // to wasted_energy, and put them back at the head of the queue.
    while (busy_nodes() > capacity) {
      std::size_t victim = 0;
      for (std::size_t i = 1; i < running.size(); ++i) {
        if (running[i].start >= running[victim].start) victim = i;
      }
      const Running& r = running[victim];
      result.wasted_energy += r.power * (now - r.start);
      ++result.preemptions;
      for (auto it = result.placements.rbegin(); it != result.placements.rend();
           ++it) {
        if (it->job_id == r.job->id && it->start == r.start) {
          result.job_energy -= it->config.energy;
          result.placements.erase(std::next(it).base());
          break;
        }
      }
      pending.push_front(r.job);
      running.erase(running.begin() +
                    static_cast<std::ptrdiff_t>(victim));
    }

    // Place what fits at `now`.
    bool placed_any = true;
    while (placed_any) {
      placed_any = false;
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        const Job& job = **it;
        const int free_nodes = capacity - busy_nodes();
        const auto config = choose(*job.profile, free_nodes, running_power());
        if (config) {
          running.push_back(Running{now + config->time, config->nodes,
                                    config->mean_power(), &job, now});
          result.placements.push_back(
              Placement{job.id, *config, now, now + config->time});
          result.job_energy += config->energy;
          pending.erase(it);
          placed_any = true;
          break;  // Restart the scan with updated state.
        }
        if (discipline_ == QueueDiscipline::kFifo) break;  // Head must wait.
      }
    }

    if (running.empty()) {
      if (pending.empty()) break;
      // Nothing running and nothing placeable.  If capacity will change
      // again (a repair, or even a further outage before one), wait for
      // it with the surviving nodes parked; otherwise the queue can never
      // drain — with every job pre-checked against the empty machine this
      // only happens under an unrepaired outage.
      GEARSIM_ENSURE(next_cap < cap_events.size(),
                     "scheduler wedged with pending jobs");
      const Seconds t_next = cap_events[next_cap].at;
      const Watts draw = static_cast<double>(capacity) *
                         machine_.idle_node_power;
      result.peak_power = std::max(result.peak_power, draw);
      result.idle_energy += draw * (t_next - now);
      now = t_next;
      continue;
    }

    // Track the draw of the interval we are about to cross (placements
    // are in; completions have not happened yet).  Down nodes draw
    // nothing; only the surviving-but-unused ones are parked.
    const int parked = capacity - busy_nodes();
    const Watts draw =
        running_power() +
        static_cast<double>(parked) * machine_.idle_node_power;
    result.peak_power = std::max(result.peak_power, draw);

    // Advance to the next completion or capacity change, integrating
    // parked-node energy over the interval with the parked count that
    // held *during* it.
    const auto next = std::min_element(
        running.begin(), running.end(),
        [](const Running& a, const Running& b) { return a.end < b.end; });
    Seconds t_next = next->end;
    if (next_cap < cap_events.size() && cap_events[next_cap].at < t_next) {
      t_next = cap_events[next_cap].at;
    }
    result.idle_energy += static_cast<double>(parked) *
                          machine_.idle_node_power * (t_next - now);
    now = t_next;
    running.erase(
        std::remove_if(running.begin(), running.end(),
                       [now](const Running& r) { return r.end <= now; }),
        running.end());
  }

  result.makespan = now;
  return result;
}

}  // namespace gearsim::sched
