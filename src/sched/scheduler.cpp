#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <list>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace gearsim::sched {

const Placement& ScheduleResult::placement(const std::string& job_id) const {
  const auto it = std::find_if(
      placements.begin(), placements.end(),
      [&job_id](const Placement& p) { return p.job_id == job_id; });
  GEARSIM_REQUIRE(it != placements.end(), "no placement for job " + job_id);
  return *it;
}

Scheduler::Scheduler(Machine machine, WorkloadProfile::Objective objective,
                     QueueDiscipline discipline)
    : machine_(machine), objective_(objective), discipline_(discipline) {
  GEARSIM_REQUIRE(machine_.nodes >= 1, "machine needs nodes");
  GEARSIM_REQUIRE(machine_.power_cap.value() > 0.0, "non-positive power cap");
  GEARSIM_REQUIRE(machine_.idle_node_power.value() >= 0.0,
                  "negative idle power");
  GEARSIM_REQUIRE(
      machine_.power_cap >=
          static_cast<double>(machine_.nodes) * machine_.idle_node_power,
      "the cap cannot even park the machine's nodes");
}

namespace {

struct Running {
  Seconds end{};
  int nodes = 0;
  Watts power{};
  const Job* job = nullptr;
  Seconds start{};
};

/// One change in machine capacity (outage: negative, repair: positive).
struct CapacityEvent {
  Seconds at{};
  int delta = 0;
};

double objective_score(WorkloadProfile::Objective objective,
                       const ConfigPoint& p) {
  switch (objective) {
    case WorkloadProfile::Objective::kMinTime: return p.time.value();
    case WorkloadProfile::Objective::kMinEnergy: return p.energy.value();
    case WorkloadProfile::Objective::kMinEdp: return p.edp();
  }
  return p.time.value();
}

}  // namespace

ScheduleResult Scheduler::schedule(const std::vector<Job>& queue) const {
  return schedule(queue, {});
}

ScheduleResult Scheduler::schedule(
    const std::vector<Job>& queue,
    const std::vector<NodeOutage>& outages) const {
  for (const auto& job : queue) {
    GEARSIM_REQUIRE(job.profile != nullptr, "job without a profile");
  }
  std::vector<CapacityEvent> cap_events;
  for (const auto& outage : outages) {
    GEARSIM_REQUIRE(outage.at.value() >= 0.0, "outage before time zero");
    GEARSIM_REQUIRE(outage.nodes_lost >= 1 &&
                        outage.nodes_lost <= machine_.nodes,
                    "outage size outside the machine");
    GEARSIM_REQUIRE(outage.repair_after.value() > 0.0,
                    "repair must take positive time");
    cap_events.push_back(CapacityEvent{outage.at, -outage.nodes_lost});
    if (std::isfinite(outage.repair_after.value())) {
      cap_events.push_back(
          CapacityEvent{outage.at + outage.repair_after, outage.nodes_lost});
    }
  }
  std::stable_sort(cap_events.begin(), cap_events.end(),
                   [](const CapacityEvent& a, const CapacityEvent& b) {
                     return a.at < b.at;
                   });

  // Pick the objective-best configuration that fits the free nodes and
  // the power headroom; nodes left parked keep drawing idle power, so the
  // budget depends on how many the candidate configuration occupies.
  const auto choose = [this](const WorkloadProfile& profile, int free_nodes,
                             Watts running_power) -> std::optional<ConfigPoint> {
    std::optional<ConfigPoint> winner;
    for (const auto& p : profile.points()) {
      if (p.nodes > free_nodes) continue;
      const Watts parked = static_cast<double>(free_nodes - p.nodes) *
                           machine_.idle_node_power;
      if (running_power + p.mean_power() + parked > machine_.power_cap) {
        continue;
      }
      if (!winner || objective_score(objective_, p) <
                         objective_score(objective_, *winner) ||
          (objective_score(objective_, p) ==
               objective_score(objective_, *winner) &&
           p.nodes < winner->nodes)) {
        winner = p;
      }
    }
    return winner;
  };

  // Every job must be runnable on the empty machine.
  for (const auto& job : queue) {
    GEARSIM_REQUIRE(
        choose(*job.profile, machine_.nodes, Watts{}).has_value(),
        "job " + job.id + " cannot run on this machine at any configuration");
  }

  ScheduleResult result;
  std::list<const Job*> pending;
  std::unordered_map<const Job*, std::size_t> submit_index;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    pending.push_back(&queue[i]);
    submit_index.emplace(&queue[i], i);
  }
  std::vector<Running> running;
  Seconds now{};

  const auto running_power = [&running] {
    Watts sum{};
    for (const auto& r : running) sum += r.power;
    return sum;
  };
  const auto busy_nodes = [&running] {
    int sum = 0;
    for (const auto& r : running) sum += r.nodes;
    return sum;
  };

  int capacity = machine_.nodes;
  std::size_t next_cap = 0;

  while (!pending.empty() || !running.empty()) {
    // Apply capacity changes due at `now`.
    while (next_cap < cap_events.size() && cap_events[next_cap].at <= now) {
      capacity += cap_events[next_cap].delta;
      ++next_cap;
    }
    GEARSIM_ENSURE(capacity >= 0, "more nodes down than the machine has");

    // An outage may have taken nodes out from under running jobs: kill
    // youngest-started first (least sunk work), charge what they burned
    // to wasted_energy, and put them back at the head of the queue in
    // their original submission order.  Pushing each victim to the front
    // as it dies would invert that order for multi-victim outages, so
    // the batch is collected first and re-inserted back-to-front.
    std::vector<const Job*> victims;
    while (busy_nodes() > capacity) {
      std::size_t victim = 0;
      for (std::size_t i = 1; i < running.size(); ++i) {
        if (running[i].start >= running[victim].start) victim = i;
      }
      const Running& r = running[victim];
      result.wasted_energy += r.power * (now - r.start);
      ++result.preemptions;
      for (auto it = result.placements.rbegin(); it != result.placements.rend();
           ++it) {
        if (it->job_id == r.job->id && it->start == r.start) {
          result.job_energy -= it->config.energy;
          result.placements.erase(std::next(it).base());
          break;
        }
      }
      victims.push_back(r.job);
      running.erase(running.begin() +
                    static_cast<std::ptrdiff_t>(victim));
    }
    std::sort(victims.begin(), victims.end(),
              [&submit_index](const Job* a, const Job* b) {
                return submit_index.at(a) > submit_index.at(b);
              });
    for (const Job* v : victims) pending.push_front(v);

    // Place what fits at `now`.
    bool placed_any = true;
    while (placed_any) {
      placed_any = false;
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        const Job& job = **it;
        const int free_nodes = capacity - busy_nodes();
        const auto config = choose(*job.profile, free_nodes, running_power());
        if (config) {
          running.push_back(Running{now + config->time, config->nodes,
                                    config->mean_power(), &job, now});
          result.placements.push_back(
              Placement{job.id, *config, now, now + config->time});
          result.job_energy += config->energy;
          pending.erase(it);
          placed_any = true;
          break;  // Restart the scan with updated state.
        }
        if (discipline_ == QueueDiscipline::kFifo) break;  // Head must wait.
      }
    }

    if (running.empty()) {
      if (pending.empty()) break;
      // Nothing running and nothing placeable.  If capacity will change
      // again (a repair, or even a further outage before one), wait for
      // it with the surviving nodes parked; otherwise the queue can never
      // drain — with every job pre-checked against the empty machine this
      // only happens under an unrepaired outage.
      GEARSIM_ENSURE(next_cap < cap_events.size(),
                     "scheduler wedged with pending jobs");
      const Seconds t_next = cap_events[next_cap].at;
      const Watts draw = static_cast<double>(capacity) *
                         machine_.idle_node_power;
      result.peak_power = std::max(result.peak_power, draw);
      result.idle_energy += draw * (t_next - now);
      now = t_next;
      continue;
    }

    // Track the draw of the interval we are about to cross (placements
    // are in; completions have not happened yet).  Down nodes draw
    // nothing; only the surviving-but-unused ones are parked.
    const int parked = capacity - busy_nodes();
    const Watts draw =
        running_power() +
        static_cast<double>(parked) * machine_.idle_node_power;
    result.peak_power = std::max(result.peak_power, draw);

    // Advance to the next completion or capacity change, integrating
    // parked-node energy over the interval with the parked count that
    // held *during* it.
    const auto next = std::min_element(
        running.begin(), running.end(),
        [](const Running& a, const Running& b) { return a.end < b.end; });
    Seconds t_next = next->end;
    if (next_cap < cap_events.size() && cap_events[next_cap].at < t_next) {
      t_next = cap_events[next_cap].at;
    }
    result.idle_energy += static_cast<double>(parked) *
                          machine_.idle_node_power * (t_next - now);
    now = t_next;
    running.erase(
        std::remove_if(running.begin(), running.end(),
                       [now](const Running& r) { return r.end <= now; }),
        running.end());
  }

  result.makespan = now;
  return result;
}

// --- multi-tenant event-driven mode ------------------------------------

const BatchPlacement& BatchResult::placement(const std::string& job_id) const {
  const auto it = std::find_if(
      placements.begin(), placements.end(),
      [&job_id](const BatchPlacement& p) { return p.job_id == job_id; });
  GEARSIM_REQUIRE(it != placements.end(),
                  "no completed run for job " + job_id);
  return *it;
}

BatchScheduler::BatchScheduler(Machine machine, BatchOptions options)
    : machine_(machine), options_(options) {
  GEARSIM_REQUIRE(machine_.nodes >= 1, "machine needs nodes");
  GEARSIM_REQUIRE(machine_.power_cap.value() > 0.0, "non-positive power cap");
  GEARSIM_REQUIRE(machine_.idle_node_power.value() >= 0.0,
                  "negative idle power");
  GEARSIM_REQUIRE(
      machine_.power_cap >=
          static_cast<double>(machine_.nodes) * machine_.idle_node_power,
      "the cap cannot even park the machine's nodes");
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One job on the machine.  `gear` is the live frontier point; `end` is
/// the projected completion at that gear and is recomputed whenever the
/// arbiter shifts the job.
struct BatchRunning {
  const BatchJob* job = nullptr;
  std::size_t submit = 0;     ///< Index into the submitted jobs vector.
  int nodes = 0;
  ConfigPoint gear{};
  int start_gear_label = 0;
  int gear_changes = 0;
  double remaining = 1.0;     ///< Fraction of the run still to do.
  Seconds start{};
  Seconds end{};              ///< Projected completion at the current gear.
  Seconds deadline{};         ///< start + wall limit (inf = none).
  Joules burned{};            ///< Draw integrated since `start`.
  Watts prev_draw{};          ///< Draw before the current event.
  bool pre_existing = false;  ///< Already running when the event began?
};

struct PendingBatch {
  const BatchJob* job = nullptr;
  std::size_t submit = 0;
};

}  // namespace

BatchResult BatchScheduler::schedule(const std::vector<BatchJob>& jobs,
                                     const std::vector<NodeOutage>& outages,
                                     obs::MetricsRegistry* metrics) const {
  std::vector<std::string> seen_ids;
  for (const auto& job : jobs) {
    GEARSIM_REQUIRE(job.profile != nullptr,
                    "job " + job.script.id + " without a profile");
    GEARSIM_REQUIRE(job.script.total_tasks >= 1,
                    "job " + job.script.id + " requests no tasks");
    GEARSIM_REQUIRE(job.script.arrival.value() >= 0.0,
                    "job " + job.script.id + " arrives before time zero");
    GEARSIM_REQUIRE(job.script.wall_clock_limit.value() >= 0.0,
                    "job " + job.script.id + " has a negative wall limit");
    GEARSIM_REQUIRE(std::find(seen_ids.begin(), seen_ids.end(),
                              job.script.id) == seen_ids.end(),
                    "duplicate job id " + job.script.id);
    seen_ids.push_back(job.script.id);
  }

  std::vector<CapacityEvent> cap_events;
  for (const auto& outage : outages) {
    GEARSIM_REQUIRE(outage.at.value() >= 0.0, "outage before time zero");
    GEARSIM_REQUIRE(outage.nodes_lost >= 1 &&
                        outage.nodes_lost <= machine_.nodes,
                    "outage size outside the machine");
    GEARSIM_REQUIRE(outage.repair_after.value() > 0.0,
                    "repair must take positive time");
    cap_events.push_back(CapacityEvent{outage.at, -outage.nodes_lost});
    if (std::isfinite(outage.repair_after.value())) {
      cap_events.push_back(
          CapacityEvent{outage.at + outage.repair_after, outage.nodes_lost});
    }
  }
  std::stable_sort(cap_events.begin(), cap_events.end(),
                   [](const CapacityEvent& a, const CapacityEvent& b) {
                     return a.at < b.at;
                   });

  const GearArbiter arbiter(machine_.power_cap, machine_.idle_node_power);

  std::vector<BatchRunning> running;
  const auto busy_nodes = [&running] {
    int sum = 0;
    for (const auto& r : running) sum += r.nodes;
    return sum;
  };
  const auto jobs_draw = [&running] {
    Watts sum{};
    for (const auto& r : running) sum += r.gear.mean_power();
    return sum;
  };

  // Distinct profile widths this job may be molded onto, narrowest
  // first.  total_tasks is the job's *maximum* width.
  const auto widths_for = [this](const BatchJob& job) {
    const int cap_width = std::min(job.script.total_tasks, machine_.nodes);
    std::vector<int> widths;
    for (const auto& p : job.profile->points()) {
      if (p.nodes <= cap_width &&
          std::find(widths.begin(), widths.end(), p.nodes) == widths.end()) {
        widths.push_back(p.nodes);
      }
    }
    std::sort(widths.begin(), widths.end());
    return widths;
  };

  const auto wall_limit = [](const BatchJob& job) {
    return job.script.wall_clock_limit.value() > 0.0
               ? job.script.wall_clock_limit
               : seconds(kInf);
  };

  // Admission with arbitration on fixes only the *width* and is
  // deliberately optimistic on gears: a job is admitted when the machine
  // could hold everyone — newcomer included — at the lowest rung of
  // their ladders with the rest parked, because the arbiter can always
  // retreat to exactly that assignment.  Checking against the current
  // (arbitrated, near-cap) draw instead would seal the machine: no
  // queued job could ever start while arbitration keeps it saturated.
  // The feasibility arithmetic mirrors GearArbiter::arbitrate term for
  // term so admission never places a job the arbiter must immediately
  // evict.  Returns the width's lowest rung; arbitration assigns the
  // real gear in the same event.
  const auto choose_width = [&](const BatchJob& job,
                                int capacity) -> std::optional<ConfigPoint> {
    const Seconds limit = wall_limit(job);
    const int busy = busy_nodes();
    std::optional<ConfigPoint> winner;
    double winner_score = 0.0;
    for (int w : widths_for(job)) {
      if (w > capacity - busy) continue;
      const auto ladder = job.profile->gear_frontier(w);
      if (ladder.front().time > limit) continue;  // Dies even at top gear.
      const Watts budget =
          machine_.power_cap -
          static_cast<double>(capacity - busy - w) * machine_.idle_node_power;
      Watts floor{};
      for (const auto& r : running) {
        floor += r.job->profile->gear_frontier(r.nodes).back().mean_power();
      }
      floor += ladder.back().mean_power();
      if (floor > budget) continue;
      double score;
      if (job.script.tag == EnergyPolicyTag::kMinimizeEnergyToSolution) {
        score = kInf;
        for (const auto& p : ladder) score = std::min(score, p.energy.value());
      } else {
        score = ladder.front().time.value();
      }
      if (!winner || score < winner_score ||
          (score == winner_score && w < winner->nodes)) {
        winner = ladder.back();
        winner_score = score;
      }
    }
    return winner;
  };

  // Admission with arbitration off picks an exact (width, gear) point
  // that fits under the cap next to the *frozen* draw of everything
  // running — the single-tenant scheduler's rule, with the job's tag as
  // the objective and its wall limit as a hard filter.
  const auto choose_frozen = [&](const BatchJob& job,
                                 int capacity) -> std::optional<ConfigPoint> {
    const Seconds limit = wall_limit(job);
    const int busy = busy_nodes();
    const int cap_width = std::min(job.script.total_tasks, machine_.nodes);
    const Watts draw = jobs_draw();
    std::optional<ConfigPoint> winner;
    for (const auto& p : job.profile->points()) {
      if (p.nodes > cap_width || p.nodes > capacity - busy) continue;
      if (p.time > limit) continue;
      const Watts parked =
          static_cast<double>(capacity - busy - p.nodes) *
          machine_.idle_node_power;
      if (draw + p.mean_power() + parked > machine_.power_cap) continue;
      const double score =
          job.script.tag == EnergyPolicyTag::kMinimizeEnergyToSolution
              ? p.energy.value()
              : p.time.value();
      const double best =
          winner ? (job.script.tag ==
                            EnergyPolicyTag::kMinimizeEnergyToSolution
                        ? winner->energy.value()
                        : winner->time.value())
                 : 0.0;
      if (!winner || score < best ||
          (score == best && p.nodes < winner->nodes)) {
        winner = p;
      }
    }
    return winner;
  };

  // Every job must be runnable on the empty machine within its limit.
  for (const auto& job : jobs) {
    const auto fit = options_.arbitrate ? choose_width(job, machine_.nodes)
                                        : choose_frozen(job, machine_.nodes);
    GEARSIM_REQUIRE(fit.has_value(),
                    "job " + job.script.id +
                        " cannot run on this machine at any configuration "
                        "within its wall limit");
  }

  std::vector<std::size_t> arrival_order(jobs.size());
  for (std::size_t i = 0; i < arrival_order.size(); ++i) arrival_order[i] = i;
  std::stable_sort(arrival_order.begin(), arrival_order.end(),
                   [&jobs](std::size_t a, std::size_t b) {
                     return jobs[a].script.arrival < jobs[b].script.arrival;
                   });

  BatchResult result;
  result.min_headroom = machine_.power_cap;
  std::list<PendingBatch> pending;

  // Kill the youngest-started job (ties: the latest-placed — least sunk
  // work), charge its partial burn to wasted_energy, and hand it back
  // for re-queueing.
  const auto kill_youngest = [&]() -> PendingBatch {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < running.size(); ++i) {
      if (running[i].start >= running[victim].start) victim = i;
    }
    const BatchRunning r = running[victim];
    running.erase(running.begin() + static_cast<std::ptrdiff_t>(victim));
    result.wasted_energy += r.burned;
    ++result.preemptions;
    return PendingBatch{r.job, r.submit};
  };

  // Victims killed at one event re-enter at the front of the queue in
  // their original submission order (the single-tenant rule).
  const auto requeue = [&pending](std::vector<PendingBatch> victims) {
    std::sort(victims.begin(), victims.end(),
              [](const PendingBatch& a, const PendingBatch& b) {
                return a.submit > b.submit;
              });
    for (const auto& v : victims) pending.push_front(v);
  };

  Seconds now{};
  int capacity = machine_.nodes;
  std::size_t next_cap = 0;
  std::size_t next_arrival = 0;

  while (!running.empty() || !pending.empty() ||
         next_arrival < arrival_order.size()) {
    // 1. Capacity changes due at `now`.
    while (next_cap < cap_events.size() && cap_events[next_cap].at <= now) {
      capacity += cap_events[next_cap].delta;
      ++next_cap;
    }
    GEARSIM_ENSURE(capacity >= 0, "more nodes down than the machine has");

    // Jobs on the machine before this event: arbitration deltas against
    // their draw measure what the event redistributed.
    for (auto& r : running) {
      r.prev_draw = r.gear.mean_power();
      r.pre_existing = true;
    }

    // 2. Completions — before any kill: a job finishing exactly at an
    // outage or at its own deadline has finished.
    for (auto it = running.begin(); it != running.end();) {
      if (it->end <= now) {
        result.placements.push_back(BatchPlacement{
            it->job->script.id, it->job->profile->workload_name(),
            it->job->script.tag, it->nodes, it->start, it->end,
            it->start_gear_label, it->gear.gear_label, it->gear_changes,
            it->burned});
        result.job_energy += it->burned;
        it = running.erase(it);
      } else {
        ++it;
      }
    }

    // 3. Arrivals.
    while (next_arrival < arrival_order.size() &&
           jobs[arrival_order[next_arrival]].script.arrival <= now) {
      const std::size_t idx = arrival_order[next_arrival];
      pending.push_back(PendingBatch{&jobs[idx], idx});
      ++next_arrival;
    }

    // 4. Wall-limit kills: arbitration may have held a job below the
    // gear its admission projected, pushing completion past
    // start + wall_clock_limit.  Killed for good — not re-queued.
    for (auto it = running.begin(); it != running.end();) {
      if (it->deadline <= now) {
        result.wasted_energy += it->burned;
        ++result.wall_limit_kills;
        it = running.erase(it);
      } else {
        ++it;
      }
    }

    // 5. Outage kills, youngest-started first.
    {
      std::vector<PendingBatch> victims;
      while (busy_nodes() > capacity) victims.push_back(kill_youngest());
      requeue(std::move(victims));
    }

    // 6. Placements.
    bool placed_any = true;
    while (placed_any) {
      placed_any = false;
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        const BatchJob& job = *it->job;
        const auto config = options_.arbitrate ? choose_width(job, capacity)
                                               : choose_frozen(job, capacity);
        if (config) {
          BatchRunning r;
          r.job = it->job;
          r.submit = it->submit;
          r.nodes = config->nodes;
          r.gear = *config;
          r.start_gear_label = config->gear_label;
          r.start = now;
          r.end = now + config->time;
          r.deadline = job.script.wall_clock_limit.value() > 0.0
                           ? now + job.script.wall_clock_limit
                           : seconds(kInf);
          running.push_back(r);
          pending.erase(it);
          placed_any = true;
          break;  // Restart the scan with updated state.
        }
        if (options_.discipline == QueueDiscipline::kFifo) break;
      }
    }

    // 7. Gear arbitration — the heart of the multi-tenant mode: every
    // running job's gear is reassigned from scratch, so a completion,
    // crash or repair hands its budget to the survivors within the same
    // event.  A repair can make even the all-lowest-rung assignment
    // infeasible (the returning nodes' idle draw shrinks the budget);
    // jobs are then evicted youngest-first until the survivors fit.
    if (options_.arbitrate && !running.empty()) {
      std::vector<PendingBatch> evicted;
      for (;;) {
        std::vector<ArbiterJob> arb_jobs;
        arb_jobs.reserve(running.size());
        for (const auto& r : running) {
          arb_jobs.push_back(
              ArbiterJob{r.job->profile, r.nodes, r.job->script.tag});
        }
        const auto outcome =
            arbiter.arbitrate(arb_jobs, capacity - busy_nodes());
        ++result.arbitrations;
        if (outcome) {
          for (std::size_t i = 0; i < running.size(); ++i) {
            BatchRunning& r = running[i];
            const ConfigPoint& g = outcome->gears[i];
            if (r.pre_existing) {
              if (g.gear_label != r.gear.gear_label) ++r.gear_changes;
              const Watts delta = g.mean_power() - r.prev_draw;
              if (delta.value() > 0.0) result.redistributed_watts += delta;
            } else {
              r.start_gear_label = g.gear_label;
            }
            r.gear = g;
            r.end = now + seconds(r.remaining * g.time.value());
          }
          break;
        }
        evicted.push_back(kill_youngest());
        if (running.empty()) break;
      }
      requeue(std::move(evicted));
    } else if (!options_.arbitrate) {
      // Frozen gears cannot absorb a repair's returning idle draw; keep
      // the cap invariant by evicting youngest-started jobs instead.
      std::vector<PendingBatch> evicted;
      while (jobs_draw() + static_cast<double>(capacity - busy_nodes()) *
                               machine_.idle_node_power >
             machine_.power_cap) {
        evicted.push_back(kill_youngest());
      }
      requeue(std::move(evicted));
    }

    // 8. Sample the draw this event leaves behind.  The cap is a hard
    // invariant in both modes; the epsilon only absorbs the re-ordered
    // floating-point sums of the feasibility checks above.
    const int parked = capacity - busy_nodes();
    const Watts draw =
        jobs_draw() + static_cast<double>(parked) * machine_.idle_node_power;
    GEARSIM_ENSURE(draw <= machine_.power_cap +
                               watts(1e-9 * (1.0 + machine_.power_cap.value())),
                   "instantaneous draw exceeds the power cap");
    result.power_timeline.push_back(PowerSample{now, draw});
    result.peak_power = std::max(result.peak_power, draw);
    result.min_headroom =
        std::min(result.min_headroom, machine_.power_cap - draw);

    // 9. Advance to the next event, integrating energy and progress over
    // the constant-draw interval.  The schedule is over when nothing is
    // running, queued or still to arrive — trailing capacity events
    // must not stretch the makespan.
    if (running.empty() && pending.empty() &&
        next_arrival >= arrival_order.size()) {
      break;
    }
    Seconds t_next = seconds(kInf);
    if (next_arrival < arrival_order.size()) {
      t_next =
          std::min(t_next, jobs[arrival_order[next_arrival]].script.arrival);
    }
    if (next_cap < cap_events.size()) {
      t_next = std::min(t_next, cap_events[next_cap].at);
    }
    for (const auto& r : running) {
      t_next = std::min(t_next, r.end);
      t_next = std::min(t_next, r.deadline);
    }
    GEARSIM_ENSURE(std::isfinite(t_next.value()),
                   "batch scheduler wedged with pending jobs");
    const Seconds dt = t_next - now;
    result.idle_energy +=
        static_cast<double>(parked) * machine_.idle_node_power * dt;
    for (auto& r : running) {
      r.burned += r.gear.mean_power() * dt;
      r.remaining -= dt.value() / r.gear.time.value();
      if (r.remaining < 0.0) r.remaining = 0.0;
    }
    now = t_next;
  }

  result.makespan = now;

  if (metrics != nullptr) {
    metrics->counter("sched.arbitrations").add(result.arbitrations);
    metrics->counter("sched.preemptions")
        .add(static_cast<std::uint64_t>(result.preemptions));
    metrics->counter("sched.wall_limit_kills")
        .add(static_cast<std::uint64_t>(result.wall_limit_kills));
    metrics->gauge("sched.cap.headroom", obs::Gauge::Kind::kLast)
        .set(result.min_headroom.value());
    metrics->gauge("sched.redistributed_watts", obs::Gauge::Kind::kLast)
        .set(result.redistributed_watts.value());
  }
  return result;
}

}  // namespace gearsim::sched
