#include "sched/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <list>

#include "util/assert.hpp"

namespace gearsim::sched {

const Placement& ScheduleResult::placement(const std::string& job_id) const {
  const auto it = std::find_if(
      placements.begin(), placements.end(),
      [&job_id](const Placement& p) { return p.job_id == job_id; });
  GEARSIM_REQUIRE(it != placements.end(), "no placement for job " + job_id);
  return *it;
}

Scheduler::Scheduler(Machine machine, WorkloadProfile::Objective objective,
                     QueueDiscipline discipline)
    : machine_(machine), objective_(objective), discipline_(discipline) {
  GEARSIM_REQUIRE(machine_.nodes >= 1, "machine needs nodes");
  GEARSIM_REQUIRE(machine_.power_cap.value() > 0.0, "non-positive power cap");
  GEARSIM_REQUIRE(machine_.idle_node_power.value() >= 0.0,
                  "negative idle power");
  GEARSIM_REQUIRE(
      machine_.power_cap >=
          static_cast<double>(machine_.nodes) * machine_.idle_node_power,
      "the cap cannot even park the machine's nodes");
}

namespace {

struct Running {
  Seconds end{};
  int nodes = 0;
  Watts power{};
};

double objective_score(WorkloadProfile::Objective objective,
                       const ConfigPoint& p) {
  switch (objective) {
    case WorkloadProfile::Objective::kMinTime: return p.time.value();
    case WorkloadProfile::Objective::kMinEnergy: return p.energy.value();
    case WorkloadProfile::Objective::kMinEdp: return p.edp();
  }
  return p.time.value();
}

}  // namespace

ScheduleResult Scheduler::schedule(const std::vector<Job>& queue) const {
  for (const auto& job : queue) {
    GEARSIM_REQUIRE(job.profile != nullptr, "job without a profile");
  }

  // Pick the objective-best configuration that fits the free nodes and
  // the power headroom; nodes left parked keep drawing idle power, so the
  // budget depends on how many the candidate configuration occupies.
  const auto choose = [this](const WorkloadProfile& profile, int free_nodes,
                             Watts running_power) -> std::optional<ConfigPoint> {
    std::optional<ConfigPoint> winner;
    for (const auto& p : profile.points()) {
      if (p.nodes > free_nodes) continue;
      const Watts parked = static_cast<double>(free_nodes - p.nodes) *
                           machine_.idle_node_power;
      if (running_power + p.mean_power() + parked > machine_.power_cap) {
        continue;
      }
      if (!winner || objective_score(objective_, p) <
                         objective_score(objective_, *winner) ||
          (objective_score(objective_, p) ==
               objective_score(objective_, *winner) &&
           p.nodes < winner->nodes)) {
        winner = p;
      }
    }
    return winner;
  };

  // Every job must be runnable on the empty machine.
  for (const auto& job : queue) {
    GEARSIM_REQUIRE(
        choose(*job.profile, machine_.nodes, Watts{}).has_value(),
        "job " + job.id + " cannot run on this machine at any configuration");
  }

  ScheduleResult result;
  std::list<const Job*> pending;
  for (const auto& job : queue) pending.push_back(&job);
  std::vector<Running> running;
  Seconds now{};

  const auto running_power = [&running] {
    Watts sum{};
    for (const auto& r : running) sum += r.power;
    return sum;
  };
  const auto busy_nodes = [&running] {
    int sum = 0;
    for (const auto& r : running) sum += r.nodes;
    return sum;
  };

  while (!pending.empty() || !running.empty()) {
    // Place what fits at `now`.
    bool placed_any = true;
    while (placed_any) {
      placed_any = false;
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        const Job& job = **it;
        const int free_nodes = machine_.nodes - busy_nodes();
        const auto config = choose(*job.profile, free_nodes, running_power());
        if (config) {
          running.push_back(
              Running{now + config->time, config->nodes, config->mean_power()});
          result.placements.push_back(
              Placement{job.id, *config, now, now + config->time});
          result.job_energy += config->energy;
          pending.erase(it);
          placed_any = true;
          break;  // Restart the scan with updated state.
        }
        if (discipline_ == QueueDiscipline::kFifo) break;  // Head must wait.
      }
    }

    if (running.empty()) {
      // Nothing running and nothing placeable: with every job pre-checked
      // against the empty machine this cannot happen.
      GEARSIM_ENSURE(pending.empty(), "scheduler wedged with pending jobs");
      break;
    }

    // Track the draw of the interval we are about to cross (placements
    // are in; completions have not happened yet).
    const int parked = machine_.nodes - busy_nodes();
    const Watts draw =
        running_power() +
        static_cast<double>(parked) * machine_.idle_node_power;
    result.peak_power = std::max(result.peak_power, draw);

    // Advance to the next completion, integrating parked-node energy over
    // the interval with the parked count that held *during* it.
    const auto next = std::min_element(
        running.begin(), running.end(),
        [](const Running& a, const Running& b) { return a.end < b.end; });
    const Seconds t_next = next->end;
    result.idle_energy += static_cast<double>(parked) *
                          machine_.idle_node_power * (t_next - now);
    now = t_next;
    running.erase(
        std::remove_if(running.begin(), running.end(),
                       [now](const Running& r) { return r.end <= now; }),
        running.end());
  }

  result.makespan = now;
  return result;
}

}  // namespace gearsim::sched
