// LoadLeveler-style job descriptions for the batch scheduler.
//
// Real power-capped sites feed their schedulers job *scripts*, not API
// calls.  The grammar here is the `#@ keyword = value` dialect of the
// HemoCell production scripts (see SNIPPETS.md): a stanza of keyword
// lines terminated by `#@ queue` submits one job.  The keys the
// scheduler acts on:
//
//   #@ job_name         = cg-large         (job id; defaults to job<N>)
//   #@ workload         = CG               (gearsim: simulator workload)
//   #@ total_tasks      = 8                (max MPI ranks == max nodes)
//   #@ wall_clock_limit = 00:30:00         (HH:MM:SS or plain seconds;
//                                           0 / absent = unlimited)
//   #@ arrival          = 120              (gearsim: submit time, s)
//   #@ energy_policy_tag = my_tag          (site tag; the minimize_*
//                                           lines below bind it)
//   #@ minimize_time_to_solution   = yes   -> kMinimizeTimeToSolution
//   #@ minimize_energy_to_solution = yes   -> kMinimizeEnergyToSolution
//
// `energy_policy_tag` may also name the policy directly
// (`minimize_time_to_solution`, `minimize_energy_to_solution`, `none`).
// Unknown `#@` keys (output, error, notification, class, island_count,
// ...) are ignored, as are non-`#@` lines (the shell payload), so real
// LoadLeveler scripts parse unmodified.  Malformed values and
// contradictory minimize_* lines throw ContractError.
#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace gearsim::sched {

/// The per-job energy policy vocabulary (COUNTDOWN / power-redistribution
/// papers): how the gear arbiter treats this job's share of the site cap.
enum class EnergyPolicyTag {
  kMinimizeTimeToSolution,    ///< First claim on headroom; runs as fast as
                              ///< the cap allows.
  kMinimizeEnergyToSolution,  ///< Holds its energy-optimal gear; never
                              ///< upshifts past it, yields headroom.
  kNone,                      ///< No policy: takes leftover headroom after
                              ///< the tagged jobs.
};

[[nodiscard]] std::string to_string(EnergyPolicyTag tag);

/// One parsed job stanza.
struct JobScript {
  std::string id;                ///< job_name (or "job<N>" by position).
  std::string workload = "CG";   ///< Simulator workload name.
  int total_tasks = 1;           ///< Requested ranks; the placement width
                                 ///< ceiling (the scheduler may run the
                                 ///< job narrower, never wider).
  Seconds wall_clock_limit{};    ///< 0 = unlimited; exceeded => killed.
  Seconds arrival{};             ///< Submission time (s since epoch 0).
  EnergyPolicyTag tag = EnergyPolicyTag::kNone;
};

/// Parse every `#@ ... #@ queue` stanza in `text` (submission order).
/// Throws ContractError on malformed stanzas or keyword lines after the
/// last `#@ queue` (a stanza that never queues is a script bug).
[[nodiscard]] std::vector<JobScript> parse_job_scripts(
    const std::string& text);

/// Parse exactly one stanza; throws unless `text` queues exactly one job.
[[nodiscard]] JobScript parse_job_script(const std::string& text);

/// Parse a LoadLeveler wall-clock limit: "HH:MM:SS", "MM:SS", or plain
/// seconds.  Throws ContractError on malformed or negative input.
[[nodiscard]] Seconds parse_wall_clock_limit(const std::string& text);

}  // namespace gearsim::sched
