file(REMOVE_RECURSE
  "CMakeFiles/gearsim_sched.dir/profile.cpp.o"
  "CMakeFiles/gearsim_sched.dir/profile.cpp.o.d"
  "CMakeFiles/gearsim_sched.dir/scheduler.cpp.o"
  "CMakeFiles/gearsim_sched.dir/scheduler.cpp.o.d"
  "libgearsim_sched.a"
  "libgearsim_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
