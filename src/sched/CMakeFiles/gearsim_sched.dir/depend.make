# Empty dependencies file for gearsim_sched.
# This may be replaced when dependencies are built.
