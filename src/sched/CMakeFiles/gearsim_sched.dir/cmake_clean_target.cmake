file(REMOVE_RECURSE
  "libgearsim_sched.a"
)
