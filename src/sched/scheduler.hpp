// Energy-aware batch scheduler for a power-capped, power-scalable cluster.
//
// "We believe in the future a given supercomputer cluster will be
// restricted to a certain amount of power consumption or heat
// dissipation" (paper, Section 3.2).  This scheduler makes that scenario
// concrete: jobs arrive in a queue, the machine has N nodes and a hard
// power cap, and every placement picks a (nodes, gear) configuration from
// the job's profile so that the sum of running jobs' draw (plus the idle
// draw of parked nodes) never exceeds the cap.
//
// Two queue disciplines:
//  * kFifo  — strict order: the head job waits until it fits; and
//  * kGreedy — backfill: any queued job that fits may start (can starve
//    wide jobs; compared in tests and the example).
//
// Placement is non-preemptive and the per-job configuration is fixed at
// start, matching the paper's uniform-gear runs.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "sched/profile.hpp"

namespace gearsim::sched {

struct Job {
  std::string id;
  const WorkloadProfile* profile = nullptr;  ///< Must outlive the schedule.
};

struct Machine {
  int nodes = 10;
  Watts power_cap = watts(1500.0);
  /// Draw of a node with nothing scheduled on it (parked at the slowest
  /// gear); counts against the cap and into total energy.
  Watts idle_node_power = watts(85.0);
};

enum class QueueDiscipline { kFifo, kGreedy };

/// A hardware outage: `nodes_lost` nodes leave service at `at` and return
/// `repair_after` later (default: never).  Jobs whose nodes are lost are
/// killed — their work so far is wasted — and re-queued at the front.
struct NodeOutage {
  Seconds at{};
  int nodes_lost = 1;
  Seconds repair_after = seconds(std::numeric_limits<double>::infinity());
};

struct Placement {
  std::string job_id;
  ConfigPoint config;
  Seconds start{};
  Seconds end{};
};

struct ScheduleResult {
  std::vector<Placement> placements;  ///< In start order; killed runs removed.
  Seconds makespan{};
  Joules job_energy{};    ///< Energy of the jobs themselves.
  Joules idle_energy{};   ///< Energy of parked nodes while the queue drains.
  Watts peak_power{};     ///< Max instantaneous draw (jobs + parked nodes).
  int preemptions = 0;    ///< Jobs killed by node outages (then re-queued).
  Joules wasted_energy{}; ///< Energy burned by killed runs before the kill.

  [[nodiscard]] Joules total_energy() const { return job_energy + idle_energy; }
  [[nodiscard]] const Placement& placement(const std::string& job_id) const;
};

class Scheduler {
 public:
  explicit Scheduler(Machine machine,
                     WorkloadProfile::Objective objective =
                         WorkloadProfile::Objective::kMinTime,
                     QueueDiscipline discipline = QueueDiscipline::kFifo);

  /// Schedule `queue` (in order) onto the machine.  Throws ContractError
  /// if some job cannot run on this machine at any configuration even
  /// when it is empty.
  [[nodiscard]] ScheduleResult schedule(const std::vector<Job>& queue) const;

  /// Same, with node outages: capacity drops at each outage and jobs
  /// holding lost nodes are killed (youngest-started first — they have
  /// the least sunk work) and re-queued at the front.  Throws if the
  /// queue can never drain (outage with no repair leaves a job unfit).
  /// With no outages this is exactly the overload above.
  [[nodiscard]] ScheduleResult schedule(
      const std::vector<Job>& queue,
      const std::vector<NodeOutage>& outages) const;

  [[nodiscard]] const Machine& machine() const { return machine_; }

 private:
  Machine machine_;
  WorkloadProfile::Objective objective_;
  QueueDiscipline discipline_;
};

}  // namespace gearsim::sched
