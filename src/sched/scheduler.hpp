// Energy-aware batch scheduling for a power-capped, power-scalable
// cluster.
//
// "We believe in the future a given supercomputer cluster will be
// restricted to a certain amount of power consumption or heat
// dissipation" (paper, Section 3.2).  Two schedulers make that scenario
// concrete:
//
//  * Scheduler — the single-tenant seed: every placement picks a
//    (nodes, gear) configuration from the job's profile, the
//    configuration is frozen for the run, and the sum of running jobs'
//    draw (plus the idle draw of parked nodes) never exceeds the cap.
//    Matching the paper's uniform-gear runs.
//
//  * BatchScheduler — the multi-tenant production mode: jobs are
//    LoadLeveler-style scripts (sched/jobscript.hpp) with arrival
//    times, wall limits and per-job energy policy tags; placement fixes
//    only the *width*, and a GearArbiter (sched/arbiter.hpp)
//    re-assigns every running job's gear at every event — arrival,
//    completion, outage, repair, wall-limit kill — so a finished or
//    crashed job's power budget is redistributed to the survivors
//    instead of parked.  See docs/SCHEDULER.md.
//
// Two queue disciplines, shared by both:
//  * kFifo  — strict order: the head job waits until it fits; and
//  * kGreedy — backfill: any queued job that fits may start (can starve
//    wide jobs; compared in tests and the example).
//
// Both schedulers are pure functions of their inputs: reruns are
// byte-identical, and the instantaneous-draw-under-cap invariant is
// sampled at every event boundary (tested in tests/sched_test.cpp).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sched/arbiter.hpp"
#include "sched/jobscript.hpp"
#include "sched/profile.hpp"

namespace gearsim::obs {
class MetricsRegistry;  // obs/metrics.hpp
}

namespace gearsim::sched {

struct Job {
  std::string id;
  const WorkloadProfile* profile = nullptr;  ///< Must outlive the schedule.
};

struct Machine {
  int nodes = 10;
  Watts power_cap = watts(1500.0);
  /// Draw of a node with nothing scheduled on it (parked at the slowest
  /// gear); counts against the cap and into total energy.
  Watts idle_node_power = watts(85.0);
};

enum class QueueDiscipline { kFifo, kGreedy };

/// A hardware outage: `nodes_lost` nodes leave service at `at` and return
/// `repair_after` later (default: never).  Jobs whose nodes are lost are
/// killed — their work so far is wasted — and re-queued at the front in
/// their original submission order.
struct NodeOutage {
  Seconds at{};
  int nodes_lost = 1;
  Seconds repair_after = seconds(std::numeric_limits<double>::infinity());
};

struct Placement {
  std::string job_id;
  ConfigPoint config;
  Seconds start{};
  Seconds end{};
};

struct ScheduleResult {
  std::vector<Placement> placements;  ///< In start order; killed runs removed.
  Seconds makespan{};
  Joules job_energy{};    ///< Energy of the jobs themselves.
  Joules idle_energy{};   ///< Energy of parked nodes while the queue drains.
  Watts peak_power{};     ///< Max instantaneous draw (jobs + parked nodes).
  int preemptions = 0;    ///< Jobs killed by node outages (then re-queued).
  Joules wasted_energy{}; ///< Energy burned by killed runs before the kill.

  [[nodiscard]] Joules total_energy() const { return job_energy + idle_energy; }
  [[nodiscard]] const Placement& placement(const std::string& job_id) const;
};

class Scheduler {
 public:
  explicit Scheduler(Machine machine,
                     WorkloadProfile::Objective objective =
                         WorkloadProfile::Objective::kMinTime,
                     QueueDiscipline discipline = QueueDiscipline::kFifo);

  /// Schedule `queue` (in order) onto the machine.  Throws ContractError
  /// if some job cannot run on this machine at any configuration even
  /// when it is empty.
  [[nodiscard]] ScheduleResult schedule(const std::vector<Job>& queue) const;

  /// Same, with node outages: capacity drops at each outage and jobs
  /// holding lost nodes are killed (youngest-started first — they have
  /// the least sunk work) and re-queued at the front.  Throws if the
  /// queue can never drain (outage with no repair leaves a job unfit).
  /// With no outages this is exactly the overload above.
  [[nodiscard]] ScheduleResult schedule(
      const std::vector<Job>& queue,
      const std::vector<NodeOutage>& outages) const;

  [[nodiscard]] const Machine& machine() const { return machine_; }

 private:
  Machine machine_;
  WorkloadProfile::Objective objective_;
  QueueDiscipline discipline_;
};

// --- multi-tenant event-driven mode ------------------------------------

/// One submitted job: the parsed script plus the measured profile of its
/// workload (see WorkloadProfile::measure; widths above
/// min(script.total_tasks, machine nodes) are never used).
struct BatchJob {
  JobScript script;
  const WorkloadProfile* profile = nullptr;  ///< Must outlive the schedule.
};

struct BatchOptions {
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  /// When false, every job keeps its placement gear for its whole run
  /// and a finished or crashed job's budget stays parked — the
  /// no-redistribution control arm the benches and tests compare
  /// against.  Placement and the cap invariant are unchanged.
  bool arbitrate = true;
};

/// One completed run of one job (killed runs are not listed; their cost
/// is in BatchResult::wasted_energy and the preemption counters).
struct BatchPlacement {
  std::string job_id;
  std::string workload;
  EnergyPolicyTag tag = EnergyPolicyTag::kNone;
  int nodes = 0;
  Seconds start{};
  Seconds end{};
  int start_gear_label = 0;  ///< Gear granted at placement.
  int final_gear_label = 0;  ///< Gear held when the job completed.
  int gear_changes = 0;      ///< Mid-run arbitration shifts.
  Joules energy{};           ///< Exact integral of the job's draw.
};

/// Instantaneous total draw (jobs + parked survivors) at one event
/// boundary; the draw is constant until the next sample.
struct PowerSample {
  Seconds at{};
  Watts draw{};
};

struct BatchResult {
  std::vector<BatchPlacement> placements;  ///< In completion order.
  Seconds makespan{};
  Joules job_energy{};     ///< Integrated draw of completed runs.
  Joules idle_energy{};    ///< Parked survivors over the whole schedule.
  Joules wasted_energy{};  ///< Burned by killed runs before the kill.
  Watts peak_power{};      ///< Max instantaneous draw (== max sample).
  Watts min_headroom{};    ///< Min over samples of cap - draw (>= 0).
  int preemptions = 0;           ///< Outage kills (re-queued and re-run).
  int wall_limit_kills = 0;      ///< Wall-clock-limit kills (not re-run).
  std::uint64_t arbitrations = 0;    ///< Gear-assignment passes executed.
  /// Power re-granted by arbitration: at every event, the summed
  /// *increase* in draw of jobs that were already running before it —
  /// the watts a completion, crash or repair handed to the survivors.
  Watts redistributed_watts{};
  /// The full draw timeline, one sample per event boundary — what the
  /// cap-invariant tests replay.  draw <= cap at every sample is
  /// enforced with GEARSIM_ENSURE inside schedule() as well.
  std::vector<PowerSample> power_timeline;

  [[nodiscard]] Joules total_energy() const {
    return job_energy + idle_energy + wasted_energy;
  }
  /// The completed run of `job_id` (the re-run, for a job killed by an
  /// outage earlier).  Throws ContractError if the job never completed.
  [[nodiscard]] const BatchPlacement& placement(
      const std::string& job_id) const;
};

/// Event-driven multi-job scheduler under a site power cap.  schedule()
/// is const and deterministic; `metrics`, when given, receives the
/// sim-domain counters sched.arbitrations, sched.preemptions and the
/// gauges sched.cap.headroom (minimum observed) and
/// sched.redistributed_watts.
class BatchScheduler {
 public:
  explicit BatchScheduler(Machine machine, BatchOptions options = {});

  /// Schedule `jobs` (arrival times from their scripts) with optional
  /// node outages.  Throws ContractError when a job cannot run on the
  /// empty machine at any width/gear, or when an unrepaired outage
  /// leaves queued jobs unplaceable forever.
  [[nodiscard]] BatchResult schedule(
      const std::vector<BatchJob>& jobs,
      const std::vector<NodeOutage>& outages = {},
      obs::MetricsRegistry* metrics = nullptr) const;

  [[nodiscard]] const Machine& machine() const { return machine_; }
  [[nodiscard]] const BatchOptions& options() const { return options_; }

 private:
  Machine machine_;
  BatchOptions options_;
};

}  // namespace gearsim::sched
