#include "sched/profile.hpp"

#include <algorithm>

#include "exec/sweep_runner.hpp"
#include "util/assert.hpp"
#include "workloads/registry.hpp"

namespace gearsim::sched {

WorkloadProfile::WorkloadProfile(std::string workload_name,
                                 std::vector<ConfigPoint> points)
    : name_(std::move(workload_name)), points_(std::move(points)) {
  GEARSIM_REQUIRE(!points_.empty(), "profile needs at least one point");
  for (const auto& p : points_) {
    GEARSIM_REQUIRE(p.nodes >= 1 && p.time.value() > 0.0 &&
                        p.energy.value() > 0.0,
                    "degenerate profile point");
  }
}

WorkloadProfile WorkloadProfile::measure(cluster::ExperimentRunner& runner,
                                         const cluster::Workload& workload,
                                         int max_nodes) {
  std::vector<ConfigPoint> points;
  for (int n : workloads::paper_node_counts(workload, max_nodes)) {
    for (std::size_t g = 0; g < runner.num_gears(); ++g) {
      const cluster::RunResult r = runner.run(workload, n, g);
      points.push_back(ConfigPoint{n, g, r.gear_label, r.wall, r.energy});
    }
  }
  return WorkloadProfile(workload.name(), std::move(points));
}

WorkloadProfile WorkloadProfile::measure(const exec::SweepRunner& runner,
                                         const cluster::Workload& workload,
                                         int max_nodes) {
  // grid() runs the same (nodes-major x gears) order the serial loop
  // above walks, through the worker pool and the result cache.
  const std::vector<int> node_counts =
      workloads::paper_node_counts(workload, max_nodes);
  const std::vector<cluster::RunResult> runs =
      runner.grid(workload, node_counts);
  std::vector<ConfigPoint> points;
  points.reserve(runs.size());
  std::size_t i = 0;
  for (int n : node_counts) {
    for (std::size_t g = 0; g < runner.config().gears.size(); ++g, ++i) {
      const cluster::RunResult& r = runs[i];
      points.push_back(ConfigPoint{n, g, r.gear_label, r.wall, r.energy});
    }
  }
  return WorkloadProfile(workload.name(), std::move(points));
}

std::optional<ConfigPoint> WorkloadProfile::best(Objective objective,
                                                 int max_free_nodes,
                                                 Watts power_budget) const {
  std::optional<ConfigPoint> winner;
  auto score = [objective](const ConfigPoint& p) {
    switch (objective) {
      case Objective::kMinTime: return p.time.value();
      case Objective::kMinEnergy: return p.energy.value();
      case Objective::kMinEdp: return p.edp();
    }
    return p.time.value();
  };
  for (const auto& p : points_) {
    if (p.nodes > max_free_nodes) continue;
    if (p.mean_power() > power_budget) continue;
    if (!winner || score(p) < score(*winner) ||
        (score(p) == score(*winner) && p.nodes < winner->nodes)) {
      winner = p;
    }
  }
  return winner;
}

std::vector<ConfigPoint> WorkloadProfile::gear_frontier(int nodes) const {
  std::vector<ConfigPoint> at_width;
  for (const auto& p : points_) {
    if (p.nodes == nodes) at_width.push_back(p);
  }
  // Fastest first; among equal times the cheaper point survives pruning.
  std::stable_sort(at_width.begin(), at_width.end(),
                   [](const ConfigPoint& a, const ConfigPoint& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.mean_power() < b.mean_power();
                   });
  // Keep a point only when it is strictly slower AND strictly cheaper
  // than the last kept one (kept powers strictly decrease, so "cheaper
  // than the last" means "cheaper than all").  The fastest point always
  // survives.
  std::vector<ConfigPoint> frontier;
  for (const auto& p : at_width) {
    if (frontier.empty() || (p.time > frontier.back().time &&
                             p.mean_power() < frontier.back().mean_power())) {
      frontier.push_back(p);
    }
  }
  return frontier;
}

std::string to_string(WorkloadProfile::Objective o) {
  switch (o) {
    case WorkloadProfile::Objective::kMinTime: return "min-time";
    case WorkloadProfile::Objective::kMinEnergy: return "min-energy";
    case WorkloadProfile::Objective::kMinEdp: return "min-EDP";
  }
  return "?";
}

}  // namespace gearsim::sched
