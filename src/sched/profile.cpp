#include "sched/profile.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "workloads/registry.hpp"

namespace gearsim::sched {

WorkloadProfile::WorkloadProfile(std::string workload_name,
                                 std::vector<ConfigPoint> points)
    : name_(std::move(workload_name)), points_(std::move(points)) {
  GEARSIM_REQUIRE(!points_.empty(), "profile needs at least one point");
  for (const auto& p : points_) {
    GEARSIM_REQUIRE(p.nodes >= 1 && p.time.value() > 0.0 &&
                        p.energy.value() > 0.0,
                    "degenerate profile point");
  }
}

WorkloadProfile WorkloadProfile::measure(cluster::ExperimentRunner& runner,
                                         const cluster::Workload& workload,
                                         int max_nodes) {
  std::vector<ConfigPoint> points;
  for (int n : workloads::paper_node_counts(workload, max_nodes)) {
    for (std::size_t g = 0; g < runner.num_gears(); ++g) {
      const cluster::RunResult r = runner.run(workload, n, g);
      points.push_back(ConfigPoint{n, g, r.gear_label, r.wall, r.energy});
    }
  }
  return WorkloadProfile(workload.name(), std::move(points));
}

std::optional<ConfigPoint> WorkloadProfile::best(Objective objective,
                                                 int max_free_nodes,
                                                 Watts power_budget) const {
  std::optional<ConfigPoint> winner;
  auto score = [objective](const ConfigPoint& p) {
    switch (objective) {
      case Objective::kMinTime: return p.time.value();
      case Objective::kMinEnergy: return p.energy.value();
      case Objective::kMinEdp: return p.edp();
    }
    return p.time.value();
  };
  for (const auto& p : points_) {
    if (p.nodes > max_free_nodes) continue;
    if (p.mean_power() > power_budget) continue;
    if (!winner || score(p) < score(*winner) ||
        (score(p) == score(*winner) && p.nodes < winner->nodes)) {
      winner = p;
    }
  }
  return winner;
}

std::string to_string(WorkloadProfile::Objective o) {
  switch (o) {
    case WorkloadProfile::Objective::kMinTime: return "min-time";
    case WorkloadProfile::Objective::kMinEnergy: return "min-energy";
    case WorkloadProfile::Objective::kMinEdp: return "min-EDP";
  }
  return "?";
}

}  // namespace gearsim::sched
