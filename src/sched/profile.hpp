// Workload configuration profiles for the scheduler.
//
// The paper's closing argument is operational: a machine room has a power
// (heat) budget, and a power-scalable cluster lets the scheduler choose
// *both* the node count and the gear of every job.  A WorkloadProfile is
// the table that choice is made from: one (nodes, gear) -> (time, energy,
// mean power) entry per valid configuration, measured by running the
// workload through the simulator once per configuration.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cluster/experiment.hpp"
#include "cluster/workload.hpp"

namespace gearsim::exec {
class SweepRunner;  // exec/sweep_runner.hpp
}

namespace gearsim::sched {

struct ConfigPoint {
  int nodes = 0;
  std::size_t gear_index = 0;
  int gear_label = 0;
  Seconds time{};
  Joules energy{};

  /// Whole-run average draw — what counts against the machine's cap.
  [[nodiscard]] Watts mean_power() const { return energy / time; }
  [[nodiscard]] double edp() const { return energy.value() * time.value(); }
};

/// Immutable per-workload configuration table.
class WorkloadProfile {
 public:
  WorkloadProfile(std::string workload_name, std::vector<ConfigPoint> points);

  /// Profile `workload` on `runner`'s cluster: every valid node count up
  /// to `max_nodes` x every gear.
  static WorkloadProfile measure(cluster::ExperimentRunner& runner,
                                 const cluster::Workload& workload,
                                 int max_nodes);

  /// Same table, measured through the parallel sweep executor: points
  /// fan over `runner`'s worker pool (GEARSIM_SWEEP_JOBS honored) and —
  /// when the runner carries an exec::ResultCache — warm invocations
  /// skip the simulations entirely.  Bit-identical to the
  /// ExperimentRunner overload for any job count or cache state.
  static WorkloadProfile measure(const exec::SweepRunner& runner,
                                 const cluster::Workload& workload,
                                 int max_nodes);

  [[nodiscard]] const std::string& workload_name() const { return name_; }
  [[nodiscard]] const std::vector<ConfigPoint>& points() const {
    return points_;
  }

  /// The objective the scheduler optimizes when picking a configuration.
  enum class Objective { kMinTime, kMinEnergy, kMinEdp };

  /// Best configuration under the given resource constraints, or nullopt
  /// if none fits.  Ties break toward fewer nodes (frees the machine).
  [[nodiscard]] std::optional<ConfigPoint> best(Objective objective,
                                                int max_free_nodes,
                                                Watts power_budget) const;

  /// The Pareto-optimal gear ladder at one width: the points with
  /// exactly `nodes` nodes, fastest first, with every dominated point
  /// (slower and at least as power-hungry as a kept one) pruned — so
  /// time strictly rises and mean power strictly falls along the ladder.
  /// This is the structure the GearArbiter climbs.  Empty when the
  /// profile has no point at this width.
  [[nodiscard]] std::vector<ConfigPoint> gear_frontier(int nodes) const;

 private:
  std::string name_;
  std::vector<ConfigPoint> points_;
};

[[nodiscard]] std::string to_string(WorkloadProfile::Objective o);

}  // namespace gearsim::sched
