// Workload configuration profiles for the scheduler.
//
// The paper's closing argument is operational: a machine room has a power
// (heat) budget, and a power-scalable cluster lets the scheduler choose
// *both* the node count and the gear of every job.  A WorkloadProfile is
// the table that choice is made from: one (nodes, gear) -> (time, energy,
// mean power) entry per valid configuration, measured by running the
// workload through the simulator once per configuration.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cluster/experiment.hpp"
#include "cluster/workload.hpp"

namespace gearsim::sched {

struct ConfigPoint {
  int nodes = 0;
  std::size_t gear_index = 0;
  int gear_label = 0;
  Seconds time{};
  Joules energy{};

  /// Whole-run average draw — what counts against the machine's cap.
  [[nodiscard]] Watts mean_power() const { return energy / time; }
  [[nodiscard]] double edp() const { return energy.value() * time.value(); }
};

/// Immutable per-workload configuration table.
class WorkloadProfile {
 public:
  WorkloadProfile(std::string workload_name, std::vector<ConfigPoint> points);

  /// Profile `workload` on `runner`'s cluster: every valid node count up
  /// to `max_nodes` x every gear.
  static WorkloadProfile measure(cluster::ExperimentRunner& runner,
                                 const cluster::Workload& workload,
                                 int max_nodes);

  [[nodiscard]] const std::string& workload_name() const { return name_; }
  [[nodiscard]] const std::vector<ConfigPoint>& points() const {
    return points_;
  }

  /// The objective the scheduler optimizes when picking a configuration.
  enum class Objective { kMinTime, kMinEnergy, kMinEdp };

  /// Best configuration under the given resource constraints, or nullopt
  /// if none fits.  Ties break toward fewer nodes (frees the machine).
  [[nodiscard]] std::optional<ConfigPoint> best(Objective objective,
                                                int max_free_nodes,
                                                Watts power_budget) const;

 private:
  std::string name_;
  std::vector<ConfigPoint> points_;
};

[[nodiscard]] std::string to_string(WorkloadProfile::Objective o);

}  // namespace gearsim::sched
