// Cross-job gear arbitration under the site power cap.
//
// The scheduler fixes every running job's *width* (node count) at
// placement; the gear is the knob that stays live.  At every scheduling
// event (arrival, completion, outage, repair) the arbiter re-assigns a
// gear to each running job so that the total draw — jobs plus parked
// nodes — fits the cap, redistributing a finished or crashed job's power
// budget instead of leaving it parked (the COUNTDOWN /
// power-redistribution policy vocabulary, see docs/SCHEDULER.md).
//
// The assignment is a deterministic rung-climbing auction over each
// job's Pareto gear frontier (WorkloadProfile::gear_frontier):
//
//  1. every job starts at its lowest-power rung (if even that exceeds
//     the budget, arbitration fails and the caller must not have placed
//     the job);
//  2. rounds of one-rung upshifts follow, each round visiting jobs in
//     priority order — minimize_time_to_solution first, untagged next,
//     minimize_energy_to_solution last — granting one rung wherever the
//     budget allows;
//  3. minimize_energy jobs never climb past their energy-optimal rung;
//     the others climb toward the fastest;
//  4. rounds repeat until a full round grants nothing.
//
// Round-robin rounds (rather than letting the first job climb to the
// top) spread headroom across jobs of equal priority, which is what
// makes the whole-queue makespan benefit from a mid-run redistribution
// measurable job by job.
#pragma once

#include <optional>
#include <vector>

#include "sched/jobscript.hpp"
#include "sched/profile.hpp"

namespace gearsim::sched {

/// One running job as the arbiter sees it.
struct ArbiterJob {
  const WorkloadProfile* profile = nullptr;  ///< Must outlive the call.
  int nodes = 1;                             ///< Width fixed at placement.
  EnergyPolicyTag tag = EnergyPolicyTag::kNone;
};

/// A full gear assignment: `gears[i]` is the ConfigPoint job `i` runs at
/// (same width it was placed with); `draw` is the jobs' summed mean
/// power, excluding parked nodes.
struct ArbiterOutcome {
  std::vector<ConfigPoint> gears;
  Watts draw{};
};

class GearArbiter {
 public:
  GearArbiter(Watts power_cap, Watts idle_node_power);

  /// Assign gears to `jobs` with `parked_nodes` idle survivors drawing
  /// against the cap.  Returns nullopt when even the all-lowest-power
  /// assignment exceeds the cap (the caller admitted too much).  Throws
  /// ContractError if some job has no profile point at its width.
  [[nodiscard]] std::optional<ArbiterOutcome> arbitrate(
      const std::vector<ArbiterJob>& jobs, int parked_nodes) const;

  [[nodiscard]] Watts power_cap() const { return power_cap_; }
  [[nodiscard]] Watts idle_node_power() const { return idle_node_power_; }

 private:
  Watts power_cap_;
  Watts idle_node_power_;
};

/// Priority class for headroom: lower wins (time 0, none 1, energy 2).
[[nodiscard]] int headroom_priority(EnergyPolicyTag tag);

}  // namespace gearsim::sched
