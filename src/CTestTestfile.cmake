# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("sim")
subdirs("cpu")
subdirs("power")
subdirs("net")
subdirs("mpi")
subdirs("trace")
subdirs("faults")
subdirs("cluster")
subdirs("exec")
subdirs("workloads")
subdirs("model")
subdirs("sched")
subdirs("report")
subdirs("policy")
subdirs("serve")
