#include "exec/supervisor.hpp"

#include <chrono>
#include <exception>
#include <memory>
#include <sstream>
#include <system_error>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"

namespace gearsim::exec {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

std::string describe_point(const SweepPoint& p) {
  std::ostringstream os;
  os << (p.workload != nullptr ? p.workload->name() : std::string("<null>"))
     << " nodes=" << p.nodes << " gear=" << p.gear_index + 1
     << " rep=" << p.rep;
  if (p.policy != nullptr) os << " policy=" << p.policy->signature();
  return os.str();
}

/// Mutable per-job scratch; index-aligned with the submitted points, so
/// workers write disjoint slots and the calling thread folds in request
/// order after the pool drains.
struct JobState {
  bool valid = false;      ///< Passed validate_point.
  bool cache_hit = false;
  bool completed = false;
  int attempts = 0;
  FailureKind kind = FailureKind::kPermanent;
  std::string error;
  std::exception_ptr eptr;
  double wall_seconds = 0.0;
  obs::MetricsSnapshot snapshot;  ///< Simulated jobs only.
};

}  // namespace

const char* to_string(FailureKind kind) {
  return kind == FailureKind::kTransient ? "transient" : "permanent";
}

FailureKind classify_failure(const std::exception& e) {
  // Retry only conditions that a re-run can plausibly clear.  A
  // deterministic simulation that threw (ContractError, SimulationError,
  // a workload bug) will throw identically on every attempt.
  if (dynamic_cast<const TransientError*>(&e) != nullptr ||
      dynamic_cast<const std::system_error*>(&e) != nullptr ||
      dynamic_cast<const std::ios_base::failure*>(&e) != nullptr) {
    return FailureKind::kTransient;
  }
  return FailureKind::kPermanent;
}

std::size_t SweepOutcome::completed() const {
  std::size_t n = 0;
  for (const auto& r : results) {
    if (r.has_value()) ++n;
  }
  return n;
}

std::string SweepOutcome::report() const {
  std::ostringstream os;
  for (const JobFailure& f : failures) {
    os << "job #" << f.index << " (" << f.point << "): " << f.error << " ["
       << to_string(f.kind) << ", attempts=" << f.attempts;
    if (!f.key.empty()) os << ", key=" << f.key;
    os << "]\n";
  }
  return os.str();
}

SweepSupervisor::SweepSupervisor(cluster::ClusterConfig config,
                                 SweepOptions sweep_options,
                                 SupervisorOptions supervisor_options)
    : runner_(std::move(config), sweep_options),
      supervisor_options_(std::move(supervisor_options)) {
  GEARSIM_REQUIRE(supervisor_options_.max_attempts >= 1,
                  "supervisor needs at least one attempt per job");
  GEARSIM_REQUIRE(supervisor_options_.backoff_base_seconds >= 0.0,
                  "backoff base must be >= 0");
  GEARSIM_REQUIRE(supervisor_options_.watchdog_seconds >= 0.0,
                  "watchdog threshold must be >= 0");
}

SweepOutcome SweepSupervisor::run(
    const std::vector<SweepPoint>& points) const {
  const std::size_t n = points.size();
  const SweepOptions& sweep = runner_.options();
  const SupervisorOptions& sup = supervisor_options_;
  const auto classify =
      sup.classify ? sup.classify
                   : std::function<FailureKind(const std::exception&)>(
                         &classify_failure);

  SweepOutcome outcome;
  outcome.results.resize(n);
  std::vector<JobState> jobs(n);
  std::vector<CacheKey> keys(sweep.cache != nullptr ? n : 0);
  std::vector<std::size_t> pending;
  pending.reserve(n);

  // Phase 1, calling thread: per-job validation (a bad point fails alone
  // — the sweep-level abort lives in SweepRunner::run) and cache probes.
  for (std::size_t i = 0; i < n; ++i) {
    try {
      runner_.validate_point(points[i]);
    } catch (const std::exception& e) {
      jobs[i].error = e.what();
      jobs[i].eptr = std::current_exception();
      jobs[i].kind = FailureKind::kPermanent;
      continue;
    }
    jobs[i].valid = true;
    if (sweep.cache != nullptr) {
      keys[i] = runner_.point_key(points[i]);
      if (auto hit = sweep.cache->lookup(keys[i])) {
        outcome.results[i] = std::move(*hit);
        jobs[i].completed = true;
        jobs[i].cache_hit = true;
        continue;
      }
    }
    pending.push_back(i);
  }

  obs::MetricsRegistry* const reg = sweep.metrics;

  // One job's attempt/retry loop.  Exceptions from the *simulation* are
  // absorbed into the JobState here; anything thrown past this function
  // (classify, allocation failure, the escape failpoint) is caught by
  // the outer handler at the call site.
  const auto run_one_job = [&](JobState& job, std::size_t i,
                               std::int64_t job_index) {
    // Failpoint modeling an exception that escapes the per-attempt
    // handling — the class of bug the outer catch exists for.
    if (util::failpoint("exec.supervisor.job.escape", job_index)) {
      throw SimulationError("failpoint exec.supervisor.job.escape fired for job " +
                            std::to_string(i));
    }
    for (int attempt = 1;; ++attempt) {
      job.attempts = attempt;
      const SteadyClock::time_point start = SteadyClock::now();
      try {
        // Failpoints (deterministic, keyed by job index; see
        // docs/RESILIENCE.md).  job.slow's arg is a sleep in
        // milliseconds — the watchdog test's runaway config.
        if (util::failpoint("exec.supervisor.job.throw", job_index)) {
          throw TransientError(
              "failpoint exec.supervisor.job.throw fired for job " +
              std::to_string(i));
        }
        if (util::failpoint("exec.supervisor.job.throw_permanent",
                            job_index)) {
          throw SimulationError(
              "failpoint exec.supervisor.job.throw_permanent fired "
              "for job " +
              std::to_string(i));
        }
        if (const auto ms =
                util::failpoint("exec.supervisor.job.slow", job_index)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(*ms));
        }
        std::unique_ptr<obs::MetricsRegistry> point_reg;
        if (reg != nullptr) {
          point_reg = std::make_unique<obs::MetricsRegistry>();
        }
        cluster::RunResult result =
            runner_.simulate_point(points[i], point_reg.get());
        job.wall_seconds += seconds_since(start);
        if (sweep.cache != nullptr) {
          sweep.cache->insert(keys[i], result);
        }
        if (point_reg != nullptr) job.snapshot = point_reg->snapshot();
        outcome.results[i] = std::move(result);
        job.completed = true;
        return;
      } catch (const std::exception& e) {
        job.wall_seconds += seconds_since(start);
        job.error = e.what();
        job.eptr = std::current_exception();
        job.kind = classify(e);
      } catch (...) {
        job.wall_seconds += seconds_since(start);
        job.error = "unknown exception";
        job.eptr = std::current_exception();
        job.kind = FailureKind::kPermanent;
      }
      if (job.kind != FailureKind::kTransient ||
          attempt >= sup.max_attempts) {
        return;  // Terminal: permanent, or retry budget exhausted.
      }
      // Deterministic exponential backoff: attempt k waits
      // base * 2^(k-2) seconds before running.
      if (sup.backoff_base_seconds > 0.0) {
        const double wait =
            sup.backoff_base_seconds *
            static_cast<double>(std::uint64_t{1} << (attempt - 1));
        std::this_thread::sleep_for(std::chrono::duration<double>(wait));
      }
    }
  };

  // Phase 2, worker pool: every pending job under exception isolation.
  // Nothing escapes the lambda, so parallel_for_ordered never aborts and
  // every job gets its turn regardless of its neighbours' fate.  That
  // guarantee must hold *unconditionally*: an escaped exception trips
  // parallel_for_ordered's fail-fast stop flag, unclaimed jobs are
  // silently skipped, and a job legitimately flagged slow while the pool
  // drains would lose its phase-3 bookkeeping — runaway flag and
  // JobFailure record — to the sweep-wide rethrow.  run_one_job's inner
  // try does not cover everything, though: the user-supplied `classify`
  // callback runs in the *catch* handler and may itself throw, as may
  // the error-string copy.  The outer catch here turns any such escape
  // into a recorded permanent failure for this job, so phase 3 always
  // runs over every job.
  parallel_for_ordered(
      sweep.jobs, pending.size(), [&](std::size_t m) {
        const std::size_t i = pending[m];
        JobState& job = jobs[i];
        try {
          run_one_job(job, i, static_cast<std::int64_t>(i));
        } catch (const std::exception& e) {
          job.eptr = std::current_exception();
          job.kind = FailureKind::kPermanent;
          job.completed = false;
          try {
            job.error = std::string("supervisor job escape: ") + e.what();
          } catch (...) {
            job.error.clear();
          }
        } catch (...) {
          job.eptr = std::current_exception();
          job.kind = FailureKind::kPermanent;
          job.completed = false;
        }
      });

  // Phase 3, calling thread: fold in request order (determinism), build
  // the failure report, apply the watchdog.
  std::size_t cache_hits = 0;
  std::size_t simulated = 0;
  for (std::size_t i = 0; i < n; ++i) {
    JobState& job = jobs[i];
    if (job.attempts > 1) {
      outcome.retries += static_cast<std::uint64_t>(job.attempts - 1);
    }
    if (job.cache_hit) ++cache_hits;
    if (job.completed && !job.cache_hit) {
      ++simulated;
      if (reg != nullptr && !job.snapshot.empty()) reg->merge(job.snapshot);
    }
    if (sup.watchdog_seconds > 0.0 &&
        job.wall_seconds > sup.watchdog_seconds) {
      outcome.runaway.push_back(i);
    }
    if (!job.completed) {
      JobFailure failure;
      failure.index = i;
      failure.point = describe_point(points[i]);
      failure.key = (sweep.cache != nullptr && job.valid) ? keys[i].hex()
                                                          : std::string();
      failure.attempts = job.attempts;
      failure.kind = job.kind;
      failure.error = job.error;
      failure.wall_seconds = job.wall_seconds;
      outcome.failures.push_back(std::move(failure));
    }
  }

  if (reg != nullptr) {
    reg->counter("exec.supervisor.jobs").add(n);
    reg->counter("exec.supervisor.failures").add(outcome.failures.size());
    reg->counter("exec.supervisor.retries").add(outcome.retries);
    if (sweep.cache != nullptr) {
      reg->counter("exec.cache.hits").add(cache_hits);
      reg->counter("exec.cache.misses").add(pending.size());
      reg->counter("exec.cache.insertions").add(simulated);
    }
    // Wall-clock derived, so never a sim-domain (comparable) metric.
    if (obs::Counter* runaway = reg->wall_counter("exec.supervisor.runaway")) {
      runaway->add(outcome.runaway.size());
    }
  }

  if (sup.strict && !outcome.failures.empty()) {
    // Throw-through compatibility: the lowest-index failure, exactly
    // what a serial SweepRunner::run would have surfaced first.
    std::rethrow_exception(jobs[outcome.failures.front().index].eptr);
  }
  return outcome;
}

}  // namespace gearsim::exec
