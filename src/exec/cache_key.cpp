#include "exec/cache_key.hpp"

#include <charconv>
#include <limits>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace gearsim::exec {

namespace {

/// Round-trip decimal rendering of a double (max_digits10 ⇒ no two
/// distinct values share a rendering).
std::string num(double v) {
  char buf[40];
  const auto [ptr, ec] = std::to_chars(
      buf, buf + sizeof(buf), v, std::chars_format::general,
      std::numeric_limits<double>::max_digits10);
  GEARSIM_ENSURE(ec == std::errc(), "double rendering failed");
  return std::string(buf, ptr);
}

std::string num(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::uint64_t fnv1a(std::string_view bytes) { return util::fnv1a(bytes); }

std::string CacheKey::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  std::uint64_t h = hash;
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[h & 0xf];
    h >>= 4;
  }
  return out;
}

std::string canonical_config(const cluster::ClusterConfig& c) {
  std::string s = "cluster{name=" + c.name +
                  ",max_nodes=" + std::to_string(c.max_nodes);
  s += ",cpu{upc=" + num(c.cpu.upc_eff) +
       ",mem_lat=" + num(c.cpu.mem_latency.value()) + "}";
  s += ",gears[";
  for (std::size_t g = 0; g < c.gears.size(); ++g) {
    const cpu::Gear& gear = c.gears.gear(g);
    if (g) s += ';';
    s += std::to_string(gear.label) + ":" + num(gear.frequency.value()) +
         ":" + num(gear.voltage.value());
  }
  s += "]";
  s += ",power{base=" + num(c.power.base.value()) +
       ",static=" + num(c.power.cpu_static.value()) +
       ",dyn=" + num(c.power.cpu_dynamic.value()) +
       ",floor=" + num(c.power.stall_activity_floor) +
       ",idle_act=" + num(c.power.idle_activity) + "}";
  s += ",net{lat=" + num(c.network.latency.value()) +
       ",link=" + num(c.network.link_bandwidth) +
       ",backplane=" + num(c.network.backplane_bandwidth) +
       ",jitter=" + num(c.network.latency_jitter) +
       ",jitter_seed=" + num(c.network.jitter_seed) +
       ",topology=" + net::to_spec(c.network.topology) + "}";
  s += ",mpi{eager=" + num(std::uint64_t(c.mpi.eager_threshold)) +
       ",overhead=" + num(c.mpi.call_overhead.value()) + "}";
  s += ",imbalance=" + num(c.load_imbalance);
  s += ",switch_lat=" + num(c.gear_switch_latency.value());
  s += ",sample=" + std::string(c.sample_power ? "1" : "0");
  if (c.sample_power) {
    s += ",meter{rate=" + num(c.multimeter.sample_rate_hz) +
         ",noise=" + num(c.multimeter.noise_stddev_watts) +
         ",seed=" + num(c.multimeter.noise_seed) + "}";
  }
  s += ",seed=" + num(c.seed) + "}";
  return s;
}

std::string canonical_fault_plan(const faults::FaultPlan* plan) {
  if (plan == nullptr || plan->empty()) return "faults=none";
  std::string s = "faults{seed=" + num(plan->seed());
  s += ",crashes[";
  for (std::size_t i = 0; i < plan->crashes().size(); ++i) {
    const auto& ev = plan->crashes()[i];
    if (i) s += ';';
    s += num(std::uint64_t(ev.node)) + "@" + num(ev.at.value());
  }
  s += "],stragglers[";
  for (std::size_t i = 0; i < plan->stragglers().size(); ++i) {
    const auto& w = plan->stragglers()[i];
    if (i) s += ';';
    s += num(std::uint64_t(w.node)) + ":" + num(w.from.value()) + "-" +
         num(w.until.value()) + ">=" + num(std::uint64_t(w.min_gear_index));
  }
  s += "],links[";
  for (std::size_t i = 0; i < plan->link_faults().size(); ++i) {
    const auto& w = plan->link_faults()[i];
    if (i) s += ';';
    s += num(std::uint64_t(w.src)) + ">" + num(std::uint64_t(w.dst)) + ":" +
         num(w.from.value()) + "-" + num(w.until.value()) +
         ",p=" + num(w.loss_probability) +
         ",rto=" + num(w.retransmit_timeout.value()) +
         ",backoff=" + num(w.backoff) +
         ",retries=" + std::to_string(w.max_retries) +
         ",latx=" + num(w.latency_factor);
  }
  s += "],dropouts[";
  for (std::size_t i = 0; i < plan->meter_dropouts().size(); ++i) {
    const auto& w = plan->meter_dropouts()[i];
    if (i) s += ';';
    s += num(std::uint64_t(w.node)) + ":" + num(w.from.value()) + "-" +
         num(w.until.value());
  }
  s += "]";
  if (plan->checkpointing().has_value()) {
    const auto& k = *plan->checkpointing();
    s += ",ckpt{interval=" + num(k.interval.value()) +
         ",write=" + num(k.write_time.value()) +
         ",write_p=" + num(k.write_power.value()) +
         ",restart=" + num(k.restart_time.value()) +
         ",restart_p=" + num(k.restart_power.value()) +
         ",max=" + std::to_string(k.max_restarts) + "}";
  }
  s += "}";
  return s;
}

CacheKey sweep_point_key(const cluster::ClusterConfig& config,
                         std::string_view workload_signature, int nodes,
                         std::size_t gear_index, int rep,
                         const faults::FaultPlan* plan,
                         std::string_view policy_signature) {
  CacheKey key;
  key.text = "gearsim-v" + std::to_string(kKeyFormatVersion) + "|" +
             canonical_config(config) + "|workload=" +
             std::string(workload_signature) + "|nodes=" +
             std::to_string(nodes) + "|gear=" + std::to_string(gear_index) +
             "|policy=" +
             (policy_signature.empty() ? "none"
                                       : std::string(policy_signature)) +
             "|rep=" + std::to_string(rep) + "|" +
             canonical_fault_plan(plan);
  key.hash = fnv1a(key.text);
  return key;
}

}  // namespace gearsim::exec
