#include "exec/inflight.hpp"

#include <condition_variable>
#include <utility>

namespace gearsim::exec {

/// Shared state of one dedup round.  Claimants hold it via shared_ptr,
/// so a slot outlives its table entry: followers woken after settlement
/// read the outcome from the slot even though the key is long gone.
struct InflightSlot {
  std::mutex mutex;
  std::condition_variable cv;
  bool settled = false;
  InflightTable::Outcome outcome = InflightTable::Outcome::kAbandoned;
  std::optional<cluster::RunResult> result;
  std::string error;
};

InflightTable::Ticket InflightTable::claim(const std::string& key_text) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = open_.find(key_text);
  if (it != open_.end()) {
    ++stats_.coalesced;
    return Ticket{false, it->second};
  }
  auto slot = std::make_shared<InflightSlot>();
  open_.emplace(key_text, slot);
  ++stats_.leaders;
  return Ticket{true, std::move(slot)};
}

void InflightTable::settle(const std::string& key_text, const Ticket& ticket,
                           Outcome outcome,
                           std::optional<cluster::RunResult> result,
                           std::string error) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Erase only our own round: a racing claim may already have opened
    // the key's *next* round (after an abandon), which must survive.
    const auto it = open_.find(key_text);
    if (it != open_.end() && it->second == ticket.slot) open_.erase(it);
    switch (outcome) {
      case Outcome::kReady:
        ++stats_.published;
        break;
      case Outcome::kFailed:
        ++stats_.failed;
        break;
      case Outcome::kAbandoned:
        ++stats_.abandoned;
        break;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(ticket.slot->mutex);
    ticket.slot->settled = true;
    ticket.slot->outcome = outcome;
    ticket.slot->result = std::move(result);
    ticket.slot->error = std::move(error);
  }
  ticket.slot->cv.notify_all();
}

void InflightTable::publish(const std::string& key_text, const Ticket& ticket,
                            const cluster::RunResult& result) {
  settle(key_text, ticket, Outcome::kReady, result, {});
}

void InflightTable::fail(const std::string& key_text, const Ticket& ticket,
                         std::string error) {
  settle(key_text, ticket, Outcome::kFailed, std::nullopt, std::move(error));
}

void InflightTable::abandon(const std::string& key_text,
                            const Ticket& ticket) {
  settle(key_text, ticket, Outcome::kAbandoned, std::nullopt, {});
}

InflightTable::WaitResult InflightTable::wait(const Ticket& ticket) const {
  std::unique_lock<std::mutex> lock(ticket.slot->mutex);
  ticket.slot->cv.wait(lock, [&] { return ticket.slot->settled; });
  WaitResult out;
  out.outcome = ticket.slot->outcome;
  out.result = ticket.slot->result;
  out.error = ticket.slot->error;
  return out;
}

InflightTable::Stats InflightTable::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t InflightTable::open() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return open_.size();
}

}  // namespace gearsim::exec
