#include "exec/store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exec/cache_key.hpp"
#include "exec/result_io.hpp"
#include "util/hash.hpp"

namespace gearsim::exec {

namespace {

constexpr std::string_view kMagic = "gearsim-store";

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xfU];
    v >>= 4;
  }
  return out;
}

/// Parse a decimal field "name=<digits>" out of `token`; false on any
/// deviation (header fields are machine-written, so strictness is free
/// corruption detection).
bool parse_field(std::string_view token, std::string_view name,
                 std::uint64_t* out) {
  if (token.size() <= name.size() + 1) return false;
  if (token.substr(0, name.size()) != name) return false;
  if (token[name.size()] != '=') return false;
  const std::string_view value = token.substr(name.size() + 1);
  std::uint64_t v = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_hex_field(std::string_view token, std::string_view name,
                     std::uint64_t* out) {
  if (token.size() != name.size() + 1 + 16) return false;
  if (token.substr(0, name.size()) != name) return false;
  if (token[name.size()] != '=') return false;
  std::uint64_t v = 0;
  for (const char c : token.substr(name.size() + 1)) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = v;
  return true;
}

std::string_view next_token(std::string_view line, std::size_t* pos) {
  while (*pos < line.size() && line[*pos] == ' ') ++*pos;
  const std::size_t start = *pos;
  while (*pos < line.size() && line[*pos] != ' ') ++*pos;
  return line.substr(start, *pos - start);
}

/// Full validation including a result-JSON decode — what `verify` and
/// `scrub` run per entry (ResultCache defers the decode to lookup time,
/// where the probe key is known).
bool deep_validate(std::string_view bytes, std::string* error) {
  const StoreValidation v = validate_store_bytes(bytes);
  if (!v.ok) {
    *error = v.error;
    return false;
  }
  // Without a probe key, locate the stored one by its markers.
  constexpr std::string_view key_marker = "\"key\":\"";
  constexpr std::string_view result_marker = "\",\"result\":";
  const std::size_t key_at = v.payload.find(key_marker);
  const std::size_t result_at =
      key_at == std::string::npos ? std::string::npos
                                  : v.payload.find(result_marker, key_at);
  if (key_at == std::string::npos || result_at == std::string::npos) {
    *error = "payload missing key/result fields";
    return false;
  }
  const std::string_view key =
      std::string_view(v.payload)
          .substr(key_at + key_marker.size(),
                  result_at - key_at - key_marker.size());
  const auto json = payload_result_json(v.payload, key);
  if (!json.has_value()) {
    *error = "payload key/result structure mismatch";
    return false;
  }
  try {
    (void)result_from_json(*json);
  } catch (const std::exception& e) {
    *error = std::string("result decode failed: ") + e.what();
    return false;
  }
  return true;
}

std::string read_file(const std::filesystem::path& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *ok = in.good() || in.eof();
  return buf.str();
}

bool is_tmp_name(const std::string& name) {
  return name.find(".tmp.") != std::string::npos;
}

/// Visit every store directory: the root plus its one level of shard
/// subdirectories (quarantine excluded — quarantined entries are out of
/// service by definition).  Both layouts reduce to this walk: a flat
/// store simply has no subdirectories.
template <typename Fn>
void for_each_store_dir(const std::string& dir, Fn&& fn) {
  std::error_code ec;
  fn(std::filesystem::path(dir));
  const std::filesystem::directory_iterator it(dir, ec);
  if (ec) return;
  for (const auto& entry : it) {
    if (!entry.is_directory()) continue;
    if (entry.path().filename() == kQuarantineDir) continue;
    fn(entry.path());
  }
}

StoreReport walk_store(const std::string& dir) {
  StoreReport report;
  std::error_code root_ec;
  const std::filesystem::directory_iterator probe(dir, root_ec);
  if (root_ec) return report;  // Missing/unreadable store: nothing there.
  for_each_store_dir(dir, [&report](const std::filesystem::path& d) {
    std::error_code ec;
    const std::filesystem::directory_iterator it(d, ec);
    if (ec) return;
    for (const auto& entry : it) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (is_tmp_name(name)) {
        report.stale_tmp.push_back(entry.path().string());
        continue;
      }
      if (entry.path().extension() != ".json") continue;
      ++report.scanned;
      bool read_ok = false;
      const std::string bytes = read_file(entry.path(), &read_ok);
      std::string error;
      if (read_ok && deep_validate(bytes, &error)) {
        ++report.valid;
      } else {
        report.corrupt.push_back(entry.path().string());
      }
    }
  });
  // Directory iteration order is filesystem-dependent: sort so reports
  // (and quarantine order) are stable for tests and operators alike.
  std::sort(report.corrupt.begin(), report.corrupt.end());
  std::sort(report.stale_tmp.begin(), report.stale_tmp.end());
  return report;
}

}  // namespace

std::string render_store_entry(std::string_view key_text,
                               const cluster::RunResult& result) {
  std::string payload = "{\"format\":" + std::to_string(kKeyFormatVersion) +
                        ",\"key\":\"" + std::string(key_text) +
                        "\",\"result\":" + to_json(result) + "}\n";
  std::string header = std::string(kMagic) + " v" +
                       std::to_string(kStoreFormatVersion) +
                       " len=" + std::to_string(payload.size()) +
                       " fnv1a=" + hex16(util::fnv1a(payload)) + "\n";
  return header + payload;
}

StoreValidation validate_store_bytes(std::string_view bytes) {
  StoreValidation out;
  const std::size_t nl = bytes.find('\n');
  if (nl == std::string_view::npos) {
    out.error = "no header line";
    return out;
  }
  const std::string_view header = bytes.substr(0, nl);
  std::size_t pos = 0;
  if (next_token(header, &pos) != kMagic) {
    out.error = "missing store magic (pre-v3 or foreign file)";
    return out;
  }
  const std::string_view version = next_token(header, &pos);
  if (version != "v" + std::to_string(kStoreFormatVersion)) {
    out.error = "unsupported store version: " + std::string(version);
    return out;
  }
  std::uint64_t len = 0;
  if (!parse_field(next_token(header, &pos), "len", &len)) {
    out.error = "malformed len field";
    return out;
  }
  std::uint64_t checksum = 0;
  if (!parse_hex_field(next_token(header, &pos), "fnv1a", &checksum)) {
    out.error = "malformed fnv1a field";
    return out;
  }
  const std::string_view payload = bytes.substr(nl + 1);
  if (payload.size() != len) {
    out.error = "payload length " + std::to_string(payload.size()) +
                " != header len " + std::to_string(len) +
                " (truncated or padded write)";
    return out;
  }
  if (util::fnv1a(payload) != checksum) {
    out.error = "payload checksum mismatch (bit rot or edit)";
    return out;
  }
  out.ok = true;
  out.payload = std::string(payload);
  return out;
}

std::optional<std::string_view> payload_result_json(std::string_view payload,
                                                    std::string_view key_text) {
  const std::string want =
      "\"key\":\"" + std::string(key_text) + "\",\"result\":";
  const std::size_t at = payload.find(want);
  if (at == std::string_view::npos) return std::nullopt;
  const std::size_t start = at + want.size();
  const std::size_t end = payload.find_last_of('}');
  if (end == std::string_view::npos || end <= start) return std::nullopt;
  return payload.substr(start, end - start);
}

std::string quarantine_entry(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path source(path);
  const fs::path qdir = source.parent_path() / kQuarantineDir;
  std::error_code ec;
  fs::create_directories(qdir, ec);
  if (ec) return {};
  fs::path target = qdir / source.filename();
  for (int suffix = 1; fs::exists(target, ec); ++suffix) {
    target = qdir / (source.filename().string() + "." +
                     std::to_string(suffix));
  }
  fs::rename(source, target, ec);
  return ec ? std::string{} : target.string();
}

std::uint64_t sweep_stale_tmp(const std::string& dir) {
  namespace fs = std::filesystem;
  std::uint64_t removed = 0;
  for_each_store_dir(dir, [&removed](const fs::path& d) {
    std::error_code ec;
    const fs::directory_iterator it(d, ec);
    if (ec) return;
    for (const auto& entry : it) {
      if (!entry.is_regular_file()) continue;
      if (!is_tmp_name(entry.path().filename().string())) continue;
      if (fs::remove(entry.path(), ec) && !ec) ++removed;
    }
  });
  return removed;
}

std::string StoreReport::to_string() const {
  std::ostringstream os;
  os << "scanned " << scanned << " entries: " << valid << " valid, "
     << corrupt.size() << " corrupt, " << stale_tmp.size()
     << " stale temp file(s)\n";
  for (const std::string& path : corrupt) {
    os << "  corrupt: " << path << '\n';
  }
  for (const std::string& path : stale_tmp) {
    os << "  stale tmp: " << path << '\n';
  }
  if (quarantined > 0 || removed_tmp > 0) {
    os << "scrubbed: " << quarantined << " quarantined to " << kQuarantineDir
       << "/, " << removed_tmp << " temp file(s) removed\n";
  }
  return os.str();
}

StoreReport verify_store(const std::string& dir) { return walk_store(dir); }

StoreReport scrub_store(const std::string& dir) {
  StoreReport report = walk_store(dir);
  for (const std::string& path : report.corrupt) {
    if (!quarantine_entry(path).empty()) ++report.quarantined;
  }
  std::error_code ec;
  for (const std::string& path : report.stale_tmp) {
    if (std::filesystem::remove(path, ec) && !ec) ++report.removed_tmp;
  }
  return report;
}

std::uint64_t read_eviction_ledger(const std::string& shard_dir) {
  bool ok = false;
  const std::string bytes = read_file(
      std::filesystem::path(shard_dir) / kEvictionLedger, &ok);
  if (!ok) return 0;
  std::uint64_t total = 0;
  bool any = false;
  for (const char c : bytes) {
    if (c == '\n') break;
    if (c < '0' || c > '9') return 0;  // Corrupt ledger reads as zero.
    total = total * 10 + static_cast<std::uint64_t>(c - '0');
    any = true;
  }
  return any ? total : 0;
}

void write_eviction_ledger(const std::string& shard_dir, std::uint64_t total) {
  std::ofstream out(std::filesystem::path(shard_dir) / kEvictionLedger,
                    std::ios::binary | std::ios::trunc);
  if (!out) return;
  out << total << '\n';
}

LoadedEntry load_store_entry(const std::string& path) {
  LoadedEntry out;
  bool read_ok = false;
  const std::string bytes = read_file(path, &read_ok);
  if (!read_ok) {
    out.error = "unreadable file";
    return out;
  }
  const StoreValidation v = validate_store_bytes(bytes);
  if (!v.ok) {
    out.error = v.error;
    return out;
  }
  // Locate the stored key by its markers (same technique as verify's
  // deep validation — preloads have no probe key to compare against).
  constexpr std::string_view key_marker = "\"key\":\"";
  constexpr std::string_view result_marker = "\",\"result\":";
  const std::size_t key_at = v.payload.find(key_marker);
  const std::size_t result_at =
      key_at == std::string::npos ? std::string::npos
                                  : v.payload.find(result_marker, key_at);
  if (key_at == std::string::npos || result_at == std::string::npos) {
    out.error = "payload missing key/result fields";
    return out;
  }
  out.key_text = v.payload.substr(key_at + key_marker.size(),
                                  result_at - key_at - key_marker.size());
  const auto json = payload_result_json(v.payload, out.key_text);
  if (!json.has_value()) {
    out.error = "payload key/result structure mismatch";
    return out;
  }
  try {
    out.result = result_from_json(*json);
  } catch (const std::exception& e) {
    out.error = std::string("result decode failed: ") + e.what();
    return out;
  }
  out.ok = true;
  return out;
}

std::uint64_t StoreStats::total_entries() const {
  std::uint64_t n = 0;
  for (const ShardStats& s : shards) n += s.entries;
  return n;
}

std::uint64_t StoreStats::total_bytes() const {
  std::uint64_t n = 0;
  for (const ShardStats& s : shards) n += s.bytes;
  return n;
}

std::uint64_t StoreStats::total_quarantined() const {
  std::uint64_t n = 0;
  for (const ShardStats& s : shards) n += s.quarantined;
  return n;
}

std::uint64_t StoreStats::total_evictions() const {
  std::uint64_t n = 0;
  for (const ShardStats& s : shards) n += s.evictions;
  return n;
}

StoreStats store_stats(const std::string& dir) {
  namespace fs = std::filesystem;
  StoreStats stats;
  std::error_code root_ec;
  const fs::directory_iterator probe(dir, root_ec);
  if (root_ec) return stats;
  const fs::path root(dir);
  for_each_store_dir(dir, [&](const fs::path& d) {
    ShardStats shard;
    shard.name = d == root ? "." : d.filename().string();
    std::error_code ec;
    const fs::directory_iterator it(d, ec);
    if (!ec) {
      for (const auto& entry : it) {
        if (!entry.is_regular_file()) continue;
        if (entry.path().extension() != ".json") continue;
        if (is_tmp_name(entry.path().filename().string())) continue;
        ++shard.entries;
        std::error_code size_ec;
        const std::uintmax_t size = entry.file_size(size_ec);
        if (!size_ec) shard.bytes += size;
      }
    }
    const fs::directory_iterator qit(d / kQuarantineDir, ec);
    if (!ec) {
      for (const auto& q : qit) {
        if (q.is_regular_file()) ++shard.quarantined;
      }
    }
    shard.evictions = read_eviction_ledger(d.string());
    // The root row is elided when empty (a purely-sharded store has no
    // flat entries); shard directories always appear — an all-evicted
    // shard with only a ledger is still worth reporting.
    if (shard.entries > 0 || shard.quarantined > 0 || shard.evictions > 0 ||
        shard.name != ".") {
      stats.shards.push_back(std::move(shard));
    }
  });
  std::sort(stats.shards.begin(), stats.shards.end(),
            [](const ShardStats& a, const ShardStats& b) {
              return a.name < b.name;
            });
  return stats;
}

}  // namespace gearsim::exec
