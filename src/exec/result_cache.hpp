// Content-addressed cache of simulated RunResults.
//
// Keyed by CacheKey (exec/cache_key.hpp): the canonical text is the
// identity, the FNV-1a hash only buckets and names files.  Two tiers:
//
//  * in-memory LRU (default 4096 entries) — hot within one process;
//  * optional on-disk store, one file per point named
//    `<dir>/<hash-hex>.json` in the v3 integrity format (exec/store.hpp:
//    a length+checksum header over a {"key", "result"} JSON payload) —
//    warm across processes (bench reruns, CLI invocations, model refits).
//
// The disk tier can be *sharded*: with `shard_digits = N > 0` entries
// live in `<dir>/<first N hex digits>/<hash-hex>.json`, and an optional
// per-shard entry budget evicts the least-recently-touched file when a
// shard overflows (lifetime totals persist in each shard's `.evicted`
// ledger).  Budgets are enforced against the entries this process has
// observed — seeded by a deterministic lexicographic scan at
// construction, then tracked through its own lookups and inserts — so
// concurrent writers may transiently overshoot; the budget is a bound on
// growth, not a hard quota.  `preload()` warm-starts the memory tier
// from disk at daemon boot.  See docs/SERVICE.md.
//
// On every lookup the stored key text is compared against the probe's:
// a 64-bit hash collision therefore degrades to a miss, never a wrong
// result.  Disk entries are validated before being trusted: a truncated,
// bit-flipped, hand-edited or stale-format entry is quarantined into
// `<dir>/.quarantine/`, logged once per offending path, counted in
// CacheStats (and an attached obs::MetricsRegistry), and treated as a
// miss — the point recomputes and rewrites a clean entry.  Writes land
// in a unique temp file, are fsync'd, then renamed atomically; stale
// temp files left by killed processes are swept at construction.
// Thread-safe; lookup/insert take one mutex (simulation time dwarfs it
// by orders of magnitude).  See docs/RESILIENCE.md.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "cluster/experiment.hpp"
#include "exec/cache_key.hpp"

namespace gearsim::obs {
class MetricsRegistry;  // obs/metrics.hpp
}

namespace gearsim::exec {

/// Hit/miss accounting, readable any time via ResultCache::stats().
struct CacheStats {
  std::uint64_t hits = 0;        ///< In-memory LRU hits.
  std::uint64_t disk_hits = 0;   ///< Misses satisfied from the disk store.
  std::uint64_t misses = 0;      ///< Neither tier had it (simulate!).
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;   ///< LRU capacity evictions (disk keeps them).
  std::uint64_t disk_evictions = 0;  ///< Shard-budget evictions (this run).
  std::uint64_t preloaded = 0;   ///< Entries warm-started via preload().
  std::uint64_t corrupt = 0;     ///< Disk entries that failed validation.
  std::uint64_t quarantined = 0; ///< Corrupt entries moved to .quarantine/.
  std::uint64_t stale_tmp_swept = 0;  ///< Temp leftovers removed at startup.

  [[nodiscard]] std::uint64_t lookups() const {
    return hits + disk_hits + misses;
  }
};

class ResultCache {
 public:
  struct Options {
    /// Max in-memory entries before LRU eviction.
    std::size_t capacity = 4096;
    /// When non-empty, the on-disk store directory (created on first
    /// insert; e.g. "out/cache").  Empty = memory-only.
    std::string disk_dir;
    /// Optional metrics registry (not owned; must outlive the cache).
    /// Only integrity events are recorded — exec.store.corrupt and
    /// exec.store.quarantined — and only when they occur, so a clean
    /// store leaves the registry untouched (bit-identical manifests).
    obs::MetricsRegistry* metrics = nullptr;
    /// Hex digits of the key hash that name a shard subdirectory
    /// (clamped to [0, 16]).  0 = the flat legacy layout, byte-identical
    /// to pre-shard stores.  Both layouts read interchangeably — a probe
    /// only looks under its own shard path, so switching digits on an
    /// existing store makes old entries invisible (recomputed), never
    /// wrong.
    int shard_digits = 0;
    /// Max on-disk entries per shard before least-recently-touched
    /// eviction (0 = unbounded).  With shard_digits == 0 the store root
    /// is the single shard.
    std::size_t shard_entry_budget = 0;
  };

  ResultCache() : ResultCache(Options{}) {}
  explicit ResultCache(Options options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Look `key` up: memory first, then disk (a disk hit is promoted into
  /// memory).  Unreadable, corrupt (quarantined), or mismatched disk
  /// entries count as misses.
  [[nodiscard]] std::optional<cluster::RunResult> lookup(const CacheKey& key);

  /// Insert (or refresh) `result` under `key` in memory, and — when a
  /// disk_dir is configured — persist it durably (write temp, fsync,
  /// atomic rename).
  void insert(const CacheKey& key, const cluster::RunResult& result);

  /// Warm-start: decode every readable disk entry (lexicographic path
  /// order, so the resulting LRU order is deterministic) into the memory
  /// tier, newest-position-last capped by `capacity`.  Corrupt entries
  /// are quarantined exactly as a lookup would.  Returns how many
  /// entries were loaded.  No-op without a disk_dir.
  std::size_t preload();

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct Entry {
    std::string key_text;
    cluster::RunResult result;
  };
  using LruList = std::list<Entry>;

  /// Disk-tier bookkeeping for one shard (budget enforcement): the
  /// touch clock of every known entry file plus the lifetime eviction
  /// total mirrored in the shard's `.evicted` ledger.
  struct ShardState {
    std::unordered_map<std::string, std::uint64_t> touch;  // filename → clock
    std::uint64_t evictions = 0;  // lifetime (ledger-backed)
  };

  [[nodiscard]] std::string shard_name(const CacheKey& key) const;
  [[nodiscard]] std::string shard_dir(const std::string& shard) const;
  [[nodiscard]] std::string disk_path(const CacheKey& key) const;
  [[nodiscard]] std::optional<cluster::RunResult> disk_lookup(
      const CacheKey& key);  // caller holds mutex_
  void note_corrupt(const std::string& path, const std::string& reason);
  // caller holds mutex_
  void seed_shard_state();  // construction only
  void touch_disk_entry(const CacheKey& key);      // caller holds mutex_
  void enforce_shard_budget(const CacheKey& key);  // caller holds mutex_
  void promote_locked(const std::string& key_text,
                      const cluster::RunResult& result);  // caller holds mutex_

  Options options_;
  mutable std::mutex mutex_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> index_;
  std::unordered_set<std::string> warned_paths_;  // warn once per offender
  std::unordered_map<std::string, ShardState> shards_;  // budget > 0 only
  std::uint64_t touch_clock_ = 0;
  CacheStats stats_;
};

}  // namespace gearsim::exec
