// Content-addressed cache of simulated RunResults.
//
// Keyed by CacheKey (exec/cache_key.hpp): the canonical text is the
// identity, the FNV-1a hash only buckets and names files.  Two tiers:
//
//  * in-memory LRU (default 4096 entries) — hot within one process;
//  * optional on-disk store, one file per point named
//    `<dir>/<hash-hex>.json` in the v3 integrity format (exec/store.hpp:
//    a length+checksum header over a {"key", "result"} JSON payload) —
//    warm across processes (bench reruns, CLI invocations, model refits).
//
// On every lookup the stored key text is compared against the probe's:
// a 64-bit hash collision therefore degrades to a miss, never a wrong
// result.  Disk entries are validated before being trusted: a truncated,
// bit-flipped, hand-edited or stale-format entry is quarantined into
// `<dir>/.quarantine/`, logged once per offending path, counted in
// CacheStats (and an attached obs::MetricsRegistry), and treated as a
// miss — the point recomputes and rewrites a clean entry.  Writes land
// in a unique temp file, are fsync'd, then renamed atomically; stale
// temp files left by killed processes are swept at construction.
// Thread-safe; lookup/insert take one mutex (simulation time dwarfs it
// by orders of magnitude).  See docs/RESILIENCE.md.
#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "cluster/experiment.hpp"
#include "exec/cache_key.hpp"

namespace gearsim::obs {
class MetricsRegistry;  // obs/metrics.hpp
}

namespace gearsim::exec {

/// Hit/miss accounting, readable any time via ResultCache::stats().
struct CacheStats {
  std::uint64_t hits = 0;        ///< In-memory LRU hits.
  std::uint64_t disk_hits = 0;   ///< Misses satisfied from the disk store.
  std::uint64_t misses = 0;      ///< Neither tier had it (simulate!).
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;   ///< LRU capacity evictions (disk keeps them).
  std::uint64_t corrupt = 0;     ///< Disk entries that failed validation.
  std::uint64_t quarantined = 0; ///< Corrupt entries moved to .quarantine/.
  std::uint64_t stale_tmp_swept = 0;  ///< Temp leftovers removed at startup.

  [[nodiscard]] std::uint64_t lookups() const {
    return hits + disk_hits + misses;
  }
};

class ResultCache {
 public:
  struct Options {
    /// Max in-memory entries before LRU eviction.
    std::size_t capacity = 4096;
    /// When non-empty, the on-disk store directory (created on first
    /// insert; e.g. "out/cache").  Empty = memory-only.
    std::string disk_dir;
    /// Optional metrics registry (not owned; must outlive the cache).
    /// Only integrity events are recorded — exec.store.corrupt and
    /// exec.store.quarantined — and only when they occur, so a clean
    /// store leaves the registry untouched (bit-identical manifests).
    obs::MetricsRegistry* metrics = nullptr;
  };

  ResultCache() : ResultCache(Options{}) {}
  explicit ResultCache(Options options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Look `key` up: memory first, then disk (a disk hit is promoted into
  /// memory).  Unreadable, corrupt (quarantined), or mismatched disk
  /// entries count as misses.
  [[nodiscard]] std::optional<cluster::RunResult> lookup(const CacheKey& key);

  /// Insert (or refresh) `result` under `key` in memory, and — when a
  /// disk_dir is configured — persist it durably (write temp, fsync,
  /// atomic rename).
  void insert(const CacheKey& key, const cluster::RunResult& result);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct Entry {
    std::string key_text;
    cluster::RunResult result;
  };
  using LruList = std::list<Entry>;

  [[nodiscard]] std::string disk_path(const CacheKey& key) const;
  [[nodiscard]] std::optional<cluster::RunResult> disk_lookup(
      const CacheKey& key);  // caller holds mutex_
  void note_corrupt(const std::string& path, const std::string& reason);
  // caller holds mutex_

  Options options_;
  mutable std::mutex mutex_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> index_;
  std::unordered_set<std::string> warned_paths_;  // warn once per offender
  CacheStats stats_;
};

}  // namespace gearsim::exec
