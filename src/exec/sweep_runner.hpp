// The parallel sweep executor.
//
// A sweep is a list of independent (workload, nodes, gear, rep) points
// over one ClusterConfig.  SweepRunner fans them out over a fixed pool
// of worker threads (util/parallel.hpp) — each in-flight point owns its
// whole simulation (engine, meters, world), so workers never share
// mutable state — and returns results in request order.  Because every
// point's RNG streams derive from the (config, point) tuple and never
// from a shared generator, the output is bit-identical to a serial loop
// regardless of job count or scheduling (regression-tested in
// tests/exec_test.cpp).
//
// An optional ResultCache short-circuits points that were already
// simulated — by this process or, with a disk store, by any earlier
// one.  See docs/EXECUTOR.md.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/dvfs.hpp"
#include "cluster/experiment.hpp"
#include "exec/result_cache.hpp"

namespace gearsim::exec {

/// One independent simulation point of a sweep.
struct SweepPoint {
  const cluster::Workload* workload = nullptr;  ///< Must outlive the sweep.
  int nodes = 1;
  std::size_t gear_index = 0;
  /// Repetition index: the point runs with (config.seed + rep,
  /// jitter_seed + rep), matching ExperimentRunner::run_repeated.
  int rep = 0;
  /// Optional DVFS policy; overrides gear_index when set (must outlive
  /// the sweep).  A *factory* rather than a policy instance because
  /// adaptive controllers carry per-run state: the runner instantiates a
  /// fresh policy for every point, so concurrent points never share one.
  /// The factory's signature() joins the cache key — see
  /// exec/cache_key.hpp.
  const cluster::PolicyFactory* policy = nullptr;
};

struct SweepOptions {
  /// Worker threads: 0 = GEARSIM_SWEEP_JOBS or serial, <0 = hardware
  /// concurrency (util/parallel.hpp resolve_jobs).
  int jobs = 0;
  /// Optional result cache; null = simulate every point.  Not owned.
  ResultCache* cache = nullptr;
  /// Optional fault plan applied to every point (must outlive the call).
  const faults::FaultPlan* faults = nullptr;
  /// Optional metrics registry (not owned; must outlive the call).  Each
  /// simulated point gets a private registry (workers never touch this
  /// one) and the per-point snapshots fold in *in request order* after
  /// the pool drains, so every sim-domain value is bit-identical for any
  /// job count.  Cache hits contribute exec.cache.hits instead of sim
  /// metrics — a hit never re-simulates.  When the registry has wall
  /// profiling enabled, per-point wall durations and pool utilization
  /// are recorded too (kWall domain, never deterministic).
  obs::MetricsRegistry* metrics = nullptr;
  /// Engine threads per simulated point (cluster::RunOptions::
  /// engine_threads; 0 = the GEARSIM_ENGINE_THREADS default).  Engine
  /// mode is an execution detail, not part of a point's identity: it
  /// does not enter the cache key, so entries written by a serial run
  /// are served to parallel-engine sweeps and vice versa.
  int engine_threads = 0;
};

class SweepRunner {
 public:
  explicit SweepRunner(cluster::ClusterConfig config,
                       SweepOptions options = {});

  [[nodiscard]] const cluster::ClusterConfig& config() const {
    return config_.config();
  }
  [[nodiscard]] const SweepOptions& options() const { return options_; }

  /// Run every point (cache hits skipped, misses simulated in parallel);
  /// results in request order, bit-identical to a serial loop.
  [[nodiscard]] std::vector<cluster::RunResult> run(
      const std::vector<SweepPoint>& points) const;

  /// All gears at one node count, fastest first (the paper's energy-time
  /// curve).  Equivalent to ExperimentRunner::gear_sweep plus caching.
  [[nodiscard]] std::vector<cluster::RunResult> gear_sweep(
      const cluster::Workload& workload, int nodes) const;

  /// The full (gears × node counts) grid in row-major (nodes-major)
  /// order — the paper's Figure-2 family of curves in one call.
  [[nodiscard]] std::vector<cluster::RunResult> grid(
      const cluster::Workload& workload,
      const std::vector<int>& node_counts) const;

  /// `repetitions` reps of one point (rep r = seeds + r), in rep order.
  [[nodiscard]] std::vector<cluster::RunResult> repeat(
      const cluster::Workload& workload, int nodes, std::size_t gear_index,
      int repetitions) const;

  /// Validate one point against the config; throws ContractError on a
  /// null workload or out-of-range nodes/gear/rep.  run() applies this to
  /// the whole list up front (a bad point fails before any simulation
  /// time is spent); SweepSupervisor applies it per job instead, so one
  /// bad point fails alone.
  void validate_point(const SweepPoint& p) const;

  /// The point's content-addressed cache key (full config + workload
  /// signature + coordinates + fault plan + policy identity).  The point
  /// must be valid.
  [[nodiscard]] CacheKey point_key(const SweepPoint& p) const;

  /// Simulate one validated point — no cache or sweep-level-metrics
  /// interaction.  When `point_metrics` is non-null the run is
  /// instrumented into it (callers fold per-point snapshots in request
  /// order, preserving the determinism contract).  Thread-safe:
  /// concurrent calls share nothing mutable.
  [[nodiscard]] cluster::RunResult simulate_point(
      const SweepPoint& p, obs::MetricsRegistry* point_metrics) const;

  /// Cache statistics (zeroes when no cache is attached).
  [[nodiscard]] CacheStats cache_stats() const;

 private:
  cluster::ExperimentRunner config_;
  SweepOptions options_;
};

}  // namespace gearsim::exec
