// The on-disk result-store format (v3) and its integrity tooling.
//
// Store layout: one text file per cached point, two lines —
//
//   gearsim-store v3 len=<payload bytes> fnv1a=<16 hex digits>\n
//   {"format":<key fmt>,"key":"<canonical key>","result":{...}}\n
//
// The header is written last-byte-exact before the payload, so a reader
// can detect *any* torn state without trusting the payload: a truncated
// write fails the length check, a bit flip fails the FNV-1a checksum
// (util/hash.hpp), a missing header means a pre-v3 (or foreign) file.
// Entries that fail validation are never served; ResultCache quarantines
// them into `<dir>/.quarantine/` and treats the lookup as a miss, so the
// point is recomputed and rewritten.  Writes go to a unique `.tmp.` name,
// are fsync'd, then atomically renamed into place; `.tmp.` leftovers from
// a killed process are swept on the next ResultCache construction or by
// `gearsim cache scrub`.
//
// Sharded layout: ResultCache can spread entries over subdirectories
// named by the first `shard_digits` hex digits of the key hash
// (`<dir>/<prefix>/<hash>.json`), so per-shard LRU eviction budgets and
// warm-start preloads touch one directory at a time.  The flat layout is
// the degenerate zero-digit case; every walk below (verify, scrub, tmp
// sweep, stats) handles both by descending one level into shard
// subdirectories.  Each shard keeps a `.evicted` ledger file — a decimal
// total of budget evictions — so `gearsim cache stats` can report
// lifetime eviction counts across processes.
//
// `verify_store` / `scrub_store` walk a whole store directory — behind
// the `gearsim cache verify|scrub` CLI — reporting (and, for scrub,
// repairing-by-quarantine) corrupt entries and stale temp files.
// See docs/RESILIENCE.md and docs/SERVICE.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/experiment.hpp"

namespace gearsim::exec {

/// Store *layout* version (distinct from the cache-key format version in
/// cache_key.hpp): v3 introduced the integrity header; earlier layouts
/// had no header and are quarantined on sight.
inline constexpr int kStoreFormatVersion = 3;

/// Name of the quarantine subdirectory inside a store directory.
inline constexpr const char* kQuarantineDir = ".quarantine";

/// Render the full file bytes (header + payload) for one entry.
[[nodiscard]] std::string render_store_entry(std::string_view key_text,
                                             const cluster::RunResult& result);

/// Outcome of validating one entry's raw bytes.
struct StoreValidation {
  bool ok = false;
  std::string error;    ///< First failure, empty when ok.
  std::string payload;  ///< The checksummed payload (ok only).
};

/// Validate header shape, payload length, and checksum.  Does not parse
/// the payload JSON — see payload_result_json.
[[nodiscard]] StoreValidation validate_store_bytes(std::string_view bytes);

/// Extract the `"result"` JSON object from a validated payload, given the
/// exact key text the caller probed with.  nullopt when the stored key
/// differs (a 64-bit hash collision or stale file reads as a miss, never
/// as a wrong result).
[[nodiscard]] std::optional<std::string_view> payload_result_json(
    std::string_view payload, std::string_view key_text);

/// Move a corrupt entry into `<parent>/.quarantine/` (suffixing the name
/// if a previous quarantine of the same file exists).  Returns the new
/// path, or "" when the move failed (the entry is then left in place).
[[nodiscard]] std::string quarantine_entry(const std::string& path);

/// Remove `.tmp.` leftovers (from writers killed between write and
/// rename) under `dir`; returns how many were removed.  Lookups never
/// read temp names, so this is hygiene, not correctness.
std::uint64_t sweep_stale_tmp(const std::string& dir);

/// One store walk's findings.
struct StoreReport {
  std::uint64_t scanned = 0;  ///< Entry files examined.
  std::uint64_t valid = 0;    ///< Passed header+checksum+decode validation.
  std::vector<std::string> corrupt;    ///< Paths that failed validation.
  std::vector<std::string> stale_tmp;  ///< `.tmp.` leftovers found.
  std::uint64_t quarantined = 0;       ///< scrub only: corrupt entries moved.
  std::uint64_t removed_tmp = 0;       ///< scrub only: temp files removed.

  [[nodiscard]] bool clean() const {
    return corrupt.empty() && stale_tmp.empty();
  }
  /// Human-readable multi-line summary (CLI output).
  [[nodiscard]] std::string to_string() const;
};

/// Walk every entry under `dir` (quarantine excluded), fully validating
/// each (header, length, checksum, and a result-JSON decode).  Covers
/// both the flat and the sharded layout.  Read-only.
[[nodiscard]] StoreReport verify_store(const std::string& dir);

/// verify_store plus repair: corrupt entries are quarantined (so the
/// next sweep recomputes them) and stale temp files removed.
StoreReport scrub_store(const std::string& dir);

/// Name of a shard's persistent eviction ledger file.
inline constexpr const char* kEvictionLedger = ".evicted";

/// Read a shard directory's eviction ledger (0 when absent/corrupt).
[[nodiscard]] std::uint64_t read_eviction_ledger(const std::string& shard_dir);
/// Overwrite the ledger with `total` (best-effort; a lost ledger only
/// under-reports lifetime evictions, it never affects correctness).
void write_eviction_ledger(const std::string& shard_dir, std::uint64_t total);

/// One fully-decoded store entry, for the warm-start preload pass.
struct LoadedEntry {
  bool ok = false;
  std::string error;     ///< First failure, empty when ok.
  std::string key_text;  ///< The stored canonical key.
  cluster::RunResult result;
};

/// Read + validate + decode one entry file (any layout).  Never throws:
/// failures come back as `ok == false` with the reason.
[[nodiscard]] LoadedEntry load_store_entry(const std::string& path);

/// Per-shard usage figures for `gearsim cache stats` and the daemon's
/// stats query.  `name` is the shard directory name ("." for entries in
/// the store root, i.e. the flat layout).
struct ShardStats {
  std::string name;
  std::uint64_t entries = 0;      ///< `.json` entry files.
  std::uint64_t bytes = 0;        ///< Their on-disk bytes.
  std::uint64_t quarantined = 0;  ///< Files in the shard's .quarantine/.
  std::uint64_t evictions = 0;    ///< Lifetime ledger total.
};

struct StoreStats {
  std::vector<ShardStats> shards;  ///< Name-sorted.

  [[nodiscard]] std::uint64_t total_entries() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] std::uint64_t total_quarantined() const;
  [[nodiscard]] std::uint64_t total_evictions() const;
};

/// Usage walk (counts and sizes only — no validation; `verify` is the
/// integrity tool).  Shards with no entries but a ledger or quarantine
/// still appear.
[[nodiscard]] StoreStats store_stats(const std::string& dir);

}  // namespace gearsim::exec
