file(REMOVE_RECURSE
  "libgearsim_exec.a"
)
