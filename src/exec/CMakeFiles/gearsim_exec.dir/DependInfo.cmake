
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/cache_key.cpp" "src/exec/CMakeFiles/gearsim_exec.dir/cache_key.cpp.o" "gcc" "src/exec/CMakeFiles/gearsim_exec.dir/cache_key.cpp.o.d"
  "/root/repo/src/exec/inflight.cpp" "src/exec/CMakeFiles/gearsim_exec.dir/inflight.cpp.o" "gcc" "src/exec/CMakeFiles/gearsim_exec.dir/inflight.cpp.o.d"
  "/root/repo/src/exec/result_cache.cpp" "src/exec/CMakeFiles/gearsim_exec.dir/result_cache.cpp.o" "gcc" "src/exec/CMakeFiles/gearsim_exec.dir/result_cache.cpp.o.d"
  "/root/repo/src/exec/result_io.cpp" "src/exec/CMakeFiles/gearsim_exec.dir/result_io.cpp.o" "gcc" "src/exec/CMakeFiles/gearsim_exec.dir/result_io.cpp.o.d"
  "/root/repo/src/exec/store.cpp" "src/exec/CMakeFiles/gearsim_exec.dir/store.cpp.o" "gcc" "src/exec/CMakeFiles/gearsim_exec.dir/store.cpp.o.d"
  "/root/repo/src/exec/supervisor.cpp" "src/exec/CMakeFiles/gearsim_exec.dir/supervisor.cpp.o" "gcc" "src/exec/CMakeFiles/gearsim_exec.dir/supervisor.cpp.o.d"
  "/root/repo/src/exec/sweep_runner.cpp" "src/exec/CMakeFiles/gearsim_exec.dir/sweep_runner.cpp.o" "gcc" "src/exec/CMakeFiles/gearsim_exec.dir/sweep_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/cluster/CMakeFiles/gearsim_cluster.dir/DependInfo.cmake"
  "/root/repo/src/cpu/CMakeFiles/gearsim_cpu.dir/DependInfo.cmake"
  "/root/repo/src/faults/CMakeFiles/gearsim_faults.dir/DependInfo.cmake"
  "/root/repo/src/power/CMakeFiles/gearsim_power.dir/DependInfo.cmake"
  "/root/repo/src/trace/CMakeFiles/gearsim_trace.dir/DependInfo.cmake"
  "/root/repo/src/mpi/CMakeFiles/gearsim_mpi.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/gearsim_sim.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/gearsim_net.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/gearsim_obs.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/gearsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
