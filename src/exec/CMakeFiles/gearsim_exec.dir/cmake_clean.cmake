file(REMOVE_RECURSE
  "CMakeFiles/gearsim_exec.dir/cache_key.cpp.o"
  "CMakeFiles/gearsim_exec.dir/cache_key.cpp.o.d"
  "CMakeFiles/gearsim_exec.dir/inflight.cpp.o"
  "CMakeFiles/gearsim_exec.dir/inflight.cpp.o.d"
  "CMakeFiles/gearsim_exec.dir/result_cache.cpp.o"
  "CMakeFiles/gearsim_exec.dir/result_cache.cpp.o.d"
  "CMakeFiles/gearsim_exec.dir/result_io.cpp.o"
  "CMakeFiles/gearsim_exec.dir/result_io.cpp.o.d"
  "CMakeFiles/gearsim_exec.dir/store.cpp.o"
  "CMakeFiles/gearsim_exec.dir/store.cpp.o.d"
  "CMakeFiles/gearsim_exec.dir/supervisor.cpp.o"
  "CMakeFiles/gearsim_exec.dir/supervisor.cpp.o.d"
  "CMakeFiles/gearsim_exec.dir/sweep_runner.cpp.o"
  "CMakeFiles/gearsim_exec.dir/sweep_runner.cpp.o.d"
  "libgearsim_exec.a"
  "libgearsim_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
