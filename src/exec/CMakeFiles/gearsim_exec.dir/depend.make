# Empty dependencies file for gearsim_exec.
# This may be replaced when dependencies are built.
