#include "exec/sweep_runner.hpp"

#include <chrono>
#include <memory>
#include <utility>

#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace gearsim::exec {

SweepRunner::SweepRunner(cluster::ClusterConfig config, SweepOptions options)
    : config_(std::move(config)), options_(options) {}

void SweepRunner::validate_point(const SweepPoint& p) const {
  const cluster::ClusterConfig& base = config_.config();
  GEARSIM_REQUIRE(p.workload != nullptr, "sweep point without a workload");
  GEARSIM_REQUIRE(p.nodes >= 1 && p.nodes <= base.max_nodes,
                  "sweep point node count out of range");
  GEARSIM_REQUIRE(p.gear_index < base.gears.size(),
                  "sweep point gear out of range");
  GEARSIM_REQUIRE(p.rep >= 0, "sweep point repetition must be >= 0");
}

CacheKey SweepRunner::point_key(const SweepPoint& p) const {
  return sweep_point_key(
      config_.config(), p.workload->signature(), p.nodes, p.gear_index, p.rep,
      options_.faults,
      p.policy != nullptr ? p.policy->signature() : std::string());
}

cluster::RunResult SweepRunner::simulate_point(
    const SweepPoint& p, obs::MetricsRegistry* point_metrics) const {
  const cluster::ClusterConfig& base = config_.config();
  cluster::RunOptions run_options;
  run_options.gear_index = p.gear_index;
  run_options.faults = options_.faults;
  run_options.metrics = point_metrics;
  run_options.engine_threads = options_.engine_threads;
  // A fresh policy instance per point: adaptive controllers carry
  // per-run state, and concurrent workers must never share one.
  std::unique_ptr<cluster::GearPolicy> policy;
  if (p.policy != nullptr) {
    policy = p.policy->instantiate(p.nodes);
    run_options.policy = policy.get();
  }
  if (p.rep == 0) {
    return config_.run(*p.workload, p.nodes, run_options);
  }
  // Repetition r is the same point under shifted seeds — identical
  // to ExperimentRunner::run_repeated's convention.
  cluster::ClusterConfig shifted = base;
  shifted.seed = base.seed + static_cast<std::uint64_t>(p.rep);
  shifted.network.jitter_seed =
      base.network.jitter_seed + static_cast<std::uint64_t>(p.rep);
  const cluster::ExperimentRunner sub(shifted);
  return sub.run(*p.workload, p.nodes, run_options);
}

std::vector<cluster::RunResult> SweepRunner::run(
    const std::vector<SweepPoint>& points) const {
  // Validate everything up front: a bad point must fail before any
  // simulation time (or cache traffic) is spent.
  for (const SweepPoint& p : points) validate_point(p);

  std::vector<cluster::RunResult> results(points.size());
  std::vector<CacheKey> keys(options_.cache != nullptr ? points.size() : 0);
  std::vector<std::size_t> misses;
  misses.reserve(points.size());

  if (options_.cache != nullptr) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      keys[i] = point_key(points[i]);
      if (auto hit = options_.cache->lookup(keys[i])) {
        results[i] = *hit;
      } else {
        misses.push_back(i);
      }
    }
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) misses.push_back(i);
  }

  // Sweep-level bookkeeping happens on the calling thread only; workers
  // write per-point registries / per-slot arrays, never `reg` itself.
  obs::MetricsRegistry* const reg = options_.metrics;
  const CacheStats stats_before = cache_stats();
  if (reg != nullptr) {
    reg->counter("exec.sweep.points").add(points.size());
    if (options_.cache != nullptr) {
      reg->counter("exec.cache.hits").add(points.size() - misses.size());
      reg->counter("exec.cache.misses").add(misses.size());
      reg->counter("exec.cache.insertions").add(misses.size());
    }
  }
  std::vector<obs::MetricsSnapshot> point_metrics(
      reg != nullptr ? misses.size() : 0);
  // Wall profiling: per-point durations land in a per-index slot (no
  // races), folded into the registry after the pool drains.
  const bool wall = reg != nullptr && reg->wall_profiling();
  std::vector<double> point_seconds(wall ? misses.size() : 0, 0.0);
  const auto sweep_start = std::chrono::steady_clock::now();

  parallel_for_ordered(options_.jobs, misses.size(), [&](std::size_t m) {
    std::chrono::steady_clock::time_point point_start;
    if (wall) point_start = std::chrono::steady_clock::now();
    const std::size_t i = misses[m];
    // A private registry per point: the engine's discipline makes each
    // point single-threaded, so no atomics are needed anywhere.
    std::unique_ptr<obs::MetricsRegistry> point_reg;
    if (reg != nullptr) point_reg = std::make_unique<obs::MetricsRegistry>();
    results[i] = simulate_point(points[i], point_reg.get());
    if (options_.cache != nullptr) {
      options_.cache->insert(keys[i], results[i]);
    }
    if (point_reg != nullptr) point_metrics[m] = point_reg->snapshot();
    if (wall) {
      point_seconds[m] = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - point_start)
                             .count();
    }
  });

  if (reg != nullptr) {
    // Request-order fold: merging snapshots in miss order (not completion
    // order) keeps every sim-domain value bit-identical for any job count.
    for (const obs::MetricsSnapshot& snap : point_metrics) reg->merge(snap);
    // Evictions are order-independent under the LRU capacity rule (each
    // insert beyond capacity evicts exactly one entry), so the delta is
    // safe to report as a sim-domain counter.
    const CacheStats stats_after = cache_stats();
    reg->counter("exec.cache.evictions")
        .add(stats_after.evictions - stats_before.evictions);
    if (wall) {
      obs::Histogram& h = *reg->wall_histogram(
          "exec.sweep.point_seconds", {0.001, 0.01, 0.1, 1.0, 10.0, 100.0});
      double busy = 0.0;
      for (double s : point_seconds) {
        h.observe(s);
        busy += s;
      }
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - sweep_start)
                                 .count();
      const int jobs = resolve_jobs(options_.jobs);
      reg->wall_gauge("exec.sweep.jobs", obs::Gauge::Kind::kLast)
          ->set(static_cast<double>(jobs));
      if (elapsed > 0.0 && !point_seconds.empty()) {
        // Busy fraction of the pool: 1.0 means every worker simulated for
        // the whole sweep; low values mean queue-wait or load imbalance.
        reg->wall_gauge("exec.sweep.utilization", obs::Gauge::Kind::kLast)
            ->set(busy / (elapsed * static_cast<double>(jobs)));
      }
    }
  }

  return results;
}

std::vector<cluster::RunResult> SweepRunner::gear_sweep(
    const cluster::Workload& workload, int nodes) const {
  std::vector<SweepPoint> points;
  points.reserve(config_.num_gears());
  for (std::size_t g = 0; g < config_.num_gears(); ++g) {
    points.push_back(SweepPoint{&workload, nodes, g, 0});
  }
  return run(points);
}

std::vector<cluster::RunResult> SweepRunner::grid(
    const cluster::Workload& workload,
    const std::vector<int>& node_counts) const {
  std::vector<SweepPoint> points;
  points.reserve(node_counts.size() * config_.num_gears());
  for (int nodes : node_counts) {
    for (std::size_t g = 0; g < config_.num_gears(); ++g) {
      points.push_back(SweepPoint{&workload, nodes, g, 0});
    }
  }
  return run(points);
}

std::vector<cluster::RunResult> SweepRunner::repeat(
    const cluster::Workload& workload, int nodes, std::size_t gear_index,
    int repetitions) const {
  GEARSIM_REQUIRE(repetitions >= 1, "need at least one repetition");
  std::vector<SweepPoint> points;
  points.reserve(static_cast<std::size_t>(repetitions));
  for (int r = 0; r < repetitions; ++r) {
    points.push_back(SweepPoint{&workload, nodes, gear_index, r});
  }
  return run(points);
}

CacheStats SweepRunner::cache_stats() const {
  return options_.cache != nullptr ? options_.cache->stats() : CacheStats{};
}

}  // namespace gearsim::exec
