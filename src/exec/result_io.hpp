// Exact JSON serialization of RunResult.
//
// The on-disk ResultCache stores each simulated point as JSON; warm-cache
// reads must be *bit-identical* to the simulation that produced them, so
// every double renders at round-trip precision (max_digits10) and the
// parser converts it back with the inverse conversion.  to_json is also
// the regression-test fingerprint: two RunResults are bit-identical iff
// their JSON strings are equal (it covers every field, including the
// trace breakdown, per-node energies and the fault log).
#pragma once

#include <string>
#include <string_view>

#include "cluster/experiment.hpp"

namespace gearsim::exec {

/// Serialize every field of `result` as a single-line JSON object.
[[nodiscard]] std::string to_json(const cluster::RunResult& result);

/// Inverse of to_json.  Throws ContractError on malformed input or
/// missing fields.
[[nodiscard]] cluster::RunResult result_from_json(std::string_view json);

}  // namespace gearsim::exec
