// Supervised sweep execution: per-job failure isolation on top of
// SweepRunner.
//
// SweepRunner::run is all-or-nothing — one poisoned point aborts the
// sweep and discards every other job's work.  SweepSupervisor runs the
// same points under per-job exception isolation instead: each job's
// failures are caught, classified (transient vs permanent), retried on a
// bounded deterministic backoff schedule when transient, and recorded as
// structured JobFailure entries.  The sweep-level outcome returns *all*
// completed results (index-aligned, cache-served or simulated) plus the
// failure report; `strict` mode restores throw-through semantics for
// callers that want today's behavior.
//
// A per-job wall-clock watchdog flags runaway configs: jobs whose total
// wall time exceeds SupervisorOptions::watchdog_seconds are listed in
// SweepOutcome::runaway (they are flagged, never killed — a cooperative
// simulation cannot be safely interrupted mid-run).
//
// Determinism: completed results are bit-identical to SweepRunner::run
// for any worker count (same per-point isolation, same request-order
// metrics fold).  Failure *schedules* are deterministic when the faults
// are — the failpoints in util/failpoint.hpp key off the job index, so
// tests replay exact failure patterns under any parallelism.
// See docs/RESILIENCE.md.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/sweep_runner.hpp"

namespace gearsim::exec {

/// Thrown (by failpoints, I/O layers, or user workloads) to mark a
/// failure worth retrying: the condition is environmental, not a
/// deterministic property of the config.  The default classifier treats
/// this type — and std::system_error / std::ios_base::failure — as
/// transient; everything else (ContractError, SimulationError, ...) as
/// permanent, because an identical re-run of a deterministic simulation
/// can only fail identically.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FailureKind { kTransient, kPermanent };
const char* to_string(FailureKind kind);

/// Default classification (see TransientError).
[[nodiscard]] FailureKind classify_failure(const std::exception& e);

/// One job's terminal failure, after retries were exhausted (transient)
/// or skipped (permanent).
struct JobFailure {
  std::size_t index = 0;  ///< Position in the submitted point list.
  std::string point;      ///< Human-readable point description.
  std::string key;        ///< Cache-key hash hex ("" without a cache or
                          ///< for points that failed validation).
  int attempts = 0;       ///< Simulation attempts made (0 = failed
                          ///< validation before any attempt).
  FailureKind kind = FailureKind::kPermanent;  ///< Last failure's class.
  std::string error;      ///< Last attempt's exception text.
  double wall_seconds = 0.0;  ///< Wall time spent across all attempts.
};

/// Everything a supervised sweep produced.
struct SweepOutcome {
  /// Index-aligned with the submitted points; nullopt = that job failed
  /// (its JobFailure is in `failures`).
  std::vector<std::optional<cluster::RunResult>> results;
  /// Terminal failures, ordered by job index.
  std::vector<JobFailure> failures;
  /// Jobs whose wall time exceeded the watchdog threshold (completed or
  /// failed), ordered by job index.  Wall-clock derived: never compare
  /// across runs.
  std::vector<std::size_t> runaway;
  /// Total retry attempts across all jobs (attempts beyond each job's
  /// first).
  std::uint64_t retries = 0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  [[nodiscard]] std::size_t completed() const;
  /// Human-readable failure report (one line per failure; "" when ok).
  [[nodiscard]] std::string report() const;
};

struct SupervisorOptions {
  /// Max simulation attempts per job; only transient failures retry.
  int max_attempts = 3;
  /// Attempt k (k >= 2) waits base * 2^(k-2) seconds first — a
  /// deterministic schedule, not jittered.  0 = retry immediately.
  double backoff_base_seconds = 0.0;
  /// Flag jobs whose total wall time exceeds this; 0 = watchdog off.
  double watchdog_seconds = 0.0;
  /// Strict mode: after every job has drained, rethrow the lowest-index
  /// failure instead of returning it in the outcome (SweepRunner::run
  /// compatibility, for tests and callers that must not continue).
  bool strict = false;
  /// Override the transient/permanent classification (null = default
  /// classify_failure).
  std::function<FailureKind(const std::exception&)> classify;
};

class SweepSupervisor {
 public:
  explicit SweepSupervisor(cluster::ClusterConfig config,
                           SweepOptions sweep_options = {},
                           SupervisorOptions supervisor_options = {});

  [[nodiscard]] const SweepRunner& runner() const { return runner_; }
  [[nodiscard]] const SupervisorOptions& supervisor_options() const {
    return supervisor_options_;
  }

  /// Run every point under per-job isolation.  Cache hits short-circuit
  /// as in SweepRunner::run; completed results are bit-identical to an
  /// unsupervised sweep.  Strict mode throws the lowest-index failure
  /// after all jobs drain.
  [[nodiscard]] SweepOutcome run(const std::vector<SweepPoint>& points) const;

 private:
  SweepRunner runner_;
  SupervisorOptions supervisor_options_;
};

}  // namespace gearsim::exec
