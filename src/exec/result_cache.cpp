#include "exec/result_cache.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "exec/result_io.hpp"
#include "exec/store.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <cstdio>
#include <unistd.h>
#define GEARSIM_HAVE_FSYNC 1
#endif

namespace gearsim::exec {

namespace {

/// Unique-per-writer temp name: pid + a process-wide counter, so two
/// processes (or threads) racing on one key never interleave bytes in a
/// shared temp file, and a crashed writer's leftovers are recognizable
/// by the ".tmp." infix (sweep_stale_tmp).
std::string make_tmp_path(const std::string& final_path) {
  static std::atomic<std::uint64_t> counter{0};
#if defined(GEARSIM_HAVE_FSYNC)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return final_path + ".tmp." + std::to_string(pid) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

/// Write `bytes` to `path` and flush them to stable storage before
/// returning (fsync on POSIX).  Returns false on any failure.
bool write_durable(const std::string& path, std::string_view bytes) {
#if defined(GEARSIM_HAVE_FSYNC)
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      bytes.empty() ||
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool flushed = wrote && std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  return wrote && flushed && closed;
#else
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return out.good();
#endif
}

}  // namespace

ResultCache::ResultCache(Options options) : options_(std::move(options)) {
  GEARSIM_REQUIRE(options_.capacity > 0, "cache capacity must be positive");
  if (!options_.disk_dir.empty()) {
    // Hygiene: a writer killed between write and rename leaves a `.tmp.`
    // file behind.  Lookups never read temp names, so these can only
    // waste space — sweep them now.
    stats_.stale_tmp_swept = sweep_stale_tmp(options_.disk_dir);
  }
}

std::string ResultCache::disk_path(const CacheKey& key) const {
  return options_.disk_dir + "/" + key.hex() + ".json";
}

void ResultCache::note_corrupt(const std::string& path,
                               const std::string& reason) {
  ++stats_.corrupt;
  const std::string quarantined_to = quarantine_entry(path);
  if (!quarantined_to.empty()) ++stats_.quarantined;
  // Warn once per offending path: a sweep probing a corrupt entry
  // thousands of times must not flood the log.
  if (warned_paths_.insert(path).second) {
    GEARSIM_WARN("result store: corrupt entry "
                 << path << " (" << reason << ") — "
                 << (quarantined_to.empty()
                         ? std::string("quarantine failed, left in place")
                         : "quarantined to " + quarantined_to)
                 << "; treating as a miss");
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("exec.store.corrupt").add(1);
    if (!quarantined_to.empty()) {
      options_.metrics->counter("exec.store.quarantined").add(1);
    }
  }
}

std::optional<cluster::RunResult> ResultCache::disk_lookup(
    const CacheKey& key) {
  if (options_.disk_dir.empty()) return std::nullopt;
  const std::string path = disk_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // Absent: a plain miss.
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // Integrity first: header shape, payload length, checksum.  Anything
  // torn, flipped, or pre-v3 is quarantined and reads as a miss.
  const StoreValidation validation = validate_store_bytes(text);
  if (!validation.ok) {
    note_corrupt(path, validation.error);
    return std::nullopt;
  }

  // Verify the stored key text matches the probe exactly — a hash
  // collision (or a reused file name) must read as a miss, not an error.
  const auto result_json = payload_result_json(validation.payload, key.text);
  if (!result_json.has_value()) return std::nullopt;
  try {
    return result_from_json(*result_json);
  } catch (const std::exception& e) {
    // The checksum passed but the payload does not decode — a
    // hand-edited entry (consistent bytes, wrong content) or a format
    // drift.  Same treatment as corruption: quarantine and recompute.
    note_corrupt(path, std::string("undecodable result: ") + e.what());
    return std::nullopt;
  }
}

std::optional<cluster::RunResult> ResultCache::lookup(const CacheKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key.text);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // Promote to front.
    ++stats_.hits;
    return it->second->result;
  }
  if (auto from_disk = disk_lookup(key)) {
    ++stats_.disk_hits;
    // Promote into memory (without re-writing the disk file).
    lru_.push_front(Entry{key.text, *from_disk});
    index_[key.text] = lru_.begin();
    if (lru_.size() > options_.capacity) {
      index_.erase(lru_.back().key_text);
      lru_.pop_back();
      ++stats_.evictions;
    }
    return from_disk;
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::insert(const CacheKey& key,
                         const cluster::RunResult& result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key.text);
  if (it != index_.end()) {
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key.text, result});
    index_[key.text] = lru_.begin();
    ++stats_.insertions;
    if (lru_.size() > options_.capacity) {
      index_.erase(lru_.back().key_text);
      lru_.pop_back();
      ++stats_.evictions;
    }
  }
  if (!options_.disk_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.disk_dir, ec);
    // Write to a unique temp name, fsync, then rename: a reader (or a
    // crash) can never observe a half-written entry under the final
    // name, and a torn temp write is caught by the header on read.
    const std::string final_path = disk_path(key);
    const std::string tmp_path = make_tmp_path(final_path);
    std::string bytes = render_store_entry(key.text, result);
    // Failpoint: simulate a torn write (power loss mid-write).  arg > 0
    // keeps that many bytes, otherwise half the entry survives.
    if (const auto arg = util::failpoint("exec.store.write.truncate")) {
      const std::size_t keep =
          *arg > 0 ? std::min(bytes.size(), static_cast<std::size_t>(*arg))
                   : bytes.size() / 2;
      bytes.resize(keep);
    }
    if (!write_durable(tmp_path, bytes)) {
      std::filesystem::remove(tmp_path, ec);
      return;  // Disk store is best-effort.
    }
    // Failpoint: simulate a crash between write and rename — the entry
    // never appears, only a stale temp file (swept on the next start).
    if (util::failpoint("exec.store.rename.fail")) return;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) std::filesystem::remove(tmp_path, ec);
  }
}

CacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace gearsim::exec
