#include "exec/result_cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "exec/result_io.hpp"
#include "util/assert.hpp"

namespace gearsim::exec {

namespace {

// A disk entry is a two-field JSON object.  The key text is emitted with
// the same escaping as result_io strings; since canonical keys never
// contain quotes/backslashes/control bytes, a plain find() locates the
// "result" object reliably.
std::string render_disk_entry(const std::string& key_text,
                              const cluster::RunResult& result) {
  return "{\"format\":" + std::to_string(kKeyFormatVersion) +
         ",\"key\":\"" + key_text + "\",\"result\":" + to_json(result) +
         "}\n";
}

}  // namespace

ResultCache::ResultCache(Options options) : options_(std::move(options)) {
  GEARSIM_REQUIRE(options_.capacity > 0, "cache capacity must be positive");
}

std::string ResultCache::disk_path(const CacheKey& key) const {
  return options_.disk_dir + "/" + key.hex() + ".json";
}

std::optional<cluster::RunResult> ResultCache::disk_lookup(
    const CacheKey& key) {
  if (options_.disk_dir.empty()) return std::nullopt;
  std::ifstream in(disk_path(key));
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // Verify the stored key text matches the probe exactly — a hash
  // collision (or a stale format) must read as a miss.
  const std::string want = "\"key\":\"" + key.text + "\",\"result\":";
  const std::size_t at = text.find(want);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t start = at + want.size();
  // The result object runs to the entry's closing brace.
  std::size_t end = text.find_last_of('}');
  if (end == std::string::npos || end <= start) return std::nullopt;
  try {
    return result_from_json(
        std::string_view(text).substr(start, end - start));
  } catch (const ContractError&) {
    return std::nullopt;  // Corrupt entry: treat as miss, will be rewritten.
  }
}

std::optional<cluster::RunResult> ResultCache::lookup(const CacheKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key.text);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // Promote to front.
    ++stats_.hits;
    return it->second->result;
  }
  if (auto from_disk = disk_lookup(key)) {
    ++stats_.disk_hits;
    // Promote into memory (without re-writing the disk file).
    lru_.push_front(Entry{key.text, *from_disk});
    index_[key.text] = lru_.begin();
    if (lru_.size() > options_.capacity) {
      index_.erase(lru_.back().key_text);
      lru_.pop_back();
      ++stats_.evictions;
    }
    return from_disk;
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::insert(const CacheKey& key,
                         const cluster::RunResult& result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key.text);
  if (it != index_.end()) {
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key.text, result});
    index_[key.text] = lru_.begin();
    ++stats_.insertions;
    if (lru_.size() > options_.capacity) {
      index_.erase(lru_.back().key_text);
      lru_.pop_back();
      ++stats_.evictions;
    }
  }
  if (!options_.disk_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.disk_dir, ec);
    // Write to a temp name then rename, so a concurrent reader never
    // sees a half-written entry.
    const std::string final_path = disk_path(key);
    const std::string tmp_path = final_path + ".tmp";
    {
      std::ofstream out(tmp_path, std::ios::trunc);
      if (!out) return;  // Disk store is best-effort.
      out << render_disk_entry(key.text, result);
    }
    std::filesystem::rename(tmp_path, final_path, ec);
  }
}

CacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace gearsim::exec
