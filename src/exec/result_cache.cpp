#include "exec/result_cache.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "exec/result_io.hpp"
#include "exec/store.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <cstdio>
#include <unistd.h>
#define GEARSIM_HAVE_FSYNC 1
#endif

namespace gearsim::exec {

namespace {

/// Unique-per-writer temp name: pid + a process-wide counter, so two
/// processes (or threads) racing on one key never interleave bytes in a
/// shared temp file, and a crashed writer's leftovers are recognizable
/// by the ".tmp." infix (sweep_stale_tmp).
std::string make_tmp_path(const std::string& final_path) {
  static std::atomic<std::uint64_t> counter{0};
#if defined(GEARSIM_HAVE_FSYNC)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return final_path + ".tmp." + std::to_string(pid) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

/// Write `bytes` to `path` and flush them to stable storage before
/// returning (fsync on POSIX).  Returns false on any failure.
bool write_durable(const std::string& path, std::string_view bytes) {
#if defined(GEARSIM_HAVE_FSYNC)
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      bytes.empty() ||
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool flushed = wrote && std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  return wrote && flushed && closed;
#else
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return out.good();
#endif
}

/// Every entry file under a store (root + one level of shard
/// subdirectories, quarantine excluded), lexicographically sorted so
/// every pass over a store is deterministic.
std::vector<std::filesystem::path> collect_entry_paths(
    const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> dirs{fs::path(dir)};
  std::error_code ec;
  const fs::directory_iterator it(dir, ec);
  if (!ec) {
    for (const auto& entry : it) {
      if (entry.is_directory() && entry.path().filename() != kQuarantineDir) {
        dirs.push_back(entry.path());
      }
    }
  }
  std::vector<fs::path> paths;
  for (const fs::path& d : dirs) {
    std::error_code dir_ec;
    const fs::directory_iterator files(d, dir_ec);
    if (dir_ec) continue;
    for (const auto& entry : files) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() != ".json") continue;
      if (entry.path().filename().string().find(".tmp.") !=
          std::string::npos) {
        continue;
      }
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace

ResultCache::ResultCache(Options options) : options_(std::move(options)) {
  GEARSIM_REQUIRE(options_.capacity > 0, "cache capacity must be positive");
  options_.shard_digits = std::clamp(options_.shard_digits, 0, 16);
  if (!options_.disk_dir.empty()) {
    // Hygiene: a writer killed between write and rename leaves a `.tmp.`
    // file behind.  Lookups never read temp names, so these can only
    // waste space — sweep them now.
    stats_.stale_tmp_swept = sweep_stale_tmp(options_.disk_dir);
    if (options_.shard_entry_budget > 0) seed_shard_state();
  }
}

std::string ResultCache::shard_name(const CacheKey& key) const {
  if (options_.shard_digits == 0) return ".";
  return key.hex().substr(0, static_cast<std::size_t>(options_.shard_digits));
}

std::string ResultCache::shard_dir(const std::string& shard) const {
  return shard == "." ? options_.disk_dir : options_.disk_dir + "/" + shard;
}

std::string ResultCache::disk_path(const CacheKey& key) const {
  return shard_dir(shard_name(key)) + "/" + key.hex() + ".json";
}

void ResultCache::seed_shard_state() {
  // Deterministic seeding: a lexicographic scan assigns ascending touch
  // clocks, so which entries a later overflow evicts depends only on the
  // store's contents (oldest-by-name first), never on directory
  // enumeration order.
  namespace fs = std::filesystem;
  for (const fs::path& path : collect_entry_paths(options_.disk_dir)) {
    const fs::path parent = path.parent_path();
    const std::string shard = parent == fs::path(options_.disk_dir)
                                  ? "."
                                  : parent.filename().string();
    ShardState& state = shards_[shard];
    if (state.touch.empty()) {
      state.evictions = read_eviction_ledger(parent.string());
    }
    state.touch[path.filename().string()] = ++touch_clock_;
  }
}

void ResultCache::touch_disk_entry(const CacheKey& key) {
  if (options_.shard_entry_budget == 0) return;
  const std::string shard = shard_name(key);
  const auto [it, inserted] = shards_.try_emplace(shard);
  if (inserted) {
    // First sighting of this shard since construction (another process
    // may have evicted here before): pick up the persisted total.
    it->second.evictions = read_eviction_ledger(shard_dir(shard));
  }
  it->second.touch[key.hex() + ".json"] = ++touch_clock_;
}

void ResultCache::enforce_shard_budget(const CacheKey& key) {
  if (options_.shard_entry_budget == 0) return;
  const std::string shard = shard_name(key);
  ShardState& state = shards_[shard];
  const std::string dir = shard_dir(shard);
  bool evicted = false;
  while (state.touch.size() > options_.shard_entry_budget) {
    auto victim = state.touch.begin();
    for (auto it = state.touch.begin(); it != state.touch.end(); ++it) {
      if (it->second < victim->second) victim = it;
    }
    std::error_code ec;
    std::filesystem::remove(dir + "/" + victim->first, ec);
    state.touch.erase(victim);
    ++state.evictions;
    ++stats_.disk_evictions;
    evicted = true;
    if (options_.metrics != nullptr) {
      options_.metrics->counter("exec.store.evicted").add(1);
    }
  }
  if (evicted) write_eviction_ledger(dir, state.evictions);
}

void ResultCache::note_corrupt(const std::string& path,
                               const std::string& reason) {
  ++stats_.corrupt;
  const std::string quarantined_to = quarantine_entry(path);
  if (!quarantined_to.empty()) ++stats_.quarantined;
  // Warn once per offending path: a sweep probing a corrupt entry
  // thousands of times must not flood the log.
  if (warned_paths_.insert(path).second) {
    GEARSIM_WARN("result store: corrupt entry "
                 << path << " (" << reason << ") — "
                 << (quarantined_to.empty()
                         ? std::string("quarantine failed, left in place")
                         : "quarantined to " + quarantined_to)
                 << "; treating as a miss");
  }
  if (options_.metrics != nullptr) {
    options_.metrics->counter("exec.store.corrupt").add(1);
    if (!quarantined_to.empty()) {
      options_.metrics->counter("exec.store.quarantined").add(1);
    }
  }
}

std::optional<cluster::RunResult> ResultCache::disk_lookup(
    const CacheKey& key) {
  if (options_.disk_dir.empty()) return std::nullopt;
  const std::string path = disk_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // Absent: a plain miss.
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // Integrity first: header shape, payload length, checksum.  Anything
  // torn, flipped, or pre-v3 is quarantined and reads as a miss.
  const StoreValidation validation = validate_store_bytes(text);
  if (!validation.ok) {
    note_corrupt(path, validation.error);
    return std::nullopt;
  }

  // Verify the stored key text matches the probe exactly — a hash
  // collision (or a reused file name) must read as a miss, not an error.
  const auto result_json = payload_result_json(validation.payload, key.text);
  if (!result_json.has_value()) return std::nullopt;
  try {
    return result_from_json(*result_json);
  } catch (const std::exception& e) {
    // The checksum passed but the payload does not decode — a
    // hand-edited entry (consistent bytes, wrong content) or a format
    // drift.  Same treatment as corruption: quarantine and recompute.
    note_corrupt(path, std::string("undecodable result: ") + e.what());
    return std::nullopt;
  }
}

void ResultCache::promote_locked(const std::string& key_text,
                                 const cluster::RunResult& result) {
  const auto it = index_.find(key_text);
  if (it != index_.end()) {
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key_text, result});
  index_[key_text] = lru_.begin();
  if (lru_.size() > options_.capacity) {
    index_.erase(lru_.back().key_text);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::optional<cluster::RunResult> ResultCache::lookup(const CacheKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key.text);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // Promote to front.
    ++stats_.hits;
    return it->second->result;
  }
  if (auto from_disk = disk_lookup(key)) {
    ++stats_.disk_hits;
    // Promote into memory (without re-writing the disk file) and renew
    // the entry's disk-LRU standing — a hot entry must not be the next
    // budget eviction.
    promote_locked(key.text, *from_disk);
    touch_disk_entry(key);
    return from_disk;
  }
  ++stats_.misses;
  return std::nullopt;
}

std::size_t ResultCache::preload() {
  if (options_.disk_dir.empty()) return 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t loaded = 0;
  for (const std::filesystem::path& path :
       collect_entry_paths(options_.disk_dir)) {
    const LoadedEntry entry = load_store_entry(path.string());
    if (!entry.ok) {
      note_corrupt(path.string(), entry.error);
      continue;
    }
    promote_locked(entry.key_text, entry.result);
    ++loaded;
  }
  stats_.preloaded += loaded;
  return loaded;
}

void ResultCache::insert(const CacheKey& key,
                         const cluster::RunResult& result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key.text);
  if (it != index_.end()) {
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key.text, result});
    index_[key.text] = lru_.begin();
    ++stats_.insertions;
    if (lru_.size() > options_.capacity) {
      index_.erase(lru_.back().key_text);
      lru_.pop_back();
      ++stats_.evictions;
    }
  }
  if (!options_.disk_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(shard_dir(shard_name(key)), ec);
    // Write to a unique temp name, fsync, then rename: a reader (or a
    // crash) can never observe a half-written entry under the final
    // name, and a torn temp write is caught by the header on read.
    const std::string final_path = disk_path(key);
    const std::string tmp_path = make_tmp_path(final_path);
    std::string bytes = render_store_entry(key.text, result);
    // Failpoint: simulate a torn write (power loss mid-write).  arg > 0
    // keeps that many bytes, otherwise half the entry survives.
    if (const auto arg = util::failpoint("exec.store.write.truncate")) {
      const std::size_t keep =
          *arg > 0 ? std::min(bytes.size(), static_cast<std::size_t>(*arg))
                   : bytes.size() / 2;
      bytes.resize(keep);
    }
    if (!write_durable(tmp_path, bytes)) {
      std::filesystem::remove(tmp_path, ec);
      return;  // Disk store is best-effort.
    }
    // Failpoint: simulate a crash between write and rename — the entry
    // never appears, only a stale temp file (swept on the next start).
    if (util::failpoint("exec.store.rename.fail")) return;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) {
      std::filesystem::remove(tmp_path, ec);
      return;
    }
    // The entry landed: it is now the shard's most-recent file, and the
    // shard may have overflowed its budget.
    touch_disk_entry(key);
    enforce_shard_budget(key);
  }
}

CacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace gearsim::exec
