#include "exec/result_io.hpp"

#include "util/assert.hpp"
#include "util/json.hpp"

namespace gearsim::exec {

// The JSON tree, parser and jnum/jstr emitters used to live here; they
// moved to util/json.hpp so the observability manifests and the bench
// regression gate share the exact same dialect (round-trip doubles).
namespace {

using json::field;
using json::jnum;
using json::jstr;

}  // namespace

std::string to_json(const cluster::RunResult& r) {
  std::string s = "{";
  s += "\"nodes\":" + std::to_string(r.nodes);
  s += ",\"gear_index\":" + std::to_string(r.gear_index);
  s += ",\"gear_label\":" + std::to_string(r.gear_label);
  s += ",\"policy_run\":" + std::string(r.policy_run ? "true" : "false");
  s += ",\"gear_min_index\":" + std::to_string(r.gear_min_index);
  s += ",\"gear_max_index\":" + std::to_string(r.gear_max_index);
  s += ",\"wall\":" + jnum(r.wall.value());
  s += ",\"energy\":" + jnum(r.energy.value());
  s += ",\"active_energy\":" + jnum(r.active_energy.value());
  s += ",\"idle_energy\":" + jnum(r.idle_energy.value());
  s += ",\"mean_active_power\":" + jnum(r.mean_active_power.value());
  s += ",\"mean_idle_power\":" + jnum(r.mean_idle_power.value());

  const trace::ClusterBreakdown& b = r.breakdown;
  s += ",\"breakdown\":{\"wall\":" + jnum(b.wall.value()) +
       ",\"active_max\":" + jnum(b.active_max.value()) +
       ",\"idle_derived\":" + jnum(b.idle_derived.value()) +
       ",\"active_mean\":" + jnum(b.active_mean.value()) +
       ",\"idle_mean\":" + jnum(b.idle_mean.value()) +
       ",\"critical\":" + jnum(b.critical.value()) +
       ",\"reducible\":" + jnum(b.reducible.value()) + ",\"ranks\":[";
  for (std::size_t i = 0; i < b.ranks.size(); ++i) {
    const trace::RankBreakdown& rb = b.ranks[i];
    if (i) s += ',';
    s += "{\"wall\":" + jnum(rb.wall.value()) +
         ",\"active\":" + jnum(rb.active.value()) +
         ",\"idle\":" + jnum(rb.idle.value()) +
         ",\"critical\":" + jnum(rb.critical.value()) +
         ",\"reducible\":" + jnum(rb.reducible.value()) +
         ",\"mpi_calls\":" + std::to_string(rb.mpi_calls) + "}";
  }
  s += "]}";

  s += ",\"node_energy\":[";
  for (std::size_t i = 0; i < r.node_energy.size(); ++i) {
    const power::NodeEnergy& ne = r.node_energy[i];
    if (i) s += ',';
    s += "{\"total\":" + jnum(ne.total.value()) +
         ",\"active\":" + jnum(ne.active.value()) +
         ",\"idle\":" + jnum(ne.idle.value()) +
         ",\"active_time\":" + jnum(ne.active_time.value()) +
         ",\"idle_time\":" + jnum(ne.idle_time.value()) + "}";
  }
  s += "]";

  s += ",\"mpi_calls\":" + std::to_string(r.mpi_calls);
  s += ",\"messages\":" + std::to_string(r.messages);
  s += ",\"net_bytes\":" + std::to_string(r.net_bytes);
  s += ",\"event_order_hash\":" + std::to_string(r.event_order_hash);
  s += ",\"event_set_hash\":" + std::to_string(r.event_set_hash);
  s += ",\"gear_switches\":" + std::to_string(r.gear_switches);
  s += ",\"gear_residency\":[";
  for (std::size_t i = 0; i < r.gear_residency.size(); ++i) {
    if (i) s += ',';
    s += '[';
    for (std::size_t g = 0; g < r.gear_residency[i].size(); ++g) {
      if (g) s += ',';
      s += jnum(r.gear_residency[i][g].value());
    }
    s += ']';
  }
  s += "]";
  s += ",\"sampled_energy\":" +
       (r.sampled_energy.has_value() ? jnum(r.sampled_energy->value())
                                     : std::string("null"));
  s += ",\"sampled_coverage\":" + jnum(r.sampled_coverage);
  s += ",\"outcome\":" + std::to_string(static_cast<int>(r.outcome));
  s += ",\"retries\":" + std::to_string(r.retries);
  s += ",\"rework_time\":" + jnum(r.rework_time.value());
  s += ",\"rework_energy\":" + jnum(r.rework_energy.value());
  s += ",\"checkpoint_time\":" + jnum(r.checkpoint_time.value());
  s += ",\"checkpoint_energy\":" + jnum(r.checkpoint_energy.value());
  s += ",\"fatal_crash\":";
  if (r.fatal_crash.has_value()) {
    s += "{\"node\":" + std::to_string(r.fatal_crash->node) +
         ",\"at\":" + jnum(r.fatal_crash->at.value()) + "}";
  } else {
    s += "null";
  }
  s += ",\"retransmissions\":" + std::to_string(r.retransmissions);
  s += ",\"fault_events\":[";
  for (std::size_t i = 0; i < r.fault_events.size(); ++i) {
    const trace::FaultEvent& ev = r.fault_events[i];
    if (i) s += ',';
    s += "{\"kind\":" + std::to_string(static_cast<int>(ev.kind)) +
         ",\"node\":" + std::to_string(ev.node) +
         ",\"at\":" + jnum(ev.at.value()) +
         ",\"detail\":" + jstr(ev.detail) + "}";
  }
  s += "]}";
  return s;
}

cluster::RunResult result_from_json(std::string_view text) {
  const json::Value root = json::parse(text);
  const json::Object& o = root.as_object();

  cluster::RunResult r;
  r.nodes = field(o, "nodes").as_int();
  r.gear_index = static_cast<std::size_t>(field(o, "gear_index").as_u64());
  r.gear_label = field(o, "gear_label").as_int();
  r.policy_run = field(o, "policy_run").as_bool();
  r.gear_min_index =
      static_cast<std::size_t>(field(o, "gear_min_index").as_u64());
  r.gear_max_index =
      static_cast<std::size_t>(field(o, "gear_max_index").as_u64());
  r.wall = seconds(field(o, "wall").as_double());
  r.energy = joules(field(o, "energy").as_double());
  r.active_energy = joules(field(o, "active_energy").as_double());
  r.idle_energy = joules(field(o, "idle_energy").as_double());
  r.mean_active_power = watts(field(o, "mean_active_power").as_double());
  r.mean_idle_power = watts(field(o, "mean_idle_power").as_double());

  const json::Object& b = field(o, "breakdown").as_object();
  r.breakdown.wall = seconds(field(b, "wall").as_double());
  r.breakdown.active_max = seconds(field(b, "active_max").as_double());
  r.breakdown.idle_derived = seconds(field(b, "idle_derived").as_double());
  r.breakdown.active_mean = seconds(field(b, "active_mean").as_double());
  r.breakdown.idle_mean = seconds(field(b, "idle_mean").as_double());
  r.breakdown.critical = seconds(field(b, "critical").as_double());
  r.breakdown.reducible = seconds(field(b, "reducible").as_double());
  for (const json::Value& rv : field(b, "ranks").as_array()) {
    const json::Object& ro = rv.as_object();
    trace::RankBreakdown rb;
    rb.wall = seconds(field(ro, "wall").as_double());
    rb.active = seconds(field(ro, "active").as_double());
    rb.idle = seconds(field(ro, "idle").as_double());
    rb.critical = seconds(field(ro, "critical").as_double());
    rb.reducible = seconds(field(ro, "reducible").as_double());
    rb.mpi_calls = static_cast<std::size_t>(field(ro, "mpi_calls").as_u64());
    r.breakdown.ranks.push_back(rb);
  }

  for (const json::Value& nv : field(o, "node_energy").as_array()) {
    const json::Object& no = nv.as_object();
    power::NodeEnergy ne;
    ne.total = joules(field(no, "total").as_double());
    ne.active = joules(field(no, "active").as_double());
    ne.idle = joules(field(no, "idle").as_double());
    ne.active_time = seconds(field(no, "active_time").as_double());
    ne.idle_time = seconds(field(no, "idle_time").as_double());
    r.node_energy.push_back(ne);
  }

  r.mpi_calls = field(o, "mpi_calls").as_u64();
  r.messages = field(o, "messages").as_u64();
  r.net_bytes = static_cast<Bytes>(field(o, "net_bytes").as_u64());
  r.event_order_hash = field(o, "event_order_hash").as_u64();
  r.event_set_hash = field(o, "event_set_hash").as_u64();
  r.gear_switches = field(o, "gear_switches").as_u64();
  for (const json::Value& rankv : field(o, "gear_residency").as_array()) {
    std::vector<Seconds> per_gear;
    for (const json::Value& gv : rankv.as_array()) {
      per_gear.push_back(seconds(gv.as_double()));
    }
    r.gear_residency.push_back(std::move(per_gear));
  }
  if (!field(o, "sampled_energy").is_null()) {
    r.sampled_energy = joules(field(o, "sampled_energy").as_double());
  }
  r.sampled_coverage = field(o, "sampled_coverage").as_double();
  const int outcome = field(o, "outcome").as_int();
  GEARSIM_REQUIRE(outcome >= 0 && outcome <= 2, "bad outcome code");
  r.outcome = static_cast<cluster::RunOutcome>(outcome);
  r.retries = field(o, "retries").as_int();
  r.rework_time = seconds(field(o, "rework_time").as_double());
  r.rework_energy = joules(field(o, "rework_energy").as_double());
  r.checkpoint_time = seconds(field(o, "checkpoint_time").as_double());
  r.checkpoint_energy = joules(field(o, "checkpoint_energy").as_double());
  if (!field(o, "fatal_crash").is_null()) {
    const json::Object& fc = field(o, "fatal_crash").as_object();
    faults::CrashEvent ev;
    ev.node = static_cast<std::size_t>(field(fc, "node").as_u64());
    ev.at = seconds(field(fc, "at").as_double());
    r.fatal_crash = ev;
  }
  r.retransmissions = field(o, "retransmissions").as_u64();
  for (const json::Value& ev : field(o, "fault_events").as_array()) {
    const json::Object& eo = ev.as_object();
    trace::FaultEvent fe;
    const int kind = field(eo, "kind").as_int();
    GEARSIM_REQUIRE(kind >= 0 && kind <= 7, "bad fault-event kind");
    fe.kind = static_cast<trace::FaultEventKind>(kind);
    fe.node = static_cast<std::size_t>(field(eo, "node").as_u64());
    fe.at = seconds(field(eo, "at").as_double());
    fe.detail = field(eo, "detail").as_string();
    r.fault_events.push_back(fe);
  }
  return r;
}

}  // namespace gearsim::exec
