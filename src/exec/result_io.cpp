#include "exec/result_io.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <variant>
#include <vector>

#include "util/assert.hpp"

namespace gearsim::exec {

namespace {

// ---- emission ---------------------------------------------------------------

std::string jnum(double v) {
  char buf[40];
  const auto [ptr, ec] = std::to_chars(
      buf, buf + sizeof(buf), v, std::chars_format::general,
      std::numeric_limits<double>::max_digits10);
  GEARSIM_ENSURE(ec == std::errc(), "double rendering failed");
  return std::string(buf, ptr);
}

std::string jstr(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// ---- minimal JSON tree + parser --------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  // Numbers keep their raw token so integer fields convert exactly.
  std::variant<std::nullptr_t, bool, std::string /*number token*/,
               std::shared_ptr<std::string> /*string*/,
               std::shared_ptr<JsonObject>, std::shared_ptr<JsonArray>>
      v = nullptr;

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v);
  }
  [[nodiscard]] bool as_bool() const {
    GEARSIM_REQUIRE(std::holds_alternative<bool>(v), "expected JSON bool");
    return std::get<bool>(v);
  }
  [[nodiscard]] double as_double() const {
    GEARSIM_REQUIRE(std::holds_alternative<std::string>(v),
                    "expected JSON number");
    const std::string& tok = std::get<std::string>(v);
    double out = 0.0;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), out);
    GEARSIM_REQUIRE(ec == std::errc() && ptr == tok.data() + tok.size(),
                    "bad JSON number: " + tok);
    return out;
  }
  [[nodiscard]] std::uint64_t as_u64() const {
    GEARSIM_REQUIRE(std::holds_alternative<std::string>(v),
                    "expected JSON number");
    const std::string& tok = std::get<std::string>(v);
    std::uint64_t out = 0;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), out);
    GEARSIM_REQUIRE(ec == std::errc() && ptr == tok.data() + tok.size(),
                    "bad JSON integer: " + tok);
    return out;
  }
  [[nodiscard]] int as_int() const {
    return static_cast<int>(as_double());
  }
  [[nodiscard]] const std::string& as_string() const {
    GEARSIM_REQUIRE(
        std::holds_alternative<std::shared_ptr<std::string>>(v),
        "expected JSON string");
    return *std::get<std::shared_ptr<std::string>>(v);
  }
  [[nodiscard]] const JsonObject& as_object() const {
    GEARSIM_REQUIRE(std::holds_alternative<std::shared_ptr<JsonObject>>(v),
                    "expected JSON object");
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonArray& as_array() const {
    GEARSIM_REQUIRE(std::holds_alternative<std::shared_ptr<JsonArray>>(v),
                    "expected JSON array");
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    const JsonValue v = value();
    skip_ws();
    GEARSIM_REQUIRE(pos_ == text_.size(), "trailing bytes after JSON value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    GEARSIM_REQUIRE(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }

  void expect(char c) {
    GEARSIM_REQUIRE(pos_ < text_.size() && text_[pos_] == c,
                    std::string("expected '") + c + "' in JSON");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': literal("true"); return JsonValue{true};
      case 'f': literal("false"); return JsonValue{false};
      case 'n': literal("null"); return JsonValue{nullptr};
      default: return number();
    }
  }

  void literal(std::string_view word) {
    GEARSIM_REQUIRE(text_.substr(pos_, word.size()) == word,
                    "bad JSON literal");
    pos_ += word.size();
  }

  JsonValue object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    for (;;) {
      skip_ws();
      const std::string key = raw_string();
      skip_ws();
      expect(':');
      (*obj)[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(obj)};
    }
  }

  JsonValue array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    for (;;) {
      arr->push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(arr)};
    }
  }

  JsonValue string_value() {
    return JsonValue{std::make_shared<std::string>(raw_string())};
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    for (;;) {
      GEARSIM_REQUIRE(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      GEARSIM_REQUIRE(pos_ < text_.size(), "dangling escape in JSON string");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          GEARSIM_REQUIRE(pos_ + 4 <= text_.size(), "short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else GEARSIM_REQUIRE(false, "bad \\u escape");
          }
          // The emitter only produces \u00xx control escapes; reject the
          // rest rather than mis-decode them.
          GEARSIM_REQUIRE(code < 0x80, "unsupported \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default: GEARSIM_REQUIRE(false, "bad escape in JSON string");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    GEARSIM_REQUIRE(pos_ > start, "expected JSON number");
    return JsonValue{std::string(text_.substr(start, pos_ - start))};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue& field(const JsonObject& obj, std::string_view name) {
  const auto it = obj.find(name);
  GEARSIM_REQUIRE(it != obj.end(),
                  "missing JSON field: " + std::string(name));
  return it->second;
}

}  // namespace

std::string to_json(const cluster::RunResult& r) {
  std::string s = "{";
  s += "\"nodes\":" + std::to_string(r.nodes);
  s += ",\"gear_index\":" + std::to_string(r.gear_index);
  s += ",\"gear_label\":" + std::to_string(r.gear_label);
  s += ",\"policy_run\":" + std::string(r.policy_run ? "true" : "false");
  s += ",\"gear_min_index\":" + std::to_string(r.gear_min_index);
  s += ",\"gear_max_index\":" + std::to_string(r.gear_max_index);
  s += ",\"wall\":" + jnum(r.wall.value());
  s += ",\"energy\":" + jnum(r.energy.value());
  s += ",\"active_energy\":" + jnum(r.active_energy.value());
  s += ",\"idle_energy\":" + jnum(r.idle_energy.value());
  s += ",\"mean_active_power\":" + jnum(r.mean_active_power.value());
  s += ",\"mean_idle_power\":" + jnum(r.mean_idle_power.value());

  const trace::ClusterBreakdown& b = r.breakdown;
  s += ",\"breakdown\":{\"wall\":" + jnum(b.wall.value()) +
       ",\"active_max\":" + jnum(b.active_max.value()) +
       ",\"idle_derived\":" + jnum(b.idle_derived.value()) +
       ",\"active_mean\":" + jnum(b.active_mean.value()) +
       ",\"idle_mean\":" + jnum(b.idle_mean.value()) +
       ",\"critical\":" + jnum(b.critical.value()) +
       ",\"reducible\":" + jnum(b.reducible.value()) + ",\"ranks\":[";
  for (std::size_t i = 0; i < b.ranks.size(); ++i) {
    const trace::RankBreakdown& rb = b.ranks[i];
    if (i) s += ',';
    s += "{\"wall\":" + jnum(rb.wall.value()) +
         ",\"active\":" + jnum(rb.active.value()) +
         ",\"idle\":" + jnum(rb.idle.value()) +
         ",\"critical\":" + jnum(rb.critical.value()) +
         ",\"reducible\":" + jnum(rb.reducible.value()) +
         ",\"mpi_calls\":" + std::to_string(rb.mpi_calls) + "}";
  }
  s += "]}";

  s += ",\"node_energy\":[";
  for (std::size_t i = 0; i < r.node_energy.size(); ++i) {
    const power::NodeEnergy& ne = r.node_energy[i];
    if (i) s += ',';
    s += "{\"total\":" + jnum(ne.total.value()) +
         ",\"active\":" + jnum(ne.active.value()) +
         ",\"idle\":" + jnum(ne.idle.value()) +
         ",\"active_time\":" + jnum(ne.active_time.value()) +
         ",\"idle_time\":" + jnum(ne.idle_time.value()) + "}";
  }
  s += "]";

  s += ",\"mpi_calls\":" + std::to_string(r.mpi_calls);
  s += ",\"messages\":" + std::to_string(r.messages);
  s += ",\"net_bytes\":" + std::to_string(r.net_bytes);
  s += ",\"gear_switches\":" + std::to_string(r.gear_switches);
  s += ",\"gear_residency\":[";
  for (std::size_t i = 0; i < r.gear_residency.size(); ++i) {
    if (i) s += ',';
    s += '[';
    for (std::size_t g = 0; g < r.gear_residency[i].size(); ++g) {
      if (g) s += ',';
      s += jnum(r.gear_residency[i][g].value());
    }
    s += ']';
  }
  s += "]";
  s += ",\"sampled_energy\":" +
       (r.sampled_energy.has_value() ? jnum(r.sampled_energy->value())
                                     : std::string("null"));
  s += ",\"sampled_coverage\":" + jnum(r.sampled_coverage);
  s += ",\"outcome\":" + std::to_string(static_cast<int>(r.outcome));
  s += ",\"retries\":" + std::to_string(r.retries);
  s += ",\"rework_time\":" + jnum(r.rework_time.value());
  s += ",\"rework_energy\":" + jnum(r.rework_energy.value());
  s += ",\"checkpoint_time\":" + jnum(r.checkpoint_time.value());
  s += ",\"checkpoint_energy\":" + jnum(r.checkpoint_energy.value());
  s += ",\"fatal_crash\":";
  if (r.fatal_crash.has_value()) {
    s += "{\"node\":" + std::to_string(r.fatal_crash->node) +
         ",\"at\":" + jnum(r.fatal_crash->at.value()) + "}";
  } else {
    s += "null";
  }
  s += ",\"retransmissions\":" + std::to_string(r.retransmissions);
  s += ",\"fault_events\":[";
  for (std::size_t i = 0; i < r.fault_events.size(); ++i) {
    const trace::FaultEvent& ev = r.fault_events[i];
    if (i) s += ',';
    s += "{\"kind\":" + std::to_string(static_cast<int>(ev.kind)) +
         ",\"node\":" + std::to_string(ev.node) +
         ",\"at\":" + jnum(ev.at.value()) +
         ",\"detail\":" + jstr(ev.detail) + "}";
  }
  s += "]}";
  return s;
}

cluster::RunResult result_from_json(std::string_view json) {
  const JsonValue root = Parser(json).parse();
  const JsonObject& o = root.as_object();

  cluster::RunResult r;
  r.nodes = field(o, "nodes").as_int();
  r.gear_index = static_cast<std::size_t>(field(o, "gear_index").as_u64());
  r.gear_label = field(o, "gear_label").as_int();
  r.policy_run = field(o, "policy_run").as_bool();
  r.gear_min_index =
      static_cast<std::size_t>(field(o, "gear_min_index").as_u64());
  r.gear_max_index =
      static_cast<std::size_t>(field(o, "gear_max_index").as_u64());
  r.wall = seconds(field(o, "wall").as_double());
  r.energy = joules(field(o, "energy").as_double());
  r.active_energy = joules(field(o, "active_energy").as_double());
  r.idle_energy = joules(field(o, "idle_energy").as_double());
  r.mean_active_power = watts(field(o, "mean_active_power").as_double());
  r.mean_idle_power = watts(field(o, "mean_idle_power").as_double());

  const JsonObject& b = field(o, "breakdown").as_object();
  r.breakdown.wall = seconds(field(b, "wall").as_double());
  r.breakdown.active_max = seconds(field(b, "active_max").as_double());
  r.breakdown.idle_derived = seconds(field(b, "idle_derived").as_double());
  r.breakdown.active_mean = seconds(field(b, "active_mean").as_double());
  r.breakdown.idle_mean = seconds(field(b, "idle_mean").as_double());
  r.breakdown.critical = seconds(field(b, "critical").as_double());
  r.breakdown.reducible = seconds(field(b, "reducible").as_double());
  for (const JsonValue& rv : field(b, "ranks").as_array()) {
    const JsonObject& ro = rv.as_object();
    trace::RankBreakdown rb;
    rb.wall = seconds(field(ro, "wall").as_double());
    rb.active = seconds(field(ro, "active").as_double());
    rb.idle = seconds(field(ro, "idle").as_double());
    rb.critical = seconds(field(ro, "critical").as_double());
    rb.reducible = seconds(field(ro, "reducible").as_double());
    rb.mpi_calls = static_cast<std::size_t>(field(ro, "mpi_calls").as_u64());
    r.breakdown.ranks.push_back(rb);
  }

  for (const JsonValue& nv : field(o, "node_energy").as_array()) {
    const JsonObject& no = nv.as_object();
    power::NodeEnergy ne;
    ne.total = joules(field(no, "total").as_double());
    ne.active = joules(field(no, "active").as_double());
    ne.idle = joules(field(no, "idle").as_double());
    ne.active_time = seconds(field(no, "active_time").as_double());
    ne.idle_time = seconds(field(no, "idle_time").as_double());
    r.node_energy.push_back(ne);
  }

  r.mpi_calls = field(o, "mpi_calls").as_u64();
  r.messages = field(o, "messages").as_u64();
  r.net_bytes = static_cast<Bytes>(field(o, "net_bytes").as_u64());
  r.gear_switches = field(o, "gear_switches").as_u64();
  for (const JsonValue& rankv : field(o, "gear_residency").as_array()) {
    std::vector<Seconds> per_gear;
    for (const JsonValue& gv : rankv.as_array()) {
      per_gear.push_back(seconds(gv.as_double()));
    }
    r.gear_residency.push_back(std::move(per_gear));
  }
  if (!field(o, "sampled_energy").is_null()) {
    r.sampled_energy = joules(field(o, "sampled_energy").as_double());
  }
  r.sampled_coverage = field(o, "sampled_coverage").as_double();
  const int outcome = field(o, "outcome").as_int();
  GEARSIM_REQUIRE(outcome >= 0 && outcome <= 2, "bad outcome code");
  r.outcome = static_cast<cluster::RunOutcome>(outcome);
  r.retries = field(o, "retries").as_int();
  r.rework_time = seconds(field(o, "rework_time").as_double());
  r.rework_energy = joules(field(o, "rework_energy").as_double());
  r.checkpoint_time = seconds(field(o, "checkpoint_time").as_double());
  r.checkpoint_energy = joules(field(o, "checkpoint_energy").as_double());
  if (!field(o, "fatal_crash").is_null()) {
    const JsonObject& fc = field(o, "fatal_crash").as_object();
    faults::CrashEvent ev;
    ev.node = static_cast<std::size_t>(field(fc, "node").as_u64());
    ev.at = seconds(field(fc, "at").as_double());
    r.fatal_crash = ev;
  }
  r.retransmissions = field(o, "retransmissions").as_u64();
  for (const JsonValue& ev : field(o, "fault_events").as_array()) {
    const JsonObject& eo = ev.as_object();
    trace::FaultEvent fe;
    const int kind = field(eo, "kind").as_int();
    GEARSIM_REQUIRE(kind >= 0 && kind <= 7, "bad fault-event kind");
    fe.kind = static_cast<trace::FaultEventKind>(kind);
    fe.node = static_cast<std::size_t>(field(eo, "node").as_u64());
    fe.at = seconds(field(eo, "at").as_double());
    fe.detail = field(eo, "detail").as_string();
    r.fault_events.push_back(fe);
  }
  return r;
}

}  // namespace gearsim::exec
