// In-flight request deduplication for the what-if service.
//
// N concurrent queries for the same cache key must cost ONE simulation:
// the first claimant of a key becomes its *leader* (it will simulate and
// publish), every later claimant while the key is open becomes a
// *follower* and blocks in wait() until the leader settles the slot —
// with the result (publish), an error (fail), or nothing (abandon, e.g.
// the leader was rejected by admission control and its followers must
// re-enter the race themselves).  Settling removes the key from the
// table, so the next claimant after a failure starts a fresh round
// rather than being poisoned by a stale slot.
//
// The table guards *identity*, not results: leaders are expected to
// publish through ResultCache first, so a follower woken by publish and
// a cache hit read the same bytes.  See docs/SERVICE.md.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cluster/experiment.hpp"

namespace gearsim::exec {

struct InflightSlot;  // internal (inflight.cpp)

class InflightTable {
 public:
  /// One claimant's handle on a key.  `leader == true` obliges the
  /// holder to settle the slot exactly once (publish / fail / abandon);
  /// followers call wait().
  struct Ticket {
    bool leader = false;
    std::shared_ptr<InflightSlot> slot;
  };

  /// How a wait ended.
  enum class Outcome {
    kReady,      ///< Leader published; `result` is set.
    kFailed,     ///< Leader's simulation threw; `error` says why.
    kAbandoned,  ///< Leader gave up without an answer; claim again.
  };

  struct WaitResult {
    Outcome outcome = Outcome::kAbandoned;
    std::optional<cluster::RunResult> result;  ///< kReady only.
    std::string error;                         ///< kFailed only.
  };

  /// Dedup accounting, readable any time via stats().
  struct Stats {
    std::uint64_t leaders = 0;    ///< Claims that opened a key.
    std::uint64_t coalesced = 0;  ///< Claims folded onto an open key.
    std::uint64_t published = 0;
    std::uint64_t failed = 0;
    std::uint64_t abandoned = 0;
  };

  InflightTable() = default;
  InflightTable(const InflightTable&) = delete;
  InflightTable& operator=(const InflightTable&) = delete;

  /// Join (or open) the in-flight round for `key_text`.
  [[nodiscard]] Ticket claim(const std::string& key_text);

  /// Leader-only: settle the round.  Each removes the key from the
  /// table first, so claims racing with settlement either joined this
  /// round (and get woken) or start the next one — never both.
  void publish(const std::string& key_text, const Ticket& ticket,
               const cluster::RunResult& result);
  void fail(const std::string& key_text, const Ticket& ticket,
            std::string error);
  void abandon(const std::string& key_text, const Ticket& ticket);

  /// Follower: block until the round settles.
  [[nodiscard]] WaitResult wait(const Ticket& ticket) const;

  [[nodiscard]] Stats stats() const;
  /// Keys currently open (leaders that have not settled yet).
  [[nodiscard]] std::size_t open() const;

 private:
  void settle(const std::string& key_text, const Ticket& ticket,
              Outcome outcome, std::optional<cluster::RunResult> result,
              std::string error);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<InflightSlot>> open_;
  Stats stats_;
};

}  // namespace gearsim::exec
