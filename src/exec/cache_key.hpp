// Content-addressed cache keys for simulation points.
//
// A RunResult is a pure function of (ClusterConfig, workload signature,
// nodes, gear, rep, fault plan).  The key canonicalizes every one of
// those inputs into a readable string — doubles at round-trip precision,
// containers in declaration order — and hashes it (FNV-1a 64) for
// bucketing and file naming.  The *string* is the authoritative identity:
// ResultCache compares it on every hit, so a 64-bit hash collision can
// never alias two different configurations.
//
// Invalidation rule: any field added to ClusterConfig, FaultPlan, or a
// workload's signature() must be folded in here (or there); changing the
// canonical format itself bumps kKeyFormatVersion, which retires every
// on-disk entry at once.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "cluster/config.hpp"
#include "faults/fault_plan.hpp"

namespace gearsim::exec {

/// Bump when the canonical text layout changes (retires old disk caches).
/// v2: policy identity joined the key (|policy=none / |policy=<sig>) and
/// results grew per-rank gear residency.
/// v3: results grew event_order_hash (the dispatch-order determinism
/// probe); older cached entries lack the field and must be re-run.
/// v4: results grew event_set_hash (the order-independent probe that
/// the conservative parallel engine is verified against).  Engine mode
/// itself deliberately stays OUT of the key: a run's identity is its
/// physics, and the parallel path is held byte-equal to serial, so one
/// cache serves both modes.
/// v5: lossy-link loss draws are keyed by transfer identity (src,
/// per-source ordinal) instead of global consumption order — link-fault
/// results changed, so every pre-v5 entry must be recomputed.
/// v6: net{...} grew topology=<spec> (flat / fat-tree / torus routing —
/// see net/topology.hpp).  Flat runs are byte-identical to v5, but the
/// key text changed shape, so the version retires old entries wholesale.
inline constexpr int kKeyFormatVersion = 6;

/// FNV-1a 64-bit hash of a byte string.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes);

/// A canonical key: the full text plus its hash.
struct CacheKey {
  std::string text;
  std::uint64_t hash = 0;

  /// Hash rendered as 16 lowercase hex digits (the disk file stem).
  [[nodiscard]] std::string hex() const;
};

/// Canonical serialization of a cluster configuration (every field).
[[nodiscard]] std::string canonical_config(const cluster::ClusterConfig& c);

/// Canonical serialization of a fault plan; "faults=none" when null or
/// empty, so a fault-free point keys identically with and without an
/// empty plan attached (they produce bit-identical runs).
[[nodiscard]] std::string canonical_fault_plan(const faults::FaultPlan* plan);

/// The key of one sweep point.  `workload_signature` is
/// Workload::signature(); `rep` is the repetition index (seeds shift by
/// +rep, matching ExperimentRunner::run_repeated); `policy_signature` is
/// GearPolicy::signature() for policy-driven points and empty for
/// uniform-gear points (keyed as "policy=none" — `gear_index` alone then
/// identifies the run).  A policy point can therefore never collide with
/// a uniform point, and two different policies at the same nominal gear
/// key differently.
[[nodiscard]] CacheKey sweep_point_key(const cluster::ClusterConfig& config,
                                       std::string_view workload_signature,
                                       int nodes, std::size_t gear_index,
                                       int rep,
                                       const faults::FaultPlan* plan,
                                       std::string_view policy_signature = {});

}  // namespace gearsim::exec
