#include "serve/client.hpp"

#include <utility>

#include "util/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace gearsim::serve {

Client::Client(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}

#if defined(__unix__) || defined(__APPLE__)

std::string Client::request(std::string_view line) const {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  GEARSIM_REQUIRE(socket_path_.size() < sizeof(addr.sun_path),
                  "socket path too long: " + socket_path_);
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  GEARSIM_REQUIRE(fd >= 0, std::string("socket(): ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    GEARSIM_REQUIRE(false, "connect " + socket_path_ + ": " + error);
  }

  std::string wire(line);
  wire += '\n';
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::write(fd, wire.data() + sent, wire.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const std::string error = std::strerror(errno);
    ::close(fd);
    GEARSIM_REQUIRE(false, "write " + socket_path_ + ": " + error);
  }

  std::string response;
  char c = 0;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n == 1) {
      if (c == '\n') break;
      response += c;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    ::close(fd);
    GEARSIM_REQUIRE(n == 0, std::string("read: ") + std::strerror(errno));
    GEARSIM_REQUIRE(false, "daemon closed the connection mid-response");
  }
  ::close(fd);
  return response;
}

#else  // !(__unix__ || __APPLE__)

std::string Client::request(std::string_view) const {
  GEARSIM_REQUIRE(false, "gearsim client requires AF_UNIX sockets");
}

#endif

}  // namespace gearsim::serve
