// Wire protocol of the what-if query service.
//
// One request per line, one response per line, both canonical
// single-line JSON (util/json dialect: sorted keys, round-trip doubles).
// Request types:
//
//   run      one (workload, nodes, gear, rep) point
//   sweep    all gears x `repeat` reps at one node count
//   race     the adaptive-policy roster vs the static sweep
//   stats    daemon counters (cache, dedup, admission, shards, latency)
//   shutdown ask the daemon to exit after responding
//
// Responses carry "status": "ok" (typed payload), "rejected" (admission
// backpressure; "retry_after_ms" says when to come back), or "error"
// (validation or simulation failure; "error" says why).  Every result
// object in an ok payload is exec::to_json(RunResult) verbatim — the
// cache's bit-identity fingerprint — so a served answer can be diffed
// byte-for-byte against a cold `gearsim sweep` of the same point.
// See docs/SERVICE.md.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cluster/experiment.hpp"
#include "policy/evaluator.hpp"
#include "util/json.hpp"

namespace gearsim::serve {

/// One parsed query.  Defaults match the CLI's (`gearsim sweep` etc.).
struct Request {
  std::string type;               ///< run | sweep | race | stats | shutdown
  std::string cluster = "athlon";
  std::string workload = "CG";
  int nodes = 4;
  int gear = 1;    ///< run only (1-based paper label).
  int rep = 0;     ///< run only (repetition index).
  int repeat = 1;  ///< sweep only (reps per gear).
  /// Routing topology spec (net/topology.hpp grammar), canonicalized at
  /// parse time; empty means the cluster preset's flat network.  Part of
  /// the simulated config, so it shards the daemon's supervisor map and
  /// the cache keys exactly like the CLI's --topology flag.
  std::string topology;
};

/// Parse a request line; throws ContractError on malformed JSON, an
/// unknown type, or non-positive coordinates.
[[nodiscard]] Request parse_request(std::string_view line);

/// Canonical request line (inverse of parse_request; no trailing \n).
[[nodiscard]] std::string render_request(const Request& request);

/// Ok responses.  Result payloads embed only deterministic run content —
/// no timestamps, hostnames, or wall-clock provenance — so identical
/// queries produce byte-identical responses across daemon restarts,
/// cache states, and dedup coalescing.
[[nodiscard]] std::string run_response(const Request& request,
                                       const cluster::RunResult& result);
[[nodiscard]] std::string sweep_response(
    const Request& request, const std::vector<cluster::RunResult>& results);
[[nodiscard]] std::string race_response(const Request& request,
                                        const policy::Evaluation& eval);
[[nodiscard]] std::string shutdown_response();

/// Admission backpressure: come back in `retry_after_ms`.
[[nodiscard]] std::string rejected_response(int retry_after_ms);
[[nodiscard]] std::string error_response(std::string_view message);

/// Decode an ok sweep (or run) response's results, in gear-major request
/// order.  Throws ContractError when the response is not an ok payload
/// of that shape.
[[nodiscard]] std::vector<cluster::RunResult> results_from_response(
    const json::Value& response);

/// Reassemble a race response into the same Evaluation record
/// policy::PolicyEvaluator::evaluate computes locally (deltas and
/// frontier markers are re-derived via policy::assemble_evaluation, so
/// remote and local tables agree to the byte).
[[nodiscard]] policy::Evaluation evaluation_from_response(
    const json::Value& response);

}  // namespace gearsim::serve
