// Minimal blocking client for the gearsim daemon's line protocol.
//
// One connection per request(): connect, write the request line, read
// the response line, close.  The daemon dedupes and caches server-side,
// so connection reuse buys nothing at simulation timescales and a
// fresh connect keeps the client trivially thread-safe (no shared fd).
// Unix-only, like the daemon; request() throws elsewhere.
#pragma once

#include <string>
#include <string_view>

namespace gearsim::serve {

class Client {
 public:
  explicit Client(std::string socket_path);

  /// Send one request line (no trailing newline needed) and return the
  /// response line.  Throws ContractError when the daemon is
  /// unreachable or the connection drops mid-exchange.
  [[nodiscard]] std::string request(std::string_view line) const;

  [[nodiscard]] const std::string& socket_path() const {
    return socket_path_;
  }

 private:
  std::string socket_path_;
};

}  // namespace gearsim::serve
