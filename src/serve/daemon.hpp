// The gearsim daemon: a Service behind an AF_UNIX stream socket.
//
// Line protocol: clients write one request per line, the daemon answers
// one response line per request on the same connection (any number of
// round trips per connection; EOF ends it).  Threading is
// thread-per-connection — simulation time dwarfs thread setup by orders
// of magnitude, and the Service underneath already bounds concurrent
// simulation work through its admission gate.
//
// Lifecycle: start() binds (replacing any stale socket file), listens
// and spawns the accept loop; a client's shutdown request — or a local
// request_stop() — stops accepting and wakes wait(); stop() joins every
// thread and removes the socket file.  Unix-only: on other platforms
// start() throws and `gearsim serve` reports the error (the Service and
// protocol layers stay fully portable/testable).
// See docs/SERVICE.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gearsim::serve {

class Service;

class Daemon {
 public:
  struct Options {
    std::string socket_path = "gearsim.sock";
  };

  /// `service` must outlive the daemon.
  Daemon(Service& service, Options options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind + listen + start accepting.  Throws ContractError when the
  /// socket cannot be created (or on non-Unix platforms).
  void start();

  /// Block until a shutdown request arrives (or request_stop is called).
  void wait();

  /// Stop accepting and wake wait(); safe from any thread, including a
  /// connection thread that just answered a shutdown request.
  void request_stop();

  /// Join every thread and remove the socket file.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  Service& service_;
  Options options_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex mutex_;  // Guards connections_ and the stop cv.
  std::condition_variable stopped_cv_;
  std::vector<std::thread> connections_;
};

}  // namespace gearsim::serve
