#include "serve/daemon.hpp"

#include <utility>

#include "serve/service.hpp"
#include "util/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace gearsim::serve {

Daemon::Daemon(Service& service, Options options)
    : service_(service), options_(std::move(options)) {}

Daemon::~Daemon() { stop(); }

#if defined(__unix__) || defined(__APPLE__)

namespace {

/// Read until '\n' or EOF.  Returns false on EOF-before-any-byte (clean
/// close) and on read errors; partial lines without a newline are
/// delivered as-is so a client that forgets the terminator still gets an
/// answer before EOF ends the connection.
bool read_line(int fd, std::string& line) {
  line.clear();
  char c = 0;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n == 1) {
      if (c == '\n') return true;
      line += c;
      continue;
    }
    if (n == 0) return !line.empty();
    if (errno == EINTR) continue;
    return false;
  }
}

bool write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

void Daemon::start() {
  GEARSIM_REQUIRE(!running_.load(std::memory_order_acquire),
                  "daemon already started");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  GEARSIM_REQUIRE(options_.socket_path.size() < sizeof(addr.sun_path),
                  "socket path too long: " + options_.socket_path);
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  GEARSIM_REQUIRE(listen_fd_ >= 0,
                  std::string("socket(): ") + std::strerror(errno));
  // A previous daemon may have died without cleanup; the bind below
  // would fail on its stale socket file, so remove it first.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    GEARSIM_REQUIRE(false, "bind/listen " + options_.socket_path + ": " + error);
  }

  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Daemon::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener shut down (or broken) — stop accepting.
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
  running_.store(false, std::memory_order_release);
  stopped_cv_.notify_all();
}

void Daemon::serve_connection(int fd) {
  std::string line;
  while (read_line(fd, line)) {
    const std::string response = service_.handle_line(line);
    if (!write_all(fd, response) || !write_all(fd, "\n")) break;
    if (service_.shutdown_requested()) {
      // The shutdown answer is already on the wire; tear the listener
      // down so wait() returns and no new connections land.
      request_stop();
      break;
    }
  }
  ::close(fd);
}

void Daemon::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  stopped_cv_.wait(lock, [this] {
    return !running_.load(std::memory_order_acquire);
  });
}

void Daemon::request_stop() {
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    // Wakes the blocked accept() with an error; the loop then exits and
    // flips running_.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
}

void Daemon::stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  running_.store(false, std::memory_order_release);
}

#else  // !(__unix__ || __APPLE__)

void Daemon::start() {
  GEARSIM_REQUIRE(false, "gearsim daemon requires AF_UNIX sockets");
}
void Daemon::accept_loop() {}
void Daemon::serve_connection(int) {}
void Daemon::wait() {}
void Daemon::request_stop() {}
void Daemon::stop() {}

#endif

}  // namespace gearsim::serve
