file(REMOVE_RECURSE
  "libgearsim_serve.a"
)
