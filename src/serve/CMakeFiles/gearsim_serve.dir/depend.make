# Empty dependencies file for gearsim_serve.
# This may be replaced when dependencies are built.
