file(REMOVE_RECURSE
  "CMakeFiles/gearsim_serve.dir/client.cpp.o"
  "CMakeFiles/gearsim_serve.dir/client.cpp.o.d"
  "CMakeFiles/gearsim_serve.dir/daemon.cpp.o"
  "CMakeFiles/gearsim_serve.dir/daemon.cpp.o.d"
  "CMakeFiles/gearsim_serve.dir/protocol.cpp.o"
  "CMakeFiles/gearsim_serve.dir/protocol.cpp.o.d"
  "CMakeFiles/gearsim_serve.dir/service.cpp.o"
  "CMakeFiles/gearsim_serve.dir/service.cpp.o.d"
  "libgearsim_serve.a"
  "libgearsim_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
