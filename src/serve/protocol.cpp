#include "serve/protocol.hpp"

#include <utility>

#include "exec/result_io.hpp"
#include "net/topology.hpp"
#include "util/assert.hpp"

namespace gearsim::serve {

namespace {

/// Positive-int field with a default; throws on non-numbers.
int int_field(const json::Object& obj, std::string_view name, int fallback) {
  const json::Value* v = json::find(obj, name);
  return v == nullptr ? fallback : v->as_int();
}

std::string string_field(const json::Object& obj, std::string_view name,
                         std::string fallback) {
  const json::Value* v = json::find(obj, name);
  return v == nullptr ? std::move(fallback) : v->as_string();
}

const json::Object& ok_payload(const json::Value& response,
                               std::string_view type) {
  GEARSIM_REQUIRE(response.is_object(), "response is not a JSON object");
  const json::Object& obj = response.as_object();
  GEARSIM_REQUIRE(json::field(obj, "status").as_string() == "ok",
                  "response status is not ok");
  GEARSIM_REQUIRE(json::field(obj, "type").as_string() == type,
                  "unexpected response type");
  return obj;
}

}  // namespace

Request parse_request(std::string_view line) {
  const json::Value doc = json::parse(line);
  GEARSIM_REQUIRE(doc.is_object(), "request is not a JSON object");
  const json::Object& obj = doc.as_object();
  Request request;
  request.type = json::field(obj, "type").as_string();
  GEARSIM_REQUIRE(request.type == "run" || request.type == "sweep" ||
                      request.type == "race" || request.type == "stats" ||
                      request.type == "shutdown",
                  "unknown request type: " + request.type);
  request.cluster = string_field(obj, "cluster", request.cluster);
  request.workload = string_field(obj, "workload", request.workload);
  request.nodes = int_field(obj, "nodes", request.nodes);
  request.gear = int_field(obj, "gear", request.gear);
  request.rep = int_field(obj, "rep", request.rep);
  request.repeat = int_field(obj, "repeat", request.repeat);
  request.topology = string_field(obj, "topology", request.topology);
  GEARSIM_REQUIRE(request.nodes > 0, "nodes must be positive");
  GEARSIM_REQUIRE(request.gear > 0, "gear labels are 1-based");
  GEARSIM_REQUIRE(request.rep >= 0, "rep must be non-negative");
  GEARSIM_REQUIRE(request.repeat > 0, "repeat must be positive");
  if (!request.topology.empty()) {
    // Canonicalize (and validate) the spec so queries that spell the
    // same shape differently coalesce on one supervisor and cache key.
    request.topology = net::to_spec(net::parse_topology(request.topology));
    if (request.topology == "flat") request.topology.clear();
  }
  return request;
}

std::string render_request(const Request& request) {
  // All present fields always render (sorted keys): a request's
  // canonical line is unique, which keeps logs and tests diffable.
  // `topology` renders only when set, so every pre-topology request
  // line is preserved byte for byte.
  return "{\"cluster\":" + json::jstr(request.cluster) +
         ",\"gear\":" + std::to_string(request.gear) +
         ",\"nodes\":" + std::to_string(request.nodes) +
         ",\"rep\":" + std::to_string(request.rep) +
         ",\"repeat\":" + std::to_string(request.repeat) +
         (request.topology.empty()
              ? std::string()
              : ",\"topology\":" + json::jstr(request.topology)) +
         ",\"type\":" + json::jstr(request.type) +
         ",\"workload\":" + json::jstr(request.workload) + "}";
}

std::string run_response(const Request& request,
                         const cluster::RunResult& result) {
  return "{\"cluster\":" + json::jstr(request.cluster) +
         ",\"gear\":" + std::to_string(request.gear) +
         ",\"nodes\":" + std::to_string(request.nodes) +
         ",\"rep\":" + std::to_string(request.rep) +
         ",\"results\":[" + exec::to_json(result) +
         "],\"status\":\"ok\"" +
         (request.topology.empty()
              ? std::string()
              : ",\"topology\":" + json::jstr(request.topology)) +
         ",\"type\":\"run\",\"workload\":" + json::jstr(request.workload) +
         "}";
}

std::string sweep_response(const Request& request,
                           const std::vector<cluster::RunResult>& results) {
  std::string body;
  for (const cluster::RunResult& r : results) {
    if (!body.empty()) body += ',';
    body += exec::to_json(r);
  }
  return "{\"cluster\":" + json::jstr(request.cluster) +
         ",\"nodes\":" + std::to_string(request.nodes) +
         ",\"repeat\":" + std::to_string(request.repeat) + ",\"results\":[" +
         body + "],\"status\":\"ok\"" +
         (request.topology.empty()
              ? std::string()
              : ",\"topology\":" + json::jstr(request.topology)) +
         ",\"type\":\"sweep\",\"workload\":" + json::jstr(request.workload) +
         "}";
}

std::string race_response(const Request& request,
                          const policy::Evaluation& eval) {
  std::string statics;
  for (const cluster::RunResult& r : eval.static_runs) {
    if (!statics.empty()) statics += ',';
    statics += exec::to_json(r);
  }
  std::string policies;
  for (const policy::PolicyRow& row : eval.policies) {
    if (!policies.empty()) policies += ',';
    policies += "{\"name\":" + json::jstr(row.name) +
                ",\"result\":" + exec::to_json(row.result) +
                ",\"signature\":" + json::jstr(row.signature) + "}";
  }
  return "{\"cluster\":" + json::jstr(request.cluster) +
         ",\"nodes\":" + std::to_string(request.nodes) + ",\"policies\":[" +
         policies + "],\"static\":[" + statics + "],\"status\":\"ok\"" +
         (request.topology.empty()
              ? std::string()
              : ",\"topology\":" + json::jstr(request.topology)) +
         ",\"type\":\"race\",\"workload\":" + json::jstr(request.workload) +
         "}";
}

std::string shutdown_response() {
  return "{\"status\":\"ok\",\"type\":\"shutdown\"}";
}

std::string rejected_response(int retry_after_ms) {
  return "{\"retry_after_ms\":" + std::to_string(retry_after_ms) +
         ",\"status\":\"rejected\"}";
}

std::string error_response(std::string_view message) {
  return "{\"error\":" + json::jstr(message) + ",\"status\":\"error\"}";
}

std::vector<cluster::RunResult> results_from_response(
    const json::Value& response) {
  GEARSIM_REQUIRE(response.is_object(), "response is not a JSON object");
  const json::Object& obj = response.as_object();
  GEARSIM_REQUIRE(json::field(obj, "status").as_string() == "ok",
                  "response status is not ok");
  const std::string& type = json::field(obj, "type").as_string();
  GEARSIM_REQUIRE(type == "sweep" || type == "run",
                  "response carries no results array");
  std::vector<cluster::RunResult> results;
  for (const json::Value& r : json::field(obj, "results").as_array()) {
    // json::render re-emits the embedded object byte-exactly (numbers
    // keep their raw tokens), so the decode is bit-identical to parsing
    // the daemon's own serialization.
    results.push_back(exec::result_from_json(json::render(r)));
  }
  return results;
}

policy::Evaluation evaluation_from_response(const json::Value& response) {
  const json::Object& obj = ok_payload(response, "race");
  std::vector<cluster::RunResult> statics;
  for (const json::Value& r : json::field(obj, "static").as_array()) {
    statics.push_back(exec::result_from_json(json::render(r)));
  }
  std::vector<policy::PolicyRun> runs;
  for (const json::Value& p : json::field(obj, "policies").as_array()) {
    const json::Object& row = p.as_object();
    policy::PolicyRun run;
    run.name = json::field(row, "name").as_string();
    run.signature = json::field(row, "signature").as_string();
    run.result =
        exec::result_from_json(json::render(json::field(row, "result")));
    runs.push_back(std::move(run));
  }
  const int nodes = json::field(obj, "nodes").as_int();
  return policy::assemble_evaluation(
      json::field(obj, "workload").as_string(), nodes, std::move(statics),
      std::move(runs));
}

}  // namespace gearsim::serve
