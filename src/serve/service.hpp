// The what-if query engine behind the gearsim daemon.
//
// Service answers protocol requests (serve/protocol.hpp) against one
// shared, shard-aware exec::ResultCache.  Three structural guarantees:
//
//  * exactly-once simulation — concurrent identical queries coalesce on
//    an exec::InflightTable: the first claimant of a cache key simulates
//    and publishes, every other claimant blocks for the published result.
//    simulations() exposes the exact count for tests.
//  * bounded admission — cache-miss batches pass an AdmissionGate before
//    touching a worker pool: at most `admit` points simulate at once,
//    at most `queue` more wait, and anything beyond that is *rejected
//    deterministically* with a constant retry_after_ms (backpressure the
//    caller can schedule around, not an error).
//  * byte-identical answers — responses embed exec::to_json(RunResult)
//    verbatim and carry no provenance, so a query answered from the hot
//    LRU, the disk store, a coalesced neighbor, or a cold simulation is
//    the same bytes (tests diff them against a cold `gearsim sweep`).
//
// Thread-safe: handle_line may be called from any number of connection
// threads.  Misses run through exec::SweepSupervisor, so a poisoned
// point fails its own query with a structured error instead of taking
// the daemon down.  See docs/SERVICE.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/inflight.hpp"
#include "exec/result_cache.hpp"
#include "exec/supervisor.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace gearsim::serve {

/// Thrown inside a query when the admission gate turns its miss batch
/// away; handle_line renders it as a rejected response.
class RejectedError : public std::runtime_error {
 public:
  explicit RejectedError(int retry_after)
      : std::runtime_error("admission queue full"),
        retry_after_ms(retry_after) {}

  int retry_after_ms;
};

/// Bounded two-stage admission: `admit` units may be in flight, `queue`
/// more may block waiting, the rest reject immediately.  Units are
/// simulation points, so one 24-point sweep weighs 24 single runs.
class AdmissionGate {
 public:
  struct Options {
    std::size_t admit = 64;
    std::size_t queue = 256;
  };

  struct Stats {
    std::uint64_t admitted = 0;  ///< acquire() calls that ran.
    std::uint64_t queued = 0;    ///< ... of which waited in the queue first.
    std::uint64_t rejected = 0;  ///< acquire() calls turned away.
  };

  explicit AdmissionGate(Options options);

  /// Try to take `n` units; blocks while the queue has room, returns
  /// false (deterministically) when it does not — or when n > admit,
  /// which could never fit: size `admit` to the largest query you serve.
  /// Wake order among queued waiters is not FIFO; the queue bounds
  /// memory and latency, not ordering.
  [[nodiscard]] bool acquire(std::size_t n);
  void release(std::size_t n);

  [[nodiscard]] Stats stats() const;

 private:
  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t in_flight_ = 0;
  std::size_t waiting_ = 0;
  Stats stats_;
};

struct ServiceOptions {
  /// Cache configuration (disk_dir, shard_digits, shard_entry_budget,
  /// capacity).  The metrics slot is cleared: the cache would record
  /// from simulation threads outside the service's metrics mutex, and
  /// its integrity counters are served from CacheStats anyway.
  exec::ResultCache::Options cache;
  /// Warm-start the memory tier from the disk store at construction.
  bool preload = false;
  /// Worker threads per miss batch (exec::SweepOptions::jobs).
  int jobs = 0;
  /// Engine threads per simulated point.
  int engine_threads = 0;
  /// Extra attempts for transiently-failing points (supervisor
  /// max_attempts = 1 + retries).
  int retries = 0;
  AdmissionGate::Options admission;
  /// Constant backpressure hint in rejected responses.
  int retry_after_ms = 250;
  /// Record wall-domain latency histograms (serve.* metrics).
  bool wall_profile = false;
};

class Service {
 public:
  explicit Service(ServiceOptions options);

  /// One request line in, one response line out (no trailing newline).
  /// Never throws: failures become error/rejected responses.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// True once a shutdown request has been answered; the daemon's accept
  /// loop watches this.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Exact number of simulations executed since construction: total
  /// cache misses minus the service's own pre-claim probes.  The dedup
  /// invariant under test: N concurrent identical queries leave this at
  /// one batch's worth.
  [[nodiscard]] std::uint64_t simulations() const;

  [[nodiscard]] exec::ResultCache& cache() { return cache_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  [[nodiscard]] AdmissionGate::Stats admission_stats() const {
    return gate_.stats();
  }
  [[nodiscard]] exec::InflightTable::Stats inflight_stats() const {
    return inflight_.stats();
  }

 private:
  /// Run one query's point list to completion through the dedup table,
  /// the admission gate and the supervised runner.  Results in request
  /// order.  Throws RejectedError on backpressure, std::runtime_error on
  /// simulation/validation failure.
  std::vector<cluster::RunResult> run_points(
      const Request& request, const std::vector<exec::SweepPoint>& points);

  /// The lazily-built supervised runner for one (cluster, topology)
  /// configuration — the request's canonical topology spec is part of
  /// the map key, so routed and flat queries never share a runner.
  const exec::SweepSupervisor& supervisor_for(const Request& request);

  [[nodiscard]] std::string handle_request(const Request& request);
  [[nodiscard]] std::string stats_response();

  ServiceOptions options_;
  exec::ResultCache cache_;
  exec::InflightTable inflight_;
  AdmissionGate gate_;
  std::atomic<bool> shutdown_{false};

  std::mutex supervisors_mutex_;
  std::map<std::string, std::unique_ptr<exec::SweepSupervisor>> supervisors_;

  std::atomic<std::uint64_t> outer_hits_{0};
  std::atomic<std::uint64_t> outer_misses_{0};

  /// MetricsRegistry is not thread-safe; all access goes through
  /// metrics_mutex_.  Wall domain only — the service has no sim-domain
  /// state of its own.
  std::mutex metrics_mutex_;
  obs::MetricsRegistry metrics_;
};

}  // namespace gearsim::serve
