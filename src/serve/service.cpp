#include "serve/service.hpp"

#include <chrono>
#include <numeric>
#include <utility>

#include "exec/store.hpp"
#include "util/assert.hpp"
#include "workloads/registry.hpp"

namespace gearsim::serve {

namespace {

/// Same mapping as the CLI's --cluster flag.
cluster::ClusterConfig cluster_by_name(const std::string& name) {
  if (name == "athlon") return cluster::athlon_cluster();
  if (name == "sun") return cluster::sun_cluster();
  if (name == "xeon") return cluster::xeon_cluster();
  throw ContractError("unknown cluster: " + name +
                      " (expected athlon, sun, or xeon)");
}

std::string u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

AdmissionGate::AdmissionGate(Options options) : options_(options) {
  GEARSIM_REQUIRE(options_.admit > 0, "admission capacity must be positive");
}

bool AdmissionGate::acquire(std::size_t n) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Oversized batches can never fit; rejecting them outright keeps the
  // wait below free of a waiter that starves forever.
  if (n > options_.admit) {
    ++stats_.rejected;
    return false;
  }
  if (in_flight_ + n <= options_.admit && waiting_ == 0) {
    in_flight_ += n;
    ++stats_.admitted;
    return true;
  }
  if (waiting_ + n > options_.queue) {
    ++stats_.rejected;
    return false;
  }
  waiting_ += n;
  cv_.wait(lock, [&] { return in_flight_ + n <= options_.admit; });
  waiting_ -= n;
  in_flight_ += n;
  ++stats_.admitted;
  ++stats_.queued;
  return true;
}

void AdmissionGate::release(std::size_t n) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    in_flight_ -= n;
  }
  cv_.notify_all();
}

AdmissionGate::Stats AdmissionGate::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      cache_([this] {
        exec::ResultCache::Options c = options_.cache;
        c.metrics = nullptr;  // See ServiceOptions::cache.
        return c;
      }()),
      gate_(options_.admission),
      metrics_(options_.wall_profile) {
  if (options_.preload) cache_.preload();
}

const exec::SweepSupervisor& Service::supervisor_for(const Request& request) {
  // One runner per simulated configuration: the canonical topology spec
  // joins the cluster name in the key ('|' cannot occur in either).
  const std::string key = request.cluster + "|" + request.topology;
  const std::lock_guard<std::mutex> lock(supervisors_mutex_);
  auto it = supervisors_.find(key);
  if (it == supervisors_.end()) {
    exec::SweepOptions sweep;
    sweep.jobs = options_.jobs;
    sweep.cache = &cache_;
    sweep.engine_threads = options_.engine_threads;
    exec::SupervisorOptions sup;
    sup.max_attempts = 1 + std::max(0, options_.retries);
    cluster::ClusterConfig config = cluster_by_name(request.cluster);
    if (!request.topology.empty()) {
      cluster::install_topology(&config,
                                net::parse_topology(request.topology));
    }
    it = supervisors_
             .emplace(key, std::make_unique<exec::SweepSupervisor>(
                               std::move(config), sweep, sup))
             .first;
  }
  return *it->second;
}

std::vector<cluster::RunResult> Service::run_points(
    const Request& request, const std::vector<exec::SweepPoint>& points) {
  const exec::SweepSupervisor& supervisor = supervisor_for(request);
  const exec::SweepRunner& runner = supervisor.runner();
  // Validate the whole list up front: a bad coordinate is the *query's*
  // error and must fail before any claim or admission side effect.
  for (const exec::SweepPoint& p : points) runner.validate_point(p);

  const std::size_t n = points.size();
  std::vector<exec::CacheKey> keys;
  keys.reserve(n);
  for (const exec::SweepPoint& p : points) keys.push_back(runner.point_key(p));

  std::vector<std::optional<cluster::RunResult>> results(n);
  std::vector<std::size_t> pending(n);
  std::iota(pending.begin(), pending.end(), std::size_t{0});

  struct Claim {
    std::size_t index;
    exec::InflightTable::Ticket ticket;
  };

  // Rounds: each pass probes the cache, splits the still-missing points
  // into leaders (this query simulates them) and followers (another
  // in-flight query already is), and re-enters only points whose leader
  // abandoned (e.g. it was rejected at admission).
  while (!pending.empty()) {
    std::vector<Claim> leaders;
    std::vector<Claim> followers;
    for (const std::size_t idx : pending) {
      if (auto hit = cache_.lookup(keys[idx])) {
        outer_hits_.fetch_add(1, std::memory_order_relaxed);
        results[idx] = std::move(*hit);
        continue;
      }
      outer_misses_.fetch_add(1, std::memory_order_relaxed);
      exec::InflightTable::Ticket ticket = inflight_.claim(keys[idx].text);
      (ticket.leader ? leaders : followers)
          .push_back(Claim{idx, std::move(ticket)});
    }
    pending.clear();

    if (!leaders.empty()) {
      if (!gate_.acquire(leaders.size())) {
        // Settle our claims before rejecting, so followers coalesced on
        // them re-enter their own race instead of blocking forever.
        for (const Claim& c : leaders) {
          inflight_.abandon(keys[c.index].text, c.ticket);
        }
        throw RejectedError(options_.retry_after_ms);
      }
      std::vector<exec::SweepPoint> batch;
      batch.reserve(leaders.size());
      for (const Claim& c : leaders) batch.push_back(points[c.index]);
      exec::SweepOutcome outcome;
      try {
        outcome = supervisor.run(batch);
      } catch (...) {
        for (const Claim& c : leaders) {
          inflight_.fail(keys[c.index].text, c.ticket,
                         "simulation batch failed");
        }
        gate_.release(leaders.size());
        throw;
      }
      gate_.release(leaders.size());

      std::string first_error;
      for (std::size_t i = 0; i < leaders.size(); ++i) {
        const Claim& c = leaders[i];
        if (outcome.results[i].has_value()) {
          // The runner already inserted into the cache; publishing wakes
          // the followers with the same bytes a cache hit would serve.
          inflight_.publish(keys[c.index].text, c.ticket,
                            *outcome.results[i]);
          results[c.index] = std::move(outcome.results[i]);
          continue;
        }
        std::string error = "point failed";
        for (const exec::JobFailure& f : outcome.failures) {
          if (f.index == i) {
            error = f.error;
            break;
          }
        }
        inflight_.fail(keys[c.index].text, c.ticket, error);
        if (first_error.empty()) first_error = error;
      }
      if (!first_error.empty()) throw SimulationError(first_error);
    }

    for (const Claim& c : followers) {
      const exec::InflightTable::WaitResult w = inflight_.wait(c.ticket);
      switch (w.outcome) {
        case exec::InflightTable::Outcome::kReady:
          results[c.index] = *w.result;
          break;
        case exec::InflightTable::Outcome::kFailed:
          throw SimulationError(w.error);
        case exec::InflightTable::Outcome::kAbandoned:
          pending.push_back(c.index);
          break;
      }
    }
  }

  std::vector<cluster::RunResult> out;
  out.reserve(n);
  for (std::optional<cluster::RunResult>& r : results) {
    out.push_back(std::move(*r));
  }
  return out;
}

std::string Service::handle_request(const Request& request) {
  if (request.type == "stats") return stats_response();
  if (request.type == "shutdown") {
    shutdown_.store(true, std::memory_order_release);
    return shutdown_response();
  }

  const cluster::ClusterConfig config = cluster_by_name(request.cluster);
  const auto workload = workloads::make_workload(request.workload);

  if (request.type == "run") {
    const std::vector<exec::SweepPoint> points{exec::SweepPoint{
        workload.get(), request.nodes,
        static_cast<std::size_t>(request.gear - 1), request.rep}};
    return run_response(request, run_points(request, points)[0]);
  }

  if (request.type == "sweep") {
    // Same flat gears x reps order as `gearsim sweep`.
    std::vector<exec::SweepPoint> points;
    points.reserve(config.gears.size() *
                   static_cast<std::size_t>(request.repeat));
    for (std::size_t g = 0; g < config.gears.size(); ++g) {
      for (int rep = 0; rep < request.repeat; ++rep) {
        points.push_back(
            exec::SweepPoint{workload.get(), request.nodes, g, rep});
      }
    }
    return sweep_response(request, run_points(request, points));
  }

  GEARSIM_REQUIRE(request.type == "race",
                  "unhandled request type: " + request.type);
  // Phase 1: the static curve (the roster derives from its ladder).
  std::vector<exec::SweepPoint> static_points;
  static_points.reserve(config.gears.size());
  for (std::size_t g = 0; g < config.gears.size(); ++g) {
    static_points.push_back(
        exec::SweepPoint{workload.get(), request.nodes, g, 0});
  }
  std::vector<cluster::RunResult> statics =
      run_points(request, static_points);
  // Phase 2: the adaptive roster — the exact lineup `gearsim policy`
  // races (policy::policy_roster), through the same dedup/admission
  // path, so races coalesce with each other and with sweeps.
  const std::vector<policy::RosterEntry> roster =
      policy::policy_roster(config, statics, policy::PolicyEvaluator::Options{});
  std::vector<exec::SweepPoint> policy_points;
  policy_points.reserve(roster.size());
  for (const policy::RosterEntry& entry : roster) {
    policy_points.push_back(exec::SweepPoint{workload.get(), request.nodes, 0,
                                             0, entry.factory.get()});
  }
  const std::vector<cluster::RunResult> runs =
      run_points(request, policy_points);
  std::vector<policy::PolicyRun> rows;
  rows.reserve(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    rows.push_back(policy::PolicyRun{roster[i].name,
                                     roster[i].factory->signature(), runs[i]});
  }
  return race_response(
      request, policy::assemble_evaluation(workload->name(), request.nodes,
                                           std::move(statics),
                                           std::move(rows)));
}

std::string Service::handle_line(const std::string& line) {
  const bool timed = metrics_.wall_profiling();
  const std::chrono::steady_clock::time_point start =
      timed ? std::chrono::steady_clock::now()
            : std::chrono::steady_clock::time_point{};
  std::string type = "invalid";
  std::string response;
  try {
    const Request request = parse_request(line);
    type = request.type;
    response = handle_request(request);
  } catch (const RejectedError& e) {
    response = rejected_response(e.retry_after_ms);
  } catch (const std::exception& e) {
    response = error_response(e.what());
  }
  if (timed) {
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.wall_counter("serve.requests." + type)->add(1);
    metrics_
        .wall_histogram("serve.query.seconds." + type,
                        {0.001, 0.01, 0.1, 1.0, 10.0})
        ->observe(elapsed);
  }
  return response;
}

std::uint64_t Service::simulations() const {
  // Every service-level probe of a missing key counts one cache miss
  // (outer_misses_) and every point the supervised runner dispatches
  // counts exactly one more (its phase-1 probe; retries never re-probe).
  // The difference is therefore the number of points that reached the
  // simulator — the exactly-once invariant the soak test asserts.
  const std::uint64_t total = cache_.stats().misses;
  const std::uint64_t outer = outer_misses_.load(std::memory_order_relaxed);
  return total > outer ? total - outer : 0;
}

std::string Service::stats_response() {
  const exec::CacheStats cache = cache_.stats();
  const AdmissionGate::Stats gate = gate_.stats();
  const exec::InflightTable::Stats inflight = inflight_.stats();

  std::string out = "{\"cache\":{";
  out += "\"corrupt\":" + u64(cache.corrupt);
  out += ",\"disk_evictions\":" + u64(cache.disk_evictions);
  out += ",\"disk_hits\":" + u64(cache.disk_hits);
  out += ",\"evictions\":" + u64(cache.evictions);
  out += ",\"hits\":" + u64(cache.hits);
  out += ",\"insertions\":" + u64(cache.insertions);
  out += ",\"misses\":" + u64(cache.misses);
  out += ",\"preloaded\":" + u64(cache.preloaded);
  out += ",\"quarantined\":" + u64(cache.quarantined);
  out += ",\"stale_tmp_swept\":" + u64(cache.stale_tmp_swept);
  out += "},\"gate\":{";
  out += "\"admitted\":" + u64(gate.admitted);
  out += ",\"queued\":" + u64(gate.queued);
  out += ",\"rejected\":" + u64(gate.rejected);
  out += "},\"inflight\":{";
  out += "\"abandoned\":" + u64(inflight.abandoned);
  out += ",\"coalesced\":" + u64(inflight.coalesced);
  out += ",\"failed\":" + u64(inflight.failed);
  out += ",\"leaders\":" + u64(inflight.leaders);
  out += ",\"open\":" + u64(inflight_.open());
  out += ",\"published\":" + u64(inflight.published);
  out += "},\"metrics\":";
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    out += metrics_.snapshot().to_json(obs::Domain::kWall);
  }
  out += ",\"service\":{";
  out += "\"outer_hits\":" +
         u64(outer_hits_.load(std::memory_order_relaxed));
  out += ",\"outer_misses\":" +
         u64(outer_misses_.load(std::memory_order_relaxed));
  out += ",\"simulations\":" + u64(simulations());
  out += "},\"shards\":[";
  if (!options_.cache.disk_dir.empty()) {
    const exec::StoreStats stats = exec::store_stats(options_.cache.disk_dir);
    bool first = true;
    for (const exec::ShardStats& shard : stats.shards) {
      if (!first) out += ',';
      first = false;
      out += "{\"bytes\":" + u64(shard.bytes);
      out += ",\"entries\":" + u64(shard.entries);
      out += ",\"evictions\":" + u64(shard.evictions);
      out += ",\"name\":" + json::jstr(shard.name);
      out += ",\"quarantined\":" + u64(shard.quarantined) + "}";
    }
  }
  out += "],\"status\":\"ok\",\"type\":\"stats\"}";
  return out;
}

}  // namespace gearsim::serve
