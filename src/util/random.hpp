// Deterministic pseudo-random number generation.
//
// xoshiro256++ seeded via splitmix64: fast, high quality, and — unlike
// std::mt19937 + std::*_distribution — bit-reproducible across standard
// library implementations, which the regression tests rely on.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "util/assert.hpp"

namespace gearsim {

/// xoshiro256++ engine.  Copyable value type; each simulation entity that
/// needs randomness owns its own engine derived from the run seed, so
/// adding randomness to one component never perturbs another.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the 64-bit seed into 256 bits of state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Derive an independent stream (e.g. one per MPI rank).
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    return Rng(state_[0] ^ (0xd1342543de82ef95ULL * (stream + 1)));
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    GEARSIM_REQUIRE(n > 0, "below(0) is meaningless");
    // Lemire's nearly-divisionless method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (no cached second value: determinism
  /// beats the extra transcendental here).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace gearsim
