#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace gearsim {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  GEARSIM_REQUIRE(count_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  GEARSIM_REQUIRE(count_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  GEARSIM_REQUIRE(count_ > 0, "max of empty sample");
  return max_;
}

namespace {

/// Shared core: OLS of y against a precomputed basis vector.
LinearFit ols(std::span<const double> basis, std::span<const double> y) {
  const auto n = static_cast<double>(y.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    sx += basis[i];
    sy += y[i];
    sxx += basis[i] * basis[i];
    sxy += basis[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  const bool degenerate =
      std::abs(denom) < 1e-12 * std::max(1.0, n * sxx);
  LinearFit fit;
  if (degenerate) {
    // Degenerate basis (all x equal, or the constant shape): best constant.
    fit.slope = 0.0;
    fit.intercept = sy / n;
  } else {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  }
  double rss = 0, tss = 0;
  const double ybar = sy / n;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * basis[i]);
    rss += r * r;
    const double t = y[i] - ybar;
    tss += t * t;
  }
  fit.rss = rss;
  fit.r_squared = (tss > 0.0) ? std::max(0.0, 1.0 - rss / tss)
                              : (rss <= 1e-12 ? 1.0 : 0.0);
  // Coefficient standard errors: sigma^2 = RSS / (n - 2); the constant
  // (degenerate) case has one parameter, sigma^2 = RSS / (n - 1).
  if (degenerate) {
    if (y.size() >= 2) {
      fit.stderr_intercept = std::sqrt(rss / (n - 1.0) / n);
    }
  } else if (y.size() >= 3) {
    const double sigma2 = rss / (n - 2.0);
    const double sxx_centered = sxx - sx * sx / n;
    fit.stderr_slope = std::sqrt(sigma2 / sxx_centered);
    fit.stderr_intercept =
        std::sqrt(sigma2 * (1.0 / n + (sx / n) * (sx / n) / sxx_centered));
  }
  return fit;
}

}  // namespace

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  GEARSIM_REQUIRE(x.size() == y.size(), "x/y length mismatch");
  GEARSIM_REQUIRE(x.size() >= 2, "need at least two points for a line");
  return ols(x, y);
}

LinearFit fit_constant(std::span<const double> y) {
  GEARSIM_REQUIRE(!y.empty(), "fit_constant of empty sample");
  std::vector<double> zeros(y.size(), 0.0);
  return ols(zeros, y);
}

std::string to_string(ScalingShape s) {
  switch (s) {
    case ScalingShape::kConstant: return "constant";
    case ScalingShape::kLogarithmic: return "logarithmic";
    case ScalingShape::kLinear: return "linear";
    case ScalingShape::kQuadratic: return "quadratic";
  }
  return "?";
}

double shape_basis(ScalingShape s, double x) {
  switch (s) {
    case ScalingShape::kConstant: return 0.0;
    case ScalingShape::kLogarithmic: return std::log(x);
    case ScalingShape::kLinear: return x;
    case ScalingShape::kQuadratic: return x * x;
  }
  return 0.0;
}

double ShapeFit::at(double x) const { return a + b * shape_basis(shape, x); }

ShapeFit fit_shape(ScalingShape s, std::span<const double> x,
                   std::span<const double> y) {
  GEARSIM_REQUIRE(x.size() == y.size(), "x/y length mismatch");
  GEARSIM_REQUIRE(!x.empty(), "fit_shape of empty sample");
  if (s == ScalingShape::kLogarithmic) {
    for (double xi : x) GEARSIM_REQUIRE(xi > 0.0, "log shape needs x > 0");
  }
  std::vector<double> basis(x.size());
  std::transform(x.begin(), x.end(), basis.begin(),
                 [s](double xi) { return shape_basis(s, xi); });
  const LinearFit lf = ols(basis, y);
  ShapeFit sf;
  sf.shape = s;
  sf.a = lf.intercept;
  sf.b = lf.slope;
  sf.r_squared = lf.r_squared;
  sf.rss = lf.rss;
  return sf;
}

std::vector<ShapeFit> classify_shape(std::span<const double> x,
                                     std::span<const double> y,
                                     double improvement) {
  GEARSIM_REQUIRE(x.size() == y.size() && x.size() >= 3,
                  "classification needs at least three (n, T) points");
  std::vector<ShapeFit> fits;
  for (auto s : {ScalingShape::kConstant, ScalingShape::kLogarithmic,
                 ScalingShape::kLinear, ScalingShape::kQuadratic}) {
    fits.push_back(fit_shape(s, x, y));
  }
  const double const_rss = fits[0].rss;
  // Stable sort by RSS; then apply parsimony: if nothing beats the constant
  // model by the required margin, the constant model leads.
  std::stable_sort(fits.begin(), fits.end(),
                   [](const ShapeFit& a, const ShapeFit& b) {
                     return a.rss < b.rss;
                   });
  if (fits.front().shape != ScalingShape::kConstant &&
      fits.front().rss > (1.0 - improvement) * const_rss) {
    auto it = std::find_if(fits.begin(), fits.end(), [](const ShapeFit& f) {
      return f.shape == ScalingShape::kConstant;
    });
    std::rotate(fits.begin(), it, it + 1);
  }
  return fits;
}

double mean_of(std::span<const double> v) {
  GEARSIM_REQUIRE(!v.empty(), "mean of empty span");
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double LinearFit::prediction_stderr(double x) const {
  // Var(a + b x) = Var(a) + x^2 Var(b) + 2x Cov(a,b); with centered OLS
  // Cov(a,b) = -xbar * Var(b).  We did not retain xbar, so approximate
  // with the conservative no-covariance bound (exact for xbar = 0 and an
  // upper bound otherwise).
  return std::sqrt(stderr_intercept * stderr_intercept +
                   x * x * stderr_slope * stderr_slope);
}

double rel_diff(double a, double b) {
  GEARSIM_REQUIRE(b != 0.0, "relative difference against zero");
  return (a - b) / b;
}

}  // namespace gearsim
