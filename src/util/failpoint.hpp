// Deterministic fault-injection points ("failpoints") for testing the
// robustness machinery itself.
//
// A failpoint is a named hook compiled into a production code path (the
// sweep supervisor, the result-store write path, ExperimentRunner::run).
// Disarmed — the default — a visit costs one relaxed atomic load and
// nothing else.  Armed (programmatically or via the GEARSIM_FAILPOINTS
// environment variable), the hook fires on a deterministic schedule and
// the call site injects the corresponding failure: throw on job N,
// truncate the next store write, skip the atomic rename.  Tests exercise
// crash/retry/quarantine paths on exact, reproducible schedules instead
// of relying on real faults to happen.
//
// Two addressing modes share one spec:
//
//  * visit mode — the call site passes no index; firing is counted per
//    visit in arrival order (serial paths: store writes, CLI runs);
//  * index mode — the call site passes a stable identifier (the sweep
//    job index); firing depends only on that index, so the schedule is
//    deterministic under any worker count and claim order.
//
// See docs/RESILIENCE.md for the wired-in failpoint names.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gearsim::util {

/// When and how often an armed failpoint fires.  All counting is per
/// *stream*: visits with the same caller-supplied index (or all visits,
/// in visit mode) share one skip/times budget.
struct FailpointSpec {
  /// Index mode: fire only for these caller-supplied indices (empty =
  /// fire for any index, including visit-mode calls).
  std::vector<std::int64_t> indices;
  /// Visits of a stream to let pass before the first fire.
  std::uint64_t skip = 0;
  /// Maximum fires per stream; -1 = unlimited.
  std::int64_t times = 1;
  /// After `skip`, fire every Nth eligible visit (1 = consecutively).
  std::uint64_t every = 1;
  /// Opaque payload handed back to the call site (an errno, a byte
  /// count, a sleep in milliseconds — the site documents its meaning).
  std::int64_t arg = 0;
};

/// Registry of armed failpoints.  Thread-safe; a process-wide instance
/// lives behind global().  Tests normally arm through ScopedFailpoint so
/// a failing test cannot leak an armed point into its neighbours.
class Failpoints {
 public:
  /// The process-wide registry.  First use parses GEARSIM_FAILPOINTS
  /// ("name[@i1,i2][=skip[:times[:arg[:every]]]];..." — arm_from_string).
  static Failpoints& global();

  void arm(const std::string& name, FailpointSpec spec);
  void disarm(const std::string& name);
  void clear();
  [[nodiscard]] bool armed(const std::string& name) const;

  /// Visit `name`: returns the spec's arg when the failpoint fires this
  /// visit, nullopt otherwise (including when it is not armed).
  std::optional<std::int64_t> hit(std::string_view name,
                                  std::int64_t index = -1);

  /// Arm from a ';'-separated list: each item is `name` (defaults: fire
  /// the first visit once), optionally restricted to caller indices with
  /// `name@i1,i2,...` ("throw on job N"), optionally scheduled with
  /// `=skip[:times[:arg[:every]]]`.  Throws ContractError on malformed
  /// input.
  void arm_from_string(const std::string& text);

  /// Number of armed points — the disarmed fast path checks this once.
  [[nodiscard]] std::size_t armed_count() const {
    return armed_.load(std::memory_order_relaxed);
  }

 private:
  struct Stream {
    std::uint64_t visits = 0;
    std::int64_t fired = 0;
  };
  struct State {
    FailpointSpec spec;
    std::map<std::int64_t, Stream> streams;  // keyed by caller index
  };

  mutable std::mutex mutex_;
  std::map<std::string, State, std::less<>> points_;
  std::atomic<std::size_t> armed_{0};
};

/// The call-site hook: one relaxed load when nothing is armed anywhere.
[[nodiscard]] inline std::optional<std::int64_t> failpoint(
    std::string_view name, std::int64_t index = -1) {
  Failpoints& registry = Failpoints::global();
  if (registry.armed_count() == 0) return std::nullopt;
  return registry.hit(name, index);
}

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, FailpointSpec spec)
      : name_(std::move(name)) {
    Failpoints::global().arm(name_, std::move(spec));
  }
  ~ScopedFailpoint() { Failpoints::global().disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace gearsim::util
