// Text and CSV table output for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures as a
// set of aligned-text rows (for the terminal) and optionally CSV (for
// replotting).  This keeps the formatting in one place so all harnesses
// print the same way.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gearsim {

/// Fixed-point formatting helpers used across harness output.
std::string fmt_fixed(double v, int precision);
/// "+4.2%" style; `v` is a fraction (0.042 -> "+4.2%").
std::string fmt_percent(double v, int precision = 1);

/// A simple column-aligned text table.  Columns are declared first; rows
/// must match the column count.  Rendering right-aligns numeric-looking
/// cells and left-aligns the rest.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next row.
  void add_rule();

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace gearsim
