#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace gearsim {

namespace {

std::atomic<LogLevel> g_level{[] {
  if (const char* env = std::getenv("GEARSIM_LOG")) {
    return parse_log_level(env);
  }
  return LogLevel::kWarn;
}()};

std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kWarn;
}

namespace detail {
void emit(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::clog << "[gearsim:" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace gearsim
