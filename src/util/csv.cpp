#include "util/csv.hpp"

#include "util/assert.hpp"

namespace gearsim {

std::string csv_escape(std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          i += 2;
        } else {
          quoted = false;
          ++i;
        }
      } else {
        current += c;
        ++i;
      }
    } else if (c == '"' && current.empty()) {
      quoted = true;
      ++i;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
    } else {
      current += c;
      ++i;
    }
  }
  GEARSIM_REQUIRE(!quoted, "unterminated quoted CSV field");
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace gearsim
