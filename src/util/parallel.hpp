// Ordered parallel-for over independent work items.
//
// The sweep layer (cluster::ExperimentRunner, exec::SweepRunner) fans
// embarrassingly-parallel simulation points out over a fixed pool of
// worker threads.  Determinism contract: `fn(i)` must be a pure function
// of `i` and of state that no other item mutates — every simulation point
// derives its RNG streams from its own (config, point) tuple, never from
// an Rng shared across items — so the results are bit-identical for any
// worker count and any scheduling order.  parallel_for_ordered only
// decides *where* each item runs, never *what* it computes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gearsim {

/// Default worker count for sweep fan-out: the GEARSIM_SWEEP_JOBS
/// environment variable when set to a positive integer, else 1 (serial).
/// Serial-by-default keeps library entry points free of surprise threads;
/// CLI/bench front ends pass an explicit job count instead.
int default_jobs();

/// Clamp a requested job count: 0 means "use default_jobs()", negative
/// means "use the hardware concurrency".
int resolve_jobs(int jobs);

/// Default worker count for the parallel DES engine (sim::ParallelEngine):
/// the GEARSIM_ENGINE_THREADS environment variable when set to a positive
/// integer, else 1 (serial).  Distinct from GEARSIM_SWEEP_JOBS — sweeps
/// parallelize across independent simulations, the engine parallelizes
/// inside one.
int default_engine_threads();

/// Clamp a requested engine-thread count: 0 means "use
/// default_engine_threads()", negative means "use the hardware
/// concurrency".
int resolve_engine_threads(int threads);

/// Run fn(0) .. fn(n-1) across at most `jobs` worker threads.  Items are
/// claimed from an atomic counter, so completion order is arbitrary, but
/// callers index their output arrays by `i`, which restores request
/// order.  `jobs <= 1` (after resolve_jobs) runs everything inline on the
/// calling thread in index order.
///
/// Failure semantics: the first exception stops workers from *claiming*
/// further items (already-claimed items run to completion), every worker
/// is joined, and then the exception from the lowest-index failing item
/// is rethrown on the calling thread.  Because items are claimed in
/// index order, the rethrown exception is exactly the one a serial loop
/// would have hit first; items above the failing range may be skipped.
/// Nothing runs — and nothing writes into caller state — after the
/// rethrow, so the caller may immediately reuse its buffers or call
/// parallel_for_ordered again (per-job isolation with no abort lives a
/// level up, in exec::SweepSupervisor).
void parallel_for_ordered(int jobs, std::size_t n,
                          const std::function<void(std::size_t)>& fn);

/// A persistent fork-join worker pool for repeated rounds over the same
/// thread set.  parallel_for_ordered spawns and joins threads per call —
/// fine for sweeps whose items run for milliseconds, ruinous for the
/// parallel DES engine, which synchronizes partitions every few hundred
/// microseconds of simulated time.  WorkerPool keeps `threads - 1`
/// members parked on a condition variable between rounds; the calling
/// thread participates as worker 0, so `threads == 1` degenerates to a
/// plain inline call with no threads at all.
///
/// Failure semantics mirror parallel_for_ordered: every worker finishes
/// its round before run() returns, and the exception from the
/// lowest-indexed failing worker is rethrown on the calling thread — a
/// deterministic pick whenever each worker's computation is itself
/// deterministic.
class WorkerPool {
 public:
  /// `threads >= 1` total workers (including the calling thread).
  explicit WorkerPool(int threads);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  [[nodiscard]] int threads() const { return threads_; }

  /// Run fn(0) .. fn(threads()-1), one call per worker, concurrently.
  /// Blocks until every worker has returned (or thrown); not reentrant.
  void run(const std::function<void(int)>& fn);

 private:
  void worker_main(int id);

  int threads_;
  std::vector<std::thread> members_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace gearsim
