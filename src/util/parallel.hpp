// Ordered parallel-for over independent work items.
//
// The sweep layer (cluster::ExperimentRunner, exec::SweepRunner) fans
// embarrassingly-parallel simulation points out over a fixed pool of
// worker threads.  Determinism contract: `fn(i)` must be a pure function
// of `i` and of state that no other item mutates — every simulation point
// derives its RNG streams from its own (config, point) tuple, never from
// an Rng shared across items — so the results are bit-identical for any
// worker count and any scheduling order.  parallel_for_ordered only
// decides *where* each item runs, never *what* it computes.
#pragma once

#include <cstddef>
#include <functional>

namespace gearsim {

/// Default worker count for sweep fan-out: the GEARSIM_SWEEP_JOBS
/// environment variable when set to a positive integer, else 1 (serial).
/// Serial-by-default keeps library entry points free of surprise threads;
/// CLI/bench front ends pass an explicit job count instead.
int default_jobs();

/// Clamp a requested job count: 0 means "use default_jobs()", negative
/// means "use the hardware concurrency".
int resolve_jobs(int jobs);

/// Run fn(0) .. fn(n-1) across at most `jobs` worker threads.  Items are
/// claimed from an atomic counter, so completion order is arbitrary, but
/// callers index their output arrays by `i`, which restores request
/// order.  `jobs <= 1` (after resolve_jobs) runs everything inline on the
/// calling thread in index order.
///
/// Failure semantics: the first exception stops workers from *claiming*
/// further items (already-claimed items run to completion), every worker
/// is joined, and then the exception from the lowest-index failing item
/// is rethrown on the calling thread.  Because items are claimed in
/// index order, the rethrown exception is exactly the one a serial loop
/// would have hit first; items above the failing range may be skipped.
/// Nothing runs — and nothing writes into caller state — after the
/// rethrow, so the caller may immediately reuse its buffers or call
/// parallel_for_ordered again (per-job isolation with no abort lives a
/// level up, in exec::SweepSupervisor).
void parallel_for_ordered(int jobs, std::size_t n,
                          const std::function<void(std::size_t)>& fn);

}  // namespace gearsim
