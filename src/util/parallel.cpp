#include "util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace gearsim {

int default_jobs() {
  const char* env = std::getenv("GEARSIM_SWEEP_JOBS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 1 ||
      parsed > std::numeric_limits<int>::max()) {
    return 1;
  }
  return static_cast<int>(parsed);
}

int resolve_jobs(int jobs) {
  if (jobs == 0) return default_jobs();
  if (jobs < 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return jobs;
}

void parallel_for_ordered(int jobs, std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  GEARSIM_REQUIRE(fn != nullptr, "parallel_for_ordered needs a body");
  jobs = resolve_jobs(jobs);
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), n);
  std::atomic<std::size_t> next{0};
  // Fail fast: once any item throws, workers stop claiming new items and
  // drain what they already hold, so no thread is still writing into
  // caller state when the exception surfaces below.
  std::atomic<bool> stop{false};
  // First exception by *item index*, so the caller sees the same error a
  // serial loop would have hit first, regardless of scheduling.  Claim
  // order is index order, so every index below the first thrower was
  // claimed (and therefore runs) before `stop` could be set — the
  // minimum recorded here is the true serial-first failure.
  std::mutex error_mutex;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  auto worker = [&] {
    for (;;) {
      if (stop.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        stop.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace gearsim
