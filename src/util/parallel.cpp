#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace gearsim {

int default_jobs() {
  const char* env = std::getenv("GEARSIM_SWEEP_JOBS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 1 ||
      parsed > std::numeric_limits<int>::max()) {
    return 1;
  }
  return static_cast<int>(parsed);
}

int resolve_jobs(int jobs) {
  if (jobs == 0) return default_jobs();
  if (jobs < 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return jobs;
}

namespace {

int parse_positive_env(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 1 ||
      parsed > std::numeric_limits<int>::max()) {
    return 1;
  }
  return static_cast<int>(parsed);
}

}  // namespace

int default_engine_threads() {
  return parse_positive_env("GEARSIM_ENGINE_THREADS");
}

int resolve_engine_threads(int threads) {
  if (threads == 0) return default_engine_threads();
  if (threads < 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return threads;
}

void parallel_for_ordered(int jobs, std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  GEARSIM_REQUIRE(fn != nullptr, "parallel_for_ordered needs a body");
  jobs = resolve_jobs(jobs);
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), n);
  std::atomic<std::size_t> next{0};
  // Fail fast: once any item throws, workers stop claiming new items and
  // drain what they already hold, so no thread is still writing into
  // caller state when the exception surfaces below.
  std::atomic<bool> stop{false};
  // First exception by *item index*, so the caller sees the same error a
  // serial loop would have hit first, regardless of scheduling.  Claim
  // order is index order, so every index below the first thrower was
  // claimed (and therefore runs) before `stop` could be set — the
  // minimum recorded here is the true serial-first failure.
  std::mutex error_mutex;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  auto worker = [&] {
    for (;;) {
      if (stop.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        stop.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

WorkerPool::WorkerPool(int threads) : threads_(std::max(threads, 1)) {
  errors_.resize(static_cast<std::size_t>(threads_));
  members_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int id = 1; id < threads_; ++id) {
    members_.emplace_back([this, id] { worker_main(id); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : members_) t.join();
}

void WorkerPool::run(const std::function<void(int)>& fn) {
  GEARSIM_REQUIRE(fn != nullptr, "WorkerPool::run needs a body");
  if (threads_ == 1) {
    fn(0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    GEARSIM_REQUIRE(job_ == nullptr, "WorkerPool::run is not reentrant");
    job_ = &fn;
    remaining_ = threads_ - 1;
    std::fill(errors_.begin(), errors_.end(), std::exception_ptr{});
    ++generation_;
  }
  start_cv_.notify_all();
  // The calling thread is worker 0; its error slot is written and read on
  // this thread, the members' slots under mutex_ (released by the final
  // remaining_ == 0 handoff before we read them).
  try {
    fn(0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  for (auto& slot : errors_) {
    if (slot) {
      const std::exception_ptr error = std::exchange(slot, nullptr);
      lock.unlock();
      std::rethrow_exception(error);
    }
  }
}

void WorkerPool::worker_main(int id) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    std::exception_ptr error;
    try {
      (*job)(id);
    } catch (...) {
      error = std::current_exception();
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    errors_[static_cast<std::size_t>(id)] = std::move(error);
    if (--remaining_ == 0) done_cv_.notify_one();
  }
}

}  // namespace gearsim
