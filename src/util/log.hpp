// Minimal leveled logger.
//
// The simulator is a library first; logging defaults to warnings only and
// is globally configurable (GEARSIM_LOG=debug|info|warn|error or
// set_log_level).  Log lines carry the simulation context supplied by the
// caller, not wall-clock timestamps — simulated time is what matters here.
#pragma once

#include <sstream>
#include <string>

namespace gearsim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "debug"/"info"/"warn"/"error"; unknown strings map to kWarn.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& message);
}

}  // namespace gearsim

#define GEARSIM_LOG(level, expr)                                   \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::gearsim::log_level())) {                \
      std::ostringstream gearsim_log_os;                           \
      gearsim_log_os << expr;                                      \
      ::gearsim::detail::emit(level, gearsim_log_os.str());        \
    }                                                              \
  } while (false)

#define GEARSIM_DEBUG(expr) GEARSIM_LOG(::gearsim::LogLevel::kDebug, expr)
#define GEARSIM_INFO(expr) GEARSIM_LOG(::gearsim::LogLevel::kInfo, expr)
#define GEARSIM_WARN(expr) GEARSIM_LOG(::gearsim::LogLevel::kWarn, expr)
#define GEARSIM_ERROR(expr) GEARSIM_LOG(::gearsim::LogLevel::kError, expr)
