// Assertion and error machinery for gearsim.
//
// GEARSIM_REQUIRE / GEARSIM_ENSURE throw (they are contract checks on
// public API boundaries and must fire in release builds too); they carry
// file:line context so simulation misuse surfaces with a precise location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gearsim {

/// Thrown when a public-API precondition is violated.
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when the simulation reaches an inconsistent internal state
/// (e.g. deadlock among MPI ranks, event scheduled in the past).
class SimulationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " — " << message;
  throw ContractError(os.str());
}
}  // namespace detail

}  // namespace gearsim

#define GEARSIM_REQUIRE(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::gearsim::detail::contract_failure("precondition", #expr,          \
                                          __FILE__, __LINE__, (msg));     \
    }                                                                     \
  } while (false)

#define GEARSIM_ENSURE(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::gearsim::detail::contract_failure("postcondition", #expr,         \
                                          __FILE__, __LINE__, (msg));     \
    }                                                                     \
  } while (false)
