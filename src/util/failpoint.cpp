#include "util/failpoint.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/assert.hpp"

namespace gearsim::util {

Failpoints& Failpoints::global() {
  static Failpoints* instance = [] {
    auto* fp = new Failpoints;
    if (const char* env = std::getenv("GEARSIM_FAILPOINTS");
        env != nullptr && *env != '\0') {
      fp->arm_from_string(env);
    }
    return fp;
  }();
  return *instance;
}

void Failpoints::arm(const std::string& name, FailpointSpec spec) {
  GEARSIM_REQUIRE(!name.empty(), "failpoint name must be non-empty");
  GEARSIM_REQUIRE(spec.every >= 1, "failpoint 'every' must be >= 1");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = points_.insert_or_assign(name, State{std::move(spec), {}});
  (void)it;
  if (inserted) armed_.fetch_add(1, std::memory_order_relaxed);
}

void Failpoints::disarm(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (points_.erase(name) > 0) {
    armed_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  armed_.store(0, std::memory_order_relaxed);
}

bool Failpoints::armed(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return points_.count(name) > 0;
}

std::optional<std::int64_t> Failpoints::hit(std::string_view name,
                                            std::int64_t index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  if (it == points_.end()) return std::nullopt;
  State& state = it->second;
  const FailpointSpec& spec = state.spec;
  if (!spec.indices.empty() &&
      std::find(spec.indices.begin(), spec.indices.end(), index) ==
          spec.indices.end()) {
    return std::nullopt;
  }
  Stream& stream = state.streams[index];
  ++stream.visits;
  if (stream.visits <= spec.skip) return std::nullopt;
  if (spec.times >= 0 && stream.fired >= spec.times) return std::nullopt;
  // Visits past the skip window fire every `every`th time.
  if ((stream.visits - spec.skip - 1) % spec.every != 0) return std::nullopt;
  ++stream.fired;
  return spec.arg;
}

namespace {

std::int64_t parse_int_field(const std::string& field) {
  char* parse_end = nullptr;
  const long long v = std::strtoll(field.c_str(), &parse_end, 10);
  GEARSIM_REQUIRE(parse_end != nullptr && *parse_end == '\0' && !field.empty(),
                  "malformed GEARSIM_FAILPOINTS field: " + field);
  return v;
}

}  // namespace

void Failpoints::arm_from_string(const std::string& text) {
  // "name[@i1,i2,...][=skip[:times[:arg[:every]]]];..." — whitespace is
  // not trimmed; names must match the call-site spelling exactly.  The
  // optional @-list restricts an index-keyed failpoint to those caller
  // indices ("throw on job N").
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(';', begin);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(begin, end - begin);
    begin = end + 1;
    if (item.empty()) continue;

    FailpointSpec spec;
    std::string name = item;
    std::string fields;
    const std::size_t eq = item.find('=');
    if (eq != std::string::npos) {
      name = item.substr(0, eq);
      fields = item.substr(eq + 1);
    }
    const std::size_t at = name.find('@');
    if (at != std::string::npos) {
      const std::string list = name.substr(at + 1);
      name = name.substr(0, at);
      std::size_t pos = 0;
      while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        spec.indices.push_back(parse_int_field(list.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    }
    if (eq != std::string::npos) {
      std::int64_t* const slots[] = {nullptr, &spec.times, &spec.arg, nullptr};
      std::size_t f = 0;
      std::size_t pos = 0;
      while (pos <= fields.size() && f < 4) {
        std::size_t colon = fields.find(':', pos);
        if (colon == std::string::npos) colon = fields.size();
        const std::string field = fields.substr(pos, colon - pos);
        pos = colon + 1;
        if (!field.empty()) {
          const std::int64_t v = parse_int_field(field);
          if (f == 0) {
            GEARSIM_REQUIRE(v >= 0, "failpoint skip must be >= 0");
            spec.skip = static_cast<std::uint64_t>(v);
          } else if (f == 3) {
            GEARSIM_REQUIRE(v >= 1, "failpoint 'every' must be >= 1");
            spec.every = static_cast<std::uint64_t>(v);
          } else {
            *slots[f] = v;
          }
        }
        ++f;
      }
    }
    GEARSIM_REQUIRE(!name.empty(),
                    "malformed GEARSIM_FAILPOINTS item: " + item);
    arm(name, spec);
  }
}

}  // namespace gearsim::util
