// Statistics and least-squares fitting.
//
// The paper's Section-4 model is regression-heavy: Amdahl fractions are
// fit from T^A(n) samples, and communication/idle time is classified into
// one of four scaling shapes (constant, logarithmic, linear, quadratic) by
// fitting each shape and picking the best.  This header provides the
// numeric machinery; the interpretation lives in src/model/.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace gearsim {

/// Welford online accumulator: count / mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  /// Mean / min / max are preconditions-checked: querying an empty
  /// accumulator throws ContractError rather than silently returning 0.0
  /// (which would poison any consumer that aggregates before adding its
  /// first sample).  Check count() first when emptiness is a valid state.
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Result of an ordinary least-squares line fit y = intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0, 1]; 1 for a perfect fit.  When
  /// the y values are constant, defined as 1 if the fit is exact.
  double r_squared = 0.0;
  /// Residual sum of squares.
  double rss = 0.0;
  /// OLS standard errors of the coefficients (0 when underdetermined,
  /// i.e. fewer than three points or a degenerate basis).
  double stderr_intercept = 0.0;
  double stderr_slope = 0.0;

  [[nodiscard]] double at(double x) const { return intercept + slope * x; }

  /// Standard error of the *mean prediction* at x (coefficient
  /// uncertainty only, not residual scatter).
  [[nodiscard]] double prediction_stderr(double x) const;
};

/// OLS fit of y against x.  Requires x.size() == y.size() >= 2 and at
/// least two distinct x values.
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Fit y = c (the best constant, i.e. the mean), reporting rss/r².
LinearFit fit_constant(std::span<const double> y);

/// The communication-scaling shapes of the paper's Step 2: T^I(n) is
/// classified as constant, logarithmic, linear, or quadratic in the node
/// count.  (LU is the paper's constant case: more messages, smaller each.)
enum class ScalingShape { kConstant, kLogarithmic, kLinear, kQuadratic };

[[nodiscard]] std::string to_string(ScalingShape s);

/// A fitted shape: y ≈ a + b * basis(x), where basis is 0 / ln x / x / x².
struct ShapeFit {
  ScalingShape shape = ScalingShape::kConstant;
  double a = 0.0;
  double b = 0.0;
  double r_squared = 0.0;
  double rss = 0.0;

  [[nodiscard]] double at(double x) const;
};

/// The basis value phi(x) for a shape (constant -> 0, log -> ln x, ...).
[[nodiscard]] double shape_basis(ScalingShape s, double x);

/// Least-squares fit of one given shape.
ShapeFit fit_shape(ScalingShape s, std::span<const double> x,
                   std::span<const double> y);

/// Fit all four shapes and return them ordered best-first.  Selection uses
/// residual sum of squares with a parsimony tie-break: the constant model
/// wins unless a richer shape reduces RSS by at least the `improvement`
/// fraction (default: must halve it).  This mirrors the paper's practice
/// of preferring the simplest shape consistent with the data — a sloped
/// basis always shaves *some* residual off noise.
std::vector<ShapeFit> classify_shape(std::span<const double> x,
                                     std::span<const double> y,
                                     double improvement = 0.5);

/// Mean of a span; requires non-empty input.
double mean_of(std::span<const double> v);

/// Relative difference (a-b)/b; requires b != 0.
double rel_diff(double a, double b);

}  // namespace gearsim
