file(REMOVE_RECURSE
  "CMakeFiles/gearsim_util.dir/csv.cpp.o"
  "CMakeFiles/gearsim_util.dir/csv.cpp.o.d"
  "CMakeFiles/gearsim_util.dir/failpoint.cpp.o"
  "CMakeFiles/gearsim_util.dir/failpoint.cpp.o.d"
  "CMakeFiles/gearsim_util.dir/json.cpp.o"
  "CMakeFiles/gearsim_util.dir/json.cpp.o.d"
  "CMakeFiles/gearsim_util.dir/log.cpp.o"
  "CMakeFiles/gearsim_util.dir/log.cpp.o.d"
  "CMakeFiles/gearsim_util.dir/parallel.cpp.o"
  "CMakeFiles/gearsim_util.dir/parallel.cpp.o.d"
  "CMakeFiles/gearsim_util.dir/statistics.cpp.o"
  "CMakeFiles/gearsim_util.dir/statistics.cpp.o.d"
  "CMakeFiles/gearsim_util.dir/table.cpp.o"
  "CMakeFiles/gearsim_util.dir/table.cpp.o.d"
  "libgearsim_util.a"
  "libgearsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
