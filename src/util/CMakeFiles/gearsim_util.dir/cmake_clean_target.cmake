file(REMOVE_RECURSE
  "libgearsim_util.a"
)
