
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/csv.cpp" "src/util/CMakeFiles/gearsim_util.dir/csv.cpp.o" "gcc" "src/util/CMakeFiles/gearsim_util.dir/csv.cpp.o.d"
  "/root/repo/src/util/failpoint.cpp" "src/util/CMakeFiles/gearsim_util.dir/failpoint.cpp.o" "gcc" "src/util/CMakeFiles/gearsim_util.dir/failpoint.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/util/CMakeFiles/gearsim_util.dir/json.cpp.o" "gcc" "src/util/CMakeFiles/gearsim_util.dir/json.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/util/CMakeFiles/gearsim_util.dir/log.cpp.o" "gcc" "src/util/CMakeFiles/gearsim_util.dir/log.cpp.o.d"
  "/root/repo/src/util/parallel.cpp" "src/util/CMakeFiles/gearsim_util.dir/parallel.cpp.o" "gcc" "src/util/CMakeFiles/gearsim_util.dir/parallel.cpp.o.d"
  "/root/repo/src/util/statistics.cpp" "src/util/CMakeFiles/gearsim_util.dir/statistics.cpp.o" "gcc" "src/util/CMakeFiles/gearsim_util.dir/statistics.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/gearsim_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/gearsim_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
