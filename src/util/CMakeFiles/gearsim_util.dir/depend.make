# Empty dependencies file for gearsim_util.
# This may be replaced when dependencies are built.
