// RFC-4180 CSV field handling, shared by every exporter.
//
// Workload names, policy names, and fault-event details are free-form
// strings; a comma or quote inside one must not shear a row.  Both the
// TextTable CSV renderer and the trace exporter quote through here, and
// parse_csv_line inverts the quoting for round-trip tests and ad-hoc
// readers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gearsim {

/// Quote a field per RFC 4180 when it contains a comma, double quote, CR
/// or LF (embedded quotes are doubled); otherwise return it unchanged.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Split one CSV record into its fields, undoing RFC-4180 quoting.  The
/// line must not contain an unterminated quoted field (throws
/// ContractError); embedded newlines inside quoted fields are supported
/// when present in `line`.
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line);

}  // namespace gearsim
