// FNV-1a 64-bit hashing, shared by the cache-key layer (content
// addressing) and the simulation engine (event-dispatch order hashes).
//
// FNV-1a is not cryptographic; it is a fast, well-distributed stream
// hash whose incremental form (`fnv1a_mix`) lets the engine fold one
// (time, seq) pair per dispatched event into a running fingerprint
// without buffering anything.
#pragma once

#include <cstdint>
#include <string_view>

namespace gearsim::util {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

/// Fold the 8 bytes of `v` (little-endian order) into hash state `h`.
[[nodiscard]] constexpr std::uint64_t fnv1a_mix(std::uint64_t h,
                                                std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xffU;
    h *= kFnv1aPrime;
    v >>= 8;
  }
  return h;
}

/// FNV-1a 64-bit hash of a byte string.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = kFnv1aOffset;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

}  // namespace gearsim::util
