#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"
#include "util/csv.hpp"

namespace gearsim {

std::string fmt_fixed(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmt_percent(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  if (v >= 0) os << '+';
  os << v * 100.0 << '%';
  return os.str();
}

TextTable::TextTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  GEARSIM_REQUIRE(!columns_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  GEARSIM_REQUIRE(cells.size() == columns_.size(),
                  "row width must match column count");
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t digits = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  return digits > 0 &&
         s.find_first_not_of("+-0123456789.%eE*x ") == std::string::npos;
}
}  // namespace

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      width[c] = std::max(width[c], row.cells[c].size());
    }
  }
  std::ostringstream os;
  auto hline = [&] {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& cells, bool align_numeric) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const auto pad = width[c] - cells[c].size();
      const bool right = align_numeric && looks_numeric(cells[c]);
      os << "| " << (right ? std::string(pad, ' ') + cells[c]
                           : cells[c] + std::string(pad, ' '))
         << ' ';
    }
    os << "|\n";
  };
  hline();
  emit(columns_, /*align_numeric=*/false);
  hline();
  for (const auto& row : rows_) {
    if (row.rule_before) hline();
    emit(row.cells, /*align_numeric=*/true);
  }
  hline();
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row.cells[c]);
    }
    os << '\n';
  }
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

}  // namespace gearsim
