// Strong unit types for the quantities the simulator trades in.
//
// Energy/time/power/frequency/voltage values flow through many layers
// (CPU model -> power model -> meter -> analytic model); mixing them up is
// the classic source of silent 1000x errors.  Each quantity is a distinct
// type with only the physically meaningful cross-type operators defined
// (W * s = J, J / s = W, cycles / Hz = s, ...).
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

namespace gearsim {

/// A double with a phantom tag.  Explicit construction only; arithmetic
/// within a unit plus scalar scaling.  `value()` exposes the raw double in
/// the base SI unit of the tag (seconds, joules, watts, hertz, volts).
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Quantity& operator+=(Quantity o) { value_ += o.value_; return *this; }
  constexpr Quantity& operator-=(Quantity o) { value_ -= o.value_; return *this; }
  constexpr Quantity& operator*=(double s) { value_ *= s; return *this; }
  constexpr Quantity& operator/=(double s) { value_ /= s; return *this; }

  friend constexpr Quantity operator+(Quantity a, Quantity b) { return Quantity(a.value_ + b.value_); }
  friend constexpr Quantity operator-(Quantity a, Quantity b) { return Quantity(a.value_ - b.value_); }
  friend constexpr Quantity operator-(Quantity a) { return Quantity(-a.value_); }
  friend constexpr Quantity operator*(Quantity a, double s) { return Quantity(a.value_ * s); }
  friend constexpr Quantity operator*(double s, Quantity a) { return Quantity(a.value_ * s); }
  friend constexpr Quantity operator/(Quantity a, double s) { return Quantity(a.value_ / s); }
  /// Ratio of two like quantities is a dimensionless double.
  friend constexpr double operator/(Quantity a, Quantity b) { return a.value_ / b.value_; }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double value_ = 0.0;
};

using Seconds = Quantity<struct SecondsTag>;
using Joules = Quantity<struct JoulesTag>;
using Watts = Quantity<struct WattsTag>;
using Hertz = Quantity<struct HertzTag>;
using Volts = Quantity<struct VoltsTag>;

// --- physically meaningful cross-type operators -------------------------
constexpr Joules operator*(Watts p, Seconds t) { return Joules(p.value() * t.value()); }
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
constexpr Watts operator/(Joules e, Seconds t) { return Watts(e.value() / t.value()); }
constexpr Seconds operator/(Joules e, Watts p) { return Seconds(e.value() / p.value()); }
/// `cycles / frequency = time`: the CPU-model workhorse.
constexpr Seconds cycles_over(double cycles, Hertz f) { return Seconds(cycles / f.value()); }

// --- convenience constructors -------------------------------------------
constexpr Seconds seconds(double v) { return Seconds(v); }
constexpr Seconds milliseconds(double v) { return Seconds(v * 1e-3); }
constexpr Seconds microseconds(double v) { return Seconds(v * 1e-6); }
constexpr Seconds nanoseconds(double v) { return Seconds(v * 1e-9); }
constexpr Joules joules(double v) { return Joules(v); }
constexpr Joules kilojoules(double v) { return Joules(v * 1e3); }
constexpr Watts watts(double v) { return Watts(v); }
constexpr Hertz hertz(double v) { return Hertz(v); }
constexpr Hertz megahertz(double v) { return Hertz(v * 1e6); }
constexpr Hertz gigahertz(double v) { return Hertz(v * 1e9); }
constexpr Volts volts(double v) { return Volts(v); }

/// Bytes are counted, not measured; a plain integer type with a name.
using Bytes = std::uint64_t;
constexpr Bytes kilobytes(double v) { return static_cast<Bytes>(v * 1024.0); }
constexpr Bytes megabytes(double v) { return static_cast<Bytes>(v * 1024.0 * 1024.0); }

/// True when |a-b| <= tol (absolute) — handy for unit types in tests.
template <typename Tag>
constexpr bool near(Quantity<Tag> a, Quantity<Tag> b, double tol) {
  const double d = a.value() - b.value();
  return (d < 0 ? -d : d) <= tol;
}

}  // namespace gearsim
