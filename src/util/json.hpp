// Minimal JSON tree, parser and canonical emission helpers.
//
// Extracted from exec/result_io.cpp so every layer that speaks JSON — the
// on-disk result cache, the observability manifests (src/obs/), the bench
// harness and the bench_compare gate — shares one dialect:
//   * numbers keep their raw token on parse, so integers convert exactly
//     and doubles round-trip bit-identically;
//   * emission renders doubles at max_digits10 (jnum), escapes control
//     characters (jstr), and objects built from std::map serialize in
//     sorted key order — the canonical form the regression gate diffs.
// The parser accepts only what the emitters produce (ASCII strings,
// \u00xx control escapes); it is a data format, not a general JSON lib.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace gearsim::json {

struct Value;
/// std::less<> enables string_view lookups; std::map iteration order is
/// the canonical (sorted) serialization order.
using Object = std::map<std::string, Value, std::less<>>;
using Array = std::vector<Value>;

struct Value {
  // Numbers keep their raw token so integer fields convert exactly.
  std::variant<std::nullptr_t, bool, std::string /*number token*/,
               std::shared_ptr<std::string> /*string*/,
               std::shared_ptr<Object>, std::shared_ptr<Array>>
      v = nullptr;

  [[nodiscard]] bool is_null() const;
  [[nodiscard]] bool is_number() const;
  [[nodiscard]] bool is_string() const;
  [[nodiscard]] bool is_object() const;
  [[nodiscard]] bool is_array() const;
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] int as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] const Array& as_array() const;
};

/// Parse one complete JSON document; throws ContractError on malformed
/// input or trailing bytes.
[[nodiscard]] Value parse(std::string_view text);

/// Required object member; throws ContractError when absent.
[[nodiscard]] const Value& field(const Object& obj, std::string_view name);
/// Optional object member; nullptr when absent.
[[nodiscard]] const Value* find(const Object& obj, std::string_view name);

/// Render a double at round-trip precision (max_digits10, shortest form).
[[nodiscard]] std::string jnum(double v);
/// Quote + escape a string for JSON emission.
[[nodiscard]] std::string jstr(std::string_view s);

/// Canonical single-line serialization of a parsed tree: numbers re-emit
/// their raw token (so a parse/render round trip is byte-exact), objects
/// serialize in sorted key order.  render(parse(text)) == text for any
/// canonical document — the property the serve protocol leans on to
/// extract embedded result objects without perturbing a byte.
[[nodiscard]] std::string render(const Value& v);

}  // namespace gearsim::json
