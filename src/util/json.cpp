#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <limits>

#include "util/assert.hpp"

namespace gearsim::json {

bool Value::is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
bool Value::is_number() const { return std::holds_alternative<std::string>(v); }
bool Value::is_string() const {
  return std::holds_alternative<std::shared_ptr<std::string>>(v);
}
bool Value::is_object() const {
  return std::holds_alternative<std::shared_ptr<Object>>(v);
}
bool Value::is_array() const {
  return std::holds_alternative<std::shared_ptr<Array>>(v);
}

bool Value::as_bool() const {
  GEARSIM_REQUIRE(std::holds_alternative<bool>(v), "expected JSON bool");
  return std::get<bool>(v);
}

double Value::as_double() const {
  GEARSIM_REQUIRE(is_number(), "expected JSON number");
  const std::string& tok = std::get<std::string>(v);
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), out);
  GEARSIM_REQUIRE(ec == std::errc() && ptr == tok.data() + tok.size(),
                  "bad JSON number: " + tok);
  return out;
}

std::uint64_t Value::as_u64() const {
  GEARSIM_REQUIRE(is_number(), "expected JSON number");
  const std::string& tok = std::get<std::string>(v);
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), out);
  GEARSIM_REQUIRE(ec == std::errc() && ptr == tok.data() + tok.size(),
                  "bad JSON integer: " + tok);
  return out;
}

int Value::as_int() const { return static_cast<int>(as_double()); }

const std::string& Value::as_string() const {
  GEARSIM_REQUIRE(is_string(), "expected JSON string");
  return *std::get<std::shared_ptr<std::string>>(v);
}

const Object& Value::as_object() const {
  GEARSIM_REQUIRE(is_object(), "expected JSON object");
  return *std::get<std::shared_ptr<Object>>(v);
}

const Array& Value::as_array() const {
  GEARSIM_REQUIRE(is_array(), "expected JSON array");
  return *std::get<std::shared_ptr<Array>>(v);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    const Value v = value();
    skip_ws();
    GEARSIM_REQUIRE(pos_ == text_.size(), "trailing bytes after JSON value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    GEARSIM_REQUIRE(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }

  void expect(char c) {
    GEARSIM_REQUIRE(pos_ < text_.size() && text_[pos_] == c,
                    std::string("expected '") + c + "' in JSON");
    ++pos_;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': literal("true"); return Value{true};
      case 'f': literal("false"); return Value{false};
      case 'n': literal("null"); return Value{nullptr};
      default: return number();
    }
  }

  void literal(std::string_view word) {
    GEARSIM_REQUIRE(text_.substr(pos_, word.size()) == word,
                    "bad JSON literal");
    pos_ += word.size();
  }

  Value object() {
    expect('{');
    auto obj = std::make_shared<Object>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(obj)};
    }
    for (;;) {
      skip_ws();
      const std::string key = raw_string();
      skip_ws();
      expect(':');
      (*obj)[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value{std::move(obj)};
    }
  }

  Value array() {
    expect('[');
    auto arr = std::make_shared<Array>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(arr)};
    }
    for (;;) {
      arr->push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value{std::move(arr)};
    }
  }

  Value string_value() {
    return Value{std::make_shared<std::string>(raw_string())};
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    for (;;) {
      GEARSIM_REQUIRE(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      GEARSIM_REQUIRE(pos_ < text_.size(), "dangling escape in JSON string");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          GEARSIM_REQUIRE(pos_ + 4 <= text_.size(), "short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else GEARSIM_REQUIRE(false, "bad \\u escape");
          }
          // The emitter only produces \u00xx control escapes; reject the
          // rest rather than mis-decode them.
          GEARSIM_REQUIRE(code < 0x80, "unsupported \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default: GEARSIM_REQUIRE(false, "bad escape in JSON string");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    GEARSIM_REQUIRE(pos_ > start, "expected JSON number");
    return Value{std::string(text_.substr(start, pos_ - start))};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse(); }

const Value& field(const Object& obj, std::string_view name) {
  const auto it = obj.find(name);
  GEARSIM_REQUIRE(it != obj.end(),
                  "missing JSON field: " + std::string(name));
  return it->second;
}

const Value* find(const Object& obj, std::string_view name) {
  const auto it = obj.find(name);
  return it != obj.end() ? &it->second : nullptr;
}

std::string jnum(double v) {
  char buf[40];
  const auto [ptr, ec] = std::to_chars(
      buf, buf + sizeof(buf), v, std::chars_format::general,
      std::numeric_limits<double>::max_digits10);
  GEARSIM_ENSURE(ec == std::errc(), "double rendering failed");
  return std::string(buf, ptr);
}

std::string jstr(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string render(const Value& v) {
  if (v.is_null()) return "null";
  if (std::holds_alternative<bool>(v.v)) {
    return std::get<bool>(v.v) ? "true" : "false";
  }
  if (v.is_number()) return std::get<std::string>(v.v);  // raw token
  if (v.is_string()) return jstr(v.as_string());
  if (v.is_array()) {
    std::string out = "[";
    for (const Value& item : v.as_array()) {
      if (out.size() > 1) out += ',';
      out += render(item);
    }
    return out + "]";
  }
  std::string out = "{";
  for (const auto& [key, value] : v.as_object()) {
    if (out.size() > 1) out += ',';
    out += jstr(key) + ":" + render(value);
  }
  return out + "}";
}

}  // namespace gearsim::json
