#include "workloads/synthetic.hpp"

#include "cpu/cache.hpp"
#include "util/random.hpp"
#include "workloads/characterize.hpp"
#include "workloads/patterns.hpp"

namespace gearsim::workloads {

std::string Synthetic::signature() const {
  using cluster::sig_value;
  return "SYNTH(upm=" + sig_value(params_.upm) +
         ",seq=" + sig_value(params_.seq_active.value()) +
         ",serial=" + sig_value(params_.serial_fraction) +
         ",iters=" + sig_value(std::uint64_t(params_.iterations)) +
         ",halo=" + sig_value(std::uint64_t(params_.halo_bytes)) +
         ",norm=" + sig_value(std::uint64_t(params_.norm_every)) +
         ",chase=" + sig_value(params_.chase_fraction) +
         ",ws=" + sig_value(std::uint64_t(params_.working_set)) + ")";
}

void Synthetic::run(cluster::RankContext& ctx) const {
  const int n = ctx.nprocs();
  const cpu::ComputeBlock block =
      block_for_time(ctx.cpu_model(), params_.upm, params_.seq_active)
          .scaled(amdahl_share(params_.serial_fraction, n) /
                  static_cast<double>(params_.iterations));
  for (int it = 0; it < params_.iterations; ++it) {
    ctx.compute(block);
    if (n > 1) {
      ring_halo_exchange(ctx, params_.halo_bytes);
      if ((it + 1) % params_.norm_every == 0) ctx.comm().allreduce(8);
    }
  }
}

std::string ShiftExchange::signature() const {
  using cluster::sig_value;
  return "SHIFT(upm=" + sig_value(params_.upm) +
         ",misses=" + sig_value(params_.misses) +
         ",iters=" + sig_value(std::uint64_t(params_.iterations)) +
         ",bytes=" + sig_value(std::uint64_t(params_.bytes)) + ")";
}

void ShiftExchange::run(cluster::RankContext& ctx) const {
  const int n = ctx.nprocs();
  constexpr int kTagShift = 7;
  for (int it = 0; it < params_.iterations; ++it) {
    ctx.compute_upm(params_.upm, params_.misses);
    if (n > 1) {
      const mpi::Rank to = (ctx.rank() + n / 2) % n;
      const mpi::Rank from = (ctx.rank() + n - n / 2) % n;
      ctx.comm().sendrecv(to, kTagShift, params_.bytes, from, kTagShift);
      ctx.comm().allreduce(8);
    }
  }
}

double Synthetic::measured_l2_miss_rate(std::size_t accesses,
                                        std::uint64_t seed) const {
  cpu::CacheHierarchy caches = cpu::athlon64_caches();
  Rng rng(seed);
  std::uint64_t stream_addr = 0;
  // Warm the hierarchy so compulsory misses don't dominate the estimate.
  const std::size_t warmup = accesses / 10;
  for (std::size_t i = 0; i < accesses + warmup; ++i) {
    if (i == warmup) {
      caches.l1().reset_stats();
      caches.l2().reset_stats();
    }
    std::uint64_t addr;
    if (rng.uniform() < params_.chase_fraction) {
      // Dependent far pointer: anywhere in the working set.
      addr = rng.below(params_.working_set);
    } else {
      // Unit-stride stream through a small hot region.
      stream_addr = (stream_addr + 8) % kilobytes(256);
      addr = stream_addr;
    }
    caches.access(addr);
  }
  // Paper-style miss rate: fraction of memory references (L1 probes)
  // that go all the way to main memory.
  return static_cast<double>(caches.l2().stats().misses) /
         static_cast<double>(caches.l1().stats().accesses);
}

}  // namespace gearsim::workloads
