#include "workloads/jacobi.hpp"

#include "workloads/characterize.hpp"
#include "workloads/patterns.hpp"

namespace gearsim::workloads {

std::string Jacobi::signature() const {
  using cluster::sig_value;
  return "Jacobi(upm=" + sig_value(params_.upm) +
         ",seq=" + sig_value(params_.seq_active.value()) +
         ",serial=" + sig_value(params_.serial_fraction) +
         ",iters=" + sig_value(std::uint64_t(params_.iterations)) +
         ",halo=" + sig_value(std::uint64_t(params_.halo_bytes)) +
         ",norm=" + sig_value(std::uint64_t(params_.norm_every)) +
         ",weak=" + (params_.weak_scaling ? "1" : "0") + ")";
}

void Jacobi::run(cluster::RankContext& ctx) const {
  const int n = ctx.nprocs();
  const double share = params_.weak_scaling
                           ? 1.0
                           : amdahl_share(params_.serial_fraction, n);
  const cpu::ComputeBlock block =
      block_for_time(ctx.cpu_model(), params_.upm, params_.seq_active)
          .scaled(share / static_cast<double>(params_.iterations));
  for (int it = 0; it < params_.iterations; ++it) {
    ctx.compute(block);
    chain_halo_exchange(ctx, params_.halo_bytes);
    if (n > 1 && (it + 1) % params_.norm_every == 0) {
      ctx.comm().allreduce(8);  // Global residual for the convergence test.
    }
  }
}

}  // namespace gearsim::workloads
