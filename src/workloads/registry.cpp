#include "workloads/registry.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "workloads/jacobi.hpp"
#include "workloads/nas.hpp"
#include "workloads/nas_extra.hpp"
#include "workloads/synthetic.hpp"

namespace gearsim::workloads {

namespace {
template <typename W>
RegistryEntry entry(const char* name) {
  return RegistryEntry{name, [] { return std::make_unique<W>(); }};
}
}  // namespace

const std::vector<RegistryEntry>& nas_suite() {
  static const std::vector<RegistryEntry> suite = {
      entry<NasEp>("EP"), entry<NasBt>("BT"), entry<NasLu>("LU"),
      entry<NasMg>("MG"), entry<NasSp>("SP"), entry<NasCg>("CG"),
  };
  return suite;
}

const std::vector<RegistryEntry>& all_workloads() {
  static const std::vector<RegistryEntry> all = [] {
    std::vector<RegistryEntry> v = nas_suite();
    v.push_back(entry<Jacobi>("Jacobi"));
    v.push_back(entry<Synthetic>("SYNTH"));
    // Congestion probe for routed topologies (--topology; docs/NETWORK.md).
    v.push_back(entry<ShiftExchange>("SHIFT"));
    // The two codes the paper excluded from its figures, kept runnable so
    // the exclusions themselves are reproducible (bench/appendix_ft_is).
    v.push_back(entry<NasFt>("FT"));
    v.push_back(RegistryEntry{"IS.B", [] {
                                return std::unique_ptr<cluster::Workload>(
                                    std::make_unique<NasIs>());
                              }});
    v.push_back(RegistryEntry{"IS.C", [] {
                                NasIs::Params p;
                                p.cls = NasIs::Class::kC;
                                return std::unique_ptr<cluster::Workload>(
                                    std::make_unique<NasIs>(p));
                              }});
    return v;
  }();
  return all;
}

std::unique_ptr<cluster::Workload> make_workload(const std::string& name) {
  for (const auto& e : all_workloads()) {
    if (e.name == name) return e.make();
  }
  GEARSIM_REQUIRE(false, "unknown workload: " + name);
  return nullptr;  // Unreachable.
}

std::vector<int> paper_node_counts(const cluster::Workload& workload,
                                   int max_nodes) {
  GEARSIM_REQUIRE(max_nodes >= 1, "need at least one node");
  std::vector<int> counts;
  const std::string name = workload.name();
  if (name == "BT" || name == "SP") {
    for (int q = 1; q * q <= max_nodes; ++q) counts.push_back(q * q);
  } else if (name == "Jacobi" || name == "SYNTH") {
    counts.push_back(1);
    for (int n = 2; n <= max_nodes; n += 2) counts.push_back(n);
  } else {
    for (int n = 1; n <= max_nodes; n *= 2) counts.push_back(n);
  }
  counts.erase(std::remove_if(counts.begin(), counts.end(),
                              [&](int n) { return !workload.supports(n); }),
               counts.end());
  return counts;
}

}  // namespace gearsim::workloads
