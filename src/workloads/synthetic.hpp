// Synthetic high-memory-pressure benchmark (the paper's Figure 4).
//
// "This benchmark models CG in terms of its cache miss rate, but achieves
// good speedup" — the purpose is to show the *potential* of a
// power-scalable cluster: with the memory system firmly on the critical
// path, scaling the CPU down costs ~3% time (gear 5) while saving ~24%
// energy, and gear 5 on 8 nodes beats gear 1 on 4 nodes in both time
// (~half) and energy (~80%).
//
// The skeleton pairs an extremely low UPM (heavier memory pressure than
// CG) with near-perfect scaling: tiny fixed halos and a periodic scalar
// allreduce.  Its access pattern is grounded by the cache simulator:
// `measured_l2_miss_rate()` replays the generator's address stream (a
// stream/pointer-chase mix) through the modeled Athlon-64 hierarchy.
#pragma once

#include "cluster/workload.hpp"
#include "util/units.hpp"

namespace gearsim::workloads {

class Synthetic final : public cluster::Workload {
 public:
  struct Params {
    double upm = 2.5;  ///< Heavier memory pressure than CG's 8.6.
    Seconds seq_active = seconds(100.0);
    double serial_fraction = 0.004;
    int iterations = 100;
    Bytes halo_bytes = kilobytes(16);
    int norm_every = 10;
    /// Fraction of generated accesses that chase random far pointers
    /// (the rest stream sequentially); sets the measured miss rate.
    double chase_fraction = 0.07;
    Bytes working_set = megabytes(64);
  };

  Synthetic() = default;
  explicit Synthetic(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "SYNTH"; }
  [[nodiscard]] std::string signature() const override;
  [[nodiscard]] const Params& params() const { return params_; }
  void run(cluster::RankContext& ctx) const override;

  /// Replay the benchmark's address stream through the modeled Athlon-64
  /// L1/L2 hierarchy and return the L2 miss rate (fraction of L2 probes
  /// that go to memory).  Deterministic for a given seed.
  [[nodiscard]] double measured_l2_miss_rate(std::size_t accesses = 200000,
                                             std::uint64_t seed = 99) const;

 private:
  Params params_;
};

/// Half-shift contention probe for the routed-topology benches and for
/// racing DVFS policies on congestion-induced slack (docs/NETWORK.md):
/// per iteration every rank ships `bytes` to (rank + n/2) % n and meets
/// at a scalar allreduce.  The half-shift permutation crosses the spine
/// on a fat tree — with n/2 even it lands every flow on the same trunk
/// parity, the worst-case deterministic hash — and floods whole torus
/// columns; on a flat or non-blocking fabric it is embarrassingly
/// parallel.  Compute per iteration is fixed, so wall-time growth
/// across fabrics is communication slack by construction.
class ShiftExchange final : public cluster::Workload {
 public:
  struct Params {
    double upm = 100.0;     ///< Compute characterization per iteration.
    double misses = 5.0e4;  ///< L2 misses per iteration block.
    int iterations = 4;
    Bytes bytes = megabytes(1);
  };

  ShiftExchange() = default;
  explicit ShiftExchange(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "SHIFT"; }
  [[nodiscard]] std::string signature() const override;
  [[nodiscard]] const Params& params() const { return params_; }
  void run(cluster::RankContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace gearsim::workloads
