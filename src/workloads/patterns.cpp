#include "workloads/patterns.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace gearsim::workloads {

namespace {
constexpr int kTagFwd = 1;
constexpr int kTagBwd = 2;

int isqrt(int n) {
  int r = static_cast<int>(std::lround(std::sqrt(static_cast<double>(n))));
  while (r * r > n) --r;
  while ((r + 1) * (r + 1) <= n) ++r;
  return r;
}
}  // namespace

void ring_halo_exchange(cluster::RankContext& ctx, Bytes bytes) {
  const int n = ctx.nprocs();
  if (n == 1) return;
  const mpi::Rank right = (ctx.rank() + 1) % n;
  const mpi::Rank left = (ctx.rank() - 1 + n) % n;
  ctx.comm().sendrecv(right, kTagFwd, bytes, left, kTagFwd);
  ctx.comm().sendrecv(left, kTagBwd, bytes, right, kTagBwd);
}

void chain_halo_exchange(cluster::RankContext& ctx, Bytes bytes) {
  const int n = ctx.nprocs();
  if (n == 1) return;
  const bool has_left = ctx.rank() > 0;
  const bool has_right = ctx.rank() + 1 < n;
  const mpi::Rank left = ctx.rank() - 1;
  const mpi::Rank right = ctx.rank() + 1;
  if (has_right && has_left) {
    ctx.comm().sendrecv(right, kTagFwd, bytes, left, kTagFwd);
    ctx.comm().sendrecv(left, kTagBwd, bytes, right, kTagBwd);
  } else if (has_right) {
    ctx.comm().send(right, kTagFwd, bytes);
    ctx.comm().recv(right, kTagBwd);
  } else {  // Rightmost.
    ctx.comm().recv(left, kTagFwd);
    ctx.comm().send(left, kTagBwd, bytes);
  }
}

void adi_sweep(cluster::RankContext& ctx, Bytes face_bytes) {
  const int n = ctx.nprocs();
  if (n == 1) return;
  const int q = isqrt(n);
  GEARSIM_REQUIRE(q * q == n, "ADI sweep needs a square process grid");
  const int row = ctx.rank() / q;
  const int col = ctx.rank() % q;
  const auto face = static_cast<Bytes>(static_cast<double>(face_bytes) /
                                       static_cast<double>(q));
  for (int dir = 0; dir < 3; ++dir) {
    // Row neighbors for the x sweep, column neighbors for y and z.
    mpi::Rank next;
    mpi::Rank prev;
    if (dir == 0) {
      next = row * q + (col + 1) % q;
      prev = row * q + (col - 1 + q) % q;
    } else {
      next = ((row + 1) % q) * q + col;
      prev = ((row - 1 + q) % q) * q + col;
    }
    for (int step = 0; step < q - 1; ++step) {
      ctx.comm().sendrecv(next, kTagFwd + dir, face, prev, kTagFwd + dir);
    }
  }
}

void wavefront_exchange(cluster::RankContext& ctx, Bytes volume_scale) {
  const int n = ctx.nprocs();
  if (n == 1) return;
  const mpi::Rank right = (ctx.rank() + 1) % n;
  const mpi::Rank left = (ctx.rank() - 1 + n) % n;
  const int msgs =
      2 * static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  const Bytes per_msg = volume_scale * 4 / static_cast<Bytes>(msgs);
  for (int m = 0; m < msgs / 2; ++m) {
    ctx.comm().sendrecv(right, kTagFwd, per_msg, left, kTagFwd);
    ctx.comm().sendrecv(left, kTagBwd, per_msg, right, kTagBwd);
  }
}

}  // namespace gearsim::workloads
