#include "workloads/nas.hpp"

#include <cmath>

#include "workloads/characterize.hpp"
#include "workloads/patterns.hpp"

namespace gearsim::workloads {

namespace {
/// Integer sqrt for process grids.
int isqrt(int n) {
  int r = static_cast<int>(std::lround(std::sqrt(static_cast<double>(n))));
  while (r * r > n) --r;
  while ((r + 1) * (r + 1) <= n) ++r;
  return r;
}

constexpr Bytes kScalar = 8;      ///< One double (norms, dot products).
}  // namespace

bool is_square(int n) {
  const int r = isqrt(n);
  return r * r == n;
}

std::string NasSkeleton::signature() const {
  using cluster::sig_value;
  return std::string(params_.name) + "(upm=" + sig_value(params_.upm) +
         ",seq=" + sig_value(params_.seq_active.value()) +
         ",serial=" + sig_value(params_.serial_fraction) +
         ",iters=" + sig_value(std::uint64_t(params_.iterations)) +
         ",overlap=" + sig_value(params_.overlap) + extra_signature() + ")";
}

std::string NasCg::extra_signature() const {
  return ",pair=" + cluster::sig_value(std::uint64_t(pair_bytes));
}

std::string NasMg::extra_signature() const {
  using cluster::sig_value;
  return ",levels=" + sig_value(std::uint64_t(levels)) +
         ",fine=" + sig_value(std::uint64_t(fine_halo_bytes)) +
         ",coarse=" + sig_value(std::uint64_t(coarse_bytes));
}

std::string NasLu::extra_signature() const {
  return ",sweep=" + cluster::sig_value(std::uint64_t(sweep_bytes));
}

std::string NasBt::extra_signature() const {
  return ",face=" + cluster::sig_value(std::uint64_t(face_bytes));
}

std::string NasSp::extra_signature() const {
  using cluster::sig_value;
  return ",face=" + sig_value(std::uint64_t(face_bytes)) +
         ",sync=" + sig_value(std::uint64_t(sync_bytes));
}

cpu::ComputeBlock NasSkeleton::iteration_block(
    const cluster::RankContext& ctx) const {
  const cpu::ComputeBlock total = block_for_time(
      ctx.cpu_model(), params_.upm, params_.seq_active, params_.overlap);
  const double share = amdahl_share(params_.serial_fraction, ctx.nprocs());
  return total.scaled(share / static_cast<double>(params_.iterations));
}

// --- EP ----------------------------------------------------------------------
// Each rank generates its share of random pairs (pure compute at the
// suite's highest UPM), then the partial sums are combined in three tiny
// allreduces.  Essentially no communication: the paper's perfect-speedup
// (case 2) exemplar.

NasEp::NasEp()
    : NasSkeleton({/*name=*/"EP", /*upm=*/844.0,
                   /*seq_active=*/seconds(230.0),
                   /*serial_fraction=*/0.0002, /*iterations=*/16}) {}

void NasEp::run(cluster::RankContext& ctx) const {
  const cpu::ComputeBlock block = iteration_block(ctx);
  for (int it = 0; it < params_.iterations; ++it) ctx.compute(block);
  if (ctx.nprocs() > 1) {
    for (int k = 0; k < 3; ++k) ctx.comm().allreduce(2 * kScalar);
  }
}

// --- CG ----------------------------------------------------------------------
// Sparse mat-vec iterations at the suite's lowest UPM (8.60).  The
// skeleton's exchange volume per partner grows with the node count
// (replicated row/column segments), which reproduces the quadratic
// T^I(n) the paper reports for CG and its poor 4->8 speedup; two scalar
// allreduces per iteration model the dot products.

NasCg::NasCg()
    : NasSkeleton({/*name=*/"CG", /*upm=*/8.60,
                   /*seq_active=*/seconds(120.0),
                   /*serial_fraction=*/0.005, /*iterations=*/25}) {}

void NasCg::run(cluster::RankContext& ctx) const {
  const cpu::ComputeBlock block = iteration_block(ctx);
  const int n = ctx.nprocs();
  const Bytes pair = pair_bytes / 2 * static_cast<Bytes>(n);
  for (int it = 0; it < params_.iterations; ++it) {
    ctx.compute(block);
    if (n > 1) {
      ctx.comm().alltoall(pair);
      ctx.comm().allreduce(kScalar);
      ctx.comm().allreduce(kScalar);
    }
  }
}

// --- MG ----------------------------------------------------------------------
// V-cycles over `levels` grid levels: halo exchanges shrink by half per
// level and by n^{2/3} with the node count (3-D surface/volume); the
// coarse grid is agglomerated to rank 0 and redistributed.  The coarse
// levels are replicated work, so MG carries the suite's largest serial
// fraction — its first doubling is the paper's case-1 example.

NasMg::NasMg()
    : NasSkeleton({/*name=*/"MG", /*upm=*/70.6,
                   /*seq_active=*/seconds(55.0),
                   /*serial_fraction=*/0.12, /*iterations=*/20}) {}

void NasMg::run(cluster::RankContext& ctx) const {
  const cpu::ComputeBlock block = iteration_block(ctx);
  const int n = ctx.nprocs();
  const double surface = std::pow(static_cast<double>(n), -2.0 / 3.0);
  for (int cycle = 0; cycle < params_.iterations; ++cycle) {
    ctx.compute(block);
    if (n == 1) continue;
    for (int level = 0; level < levels; ++level) {
      const auto halo = static_cast<Bytes>(
          std::max(2048.0, static_cast<double>(fine_halo_bytes >> level) *
                               surface));
      ring_halo_exchange(ctx, halo);
    }
    // Agglomerate the coarse grid on rank 0, solve (replicated in the
    // compute block), and redistribute.
    const Bytes coarse_share = coarse_bytes / static_cast<Bytes>(n);
    ctx.comm().gather(0, coarse_share);
    ctx.comm().scatter(0, coarse_share);
    ctx.comm().allreduce(kScalar);  // Residual norm.
  }
}

// --- LU ----------------------------------------------------------------------
// SSOR wavefront sweeps: per iteration a rank exchanges 2*ceil(sqrt(n))
// messages whose sizes shrink so the per-rank volume stays near constant
// — the paper's LU anomaly ("each node sends more messages, but the
// average message size decreases"; total communication ~ constant).

NasLu::NasLu()
    : NasSkeleton({/*name=*/"LU", /*upm=*/73.5,
                   /*seq_active=*/seconds(620.0),
                   /*serial_fraction=*/0.008, /*iterations=*/200,
                   /*overlap=*/0.78}) {}

void NasLu::run(cluster::RankContext& ctx) const {
  const cpu::ComputeBlock block = iteration_block(ctx);
  const int n = ctx.nprocs();
  for (int it = 0; it < params_.iterations; ++it) {
    ctx.compute(block);
    // Lower then upper triangular sweep: alternating pipeline directions
    // with per-rank volume held near-constant as nodes are added.
    wavefront_exchange(ctx, sweep_bytes);
  }
  if (n > 1) ctx.comm().allreduce(5 * kScalar);  // Final residuals.
}

// --- BT / SP -----------------------------------------------------------------
// ADI on a sqrt(n) x sqrt(n) process grid: three directional phases per
// iteration, each a pipeline of (sqrt(n)-1) face exchanges along the grid
// row or column; faces shrink with the grid dimension.

NasBt::NasBt()
    : NasSkeleton({/*name=*/"BT", /*upm=*/79.6,
                   /*seq_active=*/seconds(650.0),
                   /*serial_fraction=*/0.07, /*iterations=*/60}) {}

bool NasBt::supports(int nprocs) const { return is_square(nprocs); }

void NasBt::run(cluster::RankContext& ctx) const {
  const cpu::ComputeBlock block = iteration_block(ctx);
  for (int it = 0; it < params_.iterations; ++it) {
    ctx.compute(block);
    if (ctx.nprocs() > 1) {
      adi_sweep(ctx, face_bytes);
      if (it % 5 == 4) ctx.comm().allreduce(4 * kScalar);
    }
  }
}

NasSp::NasSp()
    : NasSkeleton({/*name=*/"SP", /*upm=*/49.5,
                   /*seq_active=*/seconds(550.0),
                   /*serial_fraction=*/0.06, /*iterations=*/100}) {}

bool NasSp::supports(int nprocs) const { return is_square(nprocs); }

void NasSp::run(cluster::RankContext& ctx) const {
  const cpu::ComputeBlock block = iteration_block(ctx);
  for (int it = 0; it < params_.iterations; ++it) {
    ctx.compute(block);
    if (ctx.nprocs() > 1) {
      adi_sweep(ctx, face_bytes);
      // SP synchronizes every iteration with a bulky residual/forcing
      // reduction — a log(n)-round collective whose cost dominates SP's
      // idle time and gives it the logarithmic T^I(n) the paper assigns.
      ctx.comm().allreduce(sync_bytes);
    }
  }
}

}  // namespace gearsim::workloads
