// Skeletons of the six NAS parallel benchmarks the paper measures
// (class B: EP, CG, MG, LU, BT, SP; FT and IS are excluded in the paper
// too).  Each skeleton reproduces the benchmark's *characterization* —
// UPM from Table 1, iteration structure, and communication pattern — and
// issues real messages through the simulated MPI, so active/idle
// decompositions, contention, and scaling behavior all emerge from the
// same mechanisms as on the paper's cluster.
//
// Communication-shape classifications the skeletons are built to exhibit
// (paper Step 2): BT, EP, MG, SP logarithmic; CG quadratic; LU nominally
// linear but — as the paper's traces found — effectively constant (more
// messages, smaller each, as nodes are added).
#pragma once

#include <memory>
#include <vector>

#include "cluster/workload.hpp"
#include "util/units.hpp"

namespace gearsim::workloads {

/// Calibration record for one NAS benchmark.
struct NasParams {
  const char* name = "";
  double upm = 100.0;        ///< Table 1 micro-ops per L2 miss.
  Seconds seq_active{};      ///< T^A(1) at the fastest gear.
  double serial_fraction = 0.01;
  int iterations = 50;
  /// Memory-level-parallelism overlap (see cpu::ComputeBlock::overlap).
  /// Nonzero only for LU: the paper's slope table shows LU out of UPM
  /// order — its runtime behavior is more memory-bound than its counter
  /// ratio suggests, which is what ultimately enables its case-3 showing
  /// in Figure 2.
  double overlap = 0.0;
};

/// Shared skeleton machinery: per-iteration Amdahl-split compute blocks.
class NasSkeleton : public cluster::Workload {
 public:
  explicit NasSkeleton(NasParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return params_.name; }
  /// Calibration record plus the subclass's communication knobs, so two
  /// differently-tuned instances never share a cache key.
  [[nodiscard]] std::string signature() const override;
  [[nodiscard]] const NasParams& params() const { return params_; }

 protected:
  /// Subclass knobs (message sizes, level counts) folded into
  /// signature(); default none.
  [[nodiscard]] virtual std::string extra_signature() const { return ""; }

  /// The compute block one rank executes per iteration on `ctx.nprocs()`
  /// nodes.
  [[nodiscard]] cpu::ComputeBlock iteration_block(
      const cluster::RankContext& ctx) const;

  NasParams params_;
};

/// EP — embarrassingly parallel random-number kernel.  Pure compute (the
/// suite's highest UPM, 844) with three tiny allreduces at the end;
/// near-perfect speedup, the paper's case-2 exemplar.
class NasEp final : public NasSkeleton {
 public:
  NasEp();
  void run(cluster::RankContext& ctx) const override;
};

/// CG — conjugate gradient.  The suite's most memory-bound code (UPM
/// 8.60): sparse mat-vec iterations with partner exchanges modeled as a
/// pairwise alltoall plus two scalar allreduces per iteration.  Dense
/// traffic through a finite switch fabric gives the quadratic T^I(n) the
/// paper reports, and the poor 4->8 speedup of Figure 2.
class NasCg final : public NasSkeleton {
 public:
  NasCg();
  void run(cluster::RankContext& ctx) const override;

  /// Per-ordered-pair message size (calibration knob).
  Bytes pair_bytes = kilobytes(120);

 protected:
  [[nodiscard]] std::string extra_signature() const override;
};

/// MG — multigrid V-cycles.  Halo exchanges shrink with the level and
/// with the node count (surface/volume), while the coarse levels are
/// effectively replicated work — a large serial fraction — making the
/// first doubling a case-1 (poor speedup) transition as in Figure 2.
class NasMg final : public NasSkeleton {
 public:
  NasMg();
  void run(cluster::RankContext& ctx) const override;

  int levels = 8;
  Bytes fine_halo_bytes = kilobytes(384);  ///< Finest-level halo at n=1.
  Bytes coarse_bytes = kilobytes(192);     ///< Agglomerated coarse grid.

 protected:
  [[nodiscard]] std::string extra_signature() const override;
};

/// LU — SSOR with 2D pipelined wavefronts: many small north/south/east/
/// west messages whose count grows and size shrinks as nodes are added,
/// so total communication stays nearly constant (the paper's LU anomaly).
class NasLu final : public NasSkeleton {
 public:
  NasLu();
  void run(cluster::RankContext& ctx) const override;

  Bytes sweep_bytes = kilobytes(120);  ///< Wavefront traffic scale; a rank
                                       ///< moves 4x this per iteration.

 protected:
  [[nodiscard]] std::string extra_signature() const override;
};

/// BT — block-tridiagonal ADI on a square process grid (1, 4, 9, 16, 25
/// ranks): face exchanges along rows and columns in three directions.
class NasBt final : public NasSkeleton {
 public:
  NasBt();
  void run(cluster::RankContext& ctx) const override;
  [[nodiscard]] bool supports(int nprocs) const override;

  Bytes face_bytes = kilobytes(240);  ///< Face size at n=1 scale.

 protected:
  [[nodiscard]] std::string extra_signature() const override;
};

/// SP — scalar-pentadiagonal ADI; same square-grid structure as BT with a
/// lower UPM (49.5) and heavier synchronization.
class NasSp final : public NasSkeleton {
 public:
  NasSp();
  void run(cluster::RankContext& ctx) const override;
  [[nodiscard]] bool supports(int nprocs) const override;

  Bytes face_bytes = kilobytes(280);
  Bytes sync_bytes = kilobytes(355);  ///< Per-iteration reduction payload.

 protected:
  [[nodiscard]] std::string extra_signature() const override;
};

/// True when `n` is a perfect square (BT/SP process-grid requirement).
[[nodiscard]] bool is_square(int n);

}  // namespace gearsim::workloads
