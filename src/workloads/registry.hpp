// Workload registry: name -> factory, plus the canonical benchmark sets
// the harnesses iterate over (the paper's six NAS codes, in Table-1 order).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/workload.hpp"

namespace gearsim::workloads {

struct RegistryEntry {
  std::string name;
  std::function<std::unique_ptr<cluster::Workload>()> make;
};

/// The six NAS benchmarks in the paper's Table-1 (descending UPM) order:
/// EP, BT, LU, MG, SP, CG.
const std::vector<RegistryEntry>& nas_suite();

/// Everything: NAS suite + Jacobi + the synthetic benchmark.
const std::vector<RegistryEntry>& all_workloads();

/// Instantiate by name (case-sensitive); throws ContractError if unknown.
std::unique_ptr<cluster::Workload> make_workload(const std::string& name);

/// Node counts up to `max_nodes` on which `workload` runs, matching the
/// paper's configurations: powers of two for the NAS non-grid codes,
/// perfect squares for BT/SP, every even count for Jacobi/SYNTH.
std::vector<int> paper_node_counts(const cluster::Workload& workload,
                                   int max_nodes);

}  // namespace gearsim::workloads
