
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/jacobi.cpp" "src/workloads/CMakeFiles/gearsim_workloads.dir/jacobi.cpp.o" "gcc" "src/workloads/CMakeFiles/gearsim_workloads.dir/jacobi.cpp.o.d"
  "/root/repo/src/workloads/nas.cpp" "src/workloads/CMakeFiles/gearsim_workloads.dir/nas.cpp.o" "gcc" "src/workloads/CMakeFiles/gearsim_workloads.dir/nas.cpp.o.d"
  "/root/repo/src/workloads/nas_extra.cpp" "src/workloads/CMakeFiles/gearsim_workloads.dir/nas_extra.cpp.o" "gcc" "src/workloads/CMakeFiles/gearsim_workloads.dir/nas_extra.cpp.o.d"
  "/root/repo/src/workloads/patterns.cpp" "src/workloads/CMakeFiles/gearsim_workloads.dir/patterns.cpp.o" "gcc" "src/workloads/CMakeFiles/gearsim_workloads.dir/patterns.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/gearsim_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/gearsim_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/gearsim_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/gearsim_workloads.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/cluster/CMakeFiles/gearsim_cluster.dir/DependInfo.cmake"
  "/root/repo/src/cpu/CMakeFiles/gearsim_cpu.dir/DependInfo.cmake"
  "/root/repo/src/faults/CMakeFiles/gearsim_faults.dir/DependInfo.cmake"
  "/root/repo/src/power/CMakeFiles/gearsim_power.dir/DependInfo.cmake"
  "/root/repo/src/trace/CMakeFiles/gearsim_trace.dir/DependInfo.cmake"
  "/root/repo/src/mpi/CMakeFiles/gearsim_mpi.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/gearsim_sim.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/gearsim_net.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/gearsim_obs.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/gearsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
