# Empty dependencies file for gearsim_workloads.
# This may be replaced when dependencies are built.
