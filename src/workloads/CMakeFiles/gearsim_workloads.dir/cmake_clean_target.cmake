file(REMOVE_RECURSE
  "libgearsim_workloads.a"
)
