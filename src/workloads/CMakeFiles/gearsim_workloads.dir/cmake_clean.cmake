file(REMOVE_RECURSE
  "CMakeFiles/gearsim_workloads.dir/jacobi.cpp.o"
  "CMakeFiles/gearsim_workloads.dir/jacobi.cpp.o.d"
  "CMakeFiles/gearsim_workloads.dir/nas.cpp.o"
  "CMakeFiles/gearsim_workloads.dir/nas.cpp.o.d"
  "CMakeFiles/gearsim_workloads.dir/nas_extra.cpp.o"
  "CMakeFiles/gearsim_workloads.dir/nas_extra.cpp.o.d"
  "CMakeFiles/gearsim_workloads.dir/patterns.cpp.o"
  "CMakeFiles/gearsim_workloads.dir/patterns.cpp.o.d"
  "CMakeFiles/gearsim_workloads.dir/registry.cpp.o"
  "CMakeFiles/gearsim_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/gearsim_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/gearsim_workloads.dir/synthetic.cpp.o.d"
  "libgearsim_workloads.a"
  "libgearsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
