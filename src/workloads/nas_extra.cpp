#include "workloads/nas_extra.hpp"

#include "workloads/characterize.hpp"

namespace gearsim::workloads {

std::string NasFt::signature() const {
  using cluster::sig_value;
  return "FT(upm=" + sig_value(params_.upm) +
         ",seq=" + sig_value(params_.seq_active.value()) +
         ",serial=" + sig_value(params_.serial_fraction) +
         ",iters=" + sig_value(std::uint64_t(params_.iterations)) +
         ",transpose=" + sig_value(std::uint64_t(params_.transpose_bytes)) +
         ")";
}

std::string NasIs::signature() const {
  using cluster::sig_value;
  return name() + "(upm=" + sig_value(params_.upm) +
         ",seqB=" + sig_value(params_.seq_active_b.value()) +
         ",seqC=" + sig_value(params_.seq_active_c.value()) +
         ",iters=" + sig_value(std::uint64_t(params_.iterations)) +
         ",keysB=" + sig_value(std::uint64_t(params_.keys_bytes_b)) +
         ",keysC=" + sig_value(std::uint64_t(params_.keys_bytes_c)) +
         ",bucket=" + sig_value(std::uint64_t(params_.bucket_bytes)) +
         ",ws=" + sig_value(std::uint64_t(params_.working_set_c)) +
         ",mem=" + sig_value(std::uint64_t(params_.node_memory)) +
         ",thrash=" + sig_value(params_.thrash_factor) + ")";
}

void NasFt::run(cluster::RankContext& ctx) const {
  const int n = ctx.nprocs();
  const cpu::ComputeBlock block =
      block_for_time(ctx.cpu_model(), params_.upm, params_.seq_active)
          .scaled(amdahl_share(params_.serial_fraction, n) /
                  static_cast<double>(params_.iterations));
  // The transpose exchanges the full volume every iteration regardless of
  // node count; the per-pair share shrinks as 1/n^2.
  const Bytes pair =
      n > 1 ? params_.transpose_bytes / static_cast<Bytes>(n) /
                  static_cast<Bytes>(n)
            : 0;
  for (int it = 0; it < params_.iterations; ++it) {
    ctx.compute(block);
    if (n > 1) {
      ctx.comm().alltoall(pair);   // Forward transpose.
      ctx.comm().alltoall(pair);   // Inverse transpose.
      ctx.comm().allreduce(16);    // Checksum.
    }
  }
}

bool NasIs::fits_in_memory(int nprocs) const {
  if (params_.cls == Class::kB) return true;
  return params_.working_set_c / static_cast<Bytes>(nprocs) <=
         params_.node_memory;
}

void NasIs::run(cluster::RankContext& ctx) const {
  const int n = ctx.nprocs();
  const bool class_c = params_.cls == Class::kC;
  const Seconds seq_active =
      class_c ? params_.seq_active_c : params_.seq_active_b;
  cpu::ComputeBlock block =
      block_for_time(ctx.cpu_model(), params_.upm, seq_active)
          .scaled(amdahl_share(0.02, n) /
                  static_cast<double>(params_.iterations));
  if (class_c && !fits_in_memory(n)) {
    // The per-node key range exceeds RAM: every miss becomes a paging
    // access.  Model as extra memory references at unchanged UPM counters
    // (the CPU work is the same; the memory system is catastrophically
    // slower), which is what makes the paper call comparative energy
    // results on 1-2 nodes "meaningless".
    block.l2_misses *= params_.thrash_factor;
  }
  const Bytes keys =
      class_c ? params_.keys_bytes_c : params_.keys_bytes_b;
  const Bytes pair = n > 1 ? keys / static_cast<Bytes>(n) /
                                 static_cast<Bytes>(n)
                           : 0;
  for (int it = 0; it < params_.iterations; ++it) {
    ctx.compute(block);  // Local counting / ranking.
    if (n > 1) {
      ctx.comm().allreduce(params_.bucket_bytes);  // Bucket boundaries.
      ctx.comm().alltoall(pair);                   // Key redistribution.
      ctx.comm().allreduce(8);  // Partial-verification reduction.
    }
  }
}

}  // namespace gearsim::workloads
