// FT and IS: the two NAS benchmarks the paper *excludes* from its
// figures, implemented anyway so the library covers the full suite and
// the exclusions themselves are reproducible:
//
//  * "The NAS FT benchmark is not shown because we cannot get it to
//    work" — FT's global transposes move enormous messages; on a 1 GB
//    node the class-B working set plus MPI buffering is marginal.  Our
//    skeleton runs, and bench/appendix_ft_is.cpp shows its curves.
//  * "IS is not shown because (1) class B is too small to get any
//    parallel speedup and (2) class C thrashes on 1 and 2 nodes, making
//    comparative energy results meaningless."  Both effects are modeled:
//    class B is latency-dominated (tiny compute per rank), and class C's
//    per-node working set exceeds node memory below 4 nodes, multiplying
//    every memory reference by a paging penalty.
#pragma once

#include "cluster/workload.hpp"
#include "util/units.hpp"

namespace gearsim::workloads {

/// FT — 3-D FFT: large compute slabs separated by global transposes
/// (alltoall of slab partitions) plus a checksum reduction per iteration.
class NasFt final : public cluster::Workload {
 public:
  struct Params {
    double upm = 95.0;  ///< FFT butterflies are cache-friendly per miss.
    Seconds seq_active = seconds(160.0);
    double serial_fraction = 0.01;
    int iterations = 20;
    /// Total transpose volume per iteration, split across ordered pairs.
    Bytes transpose_bytes = megabytes(24);
  };

  NasFt() = default;
  explicit NasFt(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "FT"; }
  [[nodiscard]] std::string signature() const override;
  [[nodiscard]] const Params& params() const { return params_; }
  void run(cluster::RankContext& ctx) const override;

 private:
  Params params_;
};

/// IS — integer (bucket) sort: one counting pass, a key alltoall, a local
/// rank pass, and a verification allreduce per iteration.  Class selects
/// the paper's two pathologies.
class NasIs final : public cluster::Workload {
 public:
  enum class Class { kB, kC };

  struct Params {
    Class cls = Class::kB;
    double upm = 20.0;  ///< Random-access histogramming: memory-bound.
    /// Class-B total work is small — that is pathology (1).
    Seconds seq_active_b = seconds(4.0);
    Seconds seq_active_c = seconds(36.0);
    int iterations = 10;
    Bytes keys_bytes_b = megabytes(4);    ///< Keys exchanged per iteration.
    Bytes keys_bytes_c = megabytes(34);
    /// Bucket-count reduction per iteration: a fixed-size collective
    /// whose cost *grows* with node count — the structural reason class B
    /// cannot speed up (its compute shrinks while this does not).
    Bytes bucket_bytes = kilobytes(512);
    /// Class-C total working set; divided across nodes.  Below the
    /// memory floor the run pages — pathology (2).
    Bytes working_set_c = megabytes(2600);
    Bytes node_memory = megabytes(1024);  ///< The paper's 1 GB nodes.
    /// Memory-latency multiplier while paging (disk-backed misses).
    double thrash_factor = 12.0;
  };

  NasIs() = default;
  explicit NasIs(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override {
    return params_.cls == Class::kB ? "IS.B" : "IS.C";
  }
  [[nodiscard]] std::string signature() const override;
  [[nodiscard]] const Params& params() const { return params_; }
  void run(cluster::RankContext& ctx) const override;

  /// True when the per-node share of the class-C working set fits RAM.
  [[nodiscard]] bool fits_in_memory(int nprocs) const;

 private:
  Params params_;
};

}  // namespace gearsim::workloads
