// Workload characterization helpers.
//
// Skeleton workloads are calibrated by three paper-visible quantities:
// UPM (Table 1), sequential active time T^A(1), and the Amdahl serial
// fraction F_s.  These helpers convert that characterization into concrete
// compute blocks: solve T^A(1) = uops/(upc*f1) + misses*L with
// uops = UPM*misses for the miss count, then share work across ranks as
// T^A(n) = T^A(1) (F_p/n + F_s) — the serial part is *replicated* work
// (every rank performs it), which is how it appears in NAS codes.
#pragma once

#include "cpu/compute.hpp"
#include "cpu/cpu_model.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace gearsim::workloads {

/// The compute block whose fastest-gear execution time is `seq_active`
/// with micro-op/miss ratio `upm` and MLP overlap `overlap`.
inline cpu::ComputeBlock block_for_time(const cpu::CpuModel& model, double upm,
                                        Seconds seq_active,
                                        double overlap = 0.0) {
  GEARSIM_REQUIRE(upm > 0.0, "UPM must be positive");
  GEARSIM_REQUIRE(seq_active.value() > 0.0, "active time must be positive");
  GEARSIM_REQUIRE(overlap >= 0.0 && overlap < 1.0, "overlap must be in [0,1)");
  const double per_miss =
      (1.0 - overlap) * upm /
          (model.params().upc_eff * model.gears().fastest().frequency.value()) +
      model.params().mem_latency.value();
  const double misses = seq_active.value() / per_miss;
  return cpu::block_from_upm(upm, misses, overlap);
}

/// Amdahl share of the total work one rank performs: F_p/n + F_s.
inline double amdahl_share(double serial_fraction, int nprocs) {
  GEARSIM_REQUIRE(serial_fraction >= 0.0 && serial_fraction < 1.0,
                  "serial fraction must be in [0,1)");
  GEARSIM_REQUIRE(nprocs >= 1, "need at least one process");
  const double fp = 1.0 - serial_fraction;
  return fp / static_cast<double>(nprocs) + serial_fraction;
}

}  // namespace gearsim::workloads
