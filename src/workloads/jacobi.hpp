// Hand-written Jacobi iteration (the paper's Figure 3 application).
//
// 1-D block decomposition of a 2-D grid: per iteration each rank updates
// its block and exchanges one fixed-size halo row with each neighbor,
// with a scalar allreduce every `norm_every` iterations for the
// convergence test.  Unlike the NAS codes it runs on any node count;
// calibrated to the paper's measured speedups of ~1.9 / 3.6 / 5.0 / 6.4 /
// 7.7 on 2 / 4 / 6 / 8 / 10 nodes, which makes every adjacent pair of
// energy-time curves a case-3 pair.
#pragma once

#include "cluster/workload.hpp"
#include "util/units.hpp"

namespace gearsim::workloads {

class Jacobi final : public cluster::Workload {
 public:
  struct Params {
    double upm = 30.0;             ///< Stencil sweep: moderately memory-bound.
    Seconds seq_active = seconds(80.0);
    double serial_fraction = 0.005;
    int iterations = 200;
    Bytes halo_bytes = kilobytes(64);  ///< One grid row of doubles.
    int norm_every = 10;
    /// Weak scaling: grow the grid with the node count so per-rank work
    /// stays constant (`seq_active` becomes the per-rank time at every
    /// n).  The NAS suite is strong-scaled ("non-scaled speedup"), which
    /// is why its cluster energy blows up at scale (paper §4.2); this
    /// flag provides the contrast.
    bool weak_scaling = false;
  };

  Jacobi() = default;
  explicit Jacobi(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "Jacobi"; }
  [[nodiscard]] std::string signature() const override;
  [[nodiscard]] const Params& params() const { return params_; }
  void run(cluster::RankContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace gearsim::workloads
