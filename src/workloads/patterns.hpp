// Reusable communication patterns for workload authors.
//
// The NAS skeletons are built from a handful of recurring exchange
// structures; these helpers expose them so custom workloads (and tests)
// can compose the same building blocks instead of hand-rolling
// deadlock-safe neighbor exchanges.
#pragma once

#include "cluster/workload.hpp"

namespace gearsim::workloads {

/// Bidirectional halo exchange on a periodic 1-D ring: every rank trades
/// `bytes` with each neighbor.  No-op on one rank.
void ring_halo_exchange(cluster::RankContext& ctx, Bytes bytes);

/// Bidirectional halo exchange on a non-periodic 1-D chain (ends have one
/// neighbor), as in the Jacobi example.  No-op on one rank.
void chain_halo_exchange(cluster::RankContext& ctx, Bytes bytes);

/// The BT/SP ADI structure: three directional phases on a q x q process
/// grid; each phase performs (q-1) pipeline exchanges of `face_bytes / q`
/// with the row (x) or column (y, z) neighbor.  Requires nprocs == q*q.
void adi_sweep(cluster::RankContext& ctx, Bytes face_bytes);

/// LU-style wavefront: 2*ceil(sqrt(n)) messages per call whose sizes
/// shrink with n such that the per-rank volume stays ~volume_scale*4.
void wavefront_exchange(cluster::RankContext& ctx, Bytes volume_scale);

}  // namespace gearsim::workloads
