// Fault events on a run's timeline.
//
// The fault-injection layer (src/faults/) records everything it does to a
// run — crashes, straggler windows, dropped links, meter dropouts,
// checkpoints, restarts — as FaultEvents, so the same export paths that
// carry the MPI trace (CSV rows, timeline SVG markers) also show *why* a
// run's shape changed.  The type lives in trace/, below faults/ in the
// dependency order, so the exporters can consume it without a cycle.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace gearsim::trace {

enum class FaultEventKind {
  kNodeCrash,        ///< A node died; the run aborts or restarts.
  kStragglerBegin,   ///< A node's effective gear is silently capped.
  kStragglerEnd,
  kLinkDrop,         ///< Message lost; retransmitted with backoff.
  kMeterDropBegin,   ///< A sampling multimeter stops seeing samples.
  kMeterDropEnd,
  kCheckpoint,       ///< A coordinated checkpoint became durable.
  kRestart,          ///< The job re-launched from the last checkpoint.
};

[[nodiscard]] const char* to_string(FaultEventKind k);

struct FaultEvent {
  FaultEventKind kind{};
  /// The node the event concerns (sender for link events).
  std::size_t node = 0;
  Seconds at{};
  /// Free-form context ("gear capped to 6", "dst=3 retries=2", ...).
  std::string detail;
};

using FaultLog = std::vector<FaultEvent>;

}  // namespace gearsim::trace
