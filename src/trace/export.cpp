#include "trace/export.hpp"

#include <fstream>
#include <ostream>

#include "util/assert.hpp"
#include "util/csv.hpp"

namespace gearsim::trace {

const char* to_string(FaultEventKind k) {
  switch (k) {
    case FaultEventKind::kNodeCrash: return "node_crash";
    case FaultEventKind::kStragglerBegin: return "straggler_begin";
    case FaultEventKind::kStragglerEnd: return "straggler_end";
    case FaultEventKind::kLinkDrop: return "link_drop";
    case FaultEventKind::kMeterDropBegin: return "meter_drop_begin";
    case FaultEventKind::kMeterDropEnd: return "meter_drop_end";
    case FaultEventKind::kCheckpoint: return "checkpoint";
    case FaultEventKind::kRestart: return "restart";
  }
  return "?";
}

namespace {

void write_mpi_rows(const Tracer& tracer, std::ostream& out) {
  out << "rank,call,enter_s,exit_s,duration_s,bytes,peer\n";
  out.precision(9);
  for (std::size_t rank = 0; rank < tracer.num_ranks(); ++rank) {
    for (const TraceRecord& rec : tracer.records(rank)) {
      out << rank << ',' << csv_escape(mpi::to_string(rec.type)) << ','
          << rec.enter.value() << ',' << rec.exit.value() << ','
          << rec.duration().value() << ',' << rec.bytes << ',' << rec.peer
          << '\n';
    }
  }
}

}  // namespace

void export_csv(const Tracer& tracer, std::ostream& out) {
  write_mpi_rows(tracer, out);
}

void export_csv(const Tracer& tracer, std::ostream& out,
                const FaultLog& faults) {
  write_mpi_rows(tracer, out);
  for (const FaultEvent& ev : faults) {
    out << ev.node << ",fault:" << to_string(ev.kind) << ','
        << ev.at.value() << ',' << ev.at.value() << ",0,0,-1";
    // Details are free-form text ("dst=3, retries=2") — RFC-4180-quote
    // them so embedded commas/quotes/newlines survive a round trip.
    if (!ev.detail.empty()) out << ',' << csv_escape(ev.detail);
    out << '\n';
  }
}

void export_csv_file(const Tracer& tracer, const std::string& path) {
  export_csv_file(tracer, path, FaultLog{});
}

void export_csv_file(const Tracer& tracer, const std::string& path,
                     const FaultLog& faults) {
  std::ofstream out(path);
  GEARSIM_REQUIRE(out.good(), "cannot open " + path + " for writing");
  if (faults.empty()) {
    export_csv(tracer, out);
  } else {
    export_csv(tracer, out, faults);
  }
  GEARSIM_ENSURE(out.good(), "failed writing " + path);
}

}  // namespace gearsim::trace
