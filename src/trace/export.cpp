#include "trace/export.hpp"

#include <fstream>
#include <ostream>

#include "util/assert.hpp"

namespace gearsim::trace {

void export_csv(const Tracer& tracer, std::ostream& out) {
  out << "rank,call,enter_s,exit_s,duration_s,bytes,peer\n";
  out.precision(9);
  for (std::size_t rank = 0; rank < tracer.num_ranks(); ++rank) {
    for (const TraceRecord& rec : tracer.records(rank)) {
      out << rank << ',' << mpi::to_string(rec.type) << ','
          << rec.enter.value() << ',' << rec.exit.value() << ','
          << rec.duration().value() << ',' << rec.bytes << ',' << rec.peer
          << '\n';
    }
  }
}

void export_csv_file(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  GEARSIM_REQUIRE(out.good(), "cannot open " + path + " for writing");
  export_csv(tracer, out);
  GEARSIM_ENSURE(out.good(), "failed writing " + path);
}

}  // namespace gearsim::trace
