# Empty dependencies file for gearsim_trace.
# This may be replaced when dependencies are built.
