
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cpp" "src/trace/CMakeFiles/gearsim_trace.dir/analysis.cpp.o" "gcc" "src/trace/CMakeFiles/gearsim_trace.dir/analysis.cpp.o.d"
  "/root/repo/src/trace/export.cpp" "src/trace/CMakeFiles/gearsim_trace.dir/export.cpp.o" "gcc" "src/trace/CMakeFiles/gearsim_trace.dir/export.cpp.o.d"
  "/root/repo/src/trace/iteration.cpp" "src/trace/CMakeFiles/gearsim_trace.dir/iteration.cpp.o" "gcc" "src/trace/CMakeFiles/gearsim_trace.dir/iteration.cpp.o.d"
  "/root/repo/src/trace/timeline.cpp" "src/trace/CMakeFiles/gearsim_trace.dir/timeline.cpp.o" "gcc" "src/trace/CMakeFiles/gearsim_trace.dir/timeline.cpp.o.d"
  "/root/repo/src/trace/tracer.cpp" "src/trace/CMakeFiles/gearsim_trace.dir/tracer.cpp.o" "gcc" "src/trace/CMakeFiles/gearsim_trace.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/gearsim_util.dir/DependInfo.cmake"
  "/root/repo/src/mpi/CMakeFiles/gearsim_mpi.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/gearsim_sim.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/gearsim_net.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/gearsim_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
