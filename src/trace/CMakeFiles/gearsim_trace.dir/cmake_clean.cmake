file(REMOVE_RECURSE
  "CMakeFiles/gearsim_trace.dir/analysis.cpp.o"
  "CMakeFiles/gearsim_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/gearsim_trace.dir/export.cpp.o"
  "CMakeFiles/gearsim_trace.dir/export.cpp.o.d"
  "CMakeFiles/gearsim_trace.dir/iteration.cpp.o"
  "CMakeFiles/gearsim_trace.dir/iteration.cpp.o.d"
  "CMakeFiles/gearsim_trace.dir/timeline.cpp.o"
  "CMakeFiles/gearsim_trace.dir/timeline.cpp.o.d"
  "CMakeFiles/gearsim_trace.dir/tracer.cpp.o"
  "CMakeFiles/gearsim_trace.dir/tracer.cpp.o.d"
  "libgearsim_trace.a"
  "libgearsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
