file(REMOVE_RECURSE
  "libgearsim_trace.a"
)
