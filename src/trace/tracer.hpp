// MPI call tracing: the paper's instrumentation substrate.
//
// "This instrumentation intercepts all relevant MPI calls, and writes a
// timestamp to a log file. ... To reduce perturbation, each trace record
// is written to a local buffer."  The Tracer is a mpi::CallObserver that
// appends (rank, call, enter, exit, bytes, peer) records to per-rank
// vectors; analysis.hpp turns a finished trace into the T^A / T^I and
// T^C / T^R decompositions of Sections 3-4.
#pragma once

#include <cstddef>
#include <vector>

#include "mpi/types.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace gearsim::trace {

struct TraceRecord {
  mpi::CallType type{};
  Seconds enter{};
  Seconds exit{};
  Bytes bytes = 0;
  mpi::Rank peer = mpi::kAnySource;

  [[nodiscard]] Seconds duration() const { return exit - enter; }
};

class Tracer final : public mpi::CallObserver {
 public:
  explicit Tracer(std::size_t num_ranks);

  void on_enter(mpi::Rank rank, mpi::CallType type, Seconds now, Bytes bytes,
                mpi::Rank peer) override;
  void on_exit(mpi::Rank rank, mpi::CallType type, Seconds now) override;

  [[nodiscard]] std::size_t num_ranks() const { return buffers_.size(); }
  [[nodiscard]] const std::vector<TraceRecord>& records(std::size_t rank) const;
  /// Total records across ranks.
  [[nodiscard]] std::size_t total_records() const;
  /// Count of records of one call type on one rank (for comm-pattern
  /// inspection, the paper's "dynamic measurement of number of each MPI
  /// call").
  [[nodiscard]] std::size_t count(std::size_t rank, mpi::CallType type) const;

  void clear();

 private:
  std::vector<std::vector<TraceRecord>> buffers_;
  std::vector<std::size_t> open_;  ///< Index of the unfinished record; npos if none.
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
};

}  // namespace gearsim::trace
