#include "trace/timeline.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace gearsim::trace {

namespace {

/// Stable color per call family: sends warm, receives/waits cool,
/// collectives purple.
const char* call_color(mpi::CallType t) {
  switch (t) {
    case mpi::CallType::kSend:
    case mpi::CallType::kIsend:
    case mpi::CallType::kSendrecv:
      return "#e4572e";
    case mpi::CallType::kRecv:
    case mpi::CallType::kIrecv:
    case mpi::CallType::kWait:
    case mpi::CallType::kWaitall:
      return "#17a398";
    default:
      return "#7c5cbf";  // Collectives and comm management.
  }
}

}  // namespace

std::string render_timeline(const Tracer& tracer, Seconds wall,
                            const std::string& title,
                            const TimelineOptions& options) {
  return render_timeline(tracer, wall, title, FaultLog{}, options);
}

std::string render_timeline(const Tracer& tracer, Seconds wall,
                            const std::string& title, const FaultLog& faults,
                            const TimelineOptions& options) {
  GEARSIM_REQUIRE(wall.value() > 0.0, "empty run");
  const std::size_t ranks = tracer.num_ranks();
  const double label_w = 64.0;
  const double top = 40.0;
  const double legend_h = 26.0;
  const double plot_w = options.width_px - label_w - 16.0;
  const double height =
      top + static_cast<double>(ranks) * options.row_height_px + legend_h + 28.0;
  const auto x_of = [&](Seconds t) {
    return label_w + t / wall * plot_w;
  };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
     << options.width_px << "\" height=\"" << height << "\">\n"
     << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
     << "<text x=\"" << options.width_px / 2
     << "\" y=\"22\" font-size=\"15\" text-anchor=\"middle\""
        " font-family=\"sans-serif\">"
     << title << "</text>\n";

  for (std::size_t r = 0; r < ranks; ++r) {
    const double y = top + static_cast<double>(r) * options.row_height_px;
    const double bar_h = options.row_height_px - 6.0;
    // Compute background (active time shows through the gaps).
    os << "<rect x=\"" << label_w << "\" y=\"" << y << "\" width=\"" << plot_w
       << "\" height=\"" << bar_h
       << "\" fill=\"#dfe8d8\" stroke=\"#999\" stroke-width=\"0.4\"/>\n"
       << "<text x=\"" << label_w - 6 << "\" y=\"" << y + bar_h - 4
       << "\" font-size=\"11\" text-anchor=\"end\""
          " font-family=\"sans-serif\">r"
       << r << "</text>\n";
    for (const TraceRecord& rec : tracer.records(r)) {
      const double x0 = x_of(rec.enter);
      double w = x_of(rec.exit) - x0;
      w = std::max(w, plot_w * options.min_visible_fraction);
      os << "<rect x=\"" << x0 << "\" y=\"" << y << "\" width=\"" << w
         << "\" height=\"" << bar_h << "\" fill=\"" << call_color(rec.type)
         << "\"><title>" << mpi::to_string(rec.type) << " ["
         << fmt_fixed(rec.enter.value(), 4) << ", "
         << fmt_fixed(rec.exit.value(), 4) << "] s</title></rect>\n";
    }
  }

  // Fault markers: a red tick on the struck node's row; crashes span the
  // whole plot height.
  for (const FaultEvent& ev : faults) {
    if (ev.at > wall || ev.node >= ranks) continue;
    const double x = x_of(ev.at);
    const bool crash = ev.kind == FaultEventKind::kNodeCrash ||
                       ev.kind == FaultEventKind::kRestart;
    const double y0 = crash ? top
                            : top + static_cast<double>(ev.node) *
                                        options.row_height_px;
    const double y1 = crash ? top + static_cast<double>(ranks) *
                                        options.row_height_px
                            : y0 + options.row_height_px - 6.0;
    os << "<line x1=\"" << x << "\" y1=\"" << y0 << "\" x2=\"" << x
       << "\" y2=\"" << y1
       << "\" stroke=\"#c1121f\" stroke-width=\"1.5\""
          " stroke-dasharray=\"3,2\"><title>"
       << to_string(ev.kind) << " node " << ev.node << " @ "
       << fmt_fixed(ev.at.value(), 4) << " s";
    if (!ev.detail.empty()) os << " (" << ev.detail << ")";
    os << "</title></line>\n";
  }

  // Legend + time axis.
  const double ly = top + static_cast<double>(ranks) * options.row_height_px +
                    14.0;
  struct Entry {
    const char* color;
    const char* label;
  };
  const Entry entries[] = {{"#dfe8d8", "compute"},
                           {"#e4572e", "send"},
                           {"#17a398", "recv/wait"},
                           {"#7c5cbf", "collective"}};
  double lx = label_w;
  for (const auto& e : entries) {
    os << "<rect x=\"" << lx << "\" y=\"" << ly - 10
       << "\" width=\"12\" height=\"12\" fill=\"" << e.color << "\"/>\n"
       << "<text x=\"" << lx + 16 << "\" y=\"" << ly
       << "\" font-size=\"11\" font-family=\"sans-serif\">" << e.label
       << "</text>\n";
    lx += 110.0;
  }
  os << "<text x=\"" << label_w << "\" y=\"" << ly + 18
     << "\" font-size=\"11\" font-family=\"sans-serif\">0 s</text>\n"
     << "<text x=\"" << label_w + plot_w << "\" y=\"" << ly + 18
     << "\" font-size=\"11\" text-anchor=\"end\""
        " font-family=\"sans-serif\">"
     << fmt_fixed(wall.value(), 2) << " s</text>\n"
     << "</svg>\n";
  return os.str();
}

void write_timeline(const Tracer& tracer, Seconds wall,
                    const std::string& title, const std::string& path,
                    const TimelineOptions& options) {
  write_timeline(tracer, wall, title, path, FaultLog{}, options);
}

void write_timeline(const Tracer& tracer, Seconds wall,
                    const std::string& title, const std::string& path,
                    const FaultLog& faults, const TimelineOptions& options) {
  std::ofstream out(path);
  GEARSIM_REQUIRE(out.good(), "cannot open " + path + " for writing");
  out << render_timeline(tracer, wall, title, faults, options);
  GEARSIM_ENSURE(out.good(), "failed writing " + path);
}

}  // namespace gearsim::trace
