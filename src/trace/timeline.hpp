// Per-rank activity timelines (Gantt-style) rendered as SVG.
//
// The paper's whole methodology is built on these timelines: active
// computation vs time blocked in MPI, per rank.  This renderer draws one
// row per rank over the run's duration — compute in the gaps, one colored
// block per MPI call (color by call type) — which makes load imbalance,
// pipelining, and collective synchronization visible at a glance.
// Injected fault events, when provided, appear as red markers on the row
// of the node they hit (crashes span all rows).
#pragma once

#include <string>

#include "trace/fault_events.hpp"
#include "trace/tracer.hpp"

namespace gearsim::trace {

struct TimelineOptions {
  double width_px = 960.0;
  double row_height_px = 22.0;
  /// Calls shorter than this fraction of the run are widened to stay
  /// visible (set 0 for exact proportions).
  double min_visible_fraction = 0.001;
};

/// Render the tracer's records over [0, wall] as an SVG document.
std::string render_timeline(const Tracer& tracer, Seconds wall,
                            const std::string& title,
                            const TimelineOptions& options = {});

/// Same, plus fault-event markers (events after `wall` are dropped).
std::string render_timeline(const Tracer& tracer, Seconds wall,
                            const std::string& title, const FaultLog& faults,
                            const TimelineOptions& options = {});

/// Render and write to `path`.
void write_timeline(const Tracer& tracer, Seconds wall,
                    const std::string& title, const std::string& path,
                    const TimelineOptions& options = {});
void write_timeline(const Tracer& tracer, Seconds wall,
                    const std::string& title, const std::string& path,
                    const FaultLog& faults, const TimelineOptions& options = {});

}  // namespace gearsim::trace
