#include "trace/analysis.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace gearsim::trace {

RankBreakdown analyze_rank(std::span<const TraceRecord> records,
                           Seconds run_start, Seconds run_end) {
  GEARSIM_REQUIRE(run_end >= run_start, "run interval reversed");
  RankBreakdown out;
  out.wall = run_end - run_start;
  out.mpi_calls = records.size();

  Seconds idle{};
  Seconds reducible{};
  // Reducible-work scan state: are we past a send with no intervening
  // blocking point, and how much computation accumulated since that send?
  bool send_open = false;
  Seconds since_send{};
  Seconds prev_exit = run_start;

  for (const TraceRecord& rec : records) {
    GEARSIM_REQUIRE(rec.enter >= prev_exit, "trace records out of order");
    const Seconds compute_gap = rec.enter - prev_exit;
    if (send_open) since_send += compute_gap;

    idle += rec.duration();

    const bool is_send =
        rec.type == mpi::CallType::kSend || rec.type == mpi::CallType::kIsend ||
        rec.type == mpi::CallType::kSendrecv;
    if (mpi::is_blocking_point(rec.type) && send_open) {
      // A blocking point ends the current reducible window.
      reducible += since_send;
      send_open = false;
      since_send = Seconds{};
    }
    if (is_send) {
      // "We assume that the send is asynchronous": work after the last
      // send cannot delay remote progress, so start (or restart) the
      // reducible window at this send's completion.  A sendrecv both
      // blocks (handled above) and sends (opens a fresh window here).
      send_open = true;
      since_send = Seconds{};
    }
    prev_exit = rec.exit;
  }

  out.idle = idle;
  out.active = out.wall - idle;
  out.reducible = reducible;
  out.critical = out.active - reducible;
  GEARSIM_ENSURE(out.active.value() >= -1e-9, "negative active time");
  GEARSIM_ENSURE(out.critical.value() >= -1e-9, "negative critical time");
  return out;
}

ClusterBreakdown analyze_cluster(const Tracer& tracer, Seconds run_start,
                                 Seconds run_end) {
  ClusterBreakdown out;
  out.wall = run_end - run_start;
  out.ranks.reserve(tracer.num_ranks());

  Seconds active_sum{};
  Seconds idle_sum{};
  std::size_t max_rank = 0;
  for (std::size_t r = 0; r < tracer.num_ranks(); ++r) {
    out.ranks.push_back(analyze_rank(tracer.records(r), run_start, run_end));
    const RankBreakdown& rb = out.ranks.back();
    active_sum += rb.active;
    idle_sum += rb.idle;
    if (rb.active > out.ranks[max_rank].active) max_rank = r;
  }
  const auto n = static_cast<double>(tracer.num_ranks());
  out.active_max = out.ranks[max_rank].active;
  out.idle_derived = out.wall - out.active_max;
  out.active_mean = active_sum / n;
  out.idle_mean = idle_sum / n;
  out.critical = out.ranks[max_rank].critical;
  out.reducible = out.ranks[max_rank].reducible;
  return out;
}

}  // namespace gearsim::trace
