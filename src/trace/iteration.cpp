#include "trace/iteration.hpp"

namespace gearsim::trace {

bool IterationClock::on_call(mpi::CallType type, Bytes bytes) {
  if (!mpi::is_collective(type)) return false;
  if (!anchored_) {
    anchor_type_ = type;
    anchor_bytes_ = bytes;
    anchored_ = true;
    return false;
  }
  if (type != anchor_type_ || bytes != anchor_bytes_) return false;
  ++iterations_;
  return true;
}

void IterationClock::reset() {
  anchored_ = false;
  iterations_ = 0;
  anchor_bytes_ = 0;
}

std::vector<Seconds> iteration_boundaries(
    std::span<const TraceRecord> records) {
  IterationClock clock;
  std::vector<Seconds> boundaries;
  for (const TraceRecord& rec : records) {
    if (clock.on_call(rec.type, rec.bytes)) boundaries.push_back(rec.enter);
  }
  return boundaries;
}

}  // namespace gearsim::trace
