// Post-processing of MPI traces into the paper's time decompositions.
//
// Step 1 of the methodology: split each rank's run into active time T^A
// (outside MPI) and idle time T^I (inside blocking MPI calls, which
// *includes* actual communication time).  The cluster-level T^A(n) is the
// MAXIMUM active time over ranks, per the paper; the cluster T^I(n) is
// then wall - T^A(n) so that T = T^A + T^I holds.
//
// The refined model further splits T^A into critical work T^C and
// reducible work T^R: "the post-processing analysis conservatively
// determines the reducible work to be computation between the last send
// and a blocking point" — work that can be slowed without delaying any
// other node, because no data leaves the node in that window.
#pragma once

#include <span>
#include <vector>

#include "trace/tracer.hpp"

namespace gearsim::trace {

/// Per-rank decomposition of one run.
struct RankBreakdown {
  Seconds wall{};       ///< Run end - run start.
  Seconds active{};     ///< T^A: time outside MPI.
  Seconds idle{};       ///< T^I: time inside MPI calls.
  Seconds critical{};   ///< T^C: active work on the communication path.
  Seconds reducible{};  ///< T^R: active work with downstream slack.
  std::size_t mpi_calls = 0;
};

/// Whole-run decomposition in the paper's terms.
struct ClusterBreakdown {
  Seconds wall{};         ///< Execution time T(n).
  Seconds active_max{};   ///< T^A(n): max over ranks.
  Seconds idle_derived{}; ///< T^I(n) = wall - active_max.
  Seconds active_mean{};  ///< Mean rank active time (load-balance view).
  Seconds idle_mean{};    ///< Mean rank idle time.
  Seconds critical{};     ///< T^C of the max-active rank.
  Seconds reducible{};    ///< T^R of the max-active rank.
  std::vector<RankBreakdown> ranks;
};

/// Decompose one rank's records over [run_start, run_end].
RankBreakdown analyze_rank(std::span<const TraceRecord> records,
                           Seconds run_start, Seconds run_end);

/// Decompose a full run from its tracer.
ClusterBreakdown analyze_cluster(const Tracer& tracer, Seconds run_start,
                                 Seconds run_end);

}  // namespace gearsim::trace
