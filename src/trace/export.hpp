// Trace export: one CSV row per MPI call, for external timeline viewers
// and ad-hoc analysis (pandas, gnuplot).  Mirrors the paper's "writes a
// timestamp to a log file" instrumentation output.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/tracer.hpp"

namespace gearsim::trace {

/// Write `rank,call,enter_s,exit_s,duration_s,bytes,peer` rows (with a
/// header) for every record of every rank, in per-rank order.
void export_csv(const Tracer& tracer, std::ostream& out);

/// Convenience: write to a file; creates/truncates.
void export_csv_file(const Tracer& tracer, const std::string& path);

}  // namespace gearsim::trace
