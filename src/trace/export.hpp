// Trace export: one CSV row per MPI call, for external timeline viewers
// and ad-hoc analysis (pandas, gnuplot).  Mirrors the paper's "writes a
// timestamp to a log file" instrumentation output.  When a run carried
// injected faults, their events are appended as extra rows (call column
// "fault:<kind>") so a single file tells the whole story.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/fault_events.hpp"
#include "trace/tracer.hpp"

namespace gearsim::trace {

/// Write `rank,call,enter_s,exit_s,duration_s,bytes,peer` rows (with a
/// header) for every record of every rank, in per-rank order.
void export_csv(const Tracer& tracer, std::ostream& out);

/// Same, plus one `node,fault:<kind>,at,at,0,0,-1` row per fault event
/// (detail appended as an eighth column), after the MPI rows.
void export_csv(const Tracer& tracer, std::ostream& out,
                const FaultLog& faults);

/// Convenience: write to a file; creates/truncates.
void export_csv_file(const Tracer& tracer, const std::string& path);
void export_csv_file(const Tracer& tracer, const std::string& path,
                     const FaultLog& faults);

}  // namespace gearsim::trace
