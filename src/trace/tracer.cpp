#include "trace/tracer.hpp"

#include <algorithm>

namespace gearsim::trace {

Tracer::Tracer(std::size_t num_ranks)
    : buffers_(num_ranks), open_(num_ranks, kNone) {
  GEARSIM_REQUIRE(num_ranks > 0, "tracer needs at least one rank");
}

void Tracer::on_enter(mpi::Rank rank, mpi::CallType type, Seconds now,
                      Bytes bytes, mpi::Rank peer) {
  const auto r = static_cast<std::size_t>(rank);
  GEARSIM_REQUIRE(r < buffers_.size(), "rank out of range");
  GEARSIM_REQUIRE(open_[r] == kNone, "nested traced MPI calls on one rank");
  TraceRecord record;
  record.type = type;
  record.enter = now;
  record.exit = now;
  record.bytes = bytes;
  record.peer = peer;
  open_[r] = buffers_[r].size();
  buffers_[r].push_back(record);
}

void Tracer::on_exit(mpi::Rank rank, mpi::CallType type, Seconds now) {
  const auto r = static_cast<std::size_t>(rank);
  GEARSIM_REQUIRE(r < buffers_.size(), "rank out of range");
  GEARSIM_REQUIRE(open_[r] != kNone, "exit without matching enter");
  TraceRecord& record = buffers_[r][open_[r]];
  GEARSIM_REQUIRE(record.type == type, "mismatched enter/exit call types");
  record.exit = now;
  open_[r] = kNone;
}

const std::vector<TraceRecord>& Tracer::records(std::size_t rank) const {
  GEARSIM_REQUIRE(rank < buffers_.size(), "rank out of range");
  return buffers_[rank];
}

std::size_t Tracer::total_records() const {
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b.size();
  return n;
}

void Tracer::clear() {
  for (auto& buffer : buffers_) buffer.clear();
  std::fill(open_.begin(), open_.end(), kNone);
}

std::size_t Tracer::count(std::size_t rank, mpi::CallType type) const {
  GEARSIM_REQUIRE(rank < buffers_.size(), "rank out of range");
  return static_cast<std::size_t>(
      std::count_if(buffers_[rank].begin(), buffers_[rank].end(),
                    [type](const TraceRecord& r) { return r.type == type; }));
}

}  // namespace gearsim::trace
