// Iteration detection from the MPI call stream.
//
// The NAS codes the paper measures are outer-loop iterative: every
// iteration executes the same sequence of MPI calls, so a *collective*
// with a fixed (type, bytes) signature recurs exactly once per
// iteration (CG's first allreduce, Jacobi's allreduce residual check,
// SP/BT's sync points).  Watching for the recurrence of the first such
// collective a rank performs therefore clocks the program's outer loop
// without any cooperation from the application — the same trick the
// Jitter/Adagio runtimes use, and what policy::SlackReclaimer feeds on.
//
// Two forms:
//  * IterationClock — online, one per rank, driven call-by-call from a
//    policy's blocking-call hooks;
//  * iteration_boundaries — offline, over a finished trace, for
//    analysis and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mpi/types.hpp"
#include "trace/tracer.hpp"
#include "util/units.hpp"

namespace gearsim::trace {

/// Online iteration detector for one rank.  Feed it every blocking call
/// the rank enters; it anchors on the first *collective* signature seen
/// and reports an iteration boundary each time that signature recurs.
class IterationClock {
 public:
  /// Observe a blocking call the rank is entering.  Returns true when
  /// the call closes an iteration (i.e. the anchor collective recurs).
  /// The first anchor sighting starts iteration 0 and returns false.
  bool on_call(mpi::CallType type, Bytes bytes);

  /// Iterations completed so far.
  [[nodiscard]] std::size_t iterations() const { return iterations_; }
  /// True once an anchor collective has been chosen.
  [[nodiscard]] bool anchored() const { return anchored_; }

  void reset();

 private:
  mpi::CallType anchor_type_{};
  Bytes anchor_bytes_ = 0;
  bool anchored_ = false;
  std::size_t iterations_ = 0;
};

/// Offline form: enter-times at which the rank's anchor collective
/// recurs in a finished per-rank trace (boundary k closes iteration k).
/// Empty when the trace holds fewer than two anchor sightings.
[[nodiscard]] std::vector<Seconds> iteration_boundaries(
    std::span<const TraceRecord> records);

}  // namespace gearsim::trace
