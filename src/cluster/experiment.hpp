// The experiment runner: executes one Workload on a configured cluster at
// one (node count, gear) point and returns everything the paper measures —
// wall time, per-node and total energy, the trace decomposition, and the
// per-gear power summary the Section-4 model consumes.
#pragma once

#include <optional>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/workload.hpp"
#include "trace/analysis.hpp"
#include "util/statistics.hpp"

namespace gearsim::cluster {

class GearPolicy;  // cluster/dvfs.hpp

/// One (workload, nodes, gear) measurement.
struct RunResult {
  int nodes = 0;
  std::size_t gear_index = 0;   ///< Rank 0's compute gear for policy runs.
  int gear_label = 0;           ///< 1-based paper label.
  Seconds wall{};               ///< Execution time.
  Joules energy{};              ///< Cumulative energy of all nodes.
  Joules active_energy{};
  Joules idle_energy{};
  Watts mean_active_power{};    ///< Time-weighted over nodes: the P_g probe.
  Watts mean_idle_power{};      ///< The I_g probe.
  trace::ClusterBreakdown breakdown;
  std::vector<power::NodeEnergy> node_energy;
  std::uint64_t mpi_calls = 0;
  std::uint64_t messages = 0;
  Bytes net_bytes = 0;
  std::uint64_t gear_switches = 0;  ///< DVFS transitions across all ranks.
  /// Cluster energy as integrated by the sampling multimeters (only when
  /// ClusterConfig::sample_power is set); compare with `energy`, which is
  /// the exact piecewise integral.
  std::optional<Joules> sampled_energy;
};

/// Knobs for one experiment beyond the paper's uniform-gear scope.
struct RunOptions {
  /// Uniform gear when no policy is given.
  std::size_t gear_index = 0;
  /// Optional DVFS policy (per-rank gears, comm downshift, or adaptive
  /// control); overrides gear_index.  Must outlive the call.
  const GearPolicy* policy = nullptr;
  /// When non-empty, the run's full MPI trace is exported here as CSV
  /// (one row per call; see trace::export_csv).
  std::string trace_csv_path;
  /// When non-empty, the run's per-rank activity timeline is rendered
  /// here as SVG (see report::write_timeline).
  std::string timeline_svg_path;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_gears() const { return config_.gears.size(); }

  /// Run `workload` on `nodes` nodes, all at gear `gear_index` (0-based).
  RunResult run(const Workload& workload, int nodes, std::size_t gear_index);

  /// Run with full options (per-rank gears / dynamic DVFS policies).
  RunResult run(const Workload& workload, int nodes, const RunOptions& options);

  /// Run at every gear of the cluster; results ordered fastest-first.
  /// This is one curve of the paper's energy-time plots.
  std::vector<RunResult> gear_sweep(const Workload& workload, int nodes);

  /// Repeated measurement under different load-imbalance seeds — the
  /// simulation analogue of the paper's practice of averaging multiple
  /// wall-outlet measurements.  Time/energy statistics plus every run.
  struct RepeatedResult {
    RunningStats time_s;
    RunningStats energy_j;
    std::vector<RunResult> runs;

    [[nodiscard]] Seconds mean_time() const { return seconds(time_s.mean()); }
    [[nodiscard]] Joules mean_energy() const {
      return joules(energy_j.mean());
    }
    /// Coefficient of variation of the run times.
    [[nodiscard]] double time_cv() const {
      return time_s.stddev() / time_s.mean();
    }
  };
  RepeatedResult run_repeated(const Workload& workload, int nodes,
                              std::size_t gear_index, int repetitions);

 private:
  ClusterConfig config_;
};

/// Speedup of `slow_nodes`-vs-`fast_nodes` runs at the fastest gear:
/// T(a) / T(b).
double speedup(const RunResult& a, const RunResult& b);

}  // namespace gearsim::cluster
