// The experiment runner: executes one Workload on a configured cluster at
// one (node count, gear) point and returns everything the paper measures —
// wall time, per-node and total energy, the trace decomposition, and the
// per-gear power summary the Section-4 model consumes.
#pragma once

#include <optional>
#include <vector>

#include "cluster/config.hpp"
#include "cluster/workload.hpp"
#include "faults/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "trace/analysis.hpp"
#include "trace/fault_events.hpp"
#include "util/statistics.hpp"

namespace gearsim::cluster {

class GearPolicy;  // cluster/dvfs.hpp

/// How a (possibly fault-injected) run ended.
enum class RunOutcome {
  kCompleted,             ///< Ran to completion with no crash.
  kCompletedAfterRestart, ///< Crashed >= 1 times but checkpoint/restart won.
  kFailed,                ///< A crash was fatal (no policy, or budget spent).
};
const char* to_string(RunOutcome outcome);

/// One (workload, nodes, gear) measurement.
struct RunResult {
  int nodes = 0;
  /// The run's gear.  Uniform-gear runs: the requested gear.  Policy runs
  /// (see `policy_run`): the *modal* per-rank compute gear at the end of
  /// the run — a policy that assigns per-rank or time-varying gears has no
  /// single gear, so the modal value plus the [gear_min_index,
  /// gear_max_index] range below is the honest summary (ties break toward
  /// the faster gear).
  std::size_t gear_index = 0;
  int gear_label = 0;           ///< 1-based paper label of gear_index.
  /// True when a GearPolicy drove the run; gear_index/gear_label are then
  /// a summary, not a configuration.
  bool policy_run = false;
  /// Fastest / slowest per-rank compute gear observed at the end of the
  /// run (== gear_index for uniform runs).  For adaptive policies this
  /// reflects each rank's final gear.
  std::size_t gear_min_index = 0;
  std::size_t gear_max_index = 0;
  Seconds wall{};               ///< Execution time.
  Joules energy{};              ///< Cumulative energy of all nodes.
  Joules active_energy{};
  Joules idle_energy{};
  Watts mean_active_power{};    ///< Time-weighted over nodes: the P_g probe.
  Watts mean_idle_power{};      ///< The I_g probe.
  trace::ClusterBreakdown breakdown;
  std::vector<power::NodeEnergy> node_energy;
  std::uint64_t mpi_calls = 0;
  std::uint64_t messages = 0;
  Bytes net_bytes = 0;
  /// FNV-1a fingerprint of the engine's full event-dispatch order (see
  /// sim::Engine::order_hash).  Pure determinism probe: equal inputs must
  /// give equal hashes, for any sweep worker count and through the result
  /// cache — the regression tripwire for event-kernel changes.  Carries
  /// no physics; plots and reports never read it.  Serial runs only —
  /// the parallel engine has no defined global dispatch order, so a
  /// parallel run reports 0 here and event_set_hash below instead.
  std::uint64_t event_order_hash = 0;
  /// Order-independent event fingerprint (sum of per-event time mixes,
  /// see sim::Engine::event_set_hash).  Computed in BOTH engine modes:
  /// a parallel run is accepted iff its set hash (and every physical
  /// field) equals the serial oracle's.
  std::uint64_t event_set_hash = 0;
  /// Engine-parallelism telemetry: partitions used (0 = serial path) and
  /// synchronization windows executed.  Never cached or compared —
  /// engine mode is not part of a run's identity.
  std::size_t engine_partitions = 0;
  std::uint64_t engine_windows = 0;
  std::uint64_t gear_switches = 0;  ///< DVFS transitions across all ranks.
  /// Seconds each rank spent at each *requested* gear (outer index rank,
  /// inner index gear; inner size == the cluster's gear count).  Covers
  /// [0, rank finish] — the tail a rank idles while slower ranks catch up
  /// is not attributed.  Straggler throttles cap the executed gear
  /// without showing up here (residency tracks policy intent; see
  /// docs/FAULTS.md).  Ranks cut short by a fatal crash leave empty
  /// entries.
  std::vector<std::vector<Seconds>> gear_residency;
  /// Cluster energy as integrated by the sampling multimeters (only when
  /// ClusterConfig::sample_power is set); compare with `energy`, which is
  /// the exact piecewise integral.  Under meter-dropout faults the
  /// trapezoid integral interpolates across the holes and
  /// `sampled_coverage` reports how much of the span was observed.
  std::optional<Joules> sampled_energy;
  /// Fraction of the metering span the sampling meters observed (1.0
  /// without dropout faults or sampling).
  double sampled_coverage = 1.0;

  // --- fault / resilience accounting (defaults = fault-free run) ---------
  RunOutcome outcome = RunOutcome::kCompleted;
  /// Crashes absorbed by checkpoint/restart.
  int retries = 0;
  /// Wall time / energy beyond the crash-free (but checkpointed) run:
  /// lost work re-executed plus restart overhead.
  Seconds rework_time{};
  Joules rework_energy{};
  /// Crash-free cost of writing the checkpoints themselves.
  Seconds checkpoint_time{};
  Joules checkpoint_energy{};
  /// The crash that ended a kFailed run.
  std::optional<faults::CrashEvent> fatal_crash;
  /// Message retransmissions forced by link-degradation faults.
  std::uint64_t retransmissions = 0;
  /// Every fault realized during the run, in the order recorded (also
  /// rendered into the trace CSV / timeline SVG exports when requested).
  trace::FaultLog fault_events;
};

/// Knobs for one experiment beyond the paper's uniform-gear scope.
struct RunOptions {
  /// Uniform gear when no policy is given.
  std::size_t gear_index = 0;
  /// Optional DVFS policy (per-rank gears, comm downshift, or adaptive
  /// control); overrides gear_index.  Must outlive the call.  Non-const
  /// because adaptive controllers mutate per-rank state through the
  /// engine-time callbacks; the runner calls begin_run() first, which
  /// resets that state.  A stateful policy instance must not be shared
  /// by concurrent runs (exec::SweepRunner instantiates one per point
  /// via PolicyFactory).
  GearPolicy* policy = nullptr;
  /// When non-empty, the run's full MPI trace is exported here as CSV
  /// (one row per call; see trace::export_csv).
  std::string trace_csv_path;
  /// When non-empty, the run's per-rank activity timeline is rendered
  /// here as SVG (see report::write_timeline).
  std::string timeline_svg_path;
  /// Optional fault plan realized against this run (must outlive the
  /// call).  Null — or a plan with nothing scheduled — leaves the run
  /// bit-identical to a fault-free one.  See docs/FAULTS.md.
  const faults::FaultPlan* faults = nullptr;
  /// Optional metrics registry (must outlive the call).  The runner wires
  /// it into the engine, network, policy and fault layers for this run;
  /// all recorded values are sim-domain facts, so attaching a registry
  /// never changes the RunResult.  One registry must not be shared by
  /// concurrent runs — exec::SweepRunner gives each point its own and
  /// merges the snapshots in request order.  See docs/OBSERVABILITY.md.
  obs::MetricsRegistry* metrics = nullptr;
  /// Worker threads for the conservative parallel engine (see docs/API.md
  /// "Engine internals"): 0 = the GEARSIM_ENGINE_THREADS default (itself
  /// 1 when unset), 1 = serial, >= 2 requests partitioned execution,
  /// negative = hardware concurrency.  The parallel path is an
  /// *optimization with a verification oracle*, never a semantic switch:
  /// runs that it cannot reproduce exactly (policy runs, sampled power,
  /// abort-mode crash plans, jittered networks,
  /// attached metrics) fall back to serial silently, and every physical result field is
  /// identical either way (event_order_hash, reported only by serial, is
  /// the sole exception).
  int engine_threads = 0;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_gears() const { return config_.gears.size(); }

  /// Run `workload` on `nodes` nodes, all at gear `gear_index` (0-based).
  /// Thread-safe: a run touches only its own engine/meter/world, so
  /// independent runs may execute concurrently on one runner.
  RunResult run(const Workload& workload, int nodes,
                std::size_t gear_index) const;

  /// Run with full options (per-rank gears / dynamic DVFS policies).
  /// Concurrent calls must not share a stateful GearPolicy instance.
  RunResult run(const Workload& workload, int nodes,
                const RunOptions& options) const;

  /// Run at every gear of the cluster; results ordered fastest-first.
  /// This is one curve of the paper's energy-time plots.
  ///
  /// `jobs` fans the independent gear points out over a worker pool
  /// (0 = GEARSIM_SWEEP_JOBS or serial, <0 = hardware concurrency, see
  /// util/parallel.hpp).  Every point's RNG streams derive from the
  /// (config, gear) tuple alone, so results are bit-identical to the
  /// serial loop for any job count.
  std::vector<RunResult> gear_sweep(const Workload& workload, int nodes,
                                    int jobs = 0) const;

  /// Repeated measurement under different load-imbalance seeds — the
  /// simulation analogue of the paper's practice of averaging multiple
  /// wall-outlet measurements.  Time/energy statistics plus every run.
  struct RepeatedResult {
    RunningStats time_s;
    RunningStats energy_j;
    std::vector<RunResult> runs;

    [[nodiscard]] Seconds mean_time() const { return seconds(time_s.mean()); }
    [[nodiscard]] Joules mean_energy() const {
      return joules(energy_j.mean());
    }
    /// Coefficient of variation of the run times (0 when the sample is
    /// empty or its mean is — degenerately — not positive, rather than
    /// NaN/inf or a precondition failure).
    [[nodiscard]] double time_cv() const {
      if (time_s.count() == 0) return 0.0;
      const double m = time_s.mean();
      return m > 0.0 ? time_s.stddev() / m : 0.0;
    }
  };
  /// Repetition r seeds its run with (config.seed + r, jitter_seed + r),
  /// a pure function of the repetition index — never a shared RNG — so
  /// `jobs` parallelism (same convention as gear_sweep) cannot reorder
  /// randomness and the statistics accumulate in repetition order
  /// regardless of which worker finished first.
  RepeatedResult run_repeated(const Workload& workload, int nodes,
                              std::size_t gear_index, int repetitions,
                              int jobs = 0) const;

 private:
  /// The conservative-parallel-engine run path (options.engine_threads
  /// >= 2 and the run is eligible; see run()).  Physically equivalent to
  /// the serial path by construction — the determinism matrix test holds
  /// it to byte-equality on every physical field.
  RunResult run_parallel(const Workload& workload, int nodes,
                         const RunOptions& options, int threads) const;

  ClusterConfig config_;
};

/// Speedup of `slow_nodes`-vs-`fast_nodes` runs at the fastest gear:
/// T(a) / T(b).  Degenerate denominators are rejected, not absorbed:
/// b.wall <= 0 (an empty or failed run) throws ContractError, matching
/// rel_diff; only summary *statistics* (e.g. RepeatedResult::time_cv)
/// degrade to 0.0, because for them an empty sample is a valid state.
double speedup(const RunResult& a, const RunResult& b);

}  // namespace gearsim::cluster
