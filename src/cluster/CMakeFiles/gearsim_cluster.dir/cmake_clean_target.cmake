file(REMOVE_RECURSE
  "libgearsim_cluster.a"
)
