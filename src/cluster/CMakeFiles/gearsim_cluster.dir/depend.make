# Empty dependencies file for gearsim_cluster.
# This may be replaced when dependencies are built.
