file(REMOVE_RECURSE
  "CMakeFiles/gearsim_cluster.dir/config.cpp.o"
  "CMakeFiles/gearsim_cluster.dir/config.cpp.o.d"
  "CMakeFiles/gearsim_cluster.dir/dvfs.cpp.o"
  "CMakeFiles/gearsim_cluster.dir/dvfs.cpp.o.d"
  "CMakeFiles/gearsim_cluster.dir/experiment.cpp.o"
  "CMakeFiles/gearsim_cluster.dir/experiment.cpp.o.d"
  "CMakeFiles/gearsim_cluster.dir/workload.cpp.o"
  "CMakeFiles/gearsim_cluster.dir/workload.cpp.o.d"
  "libgearsim_cluster.a"
  "libgearsim_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
