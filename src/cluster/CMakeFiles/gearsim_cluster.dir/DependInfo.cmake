
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/config.cpp" "src/cluster/CMakeFiles/gearsim_cluster.dir/config.cpp.o" "gcc" "src/cluster/CMakeFiles/gearsim_cluster.dir/config.cpp.o.d"
  "/root/repo/src/cluster/dvfs.cpp" "src/cluster/CMakeFiles/gearsim_cluster.dir/dvfs.cpp.o" "gcc" "src/cluster/CMakeFiles/gearsim_cluster.dir/dvfs.cpp.o.d"
  "/root/repo/src/cluster/experiment.cpp" "src/cluster/CMakeFiles/gearsim_cluster.dir/experiment.cpp.o" "gcc" "src/cluster/CMakeFiles/gearsim_cluster.dir/experiment.cpp.o.d"
  "/root/repo/src/cluster/workload.cpp" "src/cluster/CMakeFiles/gearsim_cluster.dir/workload.cpp.o" "gcc" "src/cluster/CMakeFiles/gearsim_cluster.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/gearsim_util.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/gearsim_sim.dir/DependInfo.cmake"
  "/root/repo/src/cpu/CMakeFiles/gearsim_cpu.dir/DependInfo.cmake"
  "/root/repo/src/power/CMakeFiles/gearsim_power.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/gearsim_net.dir/DependInfo.cmake"
  "/root/repo/src/mpi/CMakeFiles/gearsim_mpi.dir/DependInfo.cmake"
  "/root/repo/src/trace/CMakeFiles/gearsim_trace.dir/DependInfo.cmake"
  "/root/repo/src/faults/CMakeFiles/gearsim_faults.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/gearsim_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
