// The workload programming model.
//
// A Workload is the simulated analogue of an MPI program: `run(ctx)` is
// executed once per rank on that rank's simulation process, and the body
// alternates between `ctx.compute(block)` — which advances simulated time
// under the node's current gear and charges active power — and MPI calls
// on `ctx.comm()`, which move simulated messages and charge idle power
// while blocked.  This mirrors the structure of the real NAS codes the
// paper measures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/compute.hpp"
#include "cpu/cpu_model.hpp"
#include "cpu/power_model.hpp"
#include "mpi/comm.hpp"
#include "power/energy_meter.hpp"
#include "util/random.hpp"

namespace gearsim::faults {
class FaultInjector;
}

namespace gearsim::cluster {

/// Everything one rank of a running experiment can touch.
class RankContext {
 public:
  RankContext(mpi::Comm comm, const cpu::CpuModel& cpu_model,
              const cpu::PowerModel& power_model, power::EnergyMeter& meter,
              std::size_t gear_index, double speed_penalty, Rng rng,
              Seconds gear_switch_latency = Seconds{});

  /// Execute a compute block at the node's gear: active power during,
  /// idle power after.
  void compute(const cpu::ComputeBlock& block);
  /// Convenience: compute a block built from (UPM, misses).
  void compute_upm(double upm, double misses);

  /// Change the node's DVFS gear mid-run.  Pays the configured switch
  /// latency (at idle power) and re-registers the idle draw at the new
  /// operating point.  No-op when already at `gear_index`.  Must be
  /// called from this rank's own execution (workload body or an MPI
  /// observer firing on its calls).
  void set_gear(std::size_t gear_index);

  [[nodiscard]] mpi::Comm& comm() { return comm_; }
  [[nodiscard]] int rank() const { return comm_.rank(); }
  [[nodiscard]] int nprocs() const { return comm_.size(); }
  [[nodiscard]] std::size_t gear() const { return gear_index_; }
  [[nodiscard]] const cpu::CpuModel& cpu_model() const { return cpu_model_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  /// Total compute-block time this rank has accumulated (gear-scaled).
  [[nodiscard]] Seconds compute_time() const { return compute_time_; }
  /// Number of DVFS transitions performed via set_gear.
  [[nodiscard]] std::uint64_t gear_switches() const { return gear_switches_; }

  /// Close the open residency interval at the current simulated time.
  /// Call once when the rank's work is done, before reading
  /// gear_residency(); set_gear keeps working afterwards.
  void finalize_residency();
  /// Seconds spent at each *requested* gear since this context was
  /// created (index = gear).  Gear-switch transition latency accrues to
  /// the gear being entered.  A straggler throttle caps the gear compute
  /// blocks actually execute at without showing up here — residency
  /// tracks what the policy asked for (see docs/FAULTS.md).
  [[nodiscard]] const std::vector<Seconds>& gear_residency() const {
    return residency_;
  }

  /// Let a fault injector cap this rank's effective gear (straggler /
  /// thermal-throttle windows).  Queried once per compute block; idle
  /// power still tracks the *requested* gear (a throttled CPU's clock is
  /// capped while busy, the parked draw is unchanged).  Null disables.
  void set_gear_throttle(const faults::FaultInjector* injector) {
    throttle_ = injector;
  }

 private:
  [[nodiscard]] sim::Process& proc() { return comm_.world().process(comm_.rank()); }

  mpi::Comm comm_;
  const cpu::CpuModel& cpu_model_;
  const cpu::PowerModel& power_model_;
  power::EnergyMeter& meter_;
  std::size_t gear_index_;
  double speed_penalty_;
  Rng rng_;
  Seconds switch_latency_;
  Seconds compute_time_{};
  std::uint64_t gear_switches_ = 0;
  std::vector<Seconds> residency_;
  Seconds residency_mark_{};
  const faults::FaultInjector* throttle_ = nullptr;
};

/// An MPI program the experiment runner can execute.  Implementations are
/// immutable parameter bundles; `run` must be callable concurrently for
/// different ranks (it only mutates through the context).
class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Executed once per rank.
  virtual void run(RankContext& ctx) const = 0;
  /// Valid process counts (e.g. BT/SP require square counts).
  [[nodiscard]] virtual bool supports(int nprocs) const { return nprocs >= 1; }
  /// Stable identity of the workload *including every parameter that can
  /// change the simulation* — the workload half of exec::ResultCache keys
  /// (two workloads with equal signatures must produce bit-identical
  /// runs).  Defaults to name(); parameterized implementations must
  /// override it and fold all their knobs in (see sig_value below).
  [[nodiscard]] virtual std::string signature() const { return name(); }
};

/// Format a numeric workload parameter for signature(): doubles render
/// with round-trip (max_digits10) precision so two different values can
/// never collapse to one signature.
[[nodiscard]] std::string sig_value(double v);
[[nodiscard]] std::string sig_value(std::uint64_t v);

}  // namespace gearsim::cluster
