#include "cluster/experiment.hpp"

#include <algorithm>
#include <memory>

#include "cluster/dvfs.hpp"
#include "faults/injector.hpp"
#include "faults/restart_model.hpp"
#include "mpi/world.hpp"
#include "power/energy_meter.hpp"
#include "trace/timeline.hpp"
#include "sim/engine.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "util/assert.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"

namespace gearsim::cluster {

namespace {

/// MPI observer that parks a rank at its policy's comm gear on entry to a
/// blocking call and restores the compute gear on exit — the runnable
/// form of the paper's "automatically reduce the energy gear" future
/// work.  Registered after the tracer, so traced call durations include
/// the downshift transition (as they would with a real DVFS-aware MPI).
class DvfsDriver final : public mpi::CallObserver {
 public:
  DvfsDriver(GearPolicy& policy, std::vector<RankContext*>& contexts)
      : policy_(policy),
        contexts_(contexts),
        pending_(contexts.size()) {}

  void on_enter(mpi::Rank rank, mpi::CallType type, Seconds now, Bytes bytes,
                mpi::Rank) override {
    if (!mpi::is_blocking_point(type)) return;
    if (RankContext* ctx = contexts_[rank]) {
      // Feed the policy *before* querying the comm gear, so adaptive
      // controllers can decide per call whether (and how far) to park.
      pending_[static_cast<std::size_t>(rank)] = {now, bytes};
      policy_.on_blocking_enter(rank, type, bytes, now);
      ctx->set_gear(policy_.comm_gear(rank));
    }
  }

  void on_exit(mpi::Rank rank, mpi::CallType type, Seconds now) override {
    if (!mpi::is_blocking_point(type)) return;
    if (RankContext* ctx = contexts_[rank]) {
      // Measured wait: everything between enter and exit, including the
      // downshift transition — exactly what a DVFS-aware MPI would see.
      const Pending& p = pending_[static_cast<std::size_t>(rank)];
      policy_.on_blocking_exit(rank, type, p.bytes, now, now - p.enter);
      ctx->set_gear(policy_.compute_gear(rank));
    }
  }

 private:
  struct Pending {
    Seconds enter{};
    Bytes bytes = 0;
  };

  GearPolicy& policy_;
  std::vector<RankContext*>& contexts_;
  std::vector<Pending> pending_;
};

}  // namespace

const char* to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kCompleted: return "completed";
    case RunOutcome::kCompletedAfterRestart: return "completed-after-restart";
    case RunOutcome::kFailed: return "failed";
  }
  return "?";
}

ExperimentRunner::ExperimentRunner(ClusterConfig config)
    : config_(std::move(config)) {
  GEARSIM_REQUIRE(config_.max_nodes >= 1, "cluster needs at least one node");
}

RunResult ExperimentRunner::run(const Workload& workload, int nodes,
                                std::size_t gear_index) const {
  RunOptions options;
  options.gear_index = gear_index;
  return run(workload, nodes, options);
}

RunResult ExperimentRunner::run(const Workload& workload, int nodes,
                                const RunOptions& options) const {
  GearPolicy* policy = options.policy;
  GEARSIM_REQUIRE(nodes >= 1 && nodes <= config_.max_nodes,
                  "node count outside the cluster");
  // Deterministic fault injection for the supervision/strict-mode tests:
  // lets a test fail run N through the full stack without a bespoke
  // throwing workload.  One relaxed atomic load when disarmed.
  if (util::failpoint("cluster.run.throw")) {
    throw SimulationError("failpoint cluster.run.throw fired (" +
                          workload.name() + ", " + std::to_string(nodes) +
                          " nodes)");
  }
  // Reset any per-run controller state before the first gear query; for
  // static policies this is a no-op (or a rank-count check).  Metrics are
  // attached first so begin_run can register the policy's counters.
  if (policy != nullptr) {
    policy->set_metrics(options.metrics);
    policy->begin_run(nodes);
  }
  const std::size_t gear_index =
      policy != nullptr ? policy->compute_gear(0) : options.gear_index;
  GEARSIM_REQUIRE(gear_index < config_.gears.size(), "gear out of range");
  GEARSIM_REQUIRE(workload.supports(nodes),
                  "workload does not support this node count");

  // Conservative-parallel-engine dispatch.  The parallel path is a pure
  // optimization: it must reproduce the serial run's physics exactly, so
  // any feature it cannot reproduce falls back to serial silently.
  //   * policy runs: DvfsDriver observers mutate shared policy state from
  //     MPI-call context (concurrent across partitions);
  //   * sampled power: multimeter periodic events interleave with rank
  //     events in one global order;
  //   * attached metrics: the registry is not synchronized;
  //   * abort-mode crash plans: NodeFailure must unwind at one globally
  //     ordered instant (compose-mode plans are fine — crashes are folded
  //     analytically after a solid run);
  //   * jittered (or zero-latency) networks: no sound lookahead.
  // Lossy-link plans are eligible: Network keys each transfer's loss
  // draws by (src, per-source ordinal), and the barrier replay preserves
  // per-source transfer order, so the parallel realization is identical
  // to serial even when the global interleaving differs.
  // One ineligibility is only discoverable mid-run: a rendezvous send
  // (message above the eager threshold) crossing a partition boundary.
  // The parallel run aborts with ParallelUnsupportedError before any
  // output is observable, and the serial path below reruns it exactly.
  if (policy == nullptr) {
    const int engine_threads = resolve_engine_threads(options.engine_threads);
    const faults::FaultPlan* fault_plan = options.faults;
    const bool any_faults = fault_plan != nullptr && !fault_plan->empty();
    const bool abort_mode_crashes = any_faults &&
                                    !fault_plan->checkpointing().has_value() &&
                                    !fault_plan->crashes().empty();
    if (engine_threads >= 2 && nodes >= 2 && !config_.sample_power &&
        options.metrics == nullptr && !abort_mode_crashes &&
        config_.network.latency_jitter == 0.0 &&
        config_.network.latency.value() > 0.0) {
      try {
        return run_parallel(workload, nodes, options, engine_threads);
      } catch (const sim::ParallelUnsupportedError&) {
        // Fall through to the serial oracle.
      }
    }
  }

  const cpu::CpuModel cpu_model(config_.cpu, config_.gears);
  const cpu::PowerModel power_model(config_.power, config_.gears);

  sim::Engine engine;
  net::Network network(config_.network, static_cast<std::size_t>(nodes));
  engine.set_metrics(options.metrics);
  network.set_metrics(options.metrics);
  mpi::World world(engine, network, nodes, config_.mpi);
  trace::Tracer tracer(static_cast<std::size_t>(nodes));
  world.add_observer(&tracer);
  power::EnergyMeter meter(static_cast<std::size_t>(nodes));

  // Fault layer.  An absent or empty plan installs nothing at all, so the
  // run stays bit-identical to a fault-free one.  With a checkpoint
  // policy the run executes "solid" (environment faults only) while
  // recording exact power profiles, and crashes are composed analytically
  // afterwards (compose mode); without one, a crash aborts the engine.
  const faults::FaultPlan* plan = options.faults;
  const bool has_faults = plan != nullptr && !plan->empty();
  const bool compose_mode = has_faults && plan->checkpointing().has_value();
  trace::FaultLog fault_log;
  std::unique_ptr<faults::FaultInjector> injector;
  if (has_faults) {
    injector = std::make_unique<faults::FaultInjector>(
        *plan, network, static_cast<std::size_t>(nodes), config_.gears.size(),
        &fault_log);
    if (compose_mode) meter.enable_profile_recording();
  }

  Rng run_rng(config_.seed);
  std::vector<Seconds> finish(static_cast<std::size_t>(nodes));
  std::vector<std::uint64_t> switches(static_cast<std::size_t>(nodes), 0);
  std::vector<std::vector<Seconds>> residency(static_cast<std::size_t>(nodes));
  std::vector<RankContext*> contexts(static_cast<std::size_t>(nodes), nullptr);
  std::unique_ptr<DvfsDriver> driver;
  if (policy != nullptr && policy->shifts_during_comm()) {
    driver = std::make_unique<DvfsDriver>(*policy, contexts);
    world.add_observer(driver.get());
  }

  // Optional physical measurement path: one sampling multimeter per node,
  // as in the paper's rig.  The meters run until the last rank finishes
  // (a periodic sampler would otherwise keep the event queue alive
  // forever), so the final rank stops them.
  std::vector<std::unique_ptr<power::Multimeter>> multimeters;
  int ranks_remaining = nodes;
  if (config_.sample_power) {
    for (int r = 0; r < nodes; ++r) {
      const auto node = static_cast<std::size_t>(r);
      power::MultimeterConfig mm = config_.multimeter;
      mm.noise_seed += node;  // Independent sensor noise per meter.
      multimeters.push_back(std::make_unique<power::Multimeter>(
          engine, mm, [&meter, node] { return meter.instantaneous(node); }));
      if (injector != nullptr) {
        auto windows = injector->dropouts_for(node);
        if (!windows.empty()) {
          multimeters.back()->set_dropouts(std::move(windows));
        }
      }
    }
  }
  const auto on_rank_finished = [&] {
    if (--ranks_remaining == 0) {
      for (auto& mm : multimeters) mm->stop();
    }
  };

  // Spawn one process per rank.  Each starts idle, runs the workload body,
  // and records its finish time.  Every rank starts at t=0, so the start
  // events are collected into one batch and submitted with a single queue
  // operation; batch order matches loop order, keeping rank start order
  // (and thus every downstream seq) identical to per-rank scheduling.
  sim::EventBatch start_batch;
  start_batch.reserve(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) {
    const auto node = static_cast<std::size_t>(r);
    const std::size_t rank_gear =
        policy != nullptr ? policy->compute_gear(r) : gear_index;
    GEARSIM_REQUIRE(rank_gear < config_.gears.size(),
                    "policy gear out of range");
    // Per-rank deterministic load-imbalance factor in [1-x, 1+x].
    Rng rank_rng = run_rng.fork(static_cast<std::uint64_t>(r));
    const double penalty =
        1.0 + config_.load_imbalance * (2.0 * rank_rng.uniform() - 1.0);
    sim::Process& proc = engine.spawn(
        "rank" + std::to_string(r),
        [&, r, node, rank_gear, penalty, rank_rng](sim::Process& p) {
          meter.set_power(node, p.now(), power_model.idle_power(rank_gear),
                          power::NodeState::kIdle);
          if (config_.sample_power) multimeters[node]->start();
          RankContext ctx(mpi::Comm(world, r), cpu_model, power_model, meter,
                          rank_gear, penalty, rank_rng,
                          config_.gear_switch_latency);
          if (injector != nullptr && injector->throttles()) {
            ctx.set_gear_throttle(injector.get());
          }
          contexts[node] = &ctx;
          workload.run(ctx);
          contexts[node] = nullptr;
          finish[node] = p.now();
          switches[node] = ctx.gear_switches();
          ctx.finalize_residency();
          residency[node] = ctx.gear_residency();
          on_rank_finished();
        },
        start_batch);
    world.bind_rank(r, proc);
  }
  engine.schedule_batch(start_batch);

  // Crash events abort the engine only when no checkpoint policy exists
  // to absorb them; in compose mode the solid run must complete.
  if (has_faults && !compose_mode && !plan->crashes().empty()) {
    injector->arm_crashes(engine,
                          [&ranks_remaining] { return ranks_remaining > 0; });
  }

  bool aborted = false;
  faults::CrashEvent fatal{};
  try {
    engine.run();
  } catch (const faults::NodeFailure& failure) {
    aborted = true;
    fatal = faults::CrashEvent{failure.node, failure.at};
    // The run is over at the crash instant.  Unwind the surviving rank
    // threads now, while the world/network/meter they reference are still
    // alive, then settle the books with whatever partial progress exists.
    engine.terminate_processes();
    for (auto& mm : multimeters) {
      if (mm->running()) mm->stop();
    }
  }

  const Seconds wall =
      aborted ? fatal.at : *std::max_element(finish.begin(), finish.end());
  meter.finish(wall);

  RunResult result;
  result.nodes = nodes;
  if (policy != nullptr) {
    // Honest per-rank summary instead of mislabeling the whole run with
    // rank 0's gear: query each rank's compute gear *after* the run, so
    // adaptive policies report their final gears, and record the modal
    // gear (ties toward the faster gear) plus the min/max range.
    result.policy_run = true;
    std::vector<std::size_t> counts(config_.gears.size(), 0);
    std::size_t lo = config_.gears.size();
    std::size_t hi = 0;
    for (int r = 0; r < nodes; ++r) {
      const std::size_t g = policy->compute_gear(r);
      GEARSIM_REQUIRE(g < config_.gears.size(),
                      "policy gear out of range after run");
      ++counts[g];
      lo = std::min(lo, g);
      hi = std::max(hi, g);
    }
    std::size_t modal = 0;
    for (std::size_t g = 1; g < counts.size(); ++g) {
      if (counts[g] > counts[modal]) modal = g;
    }
    result.gear_index = modal;
    result.gear_min_index = lo;
    result.gear_max_index = hi;
  } else {
    result.gear_index = gear_index;
    result.gear_min_index = gear_index;
    result.gear_max_index = gear_index;
  }
  result.gear_label = config_.gears.gear(result.gear_index).label;
  result.wall = wall;
  result.energy = meter.total_energy();
  result.active_energy = meter.total_active_energy();
  result.idle_energy = meter.total_idle_energy();
  result.breakdown = trace::analyze_cluster(tracer, Seconds{}, wall);
  result.mpi_calls = world.traced_calls();
  result.event_order_hash = engine.order_hash();
  result.event_set_hash = engine.event_set_hash();
  result.messages = network.messages_carried();
  result.net_bytes = network.bytes_carried();
  result.retransmissions = network.retransmissions();
  for (std::uint64_t s : switches) result.gear_switches += s;
  result.gear_residency = std::move(residency);
  if (config_.sample_power) {
    Joules sampled{};
    double coverage = 0.0;
    for (const auto& mm : multimeters) {
      sampled += mm->energy();
      coverage += mm->coverage();
    }
    result.sampled_energy = sampled;
    // Every meter spans the same [0, wall] interval, so the plain mean is
    // the span-weighted coverage.
    result.sampled_coverage = coverage / static_cast<double>(nodes);
  }
  if (aborted) {
    result.outcome = RunOutcome::kFailed;
    result.fatal_crash = fatal;
  } else if (compose_mode) {
    // The engine simulated one solid run (environment faults only); fold
    // the plan's crashes into it through the checkpoint/restart model.
    // wall/energy/rework become end-to-end figures; the breakdown,
    // per-node energies and mean powers keep describing the solid run.
    const Joules solid_energy = result.energy;
    const faults::EnergyProfile profile =
        faults::EnergyProfile::from_meter(meter);
    const faults::RestartStats stats = faults::compose_restarts(
        wall, profile, static_cast<std::size_t>(nodes), *plan->checkpointing(),
        plan->crashes(), &fault_log);
    result.wall = stats.wall;
    result.energy = stats.energy;
    result.retries = stats.retries;
    result.rework_time = stats.rework_time;
    result.rework_energy = stats.rework_energy;
    result.checkpoint_time = stats.checkpoint_time;
    result.checkpoint_energy = stats.checkpoint_energy;
    if (!stats.completed) {
      result.outcome = RunOutcome::kFailed;
      result.fatal_crash = faults::CrashEvent{stats.failed_node,
                                              stats.failed_at};
    } else if (stats.retries > 0) {
      result.outcome = RunOutcome::kCompletedAfterRestart;
    }
    if (result.sampled_energy.has_value() && solid_energy.value() > 0.0) {
      // Scale the sampled reading by the same restart inflation the exact
      // integral saw (the rig would have metered the reruns too).
      result.sampled_energy =
          joules(result.sampled_energy->value() *
                 (stats.energy.value() / solid_energy.value()));
    }
  }
  if (obs::MetricsRegistry* reg = options.metrics) {
    reg->counter("cluster.runs").add();
    reg->counter("cluster.mpi_calls").add(result.mpi_calls);
    reg->counter("cluster.gear_switches").add(result.gear_switches);
    for (const trace::FaultEvent& ev : fault_log) {
      switch (ev.kind) {
        case trace::FaultEventKind::kNodeCrash:
          reg->counter("faults.crashes").add();
          break;
        case trace::FaultEventKind::kStragglerBegin:
          reg->counter("faults.straggler_windows").add();
          break;
        case trace::FaultEventKind::kLinkDrop:
          reg->counter("faults.link_drop_bursts").add();
          break;
        case trace::FaultEventKind::kMeterDropBegin:
          reg->counter("faults.meter_dropouts").add();
          break;
        case trace::FaultEventKind::kCheckpoint:
          reg->counter("faults.checkpoints").add();
          break;
        case trace::FaultEventKind::kRestart:
          reg->counter("faults.restarts").add();
          break;
        case trace::FaultEventKind::kStragglerEnd:
        case trace::FaultEventKind::kMeterDropEnd:
          break;  // Window closings pair with the Begin counts above.
      }
    }
    if (compose_mode) {
      // Sum + count live in the histogram, so sweeps aggregate how much
      // wall time went to re-execution and checkpoint I/O across points.
      reg->histogram("faults.rework_seconds", {0.1, 1.0, 10.0, 100.0, 1000.0})
          .observe(result.rework_time.value());
      reg->histogram("faults.checkpoint_seconds",
                     {0.1, 1.0, 10.0, 100.0, 1000.0})
          .observe(result.checkpoint_time.value());
    }
  }
  if (!options.trace_csv_path.empty()) {
    trace::export_csv_file(tracer, options.trace_csv_path, fault_log);
  }
  if (!options.timeline_svg_path.empty()) {
    trace::write_timeline(tracer, wall,
                           workload.name() + " on " + std::to_string(nodes) +
                               " nodes (gear " +
                               std::to_string(result.gear_label) + ")",
                           options.timeline_svg_path, fault_log);
  }
  result.fault_events = std::move(fault_log);
  result.node_energy.reserve(static_cast<std::size_t>(nodes));

  // Time-weighted cluster means of active/idle power: the paper's P_g and
  // I_g probes when the run executes at a single gear.
  Seconds active_time{};
  Seconds idle_time{};
  for (int r = 0; r < nodes; ++r) {
    const auto& ne = meter.node(static_cast<std::size_t>(r));
    result.node_energy.push_back(ne);
    active_time += ne.active_time;
    idle_time += ne.idle_time;
  }
  result.mean_active_power = active_time.value() > 0.0
                                 ? result.active_energy / active_time
                                 : Watts{};
  result.mean_idle_power =
      idle_time.value() > 0.0 ? result.idle_energy / idle_time : Watts{};
  return result;
}

RunResult ExperimentRunner::run_parallel(const Workload& workload, int nodes,
                                         const RunOptions& options,
                                         int threads) const {
  // Eligibility was established by run(): uniform gear (no policy), no
  // sampled power, no metrics registry, no abort-mode crash plan, and a
  // deterministic positive-latency network.
  const std::size_t gear_index = options.gear_index;
  const cpu::CpuModel cpu_model(config_.cpu, config_.gears);
  const cpu::PowerModel power_model(config_.power, config_.gears);

  net::Network network(config_.network, static_cast<std::size_t>(nodes));
  const Seconds lookahead = network.conservative_lookahead();
  const std::size_t partitions = std::min<std::size_t>(
      static_cast<std::size_t>(threads), static_cast<std::size_t>(nodes));
  sim::ParallelEngine group(partitions, lookahead, threads);
  mpi::World world(group.partition(0), network, nodes, config_.mpi);
  trace::Tracer tracer(static_cast<std::size_t>(nodes));
  world.add_observer(&tracer);
  power::EnergyMeter meter(static_cast<std::size_t>(nodes));

  // Fault layer, minus abort-mode crashes (ineligible).  Straggler
  // queries are const, link-fault realization happens inside
  // network.transfer — which partitioned mode runs only at the window
  // barrier, single-threaded — and compose-mode crashes are folded
  // analytically below, so the whole layer is race-free here.
  const faults::FaultPlan* plan = options.faults;
  const bool has_faults = plan != nullptr && !plan->empty();
  const bool compose_mode = has_faults && plan->checkpointing().has_value();
  trace::FaultLog fault_log;
  std::unique_ptr<faults::FaultInjector> injector;
  if (has_faults) {
    injector = std::make_unique<faults::FaultInjector>(
        *plan, network, static_cast<std::size_t>(nodes), config_.gears.size(),
        &fault_log);
    if (compose_mode) meter.enable_profile_recording();
  }

  Rng run_rng(config_.seed);
  std::vector<Seconds> finish(static_cast<std::size_t>(nodes));
  std::vector<std::uint64_t> switches(static_cast<std::size_t>(nodes), 0);
  std::vector<std::vector<Seconds>> residency(static_cast<std::size_t>(nodes));

  // Contiguous block partition: rank r runs on partition r*P/nodes, so
  // neighbor exchanges (the dominant pattern) stay partition-local where
  // possible.  Per-partition start batches keep each partition's rank
  // start order — and hence its local seq assignment — in loop order,
  // and the RNG forks happen in the exact serial loop order, so every
  // rank's penalty matches the serial run bit for bit.
  std::vector<sim::EventBatch> start_batches(partitions);
  for (int r = 0; r < nodes; ++r) {
    const auto node = static_cast<std::size_t>(r);
    const std::size_t part = node * partitions / static_cast<std::size_t>(nodes);
    Rng rank_rng = run_rng.fork(static_cast<std::uint64_t>(r));
    const double penalty =
        1.0 + config_.load_imbalance * (2.0 * rank_rng.uniform() - 1.0);
    sim::Process& proc = group.partition(part).spawn(
        "rank" + std::to_string(r),
        [&, r, node, penalty, rank_rng](sim::Process& self) {
          meter.set_power(node, self.now(), power_model.idle_power(gear_index),
                          power::NodeState::kIdle);
          RankContext ctx(mpi::Comm(world, r), cpu_model, power_model, meter,
                          gear_index, penalty, rank_rng,
                          config_.gear_switch_latency);
          if (injector != nullptr && injector->throttles()) {
            ctx.set_gear_throttle(injector.get());
          }
          workload.run(ctx);
          finish[node] = self.now();
          switches[node] = ctx.gear_switches();
          ctx.finalize_residency();
          residency[node] = ctx.gear_residency();
        },
        start_batches[part]);
    world.bind_rank(r, proc);
  }
  for (std::size_t p = 0; p < partitions; ++p) {
    if (!start_batches[p].empty()) {
      group.partition(p).schedule_batch(start_batches[p]);
    }
  }
  world.enable_partitioned(group);
  group.set_barrier_hook([&world] { world.apply_deferred_transfers(); });

  group.run();

  const Seconds wall = *std::max_element(finish.begin(), finish.end());
  meter.finish(wall);

  RunResult result;
  result.nodes = nodes;
  result.gear_index = gear_index;
  result.gear_min_index = gear_index;
  result.gear_max_index = gear_index;
  result.gear_label = config_.gears.gear(gear_index).label;
  result.wall = wall;
  result.energy = meter.total_energy();
  result.active_energy = meter.total_active_energy();
  result.idle_energy = meter.total_idle_energy();
  result.breakdown = trace::analyze_cluster(tracer, Seconds{}, wall);
  result.mpi_calls = world.traced_calls();
  // Parallel mode has no defined global dispatch order, so the order
  // hash is reported as 0; the order-independent set hash carries the
  // determinism probe and must equal the serial oracle's.
  result.event_order_hash = 0;
  result.event_set_hash = group.event_set_hash();
  result.engine_partitions = group.partitions();
  result.engine_windows = group.windows();
  result.messages = network.messages_carried();
  result.net_bytes = network.bytes_carried();
  result.retransmissions = network.retransmissions();
  for (std::uint64_t s : switches) result.gear_switches += s;
  result.gear_residency = std::move(residency);
  if (compose_mode) {
    // Identical fold to the serial path: the engine simulated one solid
    // run, crashes are composed analytically through the restart model.
    const faults::EnergyProfile profile =
        faults::EnergyProfile::from_meter(meter);
    const faults::RestartStats stats = faults::compose_restarts(
        wall, profile, static_cast<std::size_t>(nodes), *plan->checkpointing(),
        plan->crashes(), &fault_log);
    result.wall = stats.wall;
    result.energy = stats.energy;
    result.retries = stats.retries;
    result.rework_time = stats.rework_time;
    result.rework_energy = stats.rework_energy;
    result.checkpoint_time = stats.checkpoint_time;
    result.checkpoint_energy = stats.checkpoint_energy;
    if (!stats.completed) {
      result.outcome = RunOutcome::kFailed;
      result.fatal_crash =
          faults::CrashEvent{stats.failed_node, stats.failed_at};
    } else if (stats.retries > 0) {
      result.outcome = RunOutcome::kCompletedAfterRestart;
    }
  }
  if (!options.trace_csv_path.empty()) {
    trace::export_csv_file(tracer, options.trace_csv_path, fault_log);
  }
  if (!options.timeline_svg_path.empty()) {
    trace::write_timeline(tracer, wall,
                           workload.name() + " on " + std::to_string(nodes) +
                               " nodes (gear " +
                               std::to_string(result.gear_label) + ")",
                           options.timeline_svg_path, fault_log);
  }
  result.fault_events = std::move(fault_log);
  result.node_energy.reserve(static_cast<std::size_t>(nodes));
  Seconds active_time{};
  Seconds idle_time{};
  for (int r = 0; r < nodes; ++r) {
    const auto& ne = meter.node(static_cast<std::size_t>(r));
    result.node_energy.push_back(ne);
    active_time += ne.active_time;
    idle_time += ne.idle_time;
  }
  result.mean_active_power = active_time.value() > 0.0
                                 ? result.active_energy / active_time
                                 : Watts{};
  result.mean_idle_power =
      idle_time.value() > 0.0 ? result.idle_energy / idle_time : Watts{};
  return result;
}

std::vector<RunResult> ExperimentRunner::gear_sweep(const Workload& workload,
                                                    int nodes,
                                                    int jobs) const {
  // Each gear point is a pure function of (config_, workload, nodes, g):
  // run() builds its own engine, meter and RNG streams from those alone,
  // so the points fan out over the pool with bit-identical results for
  // any job count.
  std::vector<RunResult> results(config_.gears.size());
  parallel_for_ordered(jobs, config_.gears.size(), [&](std::size_t g) {
    results[g] = run(workload, nodes, g);
  });
  return results;
}

ExperimentRunner::RepeatedResult ExperimentRunner::run_repeated(
    const Workload& workload, int nodes, std::size_t gear_index,
    int repetitions, int jobs) const {
  GEARSIM_REQUIRE(repetitions >= 1, "need at least one repetition");
  RepeatedResult result;
  result.runs.resize(static_cast<std::size_t>(repetitions));
  parallel_for_ordered(
      jobs, static_cast<std::size_t>(repetitions), [&](std::size_t rep) {
        ClusterConfig config = config_;
        config.seed = config_.seed + rep;
        config.network.jitter_seed = config_.network.jitter_seed + rep;
        const ExperimentRunner sub(config);
        result.runs[rep] = sub.run(workload, nodes, gear_index);
      });
  // Welford accumulation is order-sensitive in the last bits; fold the
  // ordered results serially so the statistics match the serial loop.
  for (const RunResult& run : result.runs) {
    result.time_s.add(run.wall.value());
    result.energy_j.add(run.energy.value());
  }
  return result;
}

double speedup(const RunResult& a, const RunResult& b) {
  GEARSIM_REQUIRE(b.wall.value() > 0.0, "zero-time run");
  return a.wall / b.wall;
}

}  // namespace gearsim::cluster
