// Cluster configurations: the machines of the paper.
//
//  * athlon_cluster(): the 10-node power-scalable AMD Athlon-64 cluster —
//    six gears (2000..800 MHz), 1 GB RAM, 100 Mb/s Ethernet, measured
//    whole-system power 140-150 W at the top gear with the CPU at 45-55%.
//  * sun_cluster(): the 32-node fixed-frequency Sun cluster used to
//    cross-validate the scalability fits.
//  * xeon_cluster(): the 64-node Xeon cluster whose shared network made
//    results unreliable (kept for the same negative result).
#pragma once

#include <cstdint>
#include <string>

#include "cpu/cpu_model.hpp"
#include "cpu/power_model.hpp"
#include "mpi/types.hpp"
#include "net/network.hpp"
#include "power/multimeter.hpp"

namespace gearsim::cluster {

struct ClusterConfig {
  std::string name = "athlon";
  int max_nodes = 10;
  cpu::CpuParams cpu{};
  cpu::GearTable gears = cpu::athlon64_gears();
  cpu::PowerParams power{};
  net::NetworkParams network = net::ethernet_100mbps();
  mpi::MpiParams mpi{};
  /// Half-width of the per-rank compute-speed jitter (fraction): rank r
  /// executes its blocks at (1 + u_r) cost, u_r ~ U(-x, +x), fixed per
  /// run.  Models the load imbalance real traces show.
  double load_imbalance = 0.01;
  /// Cost of a DVFS transition (PowerNow!-class hardware re-locks the
  /// PLL and steps the voltage); paid on every mid-run set_gear.
  Seconds gear_switch_latency = microseconds(100.0);
  /// Also meter every node with the paper's sampling rig (multimeters at
  /// the wall outlet, integrated by a separate computer) and report the
  /// integral in RunResult::sampled_energy.  Exact accounting is always
  /// on; this adds the physical measurement path for cross-validation.
  bool sample_power = false;
  power::MultimeterConfig multimeter{};
  std::uint64_t seed = 42;
};

/// The paper's measured machine.
ClusterConfig athlon_cluster();
/// The 32-node validation machine (not power-scalable).
ClusterConfig sun_cluster();
/// The discarded shared-network machine.
ClusterConfig xeon_cluster();

/// Install a routing topology (see net/topology.hpp) on a preset:
/// sets network.topology and raises max_nodes to the shape's host
/// capacity when it seats more than the preset allows, so e.g. a
/// 256-host fat-tree on the athlon preset can actually run 256 ranks.
/// The CLI's --topology and the serve protocol's "topology" field both
/// go through here, so a served query and the local command build the
/// same canonical config (and thus the same cache keys).
void install_topology(ClusterConfig* config,
                      const net::TopologyParams& topology);

}  // namespace gearsim::cluster
