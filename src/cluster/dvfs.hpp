// DVFS gear policies: the paper's future work, made runnable.
//
// The paper's measurements keep every node at one uniform gear.  Its
// conclusion sketches two automatic schemes, both of which this module
// implements so they can be compared against the uniform baseline:
//
//  * "node bottleneck" (future work #2): ranks that reach synchronization
//    points early can be scaled down with little or no performance
//    penalty — plan_node_bottleneck derives per-rank static gears from a
//    profile run's active-time imbalance;
//  * an MPI runtime that "automatically monitors executing programs and
//    reduces the energy gear appropriately" (future work #3) —
//    CommDownshift parks a rank at a low gear whenever it blocks in MPI
//    and restores the compute gear on exit, paying the DVFS transition
//    latency both ways (the naive ancestor of Jitter/Adagio-style
//    runtimes).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "cluster/experiment.hpp"

namespace gearsim::cluster {

/// Gear selection for one run.  Implementations must be immutable during
/// the run (they are consulted concurrently by every rank's process).
class GearPolicy {
 public:
  virtual ~GearPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Gear a rank computes at (0-based index, 0 = fastest).
  [[nodiscard]] virtual std::size_t compute_gear(int rank) const = 0;
  /// Gear a rank parks at while blocked in MPI; default: no shifting.
  [[nodiscard]] virtual std::size_t comm_gear(int rank) const {
    return compute_gear(rank);
  }
  /// True if comm_gear can differ from compute_gear (or the policy wants
  /// feedback) — tells the runner to install the MPI-observer driver.
  [[nodiscard]] virtual bool shifts_during_comm() const { return false; }

  /// Feedback hooks: the runner's driver invokes these around every
  /// blocking MPI call when shifts_during_comm() is true.  Default no-op;
  /// adaptive controllers accumulate their observations here.
  virtual void on_blocking_enter(int /*rank*/, Seconds /*now*/) const {}
  virtual void on_blocking_exit(int /*rank*/, Seconds /*now*/) const {}
};

/// The paper's measured configuration: every rank at one gear.
class UniformGear final : public GearPolicy {
 public:
  explicit UniformGear(std::size_t gear) : gear_(gear) {}
  [[nodiscard]] std::string name() const override {
    return "uniform(g" + std::to_string(gear_ + 1) + ")";
  }
  [[nodiscard]] std::size_t compute_gear(int) const override { return gear_; }

 private:
  std::size_t gear_;
};

/// Static per-rank gears (the output of the node-bottleneck planner).
class PerRankGear final : public GearPolicy {
 public:
  explicit PerRankGear(std::vector<std::size_t> gears);
  [[nodiscard]] std::string name() const override { return "per-rank"; }
  [[nodiscard]] std::size_t compute_gear(int rank) const override;
  [[nodiscard]] const std::vector<std::size_t>& gears() const { return gears_; }

 private:
  std::vector<std::size_t> gears_;
};

/// Downshift while blocked in MPI; compute at `compute_gear`.
class CommDownshift final : public GearPolicy {
 public:
  CommDownshift(std::size_t compute_gear, std::size_t comm_gear);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t compute_gear(int) const override {
    return compute_;
  }
  [[nodiscard]] std::size_t comm_gear(int) const override { return comm_; }
  [[nodiscard]] bool shifts_during_comm() const override {
    return comm_ != compute_;
  }

 private:
  std::size_t compute_;
  std::size_t comm_;
};

/// Derive per-rank gears from a profile run (uniform fastest gear): a
/// rank whose active time is below the maximum has slack, and may run as
/// slow as `S <= active_max / active_rank` without delaying the critical
/// rank.  `gear_slowdowns` is the application's per-gear S_g ladder
/// (model::GearData slowdowns); `safety` in (0, 1] shrinks the usable
/// slack to absorb modeling error.
PerRankGear plan_node_bottleneck(const RunResult& profile,
                                 std::span<const double> gear_slowdowns,
                                 double safety = 1.0);

/// Online feedback controller (the dynamic form of future work #2, and
/// the ancestor of the Jitter/Adagio runtimes): each rank tracks the
/// fraction of recent wall time it spent blocked in MPI, and steps its
/// *compute* gear down when the blocked share stays above `hi` (it has
/// slack to burn) or back up when it falls below `lo` (it has become the
/// bottleneck).  Decisions are per rank and per observation window, so
/// different ranks converge to different gears on imbalanced runs.
class SlackAdaptive final : public GearPolicy {
 public:
  struct Params {
    std::size_t initial_gear = 0;
    /// Blocked-share thresholds for stepping down / up.
    double hi = 0.25;
    double lo = 0.05;
    /// Blocking intervals per observation window.
    int window = 16;
    /// Never shift slower than this gear (0-based).
    std::size_t slowest_gear = 5;
  };

  explicit SlackAdaptive(Params params, int nprocs);

  [[nodiscard]] std::string name() const override { return "slack-adaptive"; }
  [[nodiscard]] std::size_t compute_gear(int rank) const override;
  [[nodiscard]] std::size_t comm_gear(int rank) const override;
  /// The driver must be installed so the controller sees blocking calls;
  /// comm_gear == compute_gear except it *re-evaluates* on each exit.
  [[nodiscard]] bool shifts_during_comm() const override { return true; }

  void on_blocking_enter(int rank, Seconds now) const override;
  void on_blocking_exit(int rank, Seconds now) const override;

  /// Final per-rank gears after the run (for reporting/tests).
  [[nodiscard]] std::vector<std::size_t> final_gears() const;

 private:
  struct RankState {
    std::size_t gear;
    Seconds window_start{};
    Seconds blocked{};
    Seconds enter{};
    int intervals = 0;
    bool started = false;
  };

  Params params_;
  // The GearPolicy interface is const (policies are normally immutable);
  // the controller's feedback state is this object's whole point.
  mutable std::vector<RankState> state_;
};

}  // namespace gearsim::cluster
