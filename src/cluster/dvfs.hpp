// DVFS gear policies: the paper's future work, made runnable.
//
// The paper's measurements keep every node at one uniform gear.  Its
// conclusion sketches two automatic schemes, both of which this module
// implements so they can be compared against the uniform baseline:
//
//  * "node bottleneck" (future work #2): ranks that reach synchronization
//    points early can be scaled down with little or no performance
//    penalty — plan_node_bottleneck derives per-rank static gears from a
//    profile run's active-time imbalance;
//  * an MPI runtime that "automatically monitors executing programs and
//    reduces the energy gear appropriately" (future work #3) —
//    CommDownshift parks a rank at a low gear whenever it blocks in MPI
//    and restores the compute gear on exit, paying the DVFS transition
//    latency both ways (the naive ancestor of Jitter/Adagio-style
//    runtimes).
//
// The *adaptive online* controllers that close future work #3 for real —
// timeout-filtered downshift and per-iteration slack reclamation — live
// in src/policy/ (see docs/POLICIES.md); they plug into the same
// GearPolicy surface defined here.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/experiment.hpp"
#include "mpi/types.hpp"
#include "obs/metrics.hpp"

namespace gearsim::cluster {

/// Gear selection for one run, consulted by the runner's DVFS driver.
///
/// Two kinds of implementation share this surface:
///  * *static* policies (UniformGear, PerRankGear, CommDownshift): no
///    per-run state, every method const — one instance may be shared by
///    concurrent runs;
///  * *runtime controllers* (policy::RuntimeController subclasses):
///    mutable per-rank state fed by the engine-time callbacks below.  A
///    controller instance serves ONE run at a time; the runner calls
///    begin_run() first, which must reset all per-run state (so reusing
///    an instance across sequential runs is deterministic).  Concurrent
///    runs need one instance each — exec::SweepRunner instantiates a
///    fresh controller per point through PolicyFactory.
class GearPolicy {
 public:
  virtual ~GearPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Canonical identity: name plus EVERY parameter that can change the
  /// simulation, rendered at round-trip precision (use cluster::sig_value
  /// for doubles).  This is the policy half of an exec cache key — two
  /// policies with equal signatures must produce bit-identical runs.
  /// Defaults to name(); parameterized policies must override it.
  [[nodiscard]] virtual std::string signature() const { return name(); }
  /// Gear a rank computes at (0-based index, 0 = fastest).
  [[nodiscard]] virtual std::size_t compute_gear(int rank) const = 0;
  /// Gear a rank parks at while blocked in MPI; default: no shifting.
  [[nodiscard]] virtual std::size_t comm_gear(int rank) const {
    return compute_gear(rank);
  }
  /// True if comm_gear can differ from compute_gear (or the policy wants
  /// feedback) — tells the runner to install the MPI-observer driver.
  [[nodiscard]] virtual bool shifts_during_comm() const { return false; }

  /// Called once at the start of every run, before any gear query.
  /// Controllers reset all per-run state here; static policies may
  /// validate the rank count.  Default no-op.
  virtual void begin_run(int /*nprocs*/) {}

  /// Engine-time feedback: the runner's driver invokes these around every
  /// blocking MPI call when shifts_during_comm() is true.  `waited` on
  /// exit is the measured wall time spent inside the call (transition
  /// latency included, as a DVFS-aware MPI would observe).  Non-const:
  /// adaptive controllers accumulate their observations here; static
  /// policies keep the default no-ops and stay shareable.
  virtual void on_blocking_enter(int /*rank*/, mpi::CallType /*type*/,
                                 Bytes /*bytes*/, Seconds /*now*/) {}
  virtual void on_blocking_exit(int /*rank*/, mpi::CallType /*type*/,
                                Bytes /*bytes*/, Seconds /*now*/,
                                Seconds /*waited*/) {}

  /// Attach a metrics registry for the upcoming run (nullptr detaches).
  /// The runner calls this before begin_run(); controllers fetch their
  /// counters there.  Decisions never depend on the registry, so an
  /// instrumented run is bit-identical to an uninstrumented one.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

 protected:
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Creates one fresh policy instance per run — how policies travel
/// through exec::SweepRunner, whose worker pool may execute many runs of
/// the same nominal policy concurrently.  signature() doubles as the
/// cache-key component (see exec/cache_key.hpp): it must equal the
/// signature of every instance the factory produces.
class PolicyFactory {
 public:
  virtual ~PolicyFactory() = default;
  [[nodiscard]] virtual std::string signature() const = 0;
  /// Fresh instance sized for `nprocs` ranks.
  [[nodiscard]] virtual std::unique_ptr<GearPolicy> instantiate(
      int nprocs) const = 0;
};

/// The paper's measured configuration: every rank at one gear.
class UniformGear final : public GearPolicy {
 public:
  explicit UniformGear(std::size_t gear) : gear_(gear) {}
  [[nodiscard]] std::string name() const override {
    return "uniform(g" + std::to_string(gear_ + 1) + ")";
  }
  [[nodiscard]] std::string signature() const override {
    return "uniform{gear=" + std::to_string(gear_) + "}";
  }
  [[nodiscard]] std::size_t compute_gear(int) const override { return gear_; }

 private:
  std::size_t gear_;
};

/// Static per-rank gears (the output of the node-bottleneck planner).
class PerRankGear final : public GearPolicy {
 public:
  explicit PerRankGear(std::vector<std::size_t> gears);
  [[nodiscard]] std::string name() const override { return "per-rank"; }
  [[nodiscard]] std::string signature() const override;
  [[nodiscard]] std::size_t compute_gear(int rank) const override;
  [[nodiscard]] const std::vector<std::size_t>& gears() const { return gears_; }

 private:
  std::vector<std::size_t> gears_;
};

/// Downshift while blocked in MPI; compute at `compute_gear`.
class CommDownshift final : public GearPolicy {
 public:
  CommDownshift(std::size_t compute_gear, std::size_t comm_gear);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string signature() const override;
  [[nodiscard]] std::size_t compute_gear(int) const override {
    return compute_;
  }
  [[nodiscard]] std::size_t comm_gear(int) const override { return comm_; }
  [[nodiscard]] bool shifts_during_comm() const override {
    return comm_ != compute_;
  }

 private:
  std::size_t compute_;
  std::size_t comm_;
};

// --- factories for the static policies ---------------------------------------

class UniformGearFactory final : public PolicyFactory {
 public:
  explicit UniformGearFactory(std::size_t gear) : gear_(gear) {}
  [[nodiscard]] std::string signature() const override {
    return UniformGear(gear_).signature();
  }
  [[nodiscard]] std::unique_ptr<GearPolicy> instantiate(int) const override {
    return std::make_unique<UniformGear>(gear_);
  }

 private:
  std::size_t gear_;
};

class PerRankGearFactory final : public PolicyFactory {
 public:
  explicit PerRankGearFactory(std::vector<std::size_t> gears)
      : gears_(std::move(gears)) {}
  [[nodiscard]] std::string signature() const override {
    return PerRankGear(gears_).signature();
  }
  [[nodiscard]] std::unique_ptr<GearPolicy> instantiate(int) const override {
    return std::make_unique<PerRankGear>(gears_);
  }

 private:
  std::vector<std::size_t> gears_;
};

class CommDownshiftFactory final : public PolicyFactory {
 public:
  CommDownshiftFactory(std::size_t compute_gear, std::size_t comm_gear)
      : compute_(compute_gear), comm_(comm_gear) {}
  [[nodiscard]] std::string signature() const override {
    return CommDownshift(compute_, comm_).signature();
  }
  [[nodiscard]] std::unique_ptr<GearPolicy> instantiate(int) const override {
    return std::make_unique<CommDownshift>(compute_, comm_);
  }

 private:
  std::size_t compute_;
  std::size_t comm_;
};

/// Derive per-rank gears from a profile run (uniform fastest gear): a
/// rank whose active time is below the maximum has slack, and may run as
/// slow as `S <= active_max / active_rank` without delaying the critical
/// rank.  `gear_slowdowns` is the application's per-gear S_g ladder
/// (model::GearData slowdowns); `safety` in (0, 1] shrinks the usable
/// slack to absorb modeling error.
PerRankGear plan_node_bottleneck(const RunResult& profile,
                                 std::span<const double> gear_slowdowns,
                                 double safety = 1.0);

/// Online feedback controller (the dynamic form of future work #2, and
/// the ancestor of the Jitter/Adagio runtimes): each rank tracks the
/// fraction of recent wall time it spent blocked in MPI, and steps its
/// *compute* gear down when the blocked share stays above `hi` (it has
/// slack to burn) or back up when it falls below `lo` (it has become the
/// bottleneck).  Decisions are per rank and per observation window, so
/// different ranks converge to different gears on imbalanced runs.
///
/// Kept as the naive baseline the src/policy controllers improve on: its
/// absolute blocked-share feedback cannot distinguish "I have slack"
/// from "everyone is waiting together" (the SP/BT pathology documented
/// in bench/ablation_gear_policies).
class SlackAdaptive final : public GearPolicy {
 public:
  struct Params {
    std::size_t initial_gear = 0;
    /// Blocked-share thresholds for stepping down / up.
    double hi = 0.25;
    double lo = 0.05;
    /// Blocking intervals per observation window.
    int window = 16;
    /// Never shift slower than this gear (0-based).
    std::size_t slowest_gear = 5;
  };

  explicit SlackAdaptive(Params params, int nprocs);

  [[nodiscard]] std::string name() const override { return "slack-adaptive"; }
  [[nodiscard]] std::string signature() const override;
  [[nodiscard]] std::size_t compute_gear(int rank) const override;
  [[nodiscard]] std::size_t comm_gear(int rank) const override;
  /// The driver must be installed so the controller sees blocking calls;
  /// comm_gear == compute_gear except it *re-evaluates* on each exit.
  [[nodiscard]] bool shifts_during_comm() const override { return true; }

  void begin_run(int nprocs) override;
  void on_blocking_enter(int rank, mpi::CallType type, Bytes bytes,
                         Seconds now) override;
  void on_blocking_exit(int rank, mpi::CallType type, Bytes bytes,
                        Seconds now, Seconds waited) override;

  /// Final per-rank gears after the run (for reporting/tests).
  [[nodiscard]] std::vector<std::size_t> final_gears() const;

 private:
  struct RankState {
    std::size_t gear;
    Seconds window_start{};
    Seconds blocked{};
    int intervals = 0;
    bool started = false;
  };

  Params params_;
  std::vector<RankState> state_;
};

class SlackAdaptiveFactory final : public PolicyFactory {
 public:
  explicit SlackAdaptiveFactory(SlackAdaptive::Params params)
      : params_(params) {}
  [[nodiscard]] std::string signature() const override {
    return SlackAdaptive(params_, 1).signature();
  }
  [[nodiscard]] std::unique_ptr<GearPolicy> instantiate(
      int nprocs) const override {
    return std::make_unique<SlackAdaptive>(params_, nprocs);
  }

 private:
  SlackAdaptive::Params params_;
};

}  // namespace gearsim::cluster
