#include "cluster/config.hpp"

namespace gearsim::cluster {

ClusterConfig athlon_cluster() {
  ClusterConfig c;
  c.name = "athlon";
  c.max_nodes = 10;
  // Defaults in CpuParams/PowerParams/NetworkParams are the Athlon-64
  // calibration (DESIGN.md §5); this function is the single named source.
  return c;
}

ClusterConfig sun_cluster() {
  ClusterConfig c;
  c.name = "sun";
  c.max_nodes = 32;
  // Fixed-gear UltraSPARC-class node: slower clock, similar memory system.
  c.gears = cpu::fixed_gear(megahertz(1200), volts(1.6));
  c.cpu.upc_eff = 0.6;
  c.cpu.mem_latency = nanoseconds(60.0);
  c.power.base = watts(85.0);
  c.power.cpu_static = watts(18.0);
  c.power.cpu_dynamic = watts(45.0);
  c.network = net::sun_cluster_network();
  return c;
}

ClusterConfig xeon_cluster() {
  ClusterConfig c;
  c.name = "xeon";
  c.max_nodes = 64;
  c.gears = cpu::fixed_gear(megahertz(2400), volts(1.5));
  c.cpu.upc_eff = 0.55;
  c.cpu.mem_latency = nanoseconds(55.0);
  c.power.base = watts(95.0);
  c.power.cpu_static = watts(25.0);
  c.power.cpu_dynamic = watts(60.0);
  c.network = net::shared_xeon_network();
  return c;
}

void install_topology(ClusterConfig* config,
                      const net::TopologyParams& topology) {
  config->network.topology = topology;
  if (topology.flat()) return;
  // Validate the shape now (a bad spec should fail the command/query,
  // not the first simulation) and learn its host capacity.
  const auto shape =
      net::Topology::make(topology, 1, config->network.link_bandwidth);
  const auto seats = static_cast<int>(shape->num_hosts());
  if (seats > config->max_nodes) config->max_nodes = seats;
}

}  // namespace gearsim::cluster
