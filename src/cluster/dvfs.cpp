#include "cluster/dvfs.hpp"

#include <algorithm>

#include "cluster/workload.hpp"
#include "util/assert.hpp"

namespace gearsim::cluster {

PerRankGear::PerRankGear(std::vector<std::size_t> gears)
    : gears_(std::move(gears)) {
  GEARSIM_REQUIRE(!gears_.empty(), "per-rank policy needs at least one gear");
}

std::string PerRankGear::signature() const {
  std::string sig = "per-rank{gears=";
  for (std::size_t i = 0; i < gears_.size(); ++i) {
    if (i > 0) sig += ',';
    sig += std::to_string(gears_[i]);
  }
  return sig + "}";
}

std::size_t PerRankGear::compute_gear(int rank) const {
  GEARSIM_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < gears_.size(),
                  "rank outside the planned assignment");
  return gears_[rank];
}

CommDownshift::CommDownshift(std::size_t compute_gear, std::size_t comm_gear)
    : compute_(compute_gear), comm_(comm_gear) {
  GEARSIM_REQUIRE(comm_ >= compute_,
                  "comm gear should be no faster than the compute gear");
}

std::string CommDownshift::name() const {
  return "comm-downshift(g" + std::to_string(compute_ + 1) + "->g" +
         std::to_string(comm_ + 1) + ")";
}

std::string CommDownshift::signature() const {
  return "comm-downshift{compute=" + std::to_string(compute_) +
         ",comm=" + std::to_string(comm_) + "}";
}

SlackAdaptive::SlackAdaptive(Params params, int nprocs) : params_(params) {
  GEARSIM_REQUIRE(params_.lo >= 0.0 && params_.lo < params_.hi &&
                      params_.hi <= 1.0,
                  "thresholds must satisfy 0 <= lo < hi <= 1");
  GEARSIM_REQUIRE(params_.window >= 1, "window must be positive");
  GEARSIM_REQUIRE(params_.initial_gear <= params_.slowest_gear,
                  "initial gear beyond the slowest allowed");
  begin_run(nprocs);
}

std::string SlackAdaptive::signature() const {
  return "slack-adaptive{initial=" + std::to_string(params_.initial_gear) +
         ",hi=" + sig_value(params_.hi) + ",lo=" + sig_value(params_.lo) +
         ",window=" + std::to_string(params_.window) +
         ",slowest=" + std::to_string(params_.slowest_gear) + "}";
}

void SlackAdaptive::begin_run(int nprocs) {
  GEARSIM_REQUIRE(nprocs >= 1, "need at least one rank");
  state_.assign(static_cast<std::size_t>(nprocs),
                RankState{params_.initial_gear, Seconds{}, Seconds{}, 0,
                          false});
}

std::size_t SlackAdaptive::compute_gear(int rank) const {
  GEARSIM_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < state_.size(),
                  "rank out of range");
  return state_[rank].gear;
}

std::size_t SlackAdaptive::comm_gear(int rank) const {
  return compute_gear(rank);
}

void SlackAdaptive::on_blocking_enter(int rank, mpi::CallType, Bytes,
                                      Seconds now) {
  RankState& s = state_[rank];
  if (!s.started) {
    s.started = true;
    s.window_start = now;
  }
}

void SlackAdaptive::on_blocking_exit(int rank, mpi::CallType, Bytes,
                                     Seconds now, Seconds waited) {
  RankState& s = state_[rank];
  if (!s.started) return;
  s.blocked += waited;
  if (++s.intervals < params_.window) return;
  const Seconds elapsed = now - s.window_start;
  if (elapsed.value() > 0.0) {
    const double blocked_share = s.blocked / elapsed;
    if (blocked_share > params_.hi && s.gear < params_.slowest_gear) {
      ++s.gear;  // Plenty of slack: step down.
    } else if (blocked_share < params_.lo && s.gear > 0) {
      --s.gear;  // Became the bottleneck: step back up.
    }
  }
  s.window_start = now;
  s.blocked = Seconds{};
  s.intervals = 0;
}

std::vector<std::size_t> SlackAdaptive::final_gears() const {
  std::vector<std::size_t> gears;
  gears.reserve(state_.size());
  for (const auto& s : state_) gears.push_back(s.gear);
  return gears;
}

PerRankGear plan_node_bottleneck(const RunResult& profile,
                                 std::span<const double> gear_slowdowns,
                                 double safety) {
  GEARSIM_REQUIRE(!gear_slowdowns.empty(), "need the per-gear slowdown ladder");
  GEARSIM_REQUIRE(safety > 0.0 && safety <= 1.0, "safety must be in (0, 1]");
  GEARSIM_REQUIRE(!profile.breakdown.ranks.empty(), "profile has no ranks");
  for (std::size_t g = 1; g < gear_slowdowns.size(); ++g) {
    GEARSIM_REQUIRE(gear_slowdowns[g] >= gear_slowdowns[g - 1],
                    "slowdown ladder must be non-decreasing");
  }

  const Seconds active_max = profile.breakdown.active_max;
  std::vector<std::size_t> gears;
  gears.reserve(profile.breakdown.ranks.size());
  for (const auto& rank : profile.breakdown.ranks) {
    // Allowable slowdown: stretch this rank's active time at most up to
    // the (safety-scaled) critical rank's active time.
    double budget = 1.0;
    if (rank.active.value() > 0.0) {
      budget = 1.0 + safety * ((active_max / rank.active) - 1.0);
    }
    std::size_t chosen = 0;
    for (std::size_t g = 0; g < gear_slowdowns.size(); ++g) {
      if (gear_slowdowns[g] <= budget) chosen = g;
    }
    gears.push_back(chosen);
  }
  return PerRankGear(std::move(gears));
}

}  // namespace gearsim::cluster
