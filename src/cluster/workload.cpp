#include "cluster/workload.hpp"

#include <charconv>
#include <limits>

#include "faults/injector.hpp"
#include "util/assert.hpp"

namespace gearsim::cluster {

std::string sig_value(double v) {
  char buf[40];
  const auto [ptr, ec] = std::to_chars(
      buf, buf + sizeof(buf), v, std::chars_format::general,
      std::numeric_limits<double>::max_digits10);
  GEARSIM_ENSURE(ec == std::errc(), "sig_value formatting failed");
  return std::string(buf, ptr);
}

std::string sig_value(std::uint64_t v) { return std::to_string(v); }

RankContext::RankContext(mpi::Comm comm, const cpu::CpuModel& cpu_model,
                         const cpu::PowerModel& power_model,
                         power::EnergyMeter& meter, std::size_t gear_index,
                         double speed_penalty, Rng rng,
                         Seconds gear_switch_latency)
    : comm_(comm),
      cpu_model_(cpu_model),
      power_model_(power_model),
      meter_(meter),
      gear_index_(gear_index),
      speed_penalty_(speed_penalty),
      rng_(rng),
      switch_latency_(gear_switch_latency) {
  GEARSIM_REQUIRE(speed_penalty_ > 0.0, "speed penalty must be positive");
  GEARSIM_REQUIRE(switch_latency_.value() >= 0.0, "negative switch latency");
  GEARSIM_REQUIRE(gear_index_ < cpu_model_.gears().size(),
                  "initial gear out of range");
  residency_.assign(cpu_model_.gears().size(), Seconds{});
  residency_mark_ = proc().now();
}

void RankContext::set_gear(std::size_t gear_index) {
  GEARSIM_REQUIRE(gear_index < cpu_model_.gears().size(),
                  "gear index out of range");
  if (gear_index == gear_index_) return;
  const auto node = static_cast<std::size_t>(rank());
  sim::Process& p = proc();
  // Close the residency interval of the gear being left; the transition
  // latency below accrues to the gear being entered.
  residency_[gear_index_] += p.now() - residency_mark_;
  residency_mark_ = p.now();
  gear_index_ = gear_index;
  ++gear_switches_;
  // The transition itself runs at (new-gear) idle draw.
  meter_.set_power(node, p.now(), power_model_.idle_power(gear_index_),
                   power::NodeState::kIdle);
  if (switch_latency_.value() > 0.0) p.delay(switch_latency_);
}

void RankContext::finalize_residency() {
  const Seconds now = proc().now();
  residency_[gear_index_] += now - residency_mark_;
  residency_mark_ = now;
}

void RankContext::compute(const cpu::ComputeBlock& block) {
  const auto node = static_cast<std::size_t>(rank());
  sim::Process& p = proc();
  // A straggler window silently caps the gear this block actually runs
  // at; fault-free runs take the first branch with zero extra work.
  const std::size_t g =
      throttle_ == nullptr
          ? gear_index_
          : throttle_->effective_gear(node, p.now(), gear_index_);
  const Seconds t = cpu_model_.execute_time(block, g) * speed_penalty_;
  if (t.value() <= 0.0) return;
  const double busy = cpu_model_.cpu_bound_fraction(block, g);
  meter_.set_power(node, p.now(), power_model_.active_power(g, busy),
                   power::NodeState::kActive);
  p.delay(t);
  meter_.set_power(node, p.now(), power_model_.idle_power(gear_index_),
                   power::NodeState::kIdle);
  compute_time_ += t;
}

void RankContext::compute_upm(double upm, double misses) {
  compute(cpu::block_from_upm(upm, misses));
}

}  // namespace gearsim::cluster
