#include "net/network.hpp"

#include <algorithm>

namespace gearsim::net {

NetworkParams ethernet_100mbps() { return NetworkParams{}; }

NetworkParams sun_cluster_network() {
  NetworkParams p;
  p.latency = microseconds(70.0);
  p.link_bandwidth = 11.9e6;
  p.backplane_bandwidth = 8 * 11.9e6;  // Bigger switch on the 32-node machine.
  return p;
}

NetworkParams shared_xeon_network() {
  NetworkParams p;
  p.latency = microseconds(60.0);
  p.link_bandwidth = 119e6;  // Gigabit NICs...
  p.backplane_bandwidth = 2 * 119e6;  // ...but a fabric shared with other jobs.
  p.latency_jitter = 0.8;  // The paper calls these results unreliable.
  return p;
}

Network::Network(NetworkParams params, std::size_t num_nodes)
    : params_(params),
      tx_free_(num_nodes),
      rx_free_(num_nodes),
      jitter_rng_(params.jitter_seed) {
  GEARSIM_REQUIRE(num_nodes >= 1, "network needs at least one node");
  GEARSIM_REQUIRE(params_.link_bandwidth > 0.0, "link bandwidth must be positive");
  GEARSIM_REQUIRE(params_.backplane_bandwidth >= params_.link_bandwidth,
                  "backplane cannot be slower than one link");
  GEARSIM_REQUIRE(params_.latency.value() >= 0.0, "negative latency");
  GEARSIM_REQUIRE(params_.latency_jitter >= 0.0, "negative jitter");
}

Seconds Network::uncontended_time(Bytes bytes) const {
  return params_.latency +
         seconds(static_cast<double>(bytes) / params_.link_bandwidth);
}

Seconds Network::transfer(std::size_t src, std::size_t dst, Bytes bytes,
                          Seconds now) {
  GEARSIM_REQUIRE(src < tx_free_.size() && dst < rx_free_.size(),
                  "endpoint out of range");
  GEARSIM_REQUIRE(src != dst, "self-transfer does not use the network");
  ++messages_;
  bytes_ += bytes;

  const double b = static_cast<double>(bytes);
  const Seconds wire = seconds(b / params_.link_bandwidth);
  const Seconds fabric = seconds(b / params_.backplane_bandwidth);

  // Sender NIC: FIFO serialization, gated by the shared fabric.
  const Seconds start = std::max({now, tx_free_[src], backplane_free_});
  tx_free_[src] = start + wire;
  backplane_free_ = start + fabric;

  Seconds lat = params_.latency;
  if (params_.latency_jitter > 0.0) {
    lat *= std::max(0.1, 1.0 + jitter_rng_.normal(0.0, params_.latency_jitter));
  }

  // Receiver NIC: the message occupies the RX link for its wire time,
  // FIFO among all senders targeting this node (incast contention).
  const Seconds rx_start = std::max(start + lat, rx_free_[dst]);
  const Seconds arrival = rx_start + wire;
  rx_free_[dst] = arrival;
  return arrival;
}

}  // namespace gearsim::net
