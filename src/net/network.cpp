#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gearsim::net {

NetworkParams ethernet_100mbps() { return NetworkParams{}; }

NetworkParams sun_cluster_network() {
  NetworkParams p;
  p.latency = microseconds(70.0);
  p.link_bandwidth = 11.9e6;
  p.backplane_bandwidth = 8 * 11.9e6;  // Bigger switch on the 32-node machine.
  return p;
}

NetworkParams shared_xeon_network() {
  NetworkParams p;
  p.latency = microseconds(60.0);
  p.link_bandwidth = 119e6;  // Gigabit NICs...
  p.backplane_bandwidth = 2 * 119e6;  // ...but a fabric shared with other jobs.
  p.latency_jitter = 0.8;  // The paper calls these results unreliable.
  return p;
}

Network::Network(NetworkParams params, std::size_t num_nodes)
    : params_(params),
      tx_free_(num_nodes),
      rx_free_(num_nodes),
      jitter_rng_(params.jitter_seed) {
  GEARSIM_REQUIRE(num_nodes >= 1, "network needs at least one node");
  GEARSIM_REQUIRE(std::isfinite(params_.link_bandwidth) &&
                      params_.link_bandwidth > 0.0,
                  "link bandwidth must be positive and finite");
  GEARSIM_REQUIRE(std::isfinite(params_.backplane_bandwidth) &&
                      params_.backplane_bandwidth >= params_.link_bandwidth,
                  "backplane cannot be slower than one link");
  GEARSIM_REQUIRE(std::isfinite(params_.latency.value()) &&
                      params_.latency.value() >= 0.0,
                  "negative or non-finite latency");
  GEARSIM_REQUIRE(std::isfinite(params_.latency_jitter) &&
                      params_.latency_jitter >= 0.0,
                  "negative or non-finite jitter");
  topology_ =
      Topology::make(params_.topology, num_nodes, params_.link_bandwidth);
  if (topology_ == nullptr) {
    min_path_latency_ = params_.latency;
  } else {
    link_sched_.resize(topology_->link_count());
    min_path_latency_ =
        params_.latency +
        params_.topology.hop_latency *
            static_cast<double>(topology_->min_path_links() - 1);
  }
}

void Network::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_messages_ = nullptr;
    m_bytes_ = nullptr;
    m_retransmissions_ = nullptr;
    return;
  }
  m_messages_ = &metrics->counter("net.messages");
  m_bytes_ = &metrics->counter("net.bytes");
  m_retransmissions_ = &metrics->counter("net.retransmissions");
}

Seconds Network::uncontended_time(Bytes bytes) const {
  return params_.latency +
         seconds(static_cast<double>(bytes) / params_.link_bandwidth);
}

void Network::set_link_faults(std::vector<LinkFaultWindow> windows,
                              std::uint64_t seed) {
  for (const LinkFaultWindow& w : windows) {
    GEARSIM_REQUIRE(w.src == LinkFaultWindow::kAnyNode || w.src < num_nodes(),
                    "fault window source out of range");
    GEARSIM_REQUIRE(w.dst == LinkFaultWindow::kAnyNode || w.dst < num_nodes(),
                    "fault window destination out of range");
    GEARSIM_REQUIRE(w.from.value() >= 0.0 && w.until > w.from,
                    "fault window must span positive time");
    GEARSIM_REQUIRE(w.loss_probability >= 0.0 && w.loss_probability <= 1.0,
                    "loss probability outside [0, 1]");
    GEARSIM_REQUIRE(w.loss_probability == 0.0 ||
                        w.retransmit_timeout.value() > 0.0,
                    "lossy window needs a positive retransmit timeout");
    GEARSIM_REQUIRE(w.backoff >= 1.0, "backoff factor below 1");
    GEARSIM_REQUIRE(w.max_retries >= 0, "negative retry cap");
    GEARSIM_REQUIRE(std::isfinite(w.latency_factor) && w.latency_factor >= 1.0,
                    "latency spike factor must be >= 1");
  }
  link_faults_ = std::move(windows);
  fault_seed_ = seed;
  fault_seq_.assign(num_nodes(), 0);
  retransmissions_ = 0;
}

Seconds Network::latency_realization(std::size_t src, std::size_t dst,
                                     Seconds now, Seconds base) {
  Seconds lat = base;
  if (params_.latency_jitter > 0.0) {
    lat *= std::max(0.1, 1.0 + jitter_rng_.normal(0.0, params_.latency_jitter));
  }

  if (!link_faults_.empty()) {
    // Degraded-link realization: each loss costs one timeout, doubling
    // (by `backoff`) per further loss; spikes multiply the wire latency.
    // Draws come from a stream keyed by this transfer's identity — the
    // (src, per-source ordinal) pair — so the realization is independent
    // of how transfers from different sources interleave: the serial
    // dispatch order and the parallel engine's barrier replay (which
    // preserves per-source order only) produce identical losses.  The
    // ordinal advances for every transfer while windows are installed,
    // matched or not, keeping the identity a pure function of the
    // per-source call sequence.
    const std::uint64_t ordinal = fault_seq_[src]++;
    Rng draw(fault_seed_ ^
             (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(src) + 1)) ^
             (0xd1342543de82ef95ULL * (ordinal + 1)));
    double spike = 1.0;
    int losses = 0;
    Seconds penalty{};
    for (const LinkFaultWindow& w : link_faults_) {
      if (!w.applies(src, dst, now)) continue;
      spike = std::max(spike, w.latency_factor);
      Seconds timeout = w.retransmit_timeout;
      while (losses < w.max_retries &&
             draw.uniform() < w.loss_probability) {
        penalty += timeout;
        timeout *= w.backoff;
        ++losses;
      }
    }
    if (losses > 0) {
      retransmissions_ += static_cast<std::uint64_t>(losses);
      if (m_retransmissions_ != nullptr) {
        m_retransmissions_->add(static_cast<std::uint64_t>(losses));
      }
      if (on_retransmit_) on_retransmit_(src, dst, now, losses, penalty);
    }
    lat = lat * spike + penalty;
  }
  return lat;
}

Seconds Network::transfer(std::size_t src, std::size_t dst, Bytes bytes,
                          Seconds now) {
  GEARSIM_REQUIRE(src < tx_free_.size() && dst < rx_free_.size(),
                  "endpoint out of range");
  GEARSIM_REQUIRE(src != dst, "self-transfer does not use the network");
  ++messages_;
  bytes_ += bytes;
  if (m_messages_ != nullptr) m_messages_->add();
  if (m_bytes_ != nullptr) m_bytes_->add(bytes);

  if (topology_ != nullptr) return routed_transfer(src, dst, bytes, now);

  const double b = static_cast<double>(bytes);
  const Seconds wire = seconds(b / params_.link_bandwidth);
  const Seconds fabric = seconds(b / params_.backplane_bandwidth);

  // Sender NIC: FIFO serialization, gated by the shared fabric.
  const Seconds start = std::max({now, tx_free_[src], backplane_free_});
  tx_free_[src] = start + wire;
  backplane_free_ = start + fabric;

  const Seconds lat = latency_realization(src, dst, now, params_.latency);

  // Receiver NIC: the message occupies the RX link for its wire time,
  // FIFO among all senders targeting this node (incast contention).
  const Seconds rx_start = std::max(start + lat, rx_free_[dst]);
  const Seconds arrival = rx_start + wire;
  rx_free_[dst] = arrival;
  return arrival;
}

Seconds Network::routed_transfer(std::size_t src, std::size_t dst, Bytes bytes,
                                 Seconds now) {
  path_scratch_.clear();
  topology_->route(src, dst, &path_scratch_);
  GEARSIM_ENSURE(!path_scratch_.empty(), "routed path has no links");

  // Fold past count changes into each link's baseline.  transfer() calls
  // arrive with non-decreasing `now` — serial dispatch is time-ordered
  // and the parallel engine's barrier replay is sorted by inject time —
  // so events at or before `now` can never matter again.
  const std::size_t links = path_scratch_.size();
  cursor_scratch_.assign(links, 0);
  count_scratch_.resize(links);
  for (std::size_t i = 0; i < links; ++i) {
    LinkSchedule& sched = link_sched_[path_scratch_[i]];
    std::size_t done = 0;
    while (done < sched.events.size() && sched.events[done].time <= now) {
      sched.active += sched.events[done].delta;
      ++done;
    }
    if (done > 0) {
      sched.events.erase(sched.events.begin(),
                         sched.events.begin() +
                             static_cast<std::ptrdiff_t>(done));
    }
    count_scratch_[i] = sched.active;
  }

  // Fluid fair share: this flow's rate at any instant is the tightest
  // link's capacity split among the flows committed there plus itself.
  // Integrate across the committed count-change boundaries until the
  // payload is through.  Committed flows' own finish times are frozen
  // (their arrivals were already returned), so this is causal and a pure
  // function of the transfer call sequence.  Routed paths never repeat a
  // link (climb/descend visits distinct trunks; dimension-ordered hops
  // depart distinct nodes), so the per-position counts stay independent.
  const double payload = static_cast<double>(bytes);
  double sent = 0.0;
  Seconds t = now;
  for (;;) {
    double rate = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < links; ++i) {
      rate = std::min(rate, topology_->link_capacity(path_scratch_[i]) /
                                static_cast<double>(count_scratch_[i] + 1));
    }
    Seconds boundary = seconds(std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < links; ++i) {
      const LinkSchedule& sched = link_sched_[path_scratch_[i]];
      if (cursor_scratch_[i] < sched.events.size()) {
        boundary = std::min(boundary, sched.events[cursor_scratch_[i]].time);
      }
    }
    const Seconds done_at = t + seconds((payload - sent) / rate);
    if (done_at <= boundary) {
      t = done_at;
      break;
    }
    sent += rate * (boundary - t).value();
    t = boundary;
    for (std::size_t i = 0; i < links; ++i) {
      const LinkSchedule& sched = link_sched_[path_scratch_[i]];
      while (cursor_scratch_[i] < sched.events.size() &&
             sched.events[cursor_scratch_[i]].time == boundary) {
        count_scratch_[i] += sched.events[cursor_scratch_[i]].delta;
        ++cursor_scratch_[i];
      }
    }
  }

  // Commit this flow's [now, t) occupancy on every crossed link.
  for (std::size_t i = 0; i < links; ++i) {
    std::vector<LinkFlowEvent>& events = link_sched_[path_scratch_[i]].events;
    const auto insert_at = [&events](Seconds time, int delta) {
      const auto pos = std::upper_bound(
          events.begin(), events.end(), time,
          [](Seconds v, const LinkFlowEvent& e) { return v < e.time; });
      events.insert(pos, LinkFlowEvent{time, delta});
    };
    insert_at(now, +1);
    insert_at(t, -1);
  }

  // Per-switch hop latency on top of the wire latency; jitter and fault
  // windows realize against the whole path latency.
  const Seconds base =
      params_.latency +
      params_.topology.hop_latency * static_cast<double>(links - 1);
  return t + latency_realization(src, dst, now, base);
}

}  // namespace gearsim::net
