file(REMOVE_RECURSE
  "libgearsim_net.a"
)
