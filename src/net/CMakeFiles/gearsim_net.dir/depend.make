# Empty dependencies file for gearsim_net.
# This may be replaced when dependencies are built.
