file(REMOVE_RECURSE
  "CMakeFiles/gearsim_net.dir/network.cpp.o"
  "CMakeFiles/gearsim_net.dir/network.cpp.o.d"
  "libgearsim_net.a"
  "libgearsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
