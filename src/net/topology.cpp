#include "net/topology.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace gearsim::net {

namespace {

/// Hosts a topology may seat; keeps link tables and leaf products from
/// overflowing anything (2^22 hosts is far beyond any simulated sweep).
constexpr std::size_t kMaxHosts = std::size_t{1} << 22;

std::string fmt_double(double v) {
  char buf[40];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general);
  GEARSIM_ENSURE(ec == std::errc(), "double rendering failed");
  return std::string(buf, ptr);
}

// ---------------------------------------------------------------------------
// Fat tree.

class FatTreeTopology final : public Topology {
 public:
  FatTreeTopology(const TopologyParams& params, std::size_t num_nodes,
                  double nic_bandwidth)
      : num_nodes_(num_nodes) {
    const std::size_t levels = params.down.size();
    GEARSIM_REQUIRE(levels >= 1, "fat-tree needs at least one level");
    GEARSIM_REQUIRE(params.up.size() == levels &&
                        params.parallel.size() == levels,
                    "fat-tree down/up/parallel must have one entry per level");
    const double trunk = params.trunk_bandwidth > 0.0
                             ? params.trunk_bandwidth
                             : nic_bandwidth;
    // C(l) = hosts under one level-l subtree; E(l) = entities at level l.
    subtree_.assign(levels + 1, 1);
    for (std::size_t l = 0; l < levels; ++l) {
      GEARSIM_REQUIRE(params.down[l] >= 1 && params.up[l] >= 1 &&
                          params.parallel[l] >= 1,
                      "fat-tree level counts must be positive");
      subtree_[l + 1] = subtree_[l] * static_cast<std::size_t>(params.down[l]);
      GEARSIM_REQUIRE(subtree_[l + 1] <= kMaxHosts, "fat-tree too large");
    }
    GEARSIM_REQUIRE(subtree_[levels] >= num_nodes,
                    "fat-tree seats fewer hosts than the cluster has nodes");
    up_ = params.up;
    up_base_.resize(levels);
    down_base_.resize(levels);
    capacity_.resize(levels);
    std::size_t next = 0;
    for (std::size_t l = 0; l < levels; ++l) {
      const std::size_t entities = subtree_[levels] / subtree_[l];
      const std::size_t trunks = entities * static_cast<std::size_t>(up_[l]);
      up_base_[l] = next;
      next += trunks;
      down_base_[l] = next;
      next += trunks;
      // Level 0 trunks are host NICs; higher levels are switch trunks.
      // `parallel` cables aggregate into one fat link.
      capacity_[l] = (l == 0 ? nic_bandwidth : trunk) *
                     static_cast<double>(params.parallel[l]);
      GEARSIM_REQUIRE(next <= std::numeric_limits<LinkId>::max(),
                      "fat-tree link table too large");
    }
    link_count_ = next;
    // Level of the smallest subtree that can hold two distinct hosts:
    // hosts 0 and 1 merge there, and no distinct pair merges lower.
    min_merge_ = 1;
    while (min_merge_ <= levels && subtree_[min_merge_] < 2) ++min_merge_;
  }

  [[nodiscard]] std::size_t link_count() const override { return link_count_; }
  [[nodiscard]] std::size_t num_hosts() const override {
    return subtree_.back();
  }
  [[nodiscard]] double link_capacity(LinkId link) const override {
    // Levels are few (2-4); linear scan beats a lookup table here.
    for (std::size_t l = capacity_.size(); l-- > 0;) {
      if (link >= up_base_[l]) return capacity_[l];
    }
    GEARSIM_ENSURE(false, "link id below the first level base");
    return 0.0;
  }

  void route(std::size_t src, std::size_t dst,
             std::vector<LinkId>* path) const override {
    // Climb to the lowest level where src and dst share a subtree, then
    // descend.  Trunk choice (src + dst) % up[l] is symmetric in the
    // endpoints, so route(dst, src) is the reverse path on the twin
    // (opposite-direction) links.
    std::size_t merge = 1;
    while (src / subtree_[merge] != dst / subtree_[merge]) ++merge;
    for (std::size_t l = 0; l < merge; ++l) {
      path->push_back(static_cast<LinkId>(trunk(up_base_[l], l, src, dst,
                                                src / subtree_[l])));
    }
    for (std::size_t l = merge; l-- > 0;) {
      path->push_back(static_cast<LinkId>(trunk(down_base_[l], l, src, dst,
                                                dst / subtree_[l])));
    }
  }

  [[nodiscard]] std::size_t min_path_links() const override {
    if (num_nodes_ < 2) return 1;
    return 2 * min_merge_;
  }

 private:
  [[nodiscard]] std::size_t trunk(std::size_t base, std::size_t level,
                                  std::size_t src, std::size_t dst,
                                  std::size_t entity) const {
    const auto fanout = static_cast<std::size_t>(up_[level]);
    return base + entity * fanout + (src + dst) % fanout;
  }

  std::size_t num_nodes_;
  std::vector<std::size_t> subtree_;  ///< subtree_[l] = hosts per level-l tree.
  std::vector<int> up_;
  std::vector<std::size_t> up_base_;
  std::vector<std::size_t> down_base_;
  std::vector<double> capacity_;
  std::size_t link_count_ = 0;
  std::size_t min_merge_ = 1;
};

// ---------------------------------------------------------------------------
// Torus.

class TorusTopology final : public Topology {
 public:
  TorusTopology(const TopologyParams& params, std::size_t num_nodes,
                double nic_bandwidth) {
    GEARSIM_REQUIRE(!params.dims.empty(), "torus needs at least one dimension");
    capacity_ = params.trunk_bandwidth > 0.0 ? params.trunk_bandwidth
                                             : nic_bandwidth;
    hosts_ = 1;
    for (int d : params.dims) {
      GEARSIM_REQUIRE(d >= 1, "torus dimensions must be positive");
      hosts_ *= static_cast<std::size_t>(d);
      GEARSIM_REQUIRE(hosts_ <= kMaxHosts, "torus too large");
    }
    GEARSIM_REQUIRE(hosts_ >= num_nodes,
                    "torus seats fewer hosts than the cluster has nodes");
    dims_ = params.dims;
    GEARSIM_REQUIRE(hosts_ * dims_.size() * 2 <=
                        std::numeric_limits<LinkId>::max(),
                    "torus link table too large");
  }

  [[nodiscard]] std::size_t link_count() const override {
    return hosts_ * dims_.size() * 2;
  }
  [[nodiscard]] std::size_t num_hosts() const override { return hosts_; }
  [[nodiscard]] double link_capacity(LinkId) const override {
    return capacity_;
  }

  void route(std::size_t src, std::size_t dst,
             std::vector<LinkId>* path) const override {
    // Dimension-ordered routing: per dimension, walk the shorter wrap
    // direction (ties go positive); every step occupies the departing
    // node's directed link for that (dimension, direction).
    std::size_t node = src;
    std::size_t stride = 1;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      const auto k = static_cast<std::size_t>(dims_[d]);
      const std::size_t from = (src / stride) % k;
      const std::size_t to = (dst / stride) % k;
      const std::size_t fwd = (to + k - from) % k;
      const std::size_t bwd = (from + k - to) % k;
      const bool positive = fwd <= bwd;
      const std::size_t steps = positive ? fwd : bwd;
      for (std::size_t s = 0; s < steps; ++s) {
        path->push_back(static_cast<LinkId>(
            (node * dims_.size() + d) * 2 + (positive ? 0 : 1)));
        const std::size_t coord = (node / stride) % k;
        const std::size_t next =
            positive ? (coord + 1) % k : (coord + k - 1) % k;
        node += (next - coord) * stride;
      }
      stride *= k;
    }
  }

  [[nodiscard]] std::size_t min_path_links() const override {
    // Hosts 0 and 1 are adjacent: the first dimension of size >= 2 has
    // stride 1 (all earlier dimensions are degenerate).
    return 1;
  }

 private:
  std::vector<int> dims_;
  std::size_t hosts_ = 0;
  double capacity_ = 0.0;
};

// ---------------------------------------------------------------------------
// Spec parsing.

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

int parse_count(const std::string& token, const char* what) {
  GEARSIM_REQUIRE(!token.empty(), std::string("empty ") + what +
                                      " in topology spec");
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  GEARSIM_REQUIRE(ec == std::errc() && ptr == token.data() + token.size() &&
                      value >= 1,
                  std::string("bad ") + what + " in topology spec: " + token);
  return value;
}

std::vector<int> parse_counts(const std::string& token, char sep,
                              const char* what) {
  std::vector<int> values;
  for (const std::string& part : split(token, sep)) {
    values.push_back(parse_count(part, what));
  }
  return values;
}

/// Trailing `key=value` option segments shared by both shapes.
void parse_options(const std::vector<std::string>& parts, std::size_t first,
                   TopologyParams* params) {
  for (std::size_t i = first; i < parts.size(); ++i) {
    const std::size_t eq = parts[i].find('=');
    GEARSIM_REQUIRE(eq != std::string::npos,
                    "bad topology option (want key=value): " + parts[i]);
    const std::string key = parts[i].substr(0, eq);
    const std::string value = parts[i].substr(eq + 1);
    double parsed = 0.0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    GEARSIM_REQUIRE(ec == std::errc() &&
                        ptr == value.data() + value.size() &&
                        std::isfinite(parsed) && parsed >= 0.0,
                    "bad topology option value: " + parts[i]);
    if (key == "hop_us") {
      params->hop_latency = microseconds(parsed);
    } else if (key == "trunk_bw") {
      params->trunk_bandwidth = parsed;
    } else {
      GEARSIM_REQUIRE(false, "unknown topology option: " + key);
    }
  }
}

}  // namespace

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFlat: return "flat";
    case TopologyKind::kFatTree: return "fat-tree";
    case TopologyKind::kTorus: return "torus";
  }
  return "?";
}

TopologyParams parse_topology(const std::string& spec) {
  TopologyParams params;
  const std::vector<std::string> parts = split(spec, ':');
  const std::string& kind = parts[0];
  if (kind == "flat") {
    GEARSIM_REQUIRE(parts.size() == 1, "flat topology takes no arguments");
    return params;
  }
  if (kind == "fat-tree") {
    GEARSIM_REQUIRE(parts.size() >= 4,
                    "fat-tree spec is fat-tree:<down,..>:<up,..>:<parallel,..>");
    params.kind = TopologyKind::kFatTree;
    params.down = parse_counts(parts[1], ',', "down count");
    params.up = parse_counts(parts[2], ',', "up count");
    params.parallel = parse_counts(parts[3], ',', "parallel count");
    GEARSIM_REQUIRE(params.up.size() == params.down.size() &&
                        params.parallel.size() == params.down.size(),
                    "fat-tree down/up/parallel lists must be the same length");
    parse_options(parts, 4, &params);
    return params;
  }
  if (kind == "torus") {
    GEARSIM_REQUIRE(parts.size() >= 2, "torus spec is torus:<d0>x<d1>x..");
    params.kind = TopologyKind::kTorus;
    params.dims = parse_counts(parts[1], 'x', "dimension");
    parse_options(parts, 2, &params);
    return params;
  }
  throw ContractError("unknown topology kind: " + kind +
                      " (expected flat, fat-tree, or torus)");
}

std::string to_spec(const TopologyParams& params) {
  if (params.flat()) return "flat";
  auto join = [](const std::vector<int>& values, char sep) {
    std::string s;
    for (int v : values) {
      if (!s.empty()) s += sep;
      s += std::to_string(v);
    }
    return s;
  };
  std::string spec;
  if (params.kind == TopologyKind::kFatTree) {
    spec = "fat-tree:" + join(params.down, ',') + ":" + join(params.up, ',') +
           ":" + join(params.parallel, ',');
  } else {
    spec = "torus:" + join(params.dims, 'x');
  }
  spec += ":hop_us=" + fmt_double(params.hop_latency.value() * 1e6);
  if (params.trunk_bandwidth > 0.0) {
    spec += ":trunk_bw=" + fmt_double(params.trunk_bandwidth);
  }
  return spec;
}

std::unique_ptr<Topology> Topology::make(const TopologyParams& params,
                                         std::size_t num_nodes,
                                         double nic_bandwidth) {
  GEARSIM_REQUIRE(std::isfinite(params.hop_latency.value()) &&
                      params.hop_latency.value() >= 0.0,
                  "negative or non-finite hop latency");
  GEARSIM_REQUIRE(std::isfinite(params.trunk_bandwidth) &&
                      params.trunk_bandwidth >= 0.0,
                  "negative or non-finite trunk bandwidth");
  switch (params.kind) {
    case TopologyKind::kFlat:
      return nullptr;
    case TopologyKind::kFatTree:
      return std::make_unique<FatTreeTopology>(params, num_nodes,
                                               nic_bandwidth);
    case TopologyKind::kTorus:
      return std::make_unique<TorusTopology>(params, num_nodes, nic_bandwidth);
  }
  GEARSIM_ENSURE(false, "unknown topology kind");
  return nullptr;
}

}  // namespace gearsim::net
