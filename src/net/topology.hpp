// Routing topologies: the link-level structure under the network model.
//
// The flat model (net/network.hpp's original switched-Ethernet path)
// sees the fabric as one backplane; that is right for the paper's
// 10-node cluster and wrong at 256+ ranks, where *which* links a
// message crosses decides how much bandwidth it gets.  A Topology maps
// every src -> dst transfer onto a sequence of directed links, in the
// style of SimGrid's FatTreeZone / TorusZone routing zones:
//
//   * kFlat     — no routed links; Network keeps its original
//                 NIC/backplane reservation model, byte for byte.
//   * kFatTree  — a leaf-spine tree described level by level: `down[l]`
//                 children per level-(l+1) switch, `up[l]` uplinks per
//                 level-l entity (hosts are level 0), `parallel[l]`
//                 cables aggregated into each uplink trunk.  Routing
//                 climbs to the lowest common subtree, then descends;
//                 among redundant uplinks a flow picks trunk
//                 (src + dst) % up[l], so the choice is deterministic
//                 and symmetric in the endpoints.
//   * kTorus    — a k-ary n-cube over `dims`; dimension-ordered routing
//                 takes the shorter wrap direction (ties go positive).
//                 Every node contributes one directed link per
//                 direction per dimension.
//
// Links are directed and identified by dense LinkId indices; the
// contention model in Network keeps per-link flow schedules against
// them (see docs/NETWORK.md).  Hop latency is charged per switch
// traversed, which for both shapes equals path links - 1.
//
// Determinism contract: route() is a pure function of (src, dst) — no
// RNG, no load-dependent choices — so the serial engine and the
// conservative parallel engine (which replays transfers in the serial
// order at window barriers) drive the contention state through the
// exact same link-schedule sequence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace gearsim::net {

enum class TopologyKind { kFlat, kFatTree, kTorus };

[[nodiscard]] const char* to_string(TopologyKind kind);

/// Topology description carried inside NetworkParams.  The default is
/// the flat backplane model — every pre-topology configuration keys and
/// simulates exactly as before.
struct TopologyParams {
  TopologyKind kind = TopologyKind::kFlat;
  /// Fat tree, leaf level first: children per switch (`down`), uplink
  /// trunks per entity (`up`), parallel cables aggregated per trunk
  /// (`parallel`).  All three must have one entry per level; hosts =
  /// product of `down`.
  std::vector<int> down;
  std::vector<int> up;
  std::vector<int> parallel;
  /// Torus dimensions; hosts = product of `dims`.
  std::vector<int> dims;
  /// Latency charged per switch traversed (path links - 1), on top of
  /// NetworkParams::latency.
  Seconds hop_latency = microseconds(1.0);
  /// Per-cable trunk bandwidth in bytes/second; 0 means "use
  /// NetworkParams::link_bandwidth" (host NICs always use that).
  double trunk_bandwidth = 0.0;

  [[nodiscard]] bool flat() const { return kind == TopologyKind::kFlat; }
};

/// Parse a topology spec string (the CLI's --topology and the serve
/// protocol's "topology" field):
///
///   flat
///   fat-tree:<down,...>:<up,...>:<parallel,...>[:hop_us=X][:trunk_bw=Y]
///   torus:<d0>x<d1>x...[:hop_us=X][:trunk_bw=Y]
///
/// e.g. "fat-tree:16,16:1,2:1,4" (256 hosts, two levels) or
/// "torus:8x8x4:hop_us=0.5".  Throws ContractError on malformed specs.
[[nodiscard]] TopologyParams parse_topology(const std::string& spec);

/// Canonical spec string; round-trips through parse_topology.
[[nodiscard]] std::string to_spec(const TopologyParams& params);

/// A directed link index, dense in [0, link_count).
using LinkId = std::uint32_t;

class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual std::size_t link_count() const = 0;
  /// Host slots the shape provides (>= the node count it was made for).
  [[nodiscard]] virtual std::size_t num_hosts() const = 0;
  /// Capacity of one directed link in bytes/second.
  [[nodiscard]] virtual double link_capacity(LinkId link) const = 0;
  /// Append the directed link path for one src -> dst transfer.
  virtual void route(std::size_t src, std::size_t dst,
                     std::vector<LinkId>* path) const = 0;
  /// Fewest links on any src != dst routed path between live hosts —
  /// the basis of Network::conservative_lookahead.  1 when fewer than
  /// two hosts exist (no transfers can happen; any bound is sound).
  [[nodiscard]] virtual std::size_t min_path_links() const = 0;

  /// Build the routing structure for `num_nodes` hosts.  `nic_bandwidth`
  /// is NetworkParams::link_bandwidth (host access links); trunk links
  /// use params.trunk_bandwidth or fall back to it.  Returns nullptr
  /// for the flat topology (Network keeps its reservation model).
  /// Throws ContractError when the shape cannot seat `num_nodes`.
  static std::unique_ptr<Topology> make(const TopologyParams& params,
                                        std::size_t num_nodes,
                                        double nic_bandwidth);
};

}  // namespace gearsim::net
