// Network timing model: switched Ethernet with NIC serialization and a
// finite switch backplane.
//
// A message of B bytes from src to dst experiences
//   * sender NIC serialization (B / link_bandwidth), FIFO per sender,
//   * backplane occupancy (B / backplane_bandwidth), FIFO across the
//     whole cluster — this is what makes dense patterns (CG's exchanges,
//     alltoall) scale super-linearly in node count,
//   * wire latency,
//   * receiver NIC serialization, FIFO per receiver (incast contention).
//
// All state is a handful of "busy-until" reservations, so cost per message
// is O(1).  The paper's cluster is 100 Mb/s Ethernet; presets below also
// model the Sun validation cluster and the paper's discarded shared-network
// Xeon cluster.
//
// Fault injection: set_link_faults installs windows during which messages
// on matching links are lost with some probability and retransmitted after
// a timeout with exponential backoff, and/or see a transient latency
// spike.  With no windows installed the transfer path is byte-identical to
// the fault-free model (no fault RNG is ever constructed).  Loss draws are
// keyed by *transfer identity* — (src, per-source transfer ordinal) forks
// an independent stream off the plan seed — so a message's realization
// does not depend on how transfers from other sources interleave.  That
// makes lossy-link plans safe for the conservative parallel engine, whose
// barrier replay preserves per-source transfer order but not the global
// one (see cluster/experiment.cpp's eligibility gate).
//
// Topology mode: when NetworkParams::topology is not flat, the
// NIC/backplane reservations above are replaced by per-link fair
// bandwidth sharing along the routed path (fat-tree or torus — see
// net/topology.hpp and docs/NETWORK.md).  A transfer's duration is the
// fluid-flow time to push its bytes through the path when every crossed
// link splits its capacity evenly among the flows committed on it; the
// flow then commits its own [inject, finish) interval so later transfers
// see the contention it created.  Arrivals already returned are never
// revised (re-sharing is applied to flows that arrive *after*, keeping
// transfer() causal and its result a pure function of the call sequence
// — the property the parallel engine's barrier replay relies on).  The
// flat topology does not touch any of this code: it keeps the original
// reservation model byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace gearsim::net {

struct NetworkParams {
  /// One-way wire + stack latency per message.
  Seconds latency = microseconds(80.0);
  /// Per-link (NIC) bandwidth in bytes/second.
  double link_bandwidth = 11.9e6;  // ~95 Mb/s effective on 100 Mb/s.
  /// Aggregate switch fabric bandwidth in bytes/second.  Smaller values
  /// create cluster-wide contention; `shared medium` is backplane == link.
  /// The default is full bisection for a 12-port 100 Mb/s switch.
  double backplane_bandwidth = 12 * 11.9e6;
  /// Multiplicative jitter stddev applied to latency (0 = deterministic).
  double latency_jitter = 0.0;
  std::uint64_t jitter_seed = 7;
  /// Routing structure.  kFlat (the default) keeps the NIC/backplane
  /// reservation model above; fat-tree / torus switch to routed paths
  /// with per-link fair sharing and per-switch hop latency.
  TopologyParams topology;
};

/// 100 Mb/s switched Ethernet of the paper's Athlon-64 cluster.
NetworkParams ethernet_100mbps();
/// The 32-node Sun validation cluster (same era, similar fabric).
NetworkParams sun_cluster_network();
/// The 64-node Xeon cluster whose network was shared among large jobs —
/// heavy jitter; the paper discarded its numbers as unreliable.
NetworkParams shared_xeon_network();

/// One window of degraded service on a link (or set of links).
struct LinkFaultWindow {
  /// Wildcard endpoint: the window matches any source / destination.
  static constexpr std::size_t kAnyNode =
      std::numeric_limits<std::size_t>::max();

  std::size_t src = kAnyNode;
  std::size_t dst = kAnyNode;
  Seconds from{};
  Seconds until = seconds(std::numeric_limits<double>::infinity());
  /// Per-attempt loss probability for messages injected inside the window.
  double loss_probability = 0.0;
  /// Sender timeout before the first retransmission.
  Seconds retransmit_timeout = milliseconds(1.0);
  /// Each further retransmission waits backoff x the previous timeout.
  double backoff = 2.0;
  /// Retransmissions are capped; the final attempt always goes through
  /// (the transport eventually wins — a dead node is a crash fault, not a
  /// link fault).
  int max_retries = 8;
  /// Transient latency spike: multiplies the wire latency of every
  /// message (including the surviving attempt) in the window.
  double latency_factor = 1.0;

  [[nodiscard]] bool applies(std::size_t s, std::size_t d, Seconds now) const {
    return (src == kAnyNode || src == s) && (dst == kAnyNode || dst == d) &&
           now >= from && now < until;
  }
};

class Network {
 public:
  Network(NetworkParams params, std::size_t num_nodes);

  [[nodiscard]] const NetworkParams& params() const { return params_; }
  [[nodiscard]] std::size_t num_nodes() const { return tx_free_.size(); }

  /// Reserve resources for one message injected at `now` and return its
  /// arrival (fully-received) time at `dst`.  Reservations persist, so
  /// later transfers see the contention this one created.
  Seconds transfer(std::size_t src, std::size_t dst, Bytes bytes, Seconds now);

  /// Pure lower-bound transfer time with no contention (for tests/docs).
  [[nodiscard]] Seconds uncontended_time(Bytes bytes) const;

  /// Minimum cross-node interaction delay, for conservative parallel
  /// engine synchronization (sim::ParallelEngine): every transfer's
  /// arrival is >= its injection time + this bound.  With jitter off,
  /// transfer() adds at least the wire latency on top of non-decreasing
  /// reservations, and link-fault windows only ever *increase* it
  /// (latency_factor is validated >= 1, retransmit penalties are
  /// non-negative).  In topology mode the bound is the minimum over all
  /// routed paths: latency + hop_latency * (min path links - 1) —
  /// fair-share transfer durations are non-negative, so every arrival
  /// still clears it.  Multiplicative jitter can undercut the base
  /// latency, so a jittered network returns zero — "no sound lookahead"
  /// — and callers must fall back to serial execution.
  [[nodiscard]] Seconds conservative_lookahead() const {
    if (params_.latency_jitter > 0.0) return Seconds{};
    return min_path_latency_;
  }

  /// The routing structure, nullptr in flat mode (for tests/reports).
  [[nodiscard]] const Topology* topology() const { return topology_.get(); }

  /// Total messages / bytes carried (for reports).
  [[nodiscard]] std::uint64_t messages_carried() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_carried() const { return bytes_; }

  /// Install fault windows; losses are drawn from per-transfer RNG
  /// streams forked off `seed` by (src, per-source transfer ordinal),
  /// independent of the latency-jitter stream and of the global transfer
  /// interleaving.  Validates every window (endpoint bounds, probability
  /// in [0,1], timeout/backoff/latency-factor sanity).  An empty vector
  /// restores the exact fault-free behavior.
  void set_link_faults(std::vector<LinkFaultWindow> windows,
                       std::uint64_t seed);
  [[nodiscard]] const std::vector<LinkFaultWindow>& link_faults() const {
    return link_faults_;
  }
  /// Total retransmissions performed across all faulty windows.
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }
  /// Observer for retransmission bursts: (src, dst, inject time, number of
  /// lost attempts, total backoff delay added).  Used by the fault layer
  /// to put link drops on the run's fault timeline.
  using RetransmitHook = std::function<void(std::size_t, std::size_t, Seconds,
                                            int, Seconds)>;
  void set_retransmit_hook(RetransmitHook hook) { on_retransmit_ = std::move(hook); }

  /// Attach a metrics registry (nullptr detaches): messages/bytes carried
  /// and retransmissions performed, all deterministic sim-domain counts.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  /// One committed flow-count change on a link (+1 arrival, -1 finish).
  struct LinkFlowEvent {
    Seconds time{};
    int delta = 0;
  };
  /// Per-link fair-share state: `active` flows as of the last prune,
  /// plus the committed future count changes, sorted by time.
  struct LinkSchedule {
    int active = 0;
    std::vector<LinkFlowEvent> events;
  };

  /// The jitter / fault-window latency realization shared by the flat
  /// and routed paths (advances the jitter and loss RNG streams).
  Seconds latency_realization(std::size_t src, std::size_t dst, Seconds now,
                              Seconds base);
  /// Topology-mode transfer: route, integrate the fair-share rate over
  /// committed link schedules, commit this flow's interval.
  Seconds routed_transfer(std::size_t src, std::size_t dst, Bytes bytes,
                          Seconds now);

  NetworkParams params_;
  std::vector<Seconds> tx_free_;
  std::vector<Seconds> rx_free_;
  Seconds backplane_free_{};
  Rng jitter_rng_;
  std::unique_ptr<Topology> topology_;
  Seconds min_path_latency_;
  std::vector<LinkSchedule> link_sched_;
  std::vector<LinkId> path_scratch_;
  std::vector<std::size_t> cursor_scratch_;
  std::vector<int> count_scratch_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<LinkFaultWindow> link_faults_;
  std::uint64_t fault_seed_ = 0;
  /// Per-source transfer ordinals while fault windows are installed: the
  /// (src, ordinal) pair is a transfer's loss-stream identity.  Counted
  /// for *every* transfer (matching a window or not) so the identity is a
  /// pure function of the per-source call sequence.
  std::vector<std::uint64_t> fault_seq_;
  std::uint64_t retransmissions_ = 0;
  RetransmitHook on_retransmit_;
  obs::Counter* m_messages_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_retransmissions_ = nullptr;
};

}  // namespace gearsim::net
