// Network timing model: switched Ethernet with NIC serialization and a
// finite switch backplane.
//
// A message of B bytes from src to dst experiences
//   * sender NIC serialization (B / link_bandwidth), FIFO per sender,
//   * backplane occupancy (B / backplane_bandwidth), FIFO across the
//     whole cluster — this is what makes dense patterns (CG's exchanges,
//     alltoall) scale super-linearly in node count,
//   * wire latency,
//   * receiver NIC serialization, FIFO per receiver (incast contention).
//
// All state is a handful of "busy-until" reservations, so cost per message
// is O(1).  The paper's cluster is 100 Mb/s Ethernet; presets below also
// model the Sun validation cluster and the paper's discarded shared-network
// Xeon cluster.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace gearsim::net {

struct NetworkParams {
  /// One-way wire + stack latency per message.
  Seconds latency = microseconds(80.0);
  /// Per-link (NIC) bandwidth in bytes/second.
  double link_bandwidth = 11.9e6;  // ~95 Mb/s effective on 100 Mb/s.
  /// Aggregate switch fabric bandwidth in bytes/second.  Smaller values
  /// create cluster-wide contention; `shared medium` is backplane == link.
  /// The default is full bisection for a 12-port 100 Mb/s switch.
  double backplane_bandwidth = 12 * 11.9e6;
  /// Multiplicative jitter stddev applied to latency (0 = deterministic).
  double latency_jitter = 0.0;
  std::uint64_t jitter_seed = 7;
};

/// 100 Mb/s switched Ethernet of the paper's Athlon-64 cluster.
NetworkParams ethernet_100mbps();
/// The 32-node Sun validation cluster (same era, similar fabric).
NetworkParams sun_cluster_network();
/// The 64-node Xeon cluster whose network was shared among large jobs —
/// heavy jitter; the paper discarded its numbers as unreliable.
NetworkParams shared_xeon_network();

class Network {
 public:
  Network(NetworkParams params, std::size_t num_nodes);

  [[nodiscard]] const NetworkParams& params() const { return params_; }
  [[nodiscard]] std::size_t num_nodes() const { return tx_free_.size(); }

  /// Reserve resources for one message injected at `now` and return its
  /// arrival (fully-received) time at `dst`.  Reservations persist, so
  /// later transfers see the contention this one created.
  Seconds transfer(std::size_t src, std::size_t dst, Bytes bytes, Seconds now);

  /// Pure lower-bound transfer time with no contention (for tests/docs).
  [[nodiscard]] Seconds uncontended_time(Bytes bytes) const;

  /// Total messages / bytes carried (for reports).
  [[nodiscard]] std::uint64_t messages_carried() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_carried() const { return bytes_; }

 private:
  NetworkParams params_;
  std::vector<Seconds> tx_free_;
  std::vector<Seconds> rx_free_;
  Seconds backplane_free_{};
  Rng jitter_rng_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace gearsim::net
