#include "report/figures.hpp"

#include "util/assert.hpp"

namespace gearsim::report {

SvgPlot energy_time_figure(const std::string& title,
                           const std::vector<model::Curve>& curves) {
  GEARSIM_REQUIRE(!curves.empty(), "figure needs at least one curve");
  SvgPlot plot(title, "execution time [s]", "energy [kJ]");
  for (const auto& curve : curves) {
    SvgSeries series;
    series.label = std::to_string(curve.nodes) +
                   (curve.nodes == 1 ? " node" : " nodes");
    for (const auto& p : curve.points) {
      series.points.emplace_back(p.time.value(), p.energy.value() / 1e3);
      series.point_labels.push_back("g" + std::to_string(p.gear_label));
    }
    plot.add_series(std::move(series));
  }
  return plot;
}

}  // namespace gearsim::report
