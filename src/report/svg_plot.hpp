// Minimal SVG scatter/line plot writer for the figure harnesses.
//
// The paper's figures are energy-vs-time scatter plots: one series per
// node count, one point per gear, origin not at (0,0).  This renderer is
// deliberately small — fixed layout, automatic axis ranges with padded
// nice ticks, polyline + markers per series, legend — and produces a
// self-contained .svg so every bench can regenerate its figure as an
// image next to its table output.
#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace gearsim::report {

struct SvgSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;  ///< (x, y), plot order.
  /// Optional per-point marker annotations (e.g. gear numbers).
  std::vector<std::string> point_labels;
};

class SvgPlot {
 public:
  SvgPlot(std::string title, std::string x_label, std::string y_label);

  void add_series(SvgSeries series);

  /// Render to a self-contained SVG document.
  [[nodiscard]] std::string render() const;

  /// Render and write to `path`; creates/truncates the file.
  void write(const std::string& path) const;

  [[nodiscard]] std::size_t series_count() const { return series_.size(); }

 private:
  struct Range {
    double lo = 0.0;
    double hi = 1.0;
  };
  [[nodiscard]] Range x_range() const;
  [[nodiscard]] Range y_range() const;

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<SvgSeries> series_;
};

/// Ticks for [lo, hi]: 4-8 round values covering the range.
std::vector<double> nice_ticks(double lo, double hi);

}  // namespace gearsim::report
