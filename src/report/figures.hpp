// Figure builders: energy-time curve families rendered the way the paper
// draws them — execution time on x, cumulative cluster energy on y, one
// series per node count, gear labels on the points, origin not at (0,0).
#pragma once

#include <vector>

#include "model/tradeoff.hpp"
#include "report/svg_plot.hpp"

namespace gearsim::report {

/// Build a paper-style energy-time figure from one benchmark's curves.
SvgPlot energy_time_figure(const std::string& title,
                           const std::vector<model::Curve>& curves);

}  // namespace gearsim::report
