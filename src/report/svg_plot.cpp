#include "report/svg_plot.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace gearsim::report {

namespace {

// Fixed layout (pixels).
constexpr double kWidth = 720.0;
constexpr double kHeight = 480.0;
constexpr double kLeft = 84.0;
constexpr double kRight = 168.0;  // Room for the legend.
constexpr double kTop = 48.0;
constexpr double kBottom = 64.0;
constexpr double kPlotW = kWidth - kLeft - kRight;
constexpr double kPlotH = kHeight - kTop - kBottom;

const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
                          "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt_tick(double v) {
  // Trim trailing zeros of a fixed representation.
  std::string s = fmt_fixed(v, std::abs(v) < 10 ? 2 : (std::abs(v) < 1000 ? 1 : 0));
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace

std::vector<double> nice_ticks(double lo, double hi) {
  GEARSIM_REQUIRE(hi > lo, "tick range must be non-degenerate");
  const double span = hi - lo;
  const double raw_step = span / 5.0;
  const double mag = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = mag;
  for (double mult : {1.0, 2.0, 2.5, 5.0, 10.0}) {
    if (mag * mult >= raw_step) {
      step = mag * mult;
      break;
    }
  }
  std::vector<double> ticks;
  for (double t = std::ceil(lo / step) * step; t <= hi + 1e-9 * span;
       t += step) {
    ticks.push_back(t);
  }
  return ticks;
}

SvgPlot::SvgPlot(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

void SvgPlot::add_series(SvgSeries series) {
  GEARSIM_REQUIRE(!series.points.empty(), "series needs at least one point");
  GEARSIM_REQUIRE(
      series.point_labels.empty() ||
          series.point_labels.size() == series.points.size(),
      "point labels must match point count");
  series_.push_back(std::move(series));
}

SvgPlot::Range SvgPlot::x_range() const {
  Range r{1e300, -1e300};
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      r.lo = std::min(r.lo, x);
      r.hi = std::max(r.hi, x);
    }
  }
  const double pad = std::max((r.hi - r.lo) * 0.08, r.hi * 1e-6 + 1e-12);
  return Range{r.lo - pad, r.hi + pad};
}

SvgPlot::Range SvgPlot::y_range() const {
  Range r{1e300, -1e300};
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      r.lo = std::min(r.lo, y);
      r.hi = std::max(r.hi, y);
    }
  }
  const double pad = std::max((r.hi - r.lo) * 0.08, r.hi * 1e-6 + 1e-12);
  return Range{r.lo - pad, r.hi + pad};
}

std::string SvgPlot::render() const {
  GEARSIM_REQUIRE(!series_.empty(), "plot has no series");
  const Range xr = x_range();
  const Range yr = y_range();
  const auto sx = [&](double x) {
    return kLeft + (x - xr.lo) / (xr.hi - xr.lo) * kPlotW;
  };
  const auto sy = [&](double y) {
    return kTop + kPlotH - (y - yr.lo) / (yr.hi - yr.lo) * kPlotH;
  };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << kWidth
     << "\" height=\"" << kHeight << "\" viewBox=\"0 0 " << kWidth << ' '
     << kHeight << "\">\n"
     << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
     << "<text x=\"" << kLeft + kPlotW / 2 << "\" y=\"24\" font-size=\"16\""
     << " text-anchor=\"middle\" font-family=\"sans-serif\">"
     << escape(title_) << "</text>\n";

  // Axes frame.
  os << "<rect x=\"" << kLeft << "\" y=\"" << kTop << "\" width=\"" << kPlotW
     << "\" height=\"" << kPlotH
     << "\" fill=\"none\" stroke=\"#333\" stroke-width=\"1\"/>\n";

  // Ticks and gridlines.
  for (double t : nice_ticks(xr.lo, xr.hi)) {
    const double x = sx(t);
    os << "<line x1=\"" << x << "\" y1=\"" << kTop << "\" x2=\"" << x
       << "\" y2=\"" << kTop + kPlotH
       << "\" stroke=\"#ddd\" stroke-width=\"0.5\"/>\n"
       << "<text x=\"" << x << "\" y=\"" << kTop + kPlotH + 18
       << "\" font-size=\"11\" text-anchor=\"middle\""
       << " font-family=\"sans-serif\">" << fmt_tick(t) << "</text>\n";
  }
  for (double t : nice_ticks(yr.lo, yr.hi)) {
    const double y = sy(t);
    os << "<line x1=\"" << kLeft << "\" y1=\"" << y << "\" x2=\""
       << kLeft + kPlotW << "\" y2=\"" << y
       << "\" stroke=\"#ddd\" stroke-width=\"0.5\"/>\n"
       << "<text x=\"" << kLeft - 6 << "\" y=\"" << y + 4
       << "\" font-size=\"11\" text-anchor=\"end\""
       << " font-family=\"sans-serif\">" << fmt_tick(t) << "</text>\n";
  }

  // Axis labels.
  os << "<text x=\"" << kLeft + kPlotW / 2 << "\" y=\"" << kHeight - 16
     << "\" font-size=\"13\" text-anchor=\"middle\""
     << " font-family=\"sans-serif\">" << escape(x_label_) << "</text>\n"
     << "<text x=\"20\" y=\"" << kTop + kPlotH / 2
     << "\" font-size=\"13\" text-anchor=\"middle\""
     << " font-family=\"sans-serif\" transform=\"rotate(-90 20 "
     << kTop + kPlotH / 2 << ")\">" << escape(y_label_) << "</text>\n";

  // Series.
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const auto& s = series_[i];
    const char* color = kPalette[i % kPaletteSize];
    os << "<polyline fill=\"none\" stroke=\"" << color
       << "\" stroke-width=\"1.5\" points=\"";
    for (const auto& [x, y] : s.points) os << sx(x) << ',' << sy(y) << ' ';
    os << "\"/>\n";
    for (std::size_t k = 0; k < s.points.size(); ++k) {
      const auto& [x, y] = s.points[k];
      os << "<circle cx=\"" << sx(x) << "\" cy=\"" << sy(y)
         << "\" r=\"3.5\" fill=\"" << color << "\"/>\n";
      if (!s.point_labels.empty() && !s.point_labels[k].empty()) {
        os << "<text x=\"" << sx(x) + 5 << "\" y=\"" << sy(y) - 5
           << "\" font-size=\"9\" fill=\"#555\""
           << " font-family=\"sans-serif\">" << escape(s.point_labels[k])
           << "</text>\n";
      }
    }
    // Legend entry.
    const double ly = kTop + 10 + 18.0 * static_cast<double>(i);
    os << "<circle cx=\"" << kLeft + kPlotW + 18 << "\" cy=\"" << ly
       << "\" r=\"4\" fill=\"" << color << "\"/>\n"
       << "<text x=\"" << kLeft + kPlotW + 28 << "\" y=\"" << ly + 4
       << "\" font-size=\"12\" font-family=\"sans-serif\">"
       << escape(s.label) << "</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

void SvgPlot::write(const std::string& path) const {
  std::ofstream out(path);
  GEARSIM_REQUIRE(out.good(), "cannot open " + path + " for writing");
  out << render();
  GEARSIM_ENSURE(out.good(), "failed writing " + path);
}

}  // namespace gearsim::report
