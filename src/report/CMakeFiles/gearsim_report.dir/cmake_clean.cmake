file(REMOVE_RECURSE
  "CMakeFiles/gearsim_report.dir/figures.cpp.o"
  "CMakeFiles/gearsim_report.dir/figures.cpp.o.d"
  "CMakeFiles/gearsim_report.dir/svg_plot.cpp.o"
  "CMakeFiles/gearsim_report.dir/svg_plot.cpp.o.d"
  "libgearsim_report.a"
  "libgearsim_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
