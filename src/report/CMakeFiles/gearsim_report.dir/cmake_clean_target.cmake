file(REMOVE_RECURSE
  "libgearsim_report.a"
)
