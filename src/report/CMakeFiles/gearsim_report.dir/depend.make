# Empty dependencies file for gearsim_report.
# This may be replaced when dependencies are built.
