#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/random.hpp"

namespace gearsim::faults {

FaultPlan& FaultPlan::crash(std::size_t node, Seconds at) {
  GEARSIM_REQUIRE(at.value() >= 0.0, "crash before the run starts");
  const CrashEvent ev{node, at};
  crashes_.insert(std::upper_bound(crashes_.begin(), crashes_.end(), ev,
                                   [](const CrashEvent& a, const CrashEvent& b) {
                                     return a.at < b.at;
                                   }),
                  ev);
  return *this;
}

FaultPlan& FaultPlan::straggle(std::size_t node, Seconds from, Seconds until,
                               std::size_t min_gear_index) {
  GEARSIM_REQUIRE(from.value() >= 0.0 && until > from,
                  "straggler window must span positive time");
  stragglers_.push_back(StragglerWindow{node, from, until, min_gear_index});
  return *this;
}

FaultPlan& FaultPlan::degrade_link(net::LinkFaultWindow window) {
  link_faults_.push_back(window);
  return *this;
}

FaultPlan& FaultPlan::drop_meter(std::size_t node, Seconds from,
                                 Seconds until) {
  GEARSIM_REQUIRE(from.value() >= 0.0 && until > from,
                  "dropout window must span positive time");
  meter_dropouts_.push_back(MeterDropout{node, from, until});
  return *this;
}

FaultPlan& FaultPlan::with_checkpointing(CheckpointConfig config) {
  GEARSIM_REQUIRE(config.write_time.value() >= 0.0, "negative write time");
  GEARSIM_REQUIRE(config.write_power.value() >= 0.0, "negative write power");
  GEARSIM_REQUIRE(config.restart_time.value() >= 0.0, "negative restart time");
  GEARSIM_REQUIRE(config.restart_power.value() >= 0.0,
                  "negative restart power");
  GEARSIM_REQUIRE(config.max_restarts >= 0, "negative restart cap");
  checkpoint_ = config;
  return *this;
}

FaultPlan& FaultPlan::random_crashes(double per_node_rate_hz,
                                     std::size_t nodes, Seconds horizon) {
  GEARSIM_REQUIRE(std::isfinite(per_node_rate_hz) && per_node_rate_hz >= 0.0,
                  "failure rate must be non-negative and finite");
  GEARSIM_REQUIRE(nodes >= 1, "need at least one node");
  GEARSIM_REQUIRE(horizon.value() > 0.0, "horizon must be positive");
  if (per_node_rate_hz == 0.0) return *this;
  const Rng base(seed_);
  for (std::size_t node = 0; node < nodes; ++node) {
    // One independent exponential inter-arrival stream per node.
    Rng rng = base.fork(node);
    double t = 0.0;
    for (;;) {
      double u = rng.uniform();
      while (u <= 0.0) u = rng.uniform();
      t += -std::log(u) / per_node_rate_hz;
      if (t >= horizon.value()) break;
      crash(node, seconds(t));
    }
  }
  return *this;
}

void FaultPlan::validate(std::size_t nodes, std::size_t num_gears) const {
  GEARSIM_REQUIRE(nodes >= 1 && num_gears >= 1, "degenerate cluster");
  for (const CrashEvent& ev : crashes_) {
    GEARSIM_REQUIRE(ev.node < nodes, "crash targets a node outside the run");
  }
  for (const StragglerWindow& w : stragglers_) {
    GEARSIM_REQUIRE(w.node < nodes, "straggler targets a node outside the run");
    GEARSIM_REQUIRE(w.min_gear_index < num_gears,
                    "straggler gear cap outside the gear table");
  }
  for (const MeterDropout& w : meter_dropouts_) {
    GEARSIM_REQUIRE(w.node < nodes, "dropout targets a node outside the run");
  }
}

}  // namespace gearsim::faults
