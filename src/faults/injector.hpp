// FaultInjector: realizes a FaultPlan against one simulated run.
//
// The injector is the bridge between the declarative plan and the
// mechanisms that act it out:
//   * link-degradation windows are installed into net::Network (which
//     realizes loss as timeout + exponential-backoff retransmission);
//   * straggler windows answer effective_gear() queries from the
//     compute path (cluster::RankContext);
//   * meter dropouts are handed to each node's sampling Multimeter;
//   * crashes are armed as engine events that throw NodeFailure out of
//     Engine::run (abort mode) — or, when the plan carries a checkpoint
//     policy, are composed analytically by restart_model.hpp instead.
//
// Every realized fault is appended to a trace::FaultLog so the run's
// timeline and CSV exports show what happened when.
#pragma once

#include <cstddef>
#include <functional>

#include "faults/fault_plan.hpp"
#include "net/network.hpp"
#include "power/multimeter.hpp"
#include "sim/engine.hpp"
#include "trace/fault_events.hpp"
#include "util/assert.hpp"

namespace gearsim::faults {

/// Thrown out of Engine::run when a crash event fires with no
/// checkpoint/restart policy to absorb it.
class NodeFailure : public SimulationError {
 public:
  NodeFailure(std::size_t node, Seconds at);

  std::size_t node = 0;
  Seconds at{};
};

class FaultInjector {
 public:
  /// Validates the plan against the run's geometry and installs the link
  /// fault windows (and retransmit observer) into `network`.  `log`, when
  /// non-null, receives every realized fault event; it must outlive the
  /// injector.
  FaultInjector(const FaultPlan& plan, net::Network& network,
                std::size_t nodes, std::size_t num_gears,
                trace::FaultLog* log = nullptr);

  /// Arm the plan's crash events on the engine.  Each event fires only
  /// while `still_running()` is true (so a crash scheduled past normal
  /// completion never fires) and only the earliest pending crash throws —
  /// a NodeFailure that aborts Engine::run.
  void arm_crashes(sim::Engine& engine, std::function<bool()> still_running);

  /// The gear `node` actually runs at `now` given it requested
  /// `requested`: straggler windows cap it at their min_gear_index
  /// (higher index = slower), clamped to the gear table.
  [[nodiscard]] std::size_t effective_gear(std::size_t node, Seconds now,
                                           std::size_t requested) const;
  /// True when any straggler window exists (lets the compute path skip
  /// the per-block query entirely on unthrottled runs).
  [[nodiscard]] bool throttles() const { return !plan_.stragglers().empty(); }

  /// Dropout windows for `node`'s sampling multimeter.
  [[nodiscard]] std::vector<power::DropoutWindow> dropouts_for(
      std::size_t node) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  std::size_t num_gears_;
  trace::FaultLog* log_;
  bool crash_thrown_ = false;
};

}  // namespace gearsim::faults
