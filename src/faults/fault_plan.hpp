// FaultPlan: a seeded, declarative schedule of injected faults.
//
// The paper measures a healthy 10-node cluster; production clusters are
// not healthy.  A FaultPlan describes everything that goes wrong during
// one run — node crashes, straggler/thermal-throttle windows, degraded
// links, meter dropouts — plus an optional checkpoint/restart policy, as
// plain data.  The FaultInjector (injector.hpp) realizes the plan against
// a run; restart_model.hpp supplies the checkpoint/restart arithmetic.
//
// Determinism contract: a FaultPlan is pure data plus one seed.  The same
// plan produces bit-identical runs; an *empty* plan produces runs
// bit-identical to ones that never saw the fault layer at all (no RNG
// draw, no extra floating-point operation happens on the fault-free
// path).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "util/units.hpp"

namespace gearsim::faults {

/// Rank `node` dies at absolute run time `at`.
struct CrashEvent {
  std::size_t node = 0;
  Seconds at{};
};

/// A node's effective gear is silently capped (thermal throttle, shared
/// tenant, failing fan): compute blocks issued inside the window execute
/// at a gear no faster than `min_gear_index` (higher index = slower).
struct StragglerWindow {
  std::size_t node = 0;
  Seconds from{};
  Seconds until{};
  std::size_t min_gear_index = 0;
};

/// The sampling multimeter on `node` loses samples in [from, until).
struct MeterDropout {
  std::size_t node = 0;
  Seconds from{};
  Seconds until{};
};

/// Coordinated checkpoint/restart policy (BLCR-style, whole-job).
struct CheckpointConfig {
  /// Work time between checkpoints; <= 0 means no intermediate
  /// checkpoints (a crash restarts the job from scratch).
  Seconds interval = seconds(60.0);
  /// Stall while the coordinated checkpoint is written.
  Seconds write_time = seconds(1.0);
  /// Per-node draw during the write (disk + network, CPU near idle).
  Watts write_power = watts(120.0);
  /// Dead time to re-launch the job after a crash (failover, reboot,
  /// checkpoint read-back).
  Seconds restart_time = seconds(30.0);
  /// Per-node draw while the job re-launches.
  Watts restart_power = watts(85.0);
  /// Crashes beyond this many restarts fail the run.
  int max_restarts = 16;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  // --- builders (chainable) ----------------------------------------------
  FaultPlan& crash(std::size_t node, Seconds at);
  FaultPlan& straggle(std::size_t node, Seconds from, Seconds until,
                      std::size_t min_gear_index);
  FaultPlan& degrade_link(net::LinkFaultWindow window);
  FaultPlan& drop_meter(std::size_t node, Seconds from, Seconds until);
  FaultPlan& with_checkpointing(CheckpointConfig config);
  /// Draw crash times from independent per-node Poisson processes of rate
  /// `per_node_rate_hz` over [0, horizon), seeded by this plan's seed.
  /// The horizon must comfortably exceed the run's (restart-inflated)
  /// wall time or late crashes are simply never realized.
  FaultPlan& random_crashes(double per_node_rate_hz, std::size_t nodes,
                            Seconds horizon);

  // --- accessors ----------------------------------------------------------
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  /// Crash events in time order.
  [[nodiscard]] const std::vector<CrashEvent>& crashes() const {
    return crashes_;
  }
  [[nodiscard]] const std::vector<StragglerWindow>& stragglers() const {
    return stragglers_;
  }
  [[nodiscard]] const std::vector<net::LinkFaultWindow>& link_faults() const {
    return link_faults_;
  }
  [[nodiscard]] const std::vector<MeterDropout>& meter_dropouts() const {
    return meter_dropouts_;
  }
  [[nodiscard]] const std::optional<CheckpointConfig>& checkpointing() const {
    return checkpoint_;
  }
  /// True when the plan schedules nothing and carries no restart policy.
  [[nodiscard]] bool empty() const {
    return crashes_.empty() && stragglers_.empty() && link_faults_.empty() &&
           meter_dropouts_.empty() && !checkpoint_.has_value();
  }

  /// Check every event against a concrete cluster (node indices, gear
  /// indices); throws ContractError on violations.  Link windows are
  /// validated by net::Network when installed.
  void validate(std::size_t nodes, std::size_t num_gears) const;

 private:
  std::uint64_t seed_ = 0x9e3779b97f4a7c15ULL;
  std::vector<CrashEvent> crashes_;
  std::vector<StragglerWindow> stragglers_;
  std::vector<net::LinkFaultWindow> link_faults_;
  std::vector<MeterDropout> meter_dropouts_;
  std::optional<CheckpointConfig> checkpoint_;
};

}  // namespace gearsim::faults
