#include "faults/restart_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace gearsim::faults {
namespace {

/// Work positions of the intermediate checkpoints: k * interval for
/// k = 1.. with k * interval strictly inside (0, solid_wall).  No
/// checkpoint is written at the very end — the job just completes.
std::vector<Seconds> checkpoint_positions(Seconds solid_wall,
                                          const CheckpointConfig& cfg) {
  std::vector<Seconds> positions;
  if (cfg.interval.value() <= 0.0) return positions;
  std::size_t k_max =
      static_cast<std::size_t>(std::floor(solid_wall / cfg.interval));
  while (k_max > 0 && static_cast<double>(k_max) * cfg.interval.value() >=
                          solid_wall.value()) {
    --k_max;
  }
  positions.reserve(k_max);
  for (std::size_t k = 1; k <= k_max; ++k) {
    positions.push_back(seconds(static_cast<double>(k) * cfg.interval.value()));
  }
  return positions;
}

}  // namespace

EnergyProfile EnergyProfile::from_meter(const power::EnergyMeter& meter) {
  const std::size_t n = meter.num_nodes();
  // Merge every node's step breakpoints into one ascending time axis.
  std::vector<Seconds> times;
  times.push_back(seconds(0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& pt : meter.profile(i)) times.push_back(pt.time);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  EnergyProfile out;
  out.time_ = times;
  out.cumulative_.assign(times.size(), Joules{});
  std::vector<std::size_t> cursor(n, 0);
  Joules acc{};
  for (std::size_t t = 0; t + 1 < times.size(); ++t) {
    // Cluster power over [times[t], times[t+1]): sum of each node's step
    // value in effect at times[t].
    Watts cluster{};
    for (std::size_t i = 0; i < n; ++i) {
      const auto& prof = meter.profile(i);
      while (cursor[i] + 1 < prof.size() &&
             prof[cursor[i] + 1].time <= times[t]) {
        ++cursor[i];
      }
      if (!prof.empty() && prof[cursor[i]].time <= times[t]) {
        cluster += prof[cursor[i]].power;
      }
    }
    acc += cluster * (times[t + 1] - times[t]);
    out.cumulative_[t + 1] = acc;
  }
  return out;
}

EnergyProfile EnergyProfile::flat(Watts power, Seconds wall) {
  GEARSIM_REQUIRE(wall.value() > 0.0, "profile span must be positive");
  GEARSIM_REQUIRE(power.value() >= 0.0, "negative power");
  EnergyProfile out;
  out.time_ = {seconds(0.0), wall};
  out.cumulative_ = {Joules{}, power * wall};
  return out;
}

Joules EnergyProfile::between(Seconds t0, Seconds t1) const {
  const auto eval = [this](Seconds t) -> Joules {
    if (t <= time_.front()) return cumulative_.front();
    if (t >= time_.back()) return cumulative_.back();
    const auto it = std::upper_bound(time_.begin(), time_.end(), t);
    const std::size_t hi = static_cast<std::size_t>(it - time_.begin());
    const std::size_t lo = hi - 1;
    const double span = (time_[hi] - time_[lo]).value();
    const double frac = span > 0.0 ? (t - time_[lo]) / seconds(span) : 0.0;
    return cumulative_[lo] +
           joules((cumulative_[hi] - cumulative_[lo]).value() * frac);
  };
  if (t1 <= t0) return Joules{};
  return eval(t1) - eval(t0);
}

RestartStats checkpointed_baseline(Seconds solid_wall,
                                   const EnergyProfile& profile,
                                   std::size_t nodes,
                                   const CheckpointConfig& cfg) {
  GEARSIM_REQUIRE(solid_wall.value() > 0.0, "solid wall must be positive");
  GEARSIM_REQUIRE(nodes >= 1, "need at least one node");
  const auto ckpts = checkpoint_positions(solid_wall, cfg);
  const double n_writes = static_cast<double>(ckpts.size());
  RestartStats stats;
  stats.checkpoint_time = seconds(n_writes * cfg.write_time.value());
  stats.checkpoint_energy =
      joules(n_writes * cfg.write_time.value() *
             static_cast<double>(nodes) * cfg.write_power.value());
  stats.wall = solid_wall + stats.checkpoint_time;
  stats.energy =
      profile.between(seconds(0.0), solid_wall) + stats.checkpoint_energy;
  return stats;
}

RestartStats compose_restarts(Seconds solid_wall, const EnergyProfile& profile,
                              std::size_t nodes, const CheckpointConfig& cfg,
                              const std::vector<CrashEvent>& crashes,
                              trace::FaultLog* log) {
  GEARSIM_REQUIRE(solid_wall.value() > 0.0, "solid wall must be positive");
  GEARSIM_REQUIRE(nodes >= 1, "need at least one node");
  GEARSIM_REQUIRE(std::is_sorted(crashes.begin(), crashes.end(),
                                 [](const CrashEvent& a, const CrashEvent& b) {
                                   return a.at < b.at;
                                 }),
                  "crash events must be in time order");
  const auto ckpts = checkpoint_positions(solid_wall, cfg);
  const double node_count = static_cast<double>(nodes);
  const Joules write_joules =
      joules(cfg.write_time.value() * node_count * cfg.write_power.value());
  const Joules restart_joules = joules(cfg.restart_time.value() * node_count *
                                       cfg.restart_power.value());

  const RestartStats baseline =
      checkpointed_baseline(solid_wall, profile, nodes, cfg);

  RestartStats stats;
  Seconds attempt_start{};   // Wall time the current attempt began executing.
  Seconds durable{};         // Work position of the last durable checkpoint.
  Joules energy{};
  std::size_t durable_writes = 0;  // Checkpoints that survived (never rewritten).

  const auto log_event = [&](trace::FaultEventKind kind, std::size_t node,
                             Seconds at, std::string detail) {
    if (log != nullptr) {
      log->push_back(trace::FaultEvent{kind, node, at, std::move(detail)});
    }
  };
  // Wall time at which the current attempt completes the job: remaining
  // work plus one write per not-yet-durable checkpoint.
  const auto finish_time = [&]() {
    double writes_left = 0.0;
    for (const Seconds c : ckpts) {
      if (c > durable) writes_left += 1.0;
    }
    return attempt_start + (solid_wall - durable) +
           seconds(writes_left * cfg.write_time.value());
  };

  for (const CrashEvent& crash : crashes) {
    if (crash.at < attempt_start) continue;  // Absorbed by a restart window.
    if (crash.at >= finish_time()) break;    // Job already done.

    // Locate the crash inside the attempt: walk work + writes from the
    // durable position until the elapsed wall time is used up.
    const Seconds elapsed = crash.at - attempt_start;
    Seconds reached = durable;       // Work position at the crash.
    Seconds write_partial{};         // Time into an interrupted write.
    std::size_t writes_done = 0;     // Writes completed in this attempt.
    Seconds new_durable = durable;
    for (const Seconds c : ckpts) {
      if (c <= durable) continue;
      const Seconds at_ckpt =
          (c - durable) + seconds(static_cast<double>(writes_done) *
                                  cfg.write_time.value());
      if (elapsed <= at_ckpt) break;  // Crash before reaching this write.
      const Seconds after_write = at_ckpt + cfg.write_time;
      if (elapsed < after_write) {    // Crash mid-write: nothing durable.
        reached = c;
        write_partial = elapsed - at_ckpt;
        break;
      }
      ++writes_done;
      new_durable = c;
      log_event(trace::FaultEventKind::kCheckpoint, 0,
                attempt_start + after_write, "checkpoint durable");
    }
    if (write_partial.value() == 0.0 && reached == durable) {
      reached = durable + (elapsed - seconds(static_cast<double>(writes_done) *
                                             cfg.write_time.value()));
    }
    // Everything this attempt burned: compute energy over the solid span it
    // covered, completed writes, and the interrupted partial write.
    energy += profile.between(durable, reached);
    energy += joules(static_cast<double>(writes_done) * write_joules.value());
    energy += joules(write_partial.value() * node_count *
                     cfg.write_power.value());
    durable = new_durable;
    durable_writes += writes_done;

    log_event(trace::FaultEventKind::kNodeCrash, crash.node, crash.at,
              "node crash");
    ++stats.retries;
    if (stats.retries > cfg.max_restarts) {
      stats.completed = false;
      stats.failed_at = crash.at;
      stats.failed_node = crash.node;
      stats.wall = crash.at;
      stats.energy = energy;
      // Rework relative to the durable progress that survived.
      const Seconds durable_sched =
          durable + seconds(static_cast<double>(durable_writes) *
                            cfg.write_time.value());
      stats.rework_time = stats.wall - durable_sched;
      stats.rework_energy =
          stats.energy - (profile.between(seconds(0.0), durable) +
                          joules(static_cast<double>(durable_writes) *
                                 write_joules.value()));
      stats.checkpoint_time = seconds(static_cast<double>(durable_writes) *
                                      cfg.write_time.value());
      stats.checkpoint_energy =
          joules(static_cast<double>(durable_writes) * write_joules.value());
      stats.expected_failures = static_cast<double>(stats.retries);
      return stats;
    }
    energy += restart_joules;
    attempt_start = crash.at + cfg.restart_time;
    log_event(trace::FaultEventKind::kRestart, crash.node, attempt_start,
              "restart from checkpoint");
  }

  // Final (crash-free) attempt runs to completion.
  const Seconds done = finish_time();
  energy += profile.between(durable, solid_wall);
  double writes_left = 0.0;
  for (const Seconds c : ckpts) {
    if (c > durable) {
      writes_left += 1.0;
      log_event(trace::FaultEventKind::kCheckpoint, 0,
                attempt_start + (c - durable) +
                    seconds(writes_left * cfg.write_time.value()),
                "checkpoint durable");
    }
  }
  energy += joules(writes_left * write_joules.value());

  stats.completed = true;
  stats.wall = done;
  stats.energy = energy;
  stats.rework_time = stats.wall - baseline.wall;
  stats.rework_energy = stats.energy - baseline.energy;
  stats.checkpoint_time = baseline.checkpoint_time;
  stats.checkpoint_energy = baseline.checkpoint_energy;
  stats.expected_failures = static_cast<double>(stats.retries);
  return stats;
}

RestartStats expected_restarts(Seconds solid_wall, const EnergyProfile& profile,
                               std::size_t nodes, const CheckpointConfig& cfg,
                               double failure_rate_hz) {
  GEARSIM_REQUIRE(solid_wall.value() > 0.0, "solid wall must be positive");
  GEARSIM_REQUIRE(nodes >= 1, "need at least one node");
  GEARSIM_REQUIRE(std::isfinite(failure_rate_hz) && failure_rate_hz >= 0.0,
                  "failure rate must be non-negative and finite");
  const RestartStats baseline =
      checkpointed_baseline(solid_wall, profile, nodes, cfg);
  if (failure_rate_hz == 0.0) return baseline;

  const auto ckpts = checkpoint_positions(solid_wall, cfg);
  const double node_count = static_cast<double>(nodes);
  const double lambda = failure_rate_hz;
  const double restart_cost = cfg.restart_time.value();

  RestartStats stats;
  double wall = 0.0;
  double energy = 0.0;
  double failures = 0.0;
  Seconds prev{};
  // One segment per checkpoint interval (work chunk + its write), plus the
  // final chunk with no write.  A failure inside a segment restarts it.
  for (std::size_t i = 0; i <= ckpts.size(); ++i) {
    const Seconds upto = i < ckpts.size() ? ckpts[i] : solid_wall;
    const double write = i < ckpts.size() ? cfg.write_time.value() : 0.0;
    const double delta = (upto - prev).value() + write;
    if (delta <= 0.0) {
      prev = upto;
      continue;
    }
    const Joules useful =
        profile.between(prev, upto) +
        joules(write * node_count * cfg.write_power.value());
    // Classic first-order model: expected failures while covering delta of
    // exposed time is e^{lambda delta} - 1; each costs a restart plus the
    // partial progress it destroyed.
    const double n_fail = std::expm1(lambda * delta);
    const double seg_wall = (1.0 / lambda + restart_cost) * n_fail;
    const double wasted_busy = n_fail / lambda - delta;
    const double seg_power = useful.value() / delta;
    wall += seg_wall;
    energy += useful.value() + wasted_busy * seg_power +
              n_fail * restart_cost * node_count * cfg.restart_power.value();
    failures += n_fail;
    prev = upto;
  }

  stats.completed = true;
  stats.wall = seconds(wall);
  stats.energy = joules(energy);
  stats.expected_failures = failures;
  stats.retries = static_cast<int>(std::llround(failures));
  stats.rework_time = stats.wall - baseline.wall;
  stats.rework_energy = stats.energy - baseline.energy;
  stats.checkpoint_time = baseline.checkpoint_time;
  stats.checkpoint_energy = baseline.checkpoint_energy;
  return stats;
}

}  // namespace gearsim::faults
