file(REMOVE_RECURSE
  "libgearsim_faults.a"
)
