# Empty dependencies file for gearsim_faults.
# This may be replaced when dependencies are built.
