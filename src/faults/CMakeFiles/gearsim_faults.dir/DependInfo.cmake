
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/fault_plan.cpp" "src/faults/CMakeFiles/gearsim_faults.dir/fault_plan.cpp.o" "gcc" "src/faults/CMakeFiles/gearsim_faults.dir/fault_plan.cpp.o.d"
  "/root/repo/src/faults/injector.cpp" "src/faults/CMakeFiles/gearsim_faults.dir/injector.cpp.o" "gcc" "src/faults/CMakeFiles/gearsim_faults.dir/injector.cpp.o.d"
  "/root/repo/src/faults/restart_model.cpp" "src/faults/CMakeFiles/gearsim_faults.dir/restart_model.cpp.o" "gcc" "src/faults/CMakeFiles/gearsim_faults.dir/restart_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/util/CMakeFiles/gearsim_util.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/gearsim_sim.dir/DependInfo.cmake"
  "/root/repo/src/power/CMakeFiles/gearsim_power.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/gearsim_net.dir/DependInfo.cmake"
  "/root/repo/src/trace/CMakeFiles/gearsim_trace.dir/DependInfo.cmake"
  "/root/repo/src/mpi/CMakeFiles/gearsim_mpi.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/gearsim_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
