file(REMOVE_RECURSE
  "CMakeFiles/gearsim_faults.dir/fault_plan.cpp.o"
  "CMakeFiles/gearsim_faults.dir/fault_plan.cpp.o.d"
  "CMakeFiles/gearsim_faults.dir/injector.cpp.o"
  "CMakeFiles/gearsim_faults.dir/injector.cpp.o.d"
  "CMakeFiles/gearsim_faults.dir/restart_model.cpp.o"
  "CMakeFiles/gearsim_faults.dir/restart_model.cpp.o.d"
  "libgearsim_faults.a"
  "libgearsim_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
