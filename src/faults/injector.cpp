#include "faults/injector.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace gearsim::faults {

namespace {
std::string describe_failure(std::size_t node, Seconds at) {
  return "node " + std::to_string(node) + " failed at t=" +
         std::to_string(at.value()) + "s with no checkpoint/restart policy";
}
}  // namespace

NodeFailure::NodeFailure(std::size_t node_, Seconds at_)
    : SimulationError(describe_failure(node_, at_)), node(node_), at(at_) {}

FaultInjector::FaultInjector(const FaultPlan& plan, net::Network& network,
                             std::size_t nodes, std::size_t num_gears,
                             trace::FaultLog* log)
    : plan_(plan), num_gears_(num_gears), log_(log) {
  plan_.validate(nodes, num_gears);
  if (!plan_.link_faults().empty()) {
    network.set_link_faults(plan_.link_faults(), plan_.seed());
    if (log_ != nullptr) {
      network.set_retransmit_hook([this](std::size_t src, std::size_t dst,
                                         Seconds at, int losses,
                                         Seconds penalty) {
        log_->push_back(trace::FaultEvent{
            trace::FaultEventKind::kLinkDrop, src, at,
            "link " + std::to_string(src) + "->" + std::to_string(dst) + ": " +
                std::to_string(losses) + " lost, +" +
                std::to_string(penalty.value()) + "s"});
      });
    }
  }
  if (log_ != nullptr) {
    // Environment windows are known up front; put their edges on the
    // timeline immediately (realization is queried lazily during the run).
    for (const StragglerWindow& w : plan_.stragglers()) {
      log_->push_back(trace::FaultEvent{
          trace::FaultEventKind::kStragglerBegin, w.node, w.from,
          "gear capped at index " + std::to_string(w.min_gear_index)});
      log_->push_back(trace::FaultEvent{trace::FaultEventKind::kStragglerEnd,
                                        w.node, w.until, ""});
    }
    for (const MeterDropout& w : plan_.meter_dropouts()) {
      log_->push_back(trace::FaultEvent{trace::FaultEventKind::kMeterDropBegin,
                                        w.node, w.from, ""});
      log_->push_back(trace::FaultEvent{trace::FaultEventKind::kMeterDropEnd,
                                        w.node, w.until, ""});
    }
  }
}

void FaultInjector::arm_crashes(sim::Engine& engine,
                                std::function<bool()> still_running) {
  GEARSIM_REQUIRE(static_cast<bool>(still_running),
                  "crash events need a liveness predicate");
  // The whole crash schedule is known up front: submit it as one batch.
  sim::EventBatch batch;
  batch.reserve(plan_.crashes().size());
  for (const CrashEvent& ev : plan_.crashes()) {
    batch.add(
        ev.at, [this, ev, still_running]() {
          // Only the first crash aborts; the run is already over (or
          // already aborted) for the rest.
          if (crash_thrown_ || !still_running()) return;
          crash_thrown_ = true;
          if (log_ != nullptr) {
            log_->push_back(trace::FaultEvent{trace::FaultEventKind::kNodeCrash,
                                              ev.node, ev.at, "node crash"});
          }
          throw NodeFailure(ev.node, ev.at);
        });
  }
  if (!batch.empty()) engine.schedule_batch(batch);
}

std::size_t FaultInjector::effective_gear(std::size_t node, Seconds now,
                                          std::size_t requested) const {
  std::size_t gear = requested;
  for (const StragglerWindow& w : plan_.stragglers()) {
    if (w.node == node && now >= w.from && now < w.until) {
      gear = std::max(gear, w.min_gear_index);
    }
  }
  return std::min(gear, num_gears_ - 1);
}

std::vector<power::DropoutWindow> FaultInjector::dropouts_for(
    std::size_t node) const {
  std::vector<power::DropoutWindow> out;
  for (const MeterDropout& w : plan_.meter_dropouts()) {
    if (w.node == node) out.push_back(power::DropoutWindow{w.from, w.until});
  }
  return out;
}

}  // namespace gearsim::faults
