// Checkpoint/restart-aware time and energy accounting.
//
// A crash throws away everything since the last durable checkpoint; the
// job then pays a restart delay and re-executes the lost span.  Because
// the simulation engine produces an exact fault-free execution (the
// "solid run": wall time W and a piecewise-linear cumulative energy
// profile E(t)), the effect of crashes composes on top of it
// deterministically:
//
//   * checkpoints are written every `interval` of solid work, each
//     stalling the job `write_time` at `write_power` per node;
//   * a crash at wall time t discards progress back to the last durable
//     checkpoint, costs `restart_time` at `restart_power` per node, and
//     the discarded span re-executes at its original speed and power;
//   * crashes beyond `max_restarts` fail the run.
//
// Two entry points: compose_restarts replays an explicit crash schedule
// (the FaultPlan's sampled events) and is exact for that schedule;
// expected_restarts integrates over a Poisson failure process in closed
// form (per checkpoint segment of useful length d, with cluster failure
// rate L and restart cost R, the classic E[T] = (1/L + R)(e^{Ld} - 1)),
// which is what the fault_tradeoff bench sweeps — smooth in the rate, so
// the energy-optimal gear's drift is visible without sampling noise.
#pragma once

#include <cstddef>
#include <vector>

#include "faults/fault_plan.hpp"
#include "power/energy_meter.hpp"
#include "trace/fault_events.hpp"
#include "util/units.hpp"

namespace gearsim::faults {

/// Cumulative cluster energy as a function of run time, built from the
/// exact piecewise-constant per-node power profiles of a finished run.
/// Piecewise linear, so between() is exact.
class EnergyProfile {
 public:
  /// Requires EnergyMeter::enable_profile_recording() before the run.
  static EnergyProfile from_meter(const power::EnergyMeter& meter);
  /// Constant cluster draw `power` over [0, wall] — the closed-form
  /// profile benches use when only (wall, total energy) is known.
  static EnergyProfile flat(Watts power, Seconds wall);

  /// Exact cluster energy consumed in [t0, t1] of solid-run time; the
  /// arguments are clamped to the profile span.
  [[nodiscard]] Joules between(Seconds t0, Seconds t1) const;
  [[nodiscard]] Seconds end() const { return time_.back(); }
  [[nodiscard]] Joules total() const { return cumulative_.back(); }

 private:
  std::vector<Seconds> time_;        ///< Ascending breakpoints; front is 0.
  std::vector<Joules> cumulative_;   ///< Cumulative energy at each breakpoint.
};

/// The outcome of running a (possibly crashing) job to completion or
/// exhaustion under a checkpoint/restart policy.
struct RestartStats {
  bool completed = true;
  /// Crashes absorbed by restarting (= restarts performed).  For the
  /// expected-value model this is the rounded expectation; see
  /// `expected_failures` for the exact value.
  int retries = 0;
  double expected_failures = 0.0;
  Seconds wall{};    ///< Total wall time, including checkpoints and rework.
  Joules energy{};   ///< Total energy, including checkpoints and rework.
  /// Wall/energy beyond the crash-free checkpointed run (for a failed
  /// run: beyond the durable progress that survived).
  Seconds rework_time{};
  Joules rework_energy{};
  /// Crash-free schedule cost of the checkpoints themselves.
  Seconds checkpoint_time{};
  Joules checkpoint_energy{};
  /// Set when !completed: the crash that exhausted the restart budget.
  Seconds failed_at{};
  std::size_t failed_node = 0;
};

/// Wall/energy of the checkpointed run with no failures (the baseline
/// rework is measured against).
RestartStats checkpointed_baseline(Seconds solid_wall,
                                   const EnergyProfile& profile,
                                   std::size_t nodes,
                                   const CheckpointConfig& cfg);

/// Deterministic composition: replay explicit crash wall-times over the
/// solid run.  Crashes landing inside a restart window are absorbed by
/// it; crashes after completion never happen.  When `log` is non-null,
/// checkpoint/restart/crash events are appended to it in time order.
RestartStats compose_restarts(Seconds solid_wall, const EnergyProfile& profile,
                              std::size_t nodes, const CheckpointConfig& cfg,
                              const std::vector<CrashEvent>& crashes,
                              trace::FaultLog* log = nullptr);

/// Closed-form expectation under a Poisson failure process with
/// cluster-wide rate `failure_rate_hz` (per-node rate x live nodes).
/// Always reports completed = true; `max_restarts` does not bound an
/// expectation.
RestartStats expected_restarts(Seconds solid_wall, const EnergyProfile& profile,
                               std::size_t nodes, const CheckpointConfig& cfg,
                               double failure_rate_hz);

}  // namespace gearsim::faults
