# Empty dependencies file for microbench_serve.
# This may be replaced when dependencies are built.
