file(REMOVE_RECURSE
  "CMakeFiles/microbench_serve.dir/microbench_serve.cpp.o"
  "CMakeFiles/microbench_serve.dir/microbench_serve.cpp.o.d"
  "microbench_serve"
  "microbench_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
