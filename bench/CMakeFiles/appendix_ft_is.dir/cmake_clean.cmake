file(REMOVE_RECURSE
  "CMakeFiles/appendix_ft_is.dir/appendix_ft_is.cpp.o"
  "CMakeFiles/appendix_ft_is.dir/appendix_ft_is.cpp.o.d"
  "appendix_ft_is"
  "appendix_ft_is.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_ft_is.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
