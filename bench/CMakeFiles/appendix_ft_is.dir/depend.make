# Empty dependencies file for appendix_ft_is.
# This may be replaced when dependencies are built.
