# Empty compiler generated dependencies file for ablation_refined_model.
# This may be replaced when dependencies are built.
