file(REMOVE_RECURSE
  "CMakeFiles/ablation_refined_model.dir/ablation_refined_model.cpp.o"
  "CMakeFiles/ablation_refined_model.dir/ablation_refined_model.cpp.o.d"
  "ablation_refined_model"
  "ablation_refined_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_refined_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
