# Empty dependencies file for table1_upm_slopes.
# This may be replaced when dependencies are built.
