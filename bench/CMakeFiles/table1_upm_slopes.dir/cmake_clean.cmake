file(REMOVE_RECURSE
  "CMakeFiles/table1_upm_slopes.dir/table1_upm_slopes.cpp.o"
  "CMakeFiles/table1_upm_slopes.dir/table1_upm_slopes.cpp.o.d"
  "table1_upm_slopes"
  "table1_upm_slopes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_upm_slopes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
