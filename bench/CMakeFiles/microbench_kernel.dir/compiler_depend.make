# Empty compiler generated dependencies file for microbench_kernel.
# This may be replaced when dependencies are built.
