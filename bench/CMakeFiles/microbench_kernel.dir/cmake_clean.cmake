file(REMOVE_RECURSE
  "CMakeFiles/microbench_kernel.dir/microbench_kernel.cpp.o"
  "CMakeFiles/microbench_kernel.dir/microbench_kernel.cpp.o.d"
  "microbench_kernel"
  "microbench_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
