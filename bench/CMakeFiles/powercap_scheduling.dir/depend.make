# Empty dependencies file for powercap_scheduling.
# This may be replaced when dependencies are built.
