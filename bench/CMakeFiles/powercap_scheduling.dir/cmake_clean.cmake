file(REMOVE_RECURSE
  "CMakeFiles/powercap_scheduling.dir/powercap_scheduling.cpp.o"
  "CMakeFiles/powercap_scheduling.dir/powercap_scheduling.cpp.o.d"
  "powercap_scheduling"
  "powercap_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powercap_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
