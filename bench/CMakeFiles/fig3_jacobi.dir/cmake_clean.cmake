file(REMOVE_RECURSE
  "CMakeFiles/fig3_jacobi.dir/fig3_jacobi.cpp.o"
  "CMakeFiles/fig3_jacobi.dir/fig3_jacobi.cpp.o.d"
  "fig3_jacobi"
  "fig3_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
