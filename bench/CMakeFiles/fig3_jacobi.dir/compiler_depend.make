# Empty compiler generated dependencies file for fig3_jacobi.
# This may be replaced when dependencies are built.
