# Empty compiler generated dependencies file for fault_tradeoff.
# This may be replaced when dependencies are built.
