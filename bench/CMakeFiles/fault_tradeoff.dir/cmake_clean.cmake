file(REMOVE_RECURSE
  "CMakeFiles/fault_tradeoff.dir/fault_tradeoff.cpp.o"
  "CMakeFiles/fault_tradeoff.dir/fault_tradeoff.cpp.o.d"
  "fault_tradeoff"
  "fault_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
