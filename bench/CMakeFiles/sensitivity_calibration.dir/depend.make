# Empty dependencies file for sensitivity_calibration.
# This may be replaced when dependencies are built.
