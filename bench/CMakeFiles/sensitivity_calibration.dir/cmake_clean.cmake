file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_calibration.dir/sensitivity_calibration.cpp.o"
  "CMakeFiles/sensitivity_calibration.dir/sensitivity_calibration.cpp.o.d"
  "sensitivity_calibration"
  "sensitivity_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
