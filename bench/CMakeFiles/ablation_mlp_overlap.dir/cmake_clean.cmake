file(REMOVE_RECURSE
  "CMakeFiles/ablation_mlp_overlap.dir/ablation_mlp_overlap.cpp.o"
  "CMakeFiles/ablation_mlp_overlap.dir/ablation_mlp_overlap.cpp.o.d"
  "ablation_mlp_overlap"
  "ablation_mlp_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mlp_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
