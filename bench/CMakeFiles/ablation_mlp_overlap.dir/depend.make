# Empty dependencies file for ablation_mlp_overlap.
# This may be replaced when dependencies are built.
