file(REMOVE_RECURSE
  "CMakeFiles/weak_vs_strong.dir/weak_vs_strong.cpp.o"
  "CMakeFiles/weak_vs_strong.dir/weak_vs_strong.cpp.o.d"
  "weak_vs_strong"
  "weak_vs_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_vs_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
