# Empty compiler generated dependencies file for weak_vs_strong.
# This may be replaced when dependencies are built.
