file(REMOVE_RECURSE
  "CMakeFiles/fig5_model_scaling.dir/fig5_model_scaling.cpp.o"
  "CMakeFiles/fig5_model_scaling.dir/fig5_model_scaling.cpp.o.d"
  "fig5_model_scaling"
  "fig5_model_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_model_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
