# Empty compiler generated dependencies file for fig4_synthetic.
# This may be replaced when dependencies are built.
