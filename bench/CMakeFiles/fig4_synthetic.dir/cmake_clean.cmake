file(REMOVE_RECURSE
  "CMakeFiles/fig4_synthetic.dir/fig4_synthetic.cpp.o"
  "CMakeFiles/fig4_synthetic.dir/fig4_synthetic.cpp.o.d"
  "fig4_synthetic"
  "fig4_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
