file(REMOVE_RECURSE
  "libgearsim_bench_harness.a"
)
