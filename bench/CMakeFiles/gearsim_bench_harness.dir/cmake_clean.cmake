file(REMOVE_RECURSE
  "CMakeFiles/gearsim_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/gearsim_bench_harness.dir/harness.cpp.o.d"
  "libgearsim_bench_harness.a"
  "libgearsim_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearsim_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
