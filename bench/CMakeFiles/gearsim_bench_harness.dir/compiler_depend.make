# Empty compiler generated dependencies file for gearsim_bench_harness.
# This may be replaced when dependencies are built.
