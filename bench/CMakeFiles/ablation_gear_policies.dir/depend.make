# Empty dependencies file for ablation_gear_policies.
# This may be replaced when dependencies are built.
