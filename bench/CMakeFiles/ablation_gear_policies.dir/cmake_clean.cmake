file(REMOVE_RECURSE
  "CMakeFiles/ablation_gear_policies.dir/ablation_gear_policies.cpp.o"
  "CMakeFiles/ablation_gear_policies.dir/ablation_gear_policies.cpp.o.d"
  "ablation_gear_policies"
  "ablation_gear_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gear_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
