file(REMOVE_RECURSE
  "CMakeFiles/policy_tradeoff.dir/policy_tradeoff.cpp.o"
  "CMakeFiles/policy_tradeoff.dir/policy_tradeoff.cpp.o.d"
  "policy_tradeoff"
  "policy_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
