# Empty dependencies file for policy_tradeoff.
# This may be replaced when dependencies are built.
