file(REMOVE_RECURSE
  "CMakeFiles/fig2_multinode.dir/fig2_multinode.cpp.o"
  "CMakeFiles/fig2_multinode.dir/fig2_multinode.cpp.o.d"
  "fig2_multinode"
  "fig2_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
