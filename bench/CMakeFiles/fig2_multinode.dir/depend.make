# Empty dependencies file for fig2_multinode.
# This may be replaced when dependencies are built.
