file(REMOVE_RECURSE
  "CMakeFiles/fig1_single_node.dir/fig1_single_node.cpp.o"
  "CMakeFiles/fig1_single_node.dir/fig1_single_node.cpp.o.d"
  "fig1_single_node"
  "fig1_single_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_single_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
