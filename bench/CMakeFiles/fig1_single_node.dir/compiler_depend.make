# Empty compiler generated dependencies file for fig1_single_node.
# This may be replaced when dependencies are built.
