file(REMOVE_RECURSE
  "CMakeFiles/microbench_sweep.dir/microbench_sweep.cpp.o"
  "CMakeFiles/microbench_sweep.dir/microbench_sweep.cpp.o.d"
  "microbench_sweep"
  "microbench_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
