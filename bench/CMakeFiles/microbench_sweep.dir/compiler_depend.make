# Empty compiler generated dependencies file for microbench_sweep.
# This may be replaced when dependencies are built.
