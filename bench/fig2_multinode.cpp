// Figure 2 — Energy consumption vs execution time for the NAS benchmarks
// on multiple nodes (2/4/8, or 4/9 for the square-grid codes BT and SP).
//
// Regenerates each benchmark's family of energy-time curves (cumulative
// cluster energy, one curve per node count, one point per gear) and
// classifies every node-count transition into the paper's three cases:
//   case 1  poor speedup       (larger curve entirely above)
//   case 2  perfect/superlinear (fastest point dominates)
//   case 3  good speedup       (a slower gear on more nodes dominates the
//                               fastest gear on fewer nodes)
// Ends with the paper's quoted LU 4->8 numbers.
#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include <string>

#include "cluster/experiment.hpp"
#include "net/topology.hpp"
#include "exec/result_cache.hpp"
#include "exec/sweep_runner.hpp"
#include "harness.hpp"
#include "obs/metrics.hpp"
#include "report/figures.hpp"
#include "model/tradeoff.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

using namespace gearsim;

namespace {

int run(bench::BenchContext& ctx) {
  const std::string& svg_dir = ctx.svg_dir();
  // All sweeps go through the executor: GEARSIM_SWEEP_JOBS parallelizes
  // them and GEARSIM_CACHE_DIR (e.g. out/cache) lets repeated bench runs
  // skip every already-simulated point — both bit-identical to serial.
  exec::ResultCache::Options cache_options;
  if (const char* dir = std::getenv("GEARSIM_CACHE_DIR")) {
    cache_options.disk_dir = dir;
  }
  exec::ResultCache cache(cache_options);
  obs::MetricsRegistry metrics(ctx.wall_profile());
  exec::SweepOptions sweep_options;
  sweep_options.cache = &cache;
  sweep_options.metrics = &metrics;
  const exec::SweepRunner runner(cluster::athlon_cluster(), sweep_options);

  std::cout << "=== Figure 2: energy vs time on 2/4/8 (or 4/9) nodes ===\n\n";

  for (const auto& entry : workloads::nas_suite()) {
    const auto workload = entry.make();
    const std::vector<int> nodes =
        (entry.name == "BT" || entry.name == "SP") ? std::vector<int>{4, 9}
                                                   : std::vector<int>{2, 4, 8};

    std::vector<model::Curve> curves;
    TextTable table({"nodes", "gear", "time [s]", "energy [kJ]",
                     "mean power [W]"});
    for (int n : nodes) {
      const auto runs = runner.gear_sweep(*workload, n);
      curves.push_back(model::curve_from_runs(runs));
      bool first = true;
      for (const auto& p : curves.back().points) {
        table.add_row({first ? std::to_string(n) : "",
                       std::to_string(p.gear_label),
                       fmt_fixed(p.time.value(), 1),
                       fmt_fixed(p.energy.value() / 1e3, 1),
                       fmt_fixed((p.energy / p.time).value(), 0)});
        first = false;
      }
      table.add_rule();
    }
    std::cout << "--- " << entry.name << " ---\n" << table.to_string();
    if (!svg_dir.empty()) {
      report::energy_time_figure("Figure 2: " + entry.name, curves)
          .write(svg_dir + "/fig2_" + entry.name + ".svg");
    }

    for (std::size_t i = 1; i < curves.size(); ++i) {
      const auto c = model::classify_transition(curves[i - 1], curves[i]);
      std::cout << "  " << curves[i - 1].nodes << " -> " << curves[i].nodes
                << " nodes: speedup "
                << fmt_fixed(curves[i - 1].fastest().time /
                                 curves[i].fastest().time,
                             2)
                << "x  =>  " << model::to_string(c) << '\n';
    }
    std::cout << '\n';
  }

  // The paper's quoted case-3 numbers for LU at 4 vs 8 nodes.
  {
    const auto lu = workloads::make_workload("LU");
    const model::Curve c4 = model::curve_from_runs(runner.gear_sweep(*lu, 4));
    const model::Curve c8 = model::curve_from_runs(runner.gear_sweep(*lu, 8));
    const auto& f4 = c4.at_gear(1);
    const auto& f8 = c8.at_gear(1);
    const auto& g4on8 = c8.at_gear(4);
    TextTable t({"claim", "paper", "measured"});
    t.add_row({"LU fastest-gear speedup 8 vs 4 nodes", "1.72x",
               fmt_fixed(f4.time / f8.time, 2) + "x"});
    t.add_row({"LU fastest-gear energy 8 vs 4 nodes", "+12%",
               fmt_percent(f8.energy / f4.energy - 1.0)});
    t.add_row({"LU gear4@8 energy vs gear1@4", "~same",
               fmt_percent(g4on8.energy / f4.energy - 1.0)});
    t.add_row({"LU gear4@8 speedup vs gear1@4", "~1.5x",
               fmt_fixed(f4.time / g4on8.time, 2) + "x"});
    std::cout << "=== Section 3.2 quoted LU comparisons ===\n" << t.to_string();
    ctx.metric("lu.speedup_8v4", f4.time / f8.time);
    ctx.metric("lu.energy_8v4_delta", f8.energy / f4.energy - 1.0);
    ctx.metric("lu.gear4at8_energy_delta", g4on8.energy / f4.energy - 1.0);
    ctx.metric("lu.gear4at8_speedup", f4.time / g4on8.time);
  }
  // Topology contention at scale: the SHIFT congestion probe on 256
  // ranks under an ideal flat crossbar, a genuinely non-blocking fat
  // tree, a 2:1-oversubscribed fat tree, and a 16x16 torus (see
  // docs/NETWORK.md).  Compute is identical across the four, so the
  // extra wall time and the larger idle-energy share under the
  // contended fabrics are congestion-induced slack — the slack class
  // the paper's 10-node cluster could not produce, and the one
  // COUNTDOWN-style DVFS policies exploit (`gearsim policy --workload
  // SHIFT --topology ...` races the roster on it).
  {
    std::cout << "=== Topology contention: SHIFT probe on 256 ranks ===\n";
    const workloads::ShiftExchange shift;
    // The non-blocking fat tree is the slack baseline: same routing and
    // fair-share model, zero oversubscription, so any wall-time growth
    // over it is pure link contention.  The flat crossbar is shown for
    // context (its aggregate-backplane FIFO is a different serialization
    // model, so it is not the congestion reference).
    const std::vector<std::pair<std::string, std::string>> fabrics = {
        {"fat_tree_full", "fat-tree:16,16:1,1:1,16"},
        {"flat", "flat"},
        {"fat_tree_2to1", "fat-tree:16,16:1,2:1,4"},
        {"torus", "torus:16x16"},
    };
    TextTable topo({"fabric", "time [s]", "energy [kJ]", "idle share",
                    "congestion slack"});
    double base_wall = 0.0;
    for (const auto& [key, spec] : fabrics) {
      cluster::ClusterConfig config = cluster::athlon_cluster();
      config.max_nodes = 256;
      // The flat row gets an ideal crossbar, so it is not bottlenecked
      // by the 10-node cluster's 12-port switch being 25x undersized.
      config.network.backplane_bandwidth =
          256 * config.network.link_bandwidth;
      cluster::install_topology(&config, net::parse_topology(spec));
      const cluster::ExperimentRunner topo_runner(config);
      const cluster::RunResult r =
          topo_runner.run(shift, 256, cluster::RunOptions{});
      if (key == "fat_tree_full") base_wall = r.wall.value();
      const double idle_share = r.idle_energy / r.energy;
      const double slack = r.wall.value() / base_wall - 1.0;
      topo.add_row({key, fmt_fixed(r.wall.value(), 2),
                    fmt_fixed(r.energy.value() / 1e3, 1),
                    fmt_percent(idle_share),
                    key == "fat_tree_full" ? "-" : fmt_percent(slack)});
      ctx.metric("topo256." + key + ".time", r.wall.value());
      ctx.metric("topo256." + key + ".idle_share", idle_share);
      if (key != "fat_tree_full") {
        ctx.metric("topo256." + key + ".slack", slack);
      }
    }
    std::cout << topo.to_string() << '\n';
  }
  // Deterministic simulation-volume metrics from the executor: a change
  // in any of these means the sweep simulated different work.
  const obs::MetricsSnapshot snap = metrics.snapshot();
  for (const char* name : {"sim.engine.events_dispatched", "net.messages",
                           "exec.sweep.points", "exec.cache.misses"}) {
    const auto it = snap.metrics.find(name);
    if (it != snap.metrics.end()) {
      ctx.metric(name, static_cast<double>(it->second.count));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "fig2_multinode", run);
}
