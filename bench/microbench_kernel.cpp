// Microbenchmarks for the simulation substrate itself: event-queue
// throughput, process context-switch cost, cache-simulator access rate,
// MPI ping-pong, and a full small experiment.  These guard the
// simulator's own performance — the figure harnesses run thousands of
// cluster-runs, so kernel regressions show up as wall-clock pain.
//
// Timings are wall-clock and machine-dependent, so they go into the
// `wall` section of BENCH_microbench_kernel.json, which the regression
// gate never compares; the deterministic work counts per iteration land
// in `metrics` so a silent change in the amount of simulated work fails
// the gate even though the timings float.
#include <cstddef>
#include <iostream>
#include <string>

#include "cluster/experiment.hpp"
#include "cpu/cache.hpp"
#include "harness.hpp"
#include "model/analytic.hpp"
#include "trace/analysis.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "util/random.hpp"
#include "workloads/jacobi.hpp"

using namespace gearsim;

namespace {

// Keep the optimizer from deleting a result we only compute for timing.
template <typename T>
inline void keep(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

// Times one kernel, reports ns/item, and records it as a wall metric.
void report(bench::BenchContext& ctx, const std::string& name,
            double items_per_call, const std::function<void()>& op) {
  const double seconds_per_call = bench::time_op(op);
  const double ns_per_item = seconds_per_call / items_per_call * 1e9;
  ctx.wall_metric(name + ".ns_per_item", ns_per_item);
  std::cout << name << ": " << ns_per_item << " ns/item\n";
}

int run(bench::BenchContext& ctx) {
  for (const int n : {1024, 65536}) {
    report(ctx, "event_queue_push_pop_" + std::to_string(n), n, [n] {
      sim::EventQueue q;
      for (int i = 0; i < n; ++i) {
        q.push(seconds((i * 7919) % n), [] {});
      }
      while (!q.empty()) keep(q.pop().fn);
    });
  }

  report(ctx, "engine_dispatch", 10000, [] {
    sim::Engine e;
    for (int i = 0; i < 10000; ++i) e.schedule_at(seconds(i), [] {});
    e.run();
  });

  report(ctx, "process_context_switch", 1000, [] {
    sim::Engine e;
    e.spawn("p", [](sim::Process& p) {
      for (int i = 0; i < 1000; ++i) p.delay(seconds(0.001));
    });
    e.run();
  });

  {
    cpu::CacheSim cache({kilobytes(512), 64, 16});
    Rng rng(1);
    report(ctx, "cache_sim_access", 1,
           [&] { keep(cache.access(rng.below(megabytes(64)))); });
  }

  for (const Bytes bytes : {Bytes{64}, Bytes{65536}}) {
    report(ctx, "mpi_ping_pong_" + std::to_string(bytes), 200, [bytes] {
      sim::Engine engine;
      net::Network network(net::ethernet_100mbps(), 2);
      mpi::World world(engine, network, 2);
      for (int r = 0; r < 2; ++r) {
        sim::Process& proc =
            engine.spawn("rank" + std::to_string(r), [&, r](sim::Process&) {
              mpi::Comm comm(world, r);
              for (int i = 0; i < 100; ++i) {
                if (r == 0) {
                  comm.send(1, 0, bytes);
                  comm.recv(1, 1);
                } else {
                  comm.recv(0, 0);
                  comm.send(0, 1, bytes);
                }
              }
            });
        world.bind_rank(r, proc);
      }
      engine.run();
    });
  }

  {
    net::Network network(net::ethernet_100mbps(), 16);
    Rng rng(5);
    Seconds now{};
    report(ctx, "network_transfer", 1, [&] {
      const auto src = static_cast<std::size_t>(rng.below(16));
      auto dst = static_cast<std::size_t>(rng.below(16));
      if (dst == src) dst = (dst + 1) % 16;
      now += microseconds(10.0);
      keep(network.transfer(src, dst, 8192, now));
    });
  }

  {
    const cpu::CpuModel cpu_model(cpu::CpuParams{}, cpu::athlon64_gears());
    const cpu::PowerModel power_model(cpu::PowerParams{},
                                      cpu::athlon64_gears());
    report(ctx, "analytic_curve", 1, [&] {
      keep(model::analytic_single_node_curve(cpu_model, power_model, 50.0,
                                             seconds(100.0)));
    });
  }

  {
    // One rank with 10k alternating send/recv records.
    trace::Tracer tracer(1);
    double t = 0.0;
    for (int i = 0; i < 5000; ++i) {
      tracer.on_enter(0, mpi::CallType::kSend, seconds(t), 1024, 0);
      tracer.on_exit(0, mpi::CallType::kSend, seconds(t + 0.001));
      t += 0.01;
      tracer.on_enter(0, mpi::CallType::kRecv, seconds(t), 0, 0);
      tracer.on_exit(0, mpi::CallType::kRecv, seconds(t + 0.002));
      t += 0.01;
    }
    report(ctx, "trace_analysis", 10000, [&] {
      keep(trace::analyze_rank(tracer.records(0), Seconds{}, seconds(t)));
    });
  }

  {
    cluster::ExperimentRunner runner(cluster::athlon_cluster());
    const workloads::Jacobi jacobi;
    // The full-experiment kernel also yields a deterministic anchor: the
    // simulated wall time and event count of an 8-node Jacobi run.
    const cluster::RunResult r = runner.run(jacobi, 8, 0);
    ctx.metric("jacobi8.sim_wall_s", r.wall.value());
    ctx.metric("jacobi8.mpi_calls", static_cast<double>(r.mpi_calls));
    report(ctx, "full_experiment_jacobi8", 1,
           [&] { keep(runner.run(jacobi, 8, 0)); });
  }

  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "microbench_kernel", run);
}
