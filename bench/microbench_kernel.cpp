// Microbenchmarks (google-benchmark) for the simulation substrate itself:
// event-queue throughput, process context-switch cost, cache-simulator
// access rate, MPI ping-pong, and a full small experiment.  These guard
// the simulator's own performance — the figure harnesses run thousands of
// cluster-runs, so kernel regressions show up as wall-clock pain.
#include <benchmark/benchmark.h>

#include "cluster/experiment.hpp"
#include "cpu/cache.hpp"
#include "model/analytic.hpp"
#include "trace/analysis.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "util/random.hpp"
#include "workloads/jacobi.hpp"

using namespace gearsim;

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.push(seconds((i * 7919) % n), [] {});
    }
    Seconds t{};
    while (!q.empty()) benchmark::DoNotOptimize(q.pop(t));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_EngineDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 10000; ++i) e.schedule_at(seconds(i), [] {});
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineDispatch);

void BM_ProcessContextSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    e.spawn("p", [](sim::Process& p) {
      for (int i = 0; i < 1000; ++i) p.delay(seconds(0.001));
    });
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ProcessContextSwitch);

void BM_CacheSimAccess(benchmark::State& state) {
  cpu::CacheSim cache({kilobytes(512), 64, 16});
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.below(megabytes(64))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSimAccess);

void BM_MpiPingPong(benchmark::State& state) {
  const Bytes bytes = static_cast<Bytes>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    net::Network network(net::ethernet_100mbps(), 2);
    mpi::World world(engine, network, 2);
    for (int r = 0; r < 2; ++r) {
      sim::Process& proc =
          engine.spawn("rank" + std::to_string(r), [&, r](sim::Process&) {
            mpi::Comm comm(world, r);
            for (int i = 0; i < 100; ++i) {
              if (r == 0) {
                comm.send(1, 0, bytes);
                comm.recv(1, 1);
              } else {
                comm.recv(0, 0);
                comm.send(0, 1, bytes);
              }
            }
          });
      world.bind_rank(r, proc);
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_MpiPingPong)->Arg(64)->Arg(65536);

void BM_NetworkTransfer(benchmark::State& state) {
  net::Network network(net::ethernet_100mbps(), 16);
  Rng rng(5);
  Seconds now{};
  for (auto _ : state) {
    const auto src = static_cast<std::size_t>(rng.below(16));
    auto dst = static_cast<std::size_t>(rng.below(16));
    if (dst == src) dst = (dst + 1) % 16;
    now += microseconds(10.0);
    benchmark::DoNotOptimize(network.transfer(src, dst, 8192, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkTransfer);

void BM_AnalyticCurve(benchmark::State& state) {
  const cpu::CpuModel cpu_model(cpu::CpuParams{}, cpu::athlon64_gears());
  const cpu::PowerModel power_model(cpu::PowerParams{},
                                    cpu::athlon64_gears());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::analytic_single_node_curve(
        cpu_model, power_model, 50.0, seconds(100.0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyticCurve);

void BM_TraceAnalysis(benchmark::State& state) {
  // One rank with 10k alternating send/recv records.
  trace::Tracer tracer(1);
  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    tracer.on_enter(0, mpi::CallType::kSend, seconds(t), 1024, 0);
    tracer.on_exit(0, mpi::CallType::kSend, seconds(t + 0.001));
    t += 0.01;
    tracer.on_enter(0, mpi::CallType::kRecv, seconds(t), 0, 0);
    tracer.on_exit(0, mpi::CallType::kRecv, seconds(t + 0.002));
    t += 0.01;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::analyze_rank(tracer.records(0), Seconds{}, seconds(t)));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TraceAnalysis);

void BM_FullExperimentJacobi8(benchmark::State& state) {
  cluster::ExperimentRunner runner(cluster::athlon_cluster());
  const workloads::Jacobi jacobi;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(jacobi, 8, 0));
  }
}
BENCHMARK(BM_FullExperimentJacobi8);

}  // namespace

BENCHMARK_MAIN();
