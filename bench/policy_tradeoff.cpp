// Adaptive-policy tradeoff benchmark: can online controllers beat the
// static gear curve?  Writes BENCH_policy_tradeoff.json (pass `--json`).
//
// Three claims, each checked (the process fails if one does not hold):
//
//   1. On a CG-like run — an iterative NAS kernel with real per-rank
//      load imbalance — SlackReclaimer recovers at least the energy
//      saving of the best static gear (the uniform gear with the lowest
//      energy) at no more than half that gear's slowdown.  The static
//      gear must slow the critical rank to save anything; the reclaimer
//      only slows the ranks that were waiting anyway.  BT is the gated
//      cell: on CG proper this cluster's network contention makes the
//      slow gears *faster* than gear 0 (the best static gear has
//      negative slowdown), so "half its slowdown" is ill-posed there —
//      CG is reported alongside, ungated, for the record.
//   2. On short-message workloads (EP's three tiny allreduces, LU's
//      pencil-relay of small messages) TimeoutDownshift is never slower
//      than the naive CommDownshift: the predictor refuses to pay the
//      two-way transition latency for waits shorter than the timeout.
//   3. Determinism: evaluating the same cell twice gives bit-identical
//      results (exec::to_json fingerprints compared byte-for-byte).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/experiment.hpp"
#include "exec/result_io.hpp"
#include "harness.hpp"
#include "policy/evaluator.hpp"
#include "workloads/registry.hpp"

using namespace gearsim;

namespace {

std::string jnum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string fingerprint(const policy::Evaluation& eval) {
  std::string fp;
  for (const auto& run : eval.static_runs) fp += exec::to_json(run);
  for (const auto& row : eval.policies) fp += exec::to_json(row.result);
  return fp;
}

const policy::PolicyRow& row_named(const policy::Evaluation& eval,
                                   const std::string& name) {
  for (const auto& row : eval.policies) {
    if (row.name == name) return row;
  }
  std::cerr << "FAIL: no policy row named " << name << '\n';
  std::exit(1);
}

int run(bench::BenchContext& ctx) {
  bool ok = true;

  // ---- claim 1: slack reclamation on an imbalanced iterative kernel -------
  // The paper's cluster measured ~1% load imbalance; real applications on
  // shared clusters see far more.  20% spread gives the slack a DVFS
  // runtime exists to harvest.
  cluster::ClusterConfig imbalanced = cluster::athlon_cluster();
  imbalanced.load_imbalance = 0.20;
  const policy::PolicyEvaluator slack_eval(imbalanced);
  const auto bt = workloads::make_workload("BT");
  const policy::Evaluation bt_cell = slack_eval.evaluate(*bt, 9);

  const cluster::RunResult& fastest = bt_cell.static_runs.front();
  const cluster::RunResult* best_static = &fastest;
  for (const auto& run : bt_cell.static_runs) {
    if (run.energy.value() < best_static->energy.value()) best_static = &run;
  }
  const double static_saving =
      1.0 - best_static->energy.value() / fastest.energy.value();
  const double static_slowdown = best_static->wall / fastest.wall - 1.0;
  const policy::PolicyRow& reclaimer = row_named(bt_cell, "slack-reclaimer");
  const double reclaimer_saving = -reclaimer.energy_delta;
  const double reclaimer_slowdown = reclaimer.time_delta;
  const bool slack_ok = reclaimer_saving >= static_saving &&
                        reclaimer_slowdown <= 0.5 * static_slowdown;
  std::cout << "BT x9 (imbalance 0.20): best static gear "
            << best_static->gear_label << " saves "
            << jnum(static_saving * 100.0) << "% at +"
            << jnum(static_slowdown * 100.0) << "% time; slack-reclaimer saves "
            << jnum(reclaimer_saving * 100.0) << "% at +"
            << jnum(reclaimer_slowdown * 100.0) << "% time -> "
            << (slack_ok ? "OK" : "FAIL") << '\n';
  ok = ok && slack_ok;

  // CG for the record (ungated: its best static gear is *faster* than
  // gear 0 here, so the slowdown half of the claim is ill-posed).
  const auto cg = workloads::make_workload("CG");
  const policy::Evaluation cg_cell = slack_eval.evaluate(*cg, 8);
  const policy::PolicyRow& cg_reclaimer =
      row_named(cg_cell, "slack-reclaimer");
  std::cout << "CG x8 (imbalance 0.20, ungated): slack-reclaimer saves "
            << jnum(-cg_reclaimer.energy_delta * 100.0) << "% at "
            << jnum(cg_reclaimer.time_delta * 100.0) << "% time\n";

  // ---- claim 2: timeout gating on short-message workloads -----------------
  const policy::PolicyEvaluator default_eval(cluster::athlon_cluster());
  bool timeout_ok = true;
  struct ShortCell {
    std::string workload;
    int nodes;
    double timeout_wall;
    double comm_wall;
  };
  std::vector<ShortCell> short_cells;
  for (const auto& [name, nodes] :
       std::vector<std::pair<std::string, int>>{{"EP", 8}, {"LU", 8}}) {
    const auto workload = workloads::make_workload(name);
    const policy::Evaluation cell = default_eval.evaluate(*workload, nodes);
    const double timeout_wall =
        row_named(cell, "timeout-downshift").result.wall.value();
    const double comm_wall =
        row_named(cell, "comm-downshift").result.wall.value();
    const bool cell_ok = timeout_wall <= comm_wall;
    std::cout << name << " x" << nodes << ": timeout-downshift "
              << jnum(timeout_wall) << " s vs comm-downshift "
              << jnum(comm_wall) << " s -> " << (cell_ok ? "OK" : "FAIL")
              << '\n';
    short_cells.push_back({name, nodes, timeout_wall, comm_wall});
    timeout_ok = timeout_ok && cell_ok;
  }
  ok = ok && timeout_ok;

  // ---- claim 3: determinism ----------------------------------------------
  const policy::Evaluation bt_again = slack_eval.evaluate(*bt, 9);
  const bool deterministic = fingerprint(bt_cell) == fingerprint(bt_again);
  std::cout << "determinism: two evaluations "
            << (deterministic ? "bit-identical -> OK" : "DIFFER -> FAIL")
            << '\n';
  ok = ok && deterministic;

  ctx.metric("bt.best_static_gear",
             static_cast<double>(best_static->gear_label));
  ctx.metric("bt.best_static_energy_saving", static_saving);
  ctx.metric("bt.best_static_slowdown", static_slowdown);
  ctx.metric("bt.reclaimer_energy_saving", reclaimer_saving);
  ctx.metric("bt.reclaimer_slowdown", reclaimer_slowdown);
  ctx.metric("bt.claim_holds", slack_ok ? 1.0 : 0.0);
  ctx.metric("cg.reclaimer_energy_saving", -cg_reclaimer.energy_delta);
  ctx.metric("cg.reclaimer_slowdown", cg_reclaimer.time_delta);
  for (const ShortCell& cell : short_cells) {
    ctx.metric(cell.workload + ".timeout_downshift_s", cell.timeout_wall);
    ctx.metric(cell.workload + ".comm_downshift_s", cell.comm_wall);
  }
  ctx.metric("timeout_never_slower", timeout_ok ? 1.0 : 0.0);
  ctx.metric("bit_identical", deterministic ? 1.0 : 0.0);

  if (!ok) {
    std::cerr << "FAIL: at least one policy-tradeoff claim does not hold\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return bench::bench_main(argc, argv, "policy_tradeoff", run);
}
